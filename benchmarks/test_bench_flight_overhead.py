"""Benchmark guard: the always-on flight recorder costs under 5% idle.

The flight recorder is *enabled* in every campaign worker, so unlike
the metrics/span guards its budget is the enabled-but-idle path: hook
sites still branch on ``if flight.enabled:``, and the few events that
do fire pay one ring append each.  There is no recorder-free build to
diff against, so the bound is an over-counting extrapolation:

* ``N`` — an upper bound on flight *guard* evaluations, taken as the
  full instrumentation event count of an enabled Table 5 run (metric
  updates plus span begin/end pairs).  The real flight hooks sit only
  at fault-trip / health-transition / checkpoint-write sites, a tiny
  subset of those events.
* ``E`` — a generous per-run budget of events that actually *fire*:
  one quarter of the ring capacity (a run that trips 64 faults is
  already a forensics case, not an idle one).
* ``c_guard`` / ``c_record`` — measured wall-clock costs of one false
  guard branch and one enabled ring append.

``N * c_guard + E * c_record`` must stay below 5% of the run's wall
time.  The record is written to ``BENCH_flight_overhead.json`` at the
repo root (CI uploads it and feeds it to the trend gate).
"""

import json
import time
from pathlib import Path

from benchmarks.conftest import bench_once
from repro.apps.jini import run_jini_app
from repro.framework.builder import build_system
from repro.obs import FlightRecorder, Observability

RECORD_PATH = Path(__file__).resolve().parent.parent \
    / "BENCH_flight_overhead.json"


def _disabled_guard_cost(loops: int = 200_000) -> float:
    """Seconds per ``if obs.flight.enabled:`` evaluation, disabled."""
    obs = Observability(enabled=False)
    sink = 0
    start = time.perf_counter()
    for _ in range(loops):
        if obs.flight.enabled:
            sink += 1
    elapsed = time.perf_counter() - start
    assert sink == 0
    return elapsed / loops


def _record_cost(loops: int = 50_000) -> float:
    """Seconds per enabled ring append (no sink armed)."""
    flight = FlightRecorder(clock=time.perf_counter)
    flight.enable()
    start = time.perf_counter()
    for index in range(loops):
        flight.record("bench_tick", actor="bench", index=index)
    elapsed = time.perf_counter() - start
    assert flight.recorded == loops
    return elapsed / loops


def _instrumented_event_count() -> int:
    """Instrumentation events of one fully-enabled Table 5 run — a
    strict over-count of flight guard-site visits."""
    system = build_system("RTOS2")
    system.soc.obs.enable()
    run_jini_app(system=system)
    obs = system.soc.obs
    return obs.metrics.total_updates + 2 * len(obs.tracer.all_spans())


def test_bench_flight_idle_overhead_under_5_percent(benchmark):
    # Wall time of the production path: a plain uninstrumented run.
    def clean_run():
        start = time.perf_counter()
        run_jini_app("RTOS2")
        return time.perf_counter() - start

    clean_seconds = bench_once(benchmark, clean_run)

    guards = _instrumented_event_count()
    fired = FlightRecorder().capacity // 4
    guard_cost = _disabled_guard_cost()
    record_cost = _record_cost()
    overhead = guards * guard_cost + fired * record_cost

    assert guards > 100              # the bound genuinely over-counts
    assert overhead < 0.05 * clean_seconds, (
        f"estimated flight-recorder overhead {overhead * 1e6:.0f}us "
        f"({guards} guards x {guard_cost * 1e9:.1f}ns + {fired} "
        f"records x {record_cost * 1e9:.1f}ns) exceeds 5% of the "
        f"{clean_seconds * 1e3:.1f}ms run")

    record = {
        "benchmark": "flight_overhead",
        "workload": "jini_rtos2",
        "guard_sites": guards,
        "fired_budget": fired,
        "guard_cost_ns": guard_cost * 1e9,
        "record_cost_ns": record_cost * 1e9,
        "estimated_overhead_us": overhead * 1e6,
        "clean_run_ms": clean_seconds * 1e3,
        "overhead_fraction": overhead / clean_seconds,
        "bound": 0.05,
    }
    RECORD_PATH.write_text(json.dumps(record, indent=2) + "\n")
    benchmark.extra_info["flight_overhead"] = record


def test_bench_idle_recorder_allocates_nothing(benchmark):
    """A clean run with the recorder disabled records zero events and
    opens no sink — the other half of the zero-overhead contract."""
    def run():
        system = build_system("RTOS2")
        run_jini_app(system=system)
        return system.soc.obs.flight

    flight = bench_once(benchmark, run)
    assert not flight.enabled
    assert flight.recorded == 0
    assert len(flight) == 0
    assert flight._sink is None
