"""Benchmarks: the model-validation suites.

* exhaustive enumeration of every legal small state (the strongest
  PDDA/DDU validation);
* the clocked FSM DAU (Table 2's step accounting) under random load;
* the pooled-resource service end to end.
"""

from benchmarks.conftest import bench_once
from repro.deadlock.dau_fsm import FSMDAU
from repro.experiments import exhaustive_bound


def test_bench_exhaustive_small_states(benchmark):
    result = bench_once(benchmark, exhaustive_bound.run,
                        ((2, 2), (2, 3), (3, 3)))
    for row in result.rows:
        assert row.oracle_disagreements == 0
        assert row.structural_disagreements == 0
    worst = {(row.m, row.n): row.max_iterations for row in result.rows}
    assert worst[(2, 3)] == 2          # Table 1's anomalous-looking row
    benchmark.extra_info["table"] = result.render()


def test_bench_fsm_dau_step_accounting(benchmark):
    import random

    def drive():
        names = [f"p{i}" for i in range(1, 6)]
        resources = [f"q{i}" for i in range(1, 6)]
        fsm = FSMDAU(names, resources,
                     {p: i for i, p in enumerate(names, 1)})
        rng = random.Random(5)
        for _ in range(200):
            process = rng.choice(names)
            held = fsm.core.rag.held_by(process)
            if held and rng.random() < 0.45:
                fsm.write_command("PE1", "release", process,
                                  rng.choice(held))
            else:
                options = [q for q in resources
                           if fsm.core.rag.holder_of(q) != process
                           and q not in fsm.core.rag.requests_of(process)]
                if options:
                    fsm.write_command("PE1", "request", process,
                                      rng.choice(options))
        return fsm

    fsm = bench_once(benchmark, drive)
    assert fsm.max_steps_seen <= fsm.worst_case_steps == 38
    benchmark.extra_info["mean_steps"] = round(fsm.mean_steps, 2)
    benchmark.extra_info["max_steps"] = fsm.max_steps_seen


def test_bench_multiunit_pool_service(benchmark):
    from repro.deadlock.multiunit_avoidance import MultiUnitAvoider
    from repro.framework.builder import build_system
    from repro.rtos.resources import MultiUnitResourceService

    def run_pool_workload():
        system = build_system("RTOS5")
        avoider = MultiUnitAvoider(
            ["p1", "p2", "p3"], {"DMA": 2, "SPM": 1},
            {"p1": 1, "p2": 2, "p3": 3})
        service = MultiUnitResourceService(system.kernel, avoider)
        system.kernel.attach_resource_service(service)

        def make(units, offset):
            def body(ctx):
                if offset:
                    yield from ctx.sleep(offset)
                for _ in range(4):
                    outcome = yield from ctx.request("DMA", units=units)
                    if not outcome.granted:
                        yield from ctx.wait_grant("DMA")
                    yield from ctx.compute(400)
                    yield from ctx.release_resource("DMA")
                    yield from ctx.sleep(120)
            return body

        system.kernel.create_task(make(2, 0), "p1", 1, "PE1")
        system.kernel.create_task(make(1, 150), "p2", 2, "PE2")
        system.kernel.create_task(make(1, 300), "p3", 3, "PE3")
        system.kernel.run()
        return system, service

    system, service = bench_once(benchmark, run_pool_workload)
    assert system.kernel.finished()
    assert service.core.system.available("DMA") == 2
    benchmark.extra_info["invocations"] = service.stats.invocations
