"""Benchmark: Table 5 — the Jini deadlock-detection application.

Two benchmarks (RTOS1 software PDDA, RTOS2 DDU) regenerate the Table 5
rows; the comparison benchmark asserts the paper's shape: the DDU wins
on both the algorithm time (orders of magnitude) and the application
time (tens of percent).
"""

import pytest

from benchmarks.conftest import bench_once
from repro.apps.jini import run_jini_app
from repro.experiments import table5_ddu_vs_pdda


@pytest.mark.parametrize("config", ["RTOS1", "RTOS2"])
def test_bench_jini_app(benchmark, config):
    result = bench_once(benchmark, run_jini_app, config)
    assert result.deadlock_detected
    benchmark.extra_info["table5_row"] = {
        "implementation": ("PDDA in software" if config == "RTOS1"
                           else "DDU (hardware)"),
        "algorithm_cycles": result.mean_algorithm_cycles,
        "application_cycles": result.app_cycles,
        "invocations": result.detection_invocations,
    }


def test_bench_table5_comparison(benchmark):
    result = bench_once(benchmark, table5_ddu_vs_pdda.run)
    assert result.app_speedup_percent > 20          # paper: 46%
    assert result.algorithm_speedup > 100           # paper: ~1408X
    benchmark.extra_info["table"] = result.render()
