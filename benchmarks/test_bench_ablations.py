"""Ablation benchmarks for the design choices DESIGN.md calls out.

1. **Detector scaling** — PDDA/DDU iteration behaviour against the
   classic Holt DFS and Leibfried matrix-power baselines as the system
   grows: the point of the O(min(m, n)) claim.
2. **DAU grant fallback** — Algorithm 3's grant-to-lower-priority on
   G-dl (line 19) versus a naive always-grant-highest policy: the
   naive policy walks straight into the Table 6 deadlock.
3. **SoCDMMU block count** — allocation cost stays flat as the block
   census grows (determinism), unlike the software heap whose free-list
   walk grows with fragmentation.
"""

import random

import pytest

from benchmarks.conftest import bench_once
from repro.deadlock.ddu import DDU
from repro.deadlock.pdda import pdda_detect
from repro.rag.classic import holt_detect, leibfried_detect
from repro.rag.generate import random_state, worst_case_state
from repro.rag.graph import RAG


# -- 1: detector scaling ---------------------------------------------------------

SIZES = (5, 10, 20, 40)


@pytest.mark.parametrize("size", SIZES)
def test_bench_scaling_pdda(benchmark, size):
    state = worst_case_state(size, size)
    result = bench_once(benchmark, pdda_detect, state)
    assert not result.deadlock
    benchmark.extra_info["iterations"] = result.iterations


@pytest.mark.parametrize("size", SIZES)
def test_bench_scaling_ddu_model(benchmark, size):
    unit = DDU(size, size)
    unit.load(worst_case_state(size, size))
    result = bench_once(benchmark, unit.detect)
    # The hardware claim: iterations stay within O(min(m, n)).
    assert result.iterations <= unit.iteration_bound
    benchmark.extra_info["modelled_cycles"] = result.cycles


@pytest.mark.parametrize("size", SIZES)
def test_bench_scaling_holt(benchmark, size):
    state = worst_case_state(size, size)
    result = bench_once(benchmark, holt_detect, state)
    benchmark.extra_info["operations"] = result.operations


@pytest.mark.parametrize("size", (5, 10, 20))
def test_bench_scaling_leibfried(benchmark, size):
    state = worst_case_state(size, size)
    result = bench_once(benchmark, leibfried_detect, state)
    # O(m^3)-per-multiply work blows up quickly: this is the baseline
    # the paper's complexity table rules out.
    benchmark.extra_info["operations"] = result.operations


def test_leibfried_work_grows_much_faster_than_holt():
    holt_ops = [holt_detect(worst_case_state(s, s)).operations
                for s in (5, 20)]
    leib_ops = [leibfried_detect(worst_case_state(s, s)).operations
                for s in (5, 20)]
    holt_growth = holt_ops[1] / holt_ops[0]
    leib_growth = leib_ops[1] / leib_ops[0]
    assert leib_growth > 10 * holt_growth


# -- 2: the DAU grant-fallback policy ----------------------------------------------


def _naive_release_grants_highest(core_rag: RAG, priorities, resource):
    """The ablated policy: always hand off to the best waiter, no
    deadlock check (what a plain priority queue would do)."""
    waiters = sorted(core_rag.waiters_for(resource),
                     key=lambda p: priorities[p])
    if not waiters:
        return None
    best = waiters[0]
    core_rag.remove_request(best, resource)
    core_rag.grant(resource, best)
    return best


def _table6_rag():
    rag = RAG(["p1", "p2", "p3"], ["q1", "q2", "q4"])
    rag.grant("q2", "p1")          # p1 holds the contested IDCT
    rag.add_request("p3", "q2")
    rag.grant("q4", "p3")          # p3 holds the WI
    rag.add_request("p2", "q2")
    rag.add_request("p2", "q4")
    return rag


def test_bench_ablation_naive_grant_policy_deadlocks(benchmark):
    priorities = {"p1": 1, "p2": 2, "p3": 3}

    def naive():
        rag = _table6_rag()
        rag.release("p1", "q2")
        granted = _naive_release_grants_highest(rag, priorities, "q2")
        return granted, rag.has_cycle()

    granted, deadlocked = bench_once(benchmark, naive)
    assert granted == "p2"
    assert deadlocked          # the naive policy creates the G-dl


def test_bench_ablation_paper_grant_policy_avoids(benchmark):
    from repro.deadlock.daa import SoftwareDAA

    def paper_policy():
        core = SoftwareDAA(["p1", "p2", "p3"], ["q1", "q2", "q4"],
                           {"p1": 1, "p2": 2, "p3": 3})
        core.request("p1", "q2")
        core.request("p3", "q2")
        core.request("p3", "q4")
        core.request("p2", "q2")
        core.request("p2", "q4")
        decision = core.release("p1", "q2")
        return decision.granted_to, core.rag.has_cycle()

    granted, deadlocked = bench_once(benchmark, paper_policy)
    assert granted == "p3"     # Algorithm 3 line 19
    assert not deadlocked


# -- 3: SoCDMMU determinism vs software heap walk -------------------------------------


@pytest.mark.parametrize("num_blocks", (64, 256, 1024))
def test_bench_ablation_socdmmu_block_count(benchmark, num_blocks):
    from repro.socdmmu.allocator import BlockAllocator

    def churn():
        allocator = BlockAllocator(num_blocks=num_blocks,
                                   block_bytes=4096)
        rng = random.Random(1)
        live = []
        for _ in range(200):
            if live and rng.random() < 0.5:
                owner, virtual = live.pop(rng.randrange(len(live)))
                allocator.deallocate(owner, virtual)
            else:
                owner = f"PE{rng.randint(1, 4)}"
                try:
                    virtuals = allocator.allocate(owner, rng.randint(1, 4))
                except Exception:
                    continue
                live.extend((owner, v) for v in virtuals)
        return allocator.free_blocks

    free = bench_once(benchmark, churn)
    assert 0 <= free <= num_blocks
