"""Benchmark guard: un-armed fault hooks cost under 5% of a run.

Every hardware model carries ``if self.faults is not None:`` at its
hook sites (matrix read, command write, bus transaction...).  Like the
observability guard, there is no hook-free build to diff against, so
the bound is an over-counting extrapolation:

* ``N`` — hook-site visits of one Table 5 run, counted by installing an
  *empty* :class:`FaultPlan` (the injector tallies ``visits`` even when
  no spec ever matches).  A production run with no injector executes at
  most ``N`` ``faults is None`` checks on those same sites.
* ``c`` — the measured wall-clock cost of one such check.

``N * c`` must stay below 5% of the uninstrumented run's wall time.  A
regression that moves work outside the guard (building records, or
consulting the plan before the ``None`` check) trips this long before
it costs 5%.

The record is written to ``BENCH_fault_overhead.json`` at the repo root
(CI uploads it as an artifact).
"""

import json
import time
from pathlib import Path

from benchmarks.conftest import bench_once
from repro.apps.jini import run_jini_app
from repro.faults import FaultPlan, install_fault_plan
from repro.framework.builder import build_system

RECORD_PATH = Path(__file__).resolve().parent.parent \
    / "BENCH_fault_overhead.json"


class _Hooked:
    """Stand-in for a hardware model with no injector installed."""

    def __init__(self):
        self.faults = None


def _disabled_guard_cost(loops: int = 200_000) -> float:
    """Seconds per ``if self.faults is not None:`` evaluation."""
    model = _Hooked()
    sink = 0
    start = time.perf_counter()
    for _ in range(loops):
        if model.faults is not None:
            sink += 1
    elapsed = time.perf_counter() - start
    assert sink == 0
    return elapsed / loops


def _hook_visit_count() -> int:
    """Hook-site visits of one Table 5 run, via an empty plan."""
    system = build_system("RTOS2")
    injector = install_fault_plan(system, FaultPlan(name="empty"))
    run_jini_app(system=system)
    assert not injector.records      # empty plan: nothing ever fired
    return injector.visits


def test_bench_unarmed_hooks_under_5_percent(benchmark):
    # Wall time of the production path: no injector anywhere.
    def clean_run():
        start = time.perf_counter()
        run_jini_app("RTOS2")
        return time.perf_counter() - start

    clean_seconds = bench_once(benchmark, clean_run)

    visits = _hook_visit_count()
    guard_cost = _disabled_guard_cost()
    overhead = visits * guard_cost

    assert visits > 50               # the run genuinely exercises hooks
    assert overhead < 0.05 * clean_seconds, (
        f"estimated un-armed hook overhead {overhead * 1e6:.0f}us "
        f"({visits} visits x {guard_cost * 1e9:.1f}ns) exceeds 5% of "
        f"the {clean_seconds * 1e3:.1f}ms run")

    record = {
        "benchmark": "fault_overhead",
        "workload": "jini_rtos2",
        "hook_visits": visits,
        "guard_cost_ns": guard_cost * 1e9,
        "estimated_overhead_us": overhead * 1e6,
        "clean_run_ms": clean_seconds * 1e3,
        "overhead_fraction": overhead / clean_seconds,
        "bound": 0.05,
    }
    RECORD_PATH.write_text(json.dumps(record, indent=2) + "\n")
    benchmark.extra_info["fault_overhead"] = record


def test_bench_clean_run_has_no_fault_state(benchmark):
    """Without ``install_fault_plan`` the models carry no injector and
    record nothing — the other half of the zero-overhead contract."""
    def run():
        system = build_system("RTOS2")
        run_jini_app(system=system)
        return system

    system = bench_once(benchmark, run)
    assert getattr(system, "fault_injector", None) is None
    assert system.soc.bus.faults is None
    assert system.resource_service.faults is None
