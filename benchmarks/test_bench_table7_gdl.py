"""Benchmark: Table 7 — the grant-deadlock avoidance application."""

import pytest

from benchmarks.conftest import bench_once
from repro.apps.grant_deadlock import run_gdl_app
from repro.experiments import table7_gdl


@pytest.mark.parametrize("config", ["RTOS3", "RTOS4"])
def test_bench_gdl_app(benchmark, config):
    result = bench_once(benchmark, run_gdl_app, config)
    assert result.completed
    assert result.gdl_events >= 1
    benchmark.extra_info["table7_row"] = {
        "implementation": ("DAA in software" if config == "RTOS3"
                           else "DAU (hardware)"),
        "algorithm_cycles": result.mean_algorithm_cycles,
        "application_cycles": result.app_cycles,
        "invocations": result.avoidance_invocations,
    }


def test_bench_table7_comparison(benchmark):
    result = bench_once(benchmark, table7_gdl.run)
    assert result.app_speedup_percent > 15          # paper: 37%
    assert result.algorithm_speedup > 100           # paper: 312X
    benchmark.extra_info["table"] = result.render()
