"""Benchmark-suite configuration.

Every benchmark regenerates one of the paper's tables or figures; the
regenerated rows are attached to the benchmark record via
``benchmark.extra_info`` so ``--benchmark-json`` output carries the
full reproduction alongside the wall-clock numbers.
"""


def bench_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` through pytest-benchmark with fixed, small round
    counts — the simulations are deterministic, so statistical
    averaging adds nothing but wall-clock."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=3, iterations=1, warmup_rounds=0)
