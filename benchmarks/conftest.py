"""Benchmark-suite configuration.

Every benchmark regenerates one of the paper's tables or figures; the
regenerated rows are attached to the benchmark record via
``benchmark.extra_info`` so ``--benchmark-json`` output carries the
full reproduction alongside the wall-clock numbers.
"""


def backend_stamp(side=None):
    """Provenance block for BENCH_* payloads: active matrix backend,
    native kernel impl, and the packed-plane word width for ``side``.

    Values are strings on purpose — the trend gate only tracks numeric
    top-level keys, and provenance is context, not a metric.
    """
    import os

    from repro.rag import batch, native

    stamp = {
        "matrix_backend": os.environ.get("REPRO_MATRIX_BACKEND",
                                         "bitmask"),
        "native_impl": native.impl_name() or "none",
        "numpy": "yes" if batch.HAS_NUMPY else "no",
    }
    if side is not None:
        stamp["plane_words"] = str(batch.plane_words(side))
    return stamp


def bench_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` through pytest-benchmark with fixed, small round
    counts — the simulations are deterministic, so statistical
    averaging adds nothing but wall-clock."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=3, iterations=1, warmup_rounds=0)
