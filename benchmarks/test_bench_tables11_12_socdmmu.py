"""Benchmarks: Tables 11 and 12 — SPLASH-2 memory management.

One benchmark per (kernel, heap) pair regenerates that row; the two
comparison benchmarks regenerate the full tables and assert the
reductions the paper reports.
"""

import pytest

from benchmarks.conftest import bench_once
from repro.apps.splash import SPLASH_BENCHMARKS, run_splash
from repro.experiments import table11_malloc, table12_socdmmu


@pytest.mark.parametrize("name", sorted(SPLASH_BENCHMARKS))
@pytest.mark.parametrize("config", ["RTOS5", "RTOS7"])
def test_bench_splash(benchmark, name, config):
    result = bench_once(benchmark, run_splash, name, config)
    benchmark.extra_info["row"] = {
        "benchmark": name,
        "heap": "glibc-style" if config == "RTOS5" else "SoCDMMU",
        "total_cycles": result.total_cycles,
        "mm_cycles": result.mm_cycles,
        "mm_percent": round(result.mm_percent, 2),
    }
    if config == "RTOS7":
        assert result.mm_percent < 1.5     # Table 12: all under 1.1%


def test_bench_table11_regeneration(benchmark):
    result = bench_once(benchmark, table11_malloc.run)
    shares = {run.benchmark: run.mm_percent for run in result.runs}
    # Table 11 ordering: FFT (27%) > RADIX (20%) > LU (10%).
    assert shares["FFT"] > shares["RADIX"] > shares["LU"]
    benchmark.extra_info["table"] = result.render()


def test_bench_table12_regeneration(benchmark):
    result = bench_once(benchmark, table12_socdmmu.run)
    for row in result.rows:
        assert row.mm_reduction_percent > 90       # paper: 95-97%
        assert row.exe_reduction_percent > 5       # paper: 9.4-26.3%
    benchmark.extra_info["table"] = result.render()
