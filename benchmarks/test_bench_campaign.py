"""Campaign benchmarks: scale, bit-for-bit determinism, speedup.

Three guards on the campaign runner's contract:

* the ``claims`` campaign (several hundred randomized scenarios against
  the paper's oracles) completes clean at benchmark speed;
* the result digest is identical across worker counts — the ≥200
  scenario reproducibility acceptance check;
* four workers beat one by at least 3x on a compute-bound campaign
  (skipped on machines with fewer than four CPUs, where the speedup is
  physically unavailable).
"""

import os
import time

import pytest

from benchmarks.conftest import bench_once
from repro.campaign import (
    CampaignRunner,
    CampaignSpec,
    ScenarioSpec,
    builtin_campaign,
    results_digest,
)

_CPUS = os.cpu_count() or 1


def _heavy_campaign(repeats: int) -> CampaignSpec:
    """Compute-bound scenarios (~0.2s each) so process-pool overhead is
    amortized and the speedup measurement is about real work."""
    return CampaignSpec(name="heavy", scenarios=(
        ScenarioSpec(name="dau", generator="census",
                     checker="dau-invariants",
                     params={"m": 6, "n": 6, "events": 400},
                     repeats=repeats),))


def test_bench_claims_campaign_completes_clean(benchmark):
    spec = builtin_campaign("claims")
    assert spec.count() >= 200

    def run():
        return CampaignRunner(spec, seed_root=42).run()

    run = bench_once(benchmark, run)
    assert len(run.results) == spec.count()
    assert run.counts["pass"] == spec.count(), run.render_summary()
    benchmark.extra_info["campaign"] = {
        "scenarios": len(run.results),
        "digest": results_digest(run.results),
    }


def test_bench_campaign_digest_is_reproducible(benchmark):
    """≥200 scenarios, same seed root, different worker counts: the
    timing-stripped result JSONL must be bit-for-bit identical."""
    spec = builtin_campaign("claims")
    assert spec.count() >= 200

    def digest_with(workers: int) -> str:
        run = CampaignRunner(spec, seed_root="soak",
                             workers=workers).run()
        return results_digest(run.results)

    first = bench_once(benchmark, digest_with, 1)
    second = digest_with(2)
    assert first == second, "results depend on shard placement"
    benchmark.extra_info["digest"] = first


@pytest.mark.skipif(_CPUS < 4, reason=f"needs 4 CPUs, have {_CPUS}")
def test_bench_four_workers_give_3x_speedup(benchmark):
    spec = _heavy_campaign(repeats=32)

    def timed(workers: int) -> float:
        start = time.perf_counter()
        run = CampaignRunner(spec, seed_root=7, workers=workers).run()
        elapsed = time.perf_counter() - start
        assert run.counts["pass"] == spec.count()
        return elapsed

    serial = timed(1)
    parallel = bench_once(benchmark, timed, 4)
    speedup = serial / parallel
    assert speedup >= 3.0, (
        f"4 workers only {speedup:.2f}x faster than 1 "
        f"({serial:.2f}s -> {parallel:.2f}s)")
    benchmark.extra_info["speedup"] = {
        "serial_s": serial, "four_workers_s": parallel,
        "speedup": speedup}
