"""Benchmark guard: checkpointing costs under 5% of a Table 5 run.

A checkpoint-aware run pays one snapshot of its working state (RAG +
DDU register file) every :data:`~repro.checkpoint.scenario.DEFAULT_CADENCE`
events, so a Table 5 run of ``E`` grant/release events incurs
``E / DEFAULT_CADENCE`` saves in the steady state.  The guard measures
the in-memory snapshot cost (serialize + canonical JSON + sha256) on
the real Jini census state, amortizes it at the default cadence, and
requires the total to stay below 5% of the uninterrupted
``table5_ddu_vs_pdda.run()`` wall time.  Restore is a once-per-crash
cost, not a per-run cost: it is bounded by the run it replaces
(resuming must be cheaper than re-running from scratch).

The durable-write cost (``write_snapshot``: tmp file + fsync + rename)
is dominated by device fsync latency, not by the protocol, so it is
measured and reported in the record but not gated — a CI runner's disk
should not fail the build.  The record is written to
``BENCH_checkpoint.json`` at the repo root (CI uploads it as an
artifact).
"""

import json
import statistics
import time
from pathlib import Path

from benchmarks.conftest import bench_once
from repro.apps.jini import run_jini_app
from repro.checkpoint.protocol import write_snapshot
from repro.checkpoint.scenario import DEFAULT_CADENCE
from repro.deadlock.ddu import DDU
from repro.experiments import table5_ddu_vs_pdda
from repro.framework.builder import build_system
from repro.rag.generate import random_state
from repro.rag.graph import RAG
from repro.rag.matrix import StateMatrix

RECORD_PATH = Path(__file__).resolve().parent.parent \
    / "BENCH_checkpoint.json"

GRANT_RELEASE = ("resource_granted", "resource_released")


def _capture_events(config):
    """(actor, kind, resource) grant/release timeline of one config."""
    system = build_system(config)
    run_jini_app(config, system=system)
    return [(rec.actor, rec.kind, rec.details["resource"])
            for rec in system.soc.trace.filter(
                predicate=lambda r: r.kind in GRANT_RELEASE)]


def _table5_event_count() -> int:
    """Grant/release events across both Table 5 configs."""
    return sum(len(_capture_events(config))
               for config in ("RTOS1", "RTOS2"))


def _jini_working_state():
    """Mid-run working state at the true Jini census size."""
    events = _capture_events("RTOS2")
    processes = sorted({actor for actor, _, _ in events})
    resources = sorted({res for _, _, res in events})
    rag = RAG(processes, resources)
    for actor, kind, resource in events[:len(events) // 2]:
        if kind == "resource_granted":
            rag.grant(resource, actor)
        else:
            rag.release(actor, resource)
    ddu = DDU(len(resources), len(processes))
    ddu.load(StateMatrix.from_rag(rag))
    ddu.detect()
    return rag, ddu


def _best(fn, loops=300, repeats=5) -> float:
    """Per-call seconds: best of ``repeats`` timed loops."""
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(loops):
            fn()
        samples.append((time.perf_counter() - start) / loops)
    return min(samples)


def _snapshot_restore_costs() -> dict:
    """In-memory protocol cost per save and per restore (seconds)."""
    rag, ddu = _jini_working_state()
    rag_envelope = rag.snapshot_state()
    ddu_envelope = ddu.snapshot_state()
    return {
        "save": _best(
            lambda: (rag.snapshot_state(), ddu.snapshot_state())),
        "restore": _best(
            lambda: (RAG.restore_state(rag_envelope),
                     DDU.restore_state(ddu_envelope))),
    }


def _durable_write_cost(tmp_dir: Path, loops: int = 30) -> float:
    """Seconds per atomic on-disk save (reported, not gated)."""
    rag, ddu = _jini_working_state()
    path = tmp_dir / "bench-checkpoint.json"
    start = time.perf_counter()
    for _ in range(loops):
        write_snapshot(path, rag.snapshot_state())
        write_snapshot(path, ddu.snapshot_state())
    return (time.perf_counter() - start) / loops


def test_bench_checkpoint_under_5_percent_of_table5(benchmark, tmp_path):
    def clean_run_seconds():
        table5_ddu_vs_pdda.run()                      # warm
        samples = []
        for _ in range(9):
            start = time.perf_counter()
            table5_ddu_vs_pdda.run()
            samples.append(time.perf_counter() - start)
        return statistics.median(samples)

    clean_seconds = bench_once(benchmark, clean_run_seconds)

    events = _table5_event_count()
    assert events > 0
    costs = _snapshot_restore_costs()
    # Steady-state: a run of E events incurs E / cadence saves.
    saves_per_run = events / DEFAULT_CADENCE
    overhead = saves_per_run * costs["save"]

    assert overhead < 0.05 * clean_seconds, (
        f"checkpoint overhead {overhead * 1e6:.0f}us "
        f"({saves_per_run:.2f} saves/run x {costs['save'] * 1e6:.0f}us) "
        f"exceeds 5% of the {clean_seconds * 1e3:.2f}ms Table 5 run")
    # Restore replaces a from-scratch re-run; it must be cheaper.
    assert costs["restore"] < clean_seconds, (
        f"restore {costs['restore'] * 1e6:.0f}us costs more than the "
        f"{clean_seconds * 1e3:.2f}ms run it replaces")

    record = {
        "benchmark": "checkpoint_overhead",
        "workload": "table5_ddu_vs_pdda",
        "cadence_steps": DEFAULT_CADENCE,
        "events_per_run": events,
        "saves_per_run": saves_per_run,
        "save_cost_us": costs["save"] * 1e6,
        "restore_cost_us": costs["restore"] * 1e6,
        "durable_write_cost_us": _durable_write_cost(tmp_path) * 1e6,
        "estimated_overhead_us": overhead * 1e6,
        "clean_run_ms": clean_seconds * 1e3,
        "overhead_fraction": overhead / clean_seconds,
        "bound": 0.05,
    }
    RECORD_PATH.write_text(json.dumps(record, indent=2) + "\n")
    benchmark.extra_info["checkpoint_overhead"] = record


def test_bench_snapshot_roundtrip_cost(benchmark):
    """Absolute snapshot->restore->rehash cycle time on a 16x16 state
    (the campaign's largest default census), reported for trending."""
    rag = random_state(16, 16, seed=42)

    def cycle():
        envelope = rag.snapshot_state()
        clone = RAG.restore_state(envelope)
        return clone.snapshot_state()["state_hash"]

    digest = bench_once(benchmark, cycle)
    assert digest == rag.snapshot_state()["state_hash"]
