"""Benchmark guard: the bitmask matrix kernel is >= 50x the reference.

The whole point of :class:`repro.rag.bitmatrix.BitMatrix` is that a
terminal-reduction pass costs O(m + n) mask tests instead of the
reference matrix's O(m * n) cell walk.  This guard measures both
backends on the same 64x64 worst-case chain — the deepest reduction
that size admits — demands bit-identical iteration/pass counts and
residuals, and fails the build if the speedup ever drops below 50x
(measured ~320x locally; the floor leaves headroom for slow CI
runners while still catching an order-of-magnitude regression).

The measured record is written to ``BENCH_matrix_kernels.json`` at the
repo root (CI uploads it as an artifact) so the speedup trend is
reviewable across commits.
"""

import json
import time
from pathlib import Path

from benchmarks.conftest import backend_stamp, bench_once
from repro.deadlock.pdda import pdda_detect, terminal_reduction
from repro.rag.bitmatrix import FAST_BACKEND, REFERENCE_BACKEND
from repro.rag.generate import random_state, worst_case_state

SIZE = 64
MIN_SPEEDUP = 50.0
RECORD_PATH = Path(__file__).resolve().parent.parent \
    / "BENCH_matrix_kernels.json"


def _best_of(fn, repeats: int = 5) -> float:
    """Minimum wall-clock seconds over ``repeats`` runs."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_bench_reduction_speedup_at_least_50x(benchmark):
    state = worst_case_state(SIZE, SIZE)

    fast = terminal_reduction(state, backend=FAST_BACKEND)
    reference = terminal_reduction(state, backend=REFERENCE_BACKEND)
    assert (fast.iterations, fast.passes) \
        == (reference.iterations, reference.passes)
    assert fast.complete and reference.complete
    assert fast.matrix == reference.matrix

    fast_s = bench_once(
        benchmark,
        lambda: _best_of(
            lambda: terminal_reduction(state, backend=FAST_BACKEND)))
    reference_s = _best_of(
        lambda: terminal_reduction(state, backend=REFERENCE_BACKEND),
        repeats=3)
    speedup = reference_s / fast_s

    record = {
        "benchmark": "matrix_kernels",
        "size": f"{SIZE}x{SIZE}",
        "state": "worst_case_chain",
        "iterations": fast.iterations,
        "passes": fast.passes,
        "bitmask_seconds": fast_s,
        "reference_seconds": reference_s,
        "speedup": speedup,
        "min_speedup": MIN_SPEEDUP,
        **backend_stamp(SIZE),
    }
    RECORD_PATH.write_text(json.dumps(record, indent=2) + "\n")
    benchmark.extra_info["matrix_kernels"] = record

    assert speedup >= MIN_SPEEDUP, (
        f"bitmask kernel only {speedup:.1f}x over the reference on the "
        f"{SIZE}x{SIZE} worst case (bitmask {fast_s * 1e3:.2f}ms, "
        f"reference {reference_s * 1e3:.2f}ms); the guard floor is "
        f"{MIN_SPEEDUP}x")


def test_bench_random_population_agrees_and_speeds_up(benchmark):
    """A mixed random population, not just the adversarial chain."""
    states = [random_state(SIZE, SIZE, grant_fraction=0.7,
                           request_fraction=0.3, seed=seed)
              for seed in range(8)]

    for state in states:
        fast = pdda_detect(state, backend=FAST_BACKEND)
        reference = pdda_detect(state, backend=REFERENCE_BACKEND)
        assert (fast.deadlock, fast.iterations, fast.passes) \
            == (reference.deadlock, reference.iterations,
                reference.passes)

    def sweep(backend):
        return [pdda_detect(state, backend=backend).passes
                for state in states]

    fast_s = bench_once(
        benchmark, lambda: _best_of(lambda: sweep(FAST_BACKEND),
                                    repeats=3))
    reference_s = _best_of(lambda: sweep(REFERENCE_BACKEND), repeats=2)
    speedup = reference_s / fast_s
    benchmark.extra_info["random_population"] = {
        "states": len(states),
        "bitmask_seconds": fast_s,
        "reference_seconds": reference_s,
        "speedup": speedup,
    }
    # Random states reduce shallowly, so the floor is looser than the
    # worst-case guard — but the fast path must still clearly win.
    assert speedup >= 2.0, (
        f"bitmask kernel only {speedup:.1f}x on random 64x64 states")
