"""Benchmarks: the complexity survey and the latency profile.

Regenerate both measured-claim experiments under the benchmark harness
so their tables ship with the benchmark report.
"""

from benchmarks.conftest import bench_once
from repro.experiments import complexity_survey, latency_profile


def test_bench_complexity_survey(benchmark):
    result = bench_once(benchmark, complexity_survey.run)
    growth = result.growth_factors()
    assert growth["leibfried"] > growth["holt"] > growth["ddu"]
    benchmark.extra_info["table"] = result.render()


def test_bench_latency_profile(benchmark):
    result = bench_once(benchmark, latency_profile.run)
    hw, sw = result.rows
    assert hw.maximum <= hw.bound
    assert sw.median > 100 * hw.median
    benchmark.extra_info["table"] = result.render()
