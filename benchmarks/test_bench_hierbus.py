"""Ablation benchmark: flat vs hierarchical bus locality sweep."""

from benchmarks.conftest import bench_once
from repro.experiments import ablation_hierbus


def test_bench_hierbus_sweep(benchmark):
    result = bench_once(benchmark, ablation_hierbus.run, 4, 150)
    rows = {row.locality: row for row in result.rows}
    assert rows[0.95].speedup > 1.5
    assert abs(rows[0.0].speedup - 1.0) < 0.05
    benchmark.extra_info["table"] = result.render()
