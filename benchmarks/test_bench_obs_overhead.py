"""Benchmark guard: disabled instrumentation costs under 5% of a run.

There is no uninstrumented build to compare against, so the guard is an
extrapolation that over-counts on purpose:

* ``N`` — how many instrumentation *events* an enabled Table 5 run
  produces (metric updates plus span begin/end pairs).  Every one of
  them sits behind an ``if obs.enabled:`` branch, so the disabled run
  executes at most ``N`` guard evaluations on those sites.
* ``c`` — the measured wall-clock cost of one disabled guard
  (attribute load + falsy branch), timed over a large loop.

The disabled-path overhead of the whole observability layer is then at
most ``N * c``, which must stay below 5% of the disabled run's wall
time.  A regression that puts work outside the guard (or makes the
guard itself expensive) breaks this long before it reaches 5%.
"""

import time

from benchmarks.conftest import bench_once
from repro.apps.jini import run_jini_app
from repro.framework.builder import build_system
from repro.obs import Observability


def _disabled_guard_cost(loops: int = 200_000) -> float:
    """Seconds per ``if obs.enabled:`` evaluation on a disabled hub."""
    obs = Observability(enabled=False)
    counter = obs.metrics.counter("bench.guard")
    start = time.perf_counter()
    for _ in range(loops):
        if obs.enabled:
            counter.inc()
    return (time.perf_counter() - start) / loops


def _enabled_event_count() -> int:
    """Instrumentation events of one fully-instrumented Table 5 run."""
    system = build_system("RTOS2")
    system.soc.obs.enable()
    run_jini_app(system=system)
    obs = system.soc.obs
    spans = len(obs.tracer.all_spans())
    return obs.metrics.total_updates + 2 * spans


def test_bench_disabled_overhead_under_5_percent(benchmark):
    # Wall time of the production path: instrumentation disabled.
    def disabled_run():
        start = time.perf_counter()
        run_jini_app("RTOS2")
        return time.perf_counter() - start

    disabled_seconds = bench_once(benchmark, disabled_run)

    events = _enabled_event_count()
    guard_cost = _disabled_guard_cost()
    overhead = events * guard_cost

    assert events > 100          # the run is genuinely instrumented
    assert overhead < 0.05 * disabled_seconds, (
        f"estimated disabled-path overhead {overhead * 1e6:.0f}us "
        f"({events} events x {guard_cost * 1e9:.1f}ns) exceeds 5% of "
        f"the {disabled_seconds * 1e3:.1f}ms run")
    benchmark.extra_info["obs_overhead"] = {
        "guarded_events": events,
        "guard_cost_ns": guard_cost * 1e9,
        "estimated_overhead_us": overhead * 1e6,
        "disabled_run_ms": disabled_seconds * 1e3,
        "overhead_fraction": overhead / disabled_seconds,
    }


def test_bench_disabled_run_keeps_registry_silent(benchmark):
    """The disabled run must perform zero metric updates and open no
    spans — the other half of the zero-overhead contract."""
    def run():
        system = build_system("RTOS2")
        run_jini_app(system=system)
        return system.soc.obs

    obs = bench_once(benchmark, run)
    assert not obs.enabled
    assert obs.metrics.total_updates == 0
    assert obs.tracer.all_spans() == []
