"""Benchmark: Table 1 — DDU detection across the published sizes.

Regenerates the Table 1 rows and measures the hardware model's
detection run on each published size's worst-case chain, confirming
the O(min(m, n)) behaviour at benchmark time.
"""

import pytest

from benchmarks.conftest import bench_once
from repro.deadlock.ddu import DDU
from repro.deadlock.synthesis import DDU_PUBLISHED, ddu_synthesis
from repro.experiments import table1_ddu_synthesis
from repro.rag.generate import worst_case_state


@pytest.mark.parametrize("size", sorted(DDU_PUBLISHED))
def test_bench_ddu_detect_worst_case(benchmark, size):
    processes, resources = size
    unit = DDU(resources, processes)
    unit.load(worst_case_state(resources, processes))
    result = bench_once(benchmark, unit.detect)
    estimate = ddu_synthesis(processes, resources)
    assert result.iterations <= estimate.worst_iterations
    benchmark.extra_info["table1_row"] = {
        "size": f"{processes}x{resources}",
        "lines_of_verilog": estimate.lines_of_verilog,
        "area_nand2": estimate.area_nand2,
        "worst_iterations": estimate.worst_iterations,
        "measured_iterations": result.iterations,
    }


def test_bench_table1_regeneration(benchmark):
    result = bench_once(benchmark, table1_ddu_synthesis.run)
    for row in result.rows:
        assert (row.lines, row.area) == (row.paper_lines, row.paper_area)
    benchmark.extra_info["table"] = result.render()
