"""Benchmark: Table 9 — the request-deadlock avoidance application."""

import pytest

from benchmarks.conftest import bench_once
from repro.apps.request_deadlock import run_rdl_app
from repro.experiments import table9_rdl


@pytest.mark.parametrize("config", ["RTOS3", "RTOS4"])
def test_bench_rdl_app(benchmark, config):
    result = bench_once(benchmark, run_rdl_app, config)
    assert result.completed
    assert result.rdl_events >= 1
    benchmark.extra_info["table9_row"] = {
        "implementation": ("DAA in software" if config == "RTOS3"
                           else "DAU (hardware)"),
        "algorithm_cycles": result.mean_algorithm_cycles,
        "application_cycles": result.app_cycles,
        "invocations": result.avoidance_invocations,
    }


def test_bench_table9_comparison(benchmark):
    result = bench_once(benchmark, table9_rdl.run)
    assert result.app_speedup_percent > 20          # paper: 44%
    assert result.algorithm_speedup > 100           # paper: 294X
    benchmark.extra_info["table"] = result.render()
