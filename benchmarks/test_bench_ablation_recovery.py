"""Ablation benchmark: recovery victim-selection strategies."""

from benchmarks.conftest import bench_once
from repro.experiments import ablation_recovery


def test_bench_recovery_strategies(benchmark):
    result = bench_once(benchmark, ablation_recovery.run, 80)
    rows = {row.strategy: row for row in result.rows}
    # The trade-off the experiment documents:
    assert rows["lowest-priority"].top_priority_victimized == 0
    assert (rows["fewest-resources"].mean_work_lost
            <= rows["lowest-priority"].mean_work_lost)
    benchmark.extra_info["table"] = result.render()
