"""Benchmark guards for the SoCDMMU's memory-pressure machinery.

Two claims ride on the CoW extension (see ``docs/memory_pressure.md``):

* **Sharing saves cycles.**  CoW-forking a handle to ``P`` peers costs
  per-block table updates (:data:`~repro.calibration.SOCDMMU_SHARE_CYCLES`)
  plus one block copy per *actual* write
  (:data:`~repro.calibration.SOCDMMU_COW_COPY_CYCLES`); the eager
  alternative pays a full allocation *and* a full copy per peer up
  front.  At the reference workload (8-block handle, 4 peers, 25% of
  blocks written) the modelled savings must stay above
  :data:`MIN_SAVINGS_RATIO`.
* **The non-shared fast path is untaxed.**  A malloc/free pair that
  never shares must cost exactly the Table 11/12 calibration — command
  cycles plus four bus transactions — with the CoW bookkeeping adding
  less than :data:`OVERHEAD_BOUND` (it adds zero modelled cycles; the
  guard fails if the refcount machinery ever leaks into the fast
  path's cycle model).

The record lands in ``BENCH_socdmmu_pressure.json`` at the repo root;
the trend gate tracks its numeric keys (``cow_savings_ratio`` is
higher-is-better via the ``savings`` fragment, the cycle totals are
deterministic lower-is-better series).
"""

import json
import time
from dataclasses import replace
from pathlib import Path

from benchmarks.conftest import bench_once
from repro import calibration
from repro.framework.builder import build_system
from repro.framework.config import preset
from repro.socdmmu.allocator import BlockAllocator

RECORD_PATH = Path(__file__).resolve().parent.parent \
    / "BENCH_socdmmu_pressure.json"

#: Reference sharing workload: one parent handle of 8 blocks forked to
#: 4 peers, 25% of each fork's blocks written (the fork/CoW RSS shape).
HANDLE_BLOCKS = 8
PEERS = 4
WRITES_PER_FORK = 2

MIN_SAVINGS_RATIO = 2.0
OVERHEAD_BOUND = 0.05
FAST_PATH_PAIRS = 64


def _pressure_system():
    return build_system(replace(preset("RTOS7"), socdmmu_blocks=64,
                                socdmmu_block_bytes=4096))


def _run_driver(system, body) -> float:
    """Run ``body(ctx, heap)`` as the only task; returns mm_cycles."""
    system.kernel.create_task(
        lambda ctx: body(ctx, system.heap), "driver", 1, "PE1")
    system.kernel.run(until=10_000_000)
    assert system.kernel.finished("driver"), "bench driver never finished"
    return float(system.heap.stats.mm_cycles)


def _cow_body(ctx, heap):
    """Fork-based sharing: table updates now, copies only on write."""
    block_bytes = heap.allocator.block_bytes
    parent = yield from heap.malloc(ctx, HANDLE_BLOCKS * block_bytes)
    forks = []
    for _ in range(PEERS):
        forks.append((yield from heap.fork_handle(ctx, parent)))
    for fork in forks:
        for block in range(WRITES_PER_FORK):
            yield from heap.write_fault(ctx, fork, block)
    for fork in forks:
        yield from heap.free(ctx, fork)
    yield from heap.free(ctx, parent)


def _eager_body(ctx, heap):
    """Eager duplication: a private allocation per peer up front."""
    block_bytes = heap.allocator.block_bytes
    handles = [(yield from heap.malloc(ctx,
                                       HANDLE_BLOCKS * block_bytes))]
    for _ in range(PEERS):
        handles.append((yield from heap.malloc(
            ctx, HANDLE_BLOCKS * block_bytes)))
    for handle in handles:
        yield from heap.free(ctx, handle)


def _fast_path_body(ctx, heap):
    """Non-shared malloc/free churn (the Table 11/12 fast path)."""
    block_bytes = heap.allocator.block_bytes
    for _ in range(FAST_PATH_PAIRS):
        handle = yield from heap.malloc(ctx, block_bytes)
        yield from heap.free(ctx, handle)


def _allocator_churn_ops_per_second(ops: int = 20_000,
                                    repeats: int = 3) -> float:
    """Datapath wall-clock: allocate/deallocate pairs per second."""
    best = 0.0
    for _ in range(repeats):
        allocator = BlockAllocator(64, 4096)
        start = time.perf_counter()
        for index in range(ops):
            virtual = allocator.allocate("bench", 1)[0]
            allocator.deallocate("bench", virtual)
        elapsed = time.perf_counter() - start
        best = max(best, ops / elapsed)
    return best


def test_bench_cow_savings_and_fast_path_guard(benchmark):
    def measure():
        cow = _run_driver(_pressure_system(), _cow_body)
        eager_mm = _run_driver(_pressure_system(), _eager_body)
        # The eager scheme also pays the data movement CoW defers: one
        # block copy per peer block, whether or not it is ever written.
        eager = eager_mm + (PEERS * HANDLE_BLOCKS
                            * calibration.SOCDMMU_COW_COPY_CYCLES)
        fast = _run_driver(_pressure_system(), _fast_path_body)
        return cow, eager, fast

    cow_cycles, eager_cycles, fast_cycles = bench_once(benchmark, measure)

    savings = eager_cycles / cow_cycles
    assert savings >= MIN_SAVINGS_RATIO, (
        f"CoW sharing saves only {savings:.2f}x over eager copies "
        f"({cow_cycles:g} vs {eager_cycles:g} cycles); the sharing "
        f"fast path regressed")

    system = _pressure_system()
    transaction = system.kernel.soc.bus.timing.transaction_cycles(1)
    expected_pair = (calibration.SOCDMMU_ALLOC_CYCLES
                     + calibration.SOCDMMU_DEALLOC_CYCLES
                     + 4 * transaction)
    pair_cycles = fast_cycles / FAST_PATH_PAIRS
    overhead = pair_cycles / expected_pair - 1.0
    assert overhead < OVERHEAD_BOUND, (
        f"non-shared malloc/free pair costs {pair_cycles:g} cycles vs "
        f"the calibrated {expected_pair:g} — the CoW machinery taxes "
        f"the fast path by {overhead * 100:.1f}% (bound "
        f"{OVERHEAD_BOUND * 100:.0f}%)")

    record = {
        "benchmark": "socdmmu_pressure",
        "workload": (f"{HANDLE_BLOCKS}-block handle, {PEERS} peers, "
                     f"{WRITES_PER_FORK} writes/fork"),
        "cow_run_cycles": cow_cycles,
        "eager_copy_cycles": eager_cycles,
        "cow_savings_ratio": savings,
        "fast_path_pair_cycles": pair_cycles,
        "fast_path_expected_cycles": float(expected_pair),
        "fast_path_overhead_fraction": overhead,
        "share_cost_cycles": float(calibration.SOCDMMU_SHARE_CYCLES),
        "cow_copy_cost_cycles": float(calibration.SOCDMMU_COW_COPY_CYCLES),
        "churn_ops_per_second": _allocator_churn_ops_per_second(),
        "bound": OVERHEAD_BOUND,
        "min_savings_bound": MIN_SAVINGS_RATIO,
    }
    RECORD_PATH.write_text(json.dumps(record, indent=2) + "\n")
    benchmark.extra_info["socdmmu_pressure"] = record


def test_bench_cow_workload_is_deterministic(benchmark):
    """The same CoW workload costs the same modelled cycles every run —
    the worst-case-determinism side of the Tables 11-12 extension."""
    def run():
        return _run_driver(_pressure_system(), _cow_body)

    first = bench_once(benchmark, run)
    assert first == _run_driver(_pressure_system(), _cow_body), (
        "CoW workload cycle cost is not deterministic")
