"""Ablation benchmark: Algorithm 3 vs the rejected avoidance policies.

Regenerates the policy-comparison table on the randomized hold-and-wait
workload and records each policy's throughput as extra info.
"""

import pytest

from benchmarks.conftest import bench_once
from repro.experiments import ablation_policies


@pytest.mark.parametrize("policy", sorted(ablation_policies.POLICIES))
def test_bench_policy(benchmark, policy):
    row = bench_once(benchmark, ablation_policies.run_policy, policy,
                     ticks=800)
    assert row.deadlocked_ticks == 0
    benchmark.extra_info["row"] = {
        "policy": row.policy,
        "jobs": row.jobs_completed,
        "p1_jobs": row.jobs_highest_priority,
        "giveups": row.giveups_obeyed,
        "denials": row.denials,
        "livelock_flags": row.livelock_flags,
    }


def test_bench_policy_ablation_table(benchmark):
    result = bench_once(benchmark, ablation_policies.run, 1200)
    rows = {row.policy: row for row in result.rows}
    assert (rows["algorithm3"].jobs_completed
            > 5 * rows["deny-retry"].jobs_completed)
    benchmark.extra_info["table"] = result.render()
