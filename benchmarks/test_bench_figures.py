"""Benchmarks: the figure regenerations (Figures 7, 11-12, 15-17, 20).

Figures 15-17 are the event-RAG timelines of the three scenario
applications; their regeneration benches live with Tables 4/6/8 here.
"""

from benchmarks.conftest import bench_once
from repro.experiments import (
    fig7_top_generation,
    fig11_matrix_example,
    fig20_trace,
    table4_event_sequence,
    table6_gdl_sequence,
    table8_rdl_sequence,
)


def test_bench_fig7_top_generation(benchmark):
    result = bench_once(benchmark, fig7_top_generation.run)
    assert result.num_pe_instances == 3 and result.has_soclc
    benchmark.extra_info["top_v_lines"] = len(
        result.top_verilog.splitlines())


def test_bench_fig11_matrix_example(benchmark):
    result = bench_once(benchmark, fig11_matrix_example.run)
    assert list(result.terminal_rows) == ["q2", "q3"]
    assert list(result.terminal_columns) == ["p2", "p4", "p6"]
    benchmark.extra_info["figure"] = result.render()


def test_bench_table4_fig15_sequence(benchmark):
    result = bench_once(benchmark, table4_event_sequence.run)
    assert result.deadlock_detected_at > 0
    benchmark.extra_info["figure"] = result.render()


def test_bench_table6_fig16_sequence(benchmark):
    result = bench_once(benchmark, table6_gdl_sequence.run)
    assert result.idct_went_to == "p3"
    benchmark.extra_info["figure"] = result.render()


def test_bench_table8_fig17_sequence(benchmark):
    result = bench_once(benchmark, table8_rdl_sequence.run)
    assert result.giveup_asked_of == "p2"
    benchmark.extra_info["figure"] = result.render()


def test_bench_fig20_trace(benchmark):
    result = bench_once(benchmark, fig20_trace.run)
    assert "task3" in result.gantt_rtos6
    benchmark.extra_info["figure"] = result.render()
