"""Benchmark: Table 10 — the robot application, SoCLC vs software PI.

Also regenerates the Figure 20 execution-trace comparison (the IPCP
no-preemption property) as extra info.
"""

import pytest

from benchmarks.conftest import bench_once
from repro.apps.robot import run_robot_app
from repro.experiments import table10_soclc_robot


@pytest.mark.parametrize("config", ["RTOS5", "RTOS6"])
def test_bench_robot_app(benchmark, config):
    result = bench_once(benchmark, run_robot_app, config)
    assert result.completed
    assert result.deadline_misses == 0
    benchmark.extra_info["table10_column"] = {
        "config": config,
        "lock_latency": result.lock_latency,
        "lock_delay": result.lock_delay,
        "overall_cycles": result.overall_cycles,
        "contended": result.contended,
    }


def test_bench_table10_comparison(benchmark):
    result = bench_once(benchmark, table10_soclc_robot.run)
    sw, hw = result.software, result.hardware
    assert sw.lock_latency / hw.lock_latency > 1.7     # paper: 1.79X
    assert sw.lock_delay > hw.lock_delay               # paper: 1.75X
    assert sw.overall_cycles > hw.overall_cycles       # paper: 1.43X
    benchmark.extra_info["table"] = result.render()
