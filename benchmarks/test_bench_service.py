"""Benchmark guard: the service's batched plane beats sequential.

Four claims, all recorded to ``BENCH_service.json`` at the repo root
for the trend gate (``python -m repro.campaign trend``):

* **kernel**: one :class:`~repro.rag.batch.BatchPlane` reduction over
  N=64 seeded tenant matrices — *including* the packing cost — must
  beat N sequential per-tenant :meth:`BitMatrix.reduce` calls by at
  least ``MIN_BATCH_RATIO``x (measured ~3.1x after the bulk-packing
  rewrite; the floor leaves CI headroom), after first proving the
  verdicts, iteration counts and pass counts bit-identical;
* **end to end**: a real :class:`DetectionService` on TCP, 64 tenants
  driven by pipelined clients, reporting requests/sec and p99
  grant/verdict latency (no floor — latency depends on the tick — but
  throughput must clear a coarse sanity bar so a pathological
  regression fails loudly);
* **resilience tax**: the retrying
  :class:`~repro.service.client.ResilientServiceClient` on a
  fault-free wire must cost < ``MAX_RESILIENT_OVERHEAD`` over the
  plain pipelined client — deadlines, idempotency keys and the
  circuit-breaker bookkeeping are per-request dict work, dwarfed by
  the tick round-trip;
* **chaos profile**: the same client driven through a fixed
  drop+duplicate :class:`~repro.service.chaos.ChaosTransport` plan,
  recording wall time and retry rate (``chaos_``/``retry`` trend
  fragments) so a regression in the retry loop shows up as a trend
  cliff, not a user-visible outage.
"""

import asyncio
import json
import time
from pathlib import Path

import pytest

from benchmarks.conftest import backend_stamp, bench_once
from repro.rag.batch import HAS_NUMPY, BatchPlane, batch_plane
from repro.obs import Observability
from repro.rag.bitmatrix import BitMatrix
from repro.rag.generate import random_state, resolve_rng
from repro.service import (
    ChaosTransport,
    DetectionService,
    NetFaultPlan,
    NetFaultSpec,
    ResilientServiceClient,
    RetryPolicy,
    ServiceClient,
    ServiceConfig,
)

TENANTS = 64
SIZE = 24
MIN_BATCH_RATIO = 2.0
MIN_REQUESTS_PER_SECOND = 5_000.0
MAX_RESILIENT_OVERHEAD = 0.05
RECORD_PATH = Path(__file__).resolve().parent.parent \
    / "BENCH_service.json"

needs_numpy = pytest.mark.skipif(
    not HAS_NUMPY, reason="vectorized batch plane needs numpy")


def _population(count: int = TENANTS, size: int = SIZE) -> list:
    return [BitMatrix.from_rag(random_state(
        size, size, grant_fraction=0.65, request_fraction=0.35,
        rng=resolve_rng(seed=9_000 + index)))
        for index in range(count)]


def _best_of(fn, repeats: int = 5) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _write_record(update: dict) -> None:
    """Merge into BENCH_service.json so both tests contribute."""
    record = {"benchmark": "service"}
    if RECORD_PATH.exists():
        try:
            previous = json.loads(RECORD_PATH.read_text())
            if previous.get("benchmark") == "service":
                record = previous
        except (ValueError, OSError):
            pass
    record.update(update)
    RECORD_PATH.write_text(json.dumps(record, indent=2,
                                      sort_keys=True) + "\n")


@needs_numpy
def test_bench_batched_plane_beats_sequential(benchmark):
    matrices = _population()

    # Bit-identical first: the speed claim is worthless otherwise.
    plane = batch_plane(matrices, vectorized=True)
    assert isinstance(plane, BatchPlane)
    batched = plane.reduce_all()
    verdicts = plane.deadlocked()
    for index, matrix in enumerate(matrices):
        solo = matrix.copy()
        counts = solo.reduce()
        assert counts == batched[index], f"tenant {index} counts"
        assert (not solo.is_empty()) == verdicts[index], \
            f"tenant {index} verdict"

    def run_batched():
        batch_plane(matrices, vectorized=True).reduce_all()

    def run_sequential():
        for matrix in matrices:
            matrix.copy().reduce()

    batched_s = bench_once(benchmark,
                           lambda: _best_of(run_batched, repeats=5))
    sequential_s = _best_of(run_sequential, repeats=5)
    ratio = sequential_s / batched_s

    _write_record({
        "tenants": TENANTS,
        "size": f"{SIZE}x{SIZE}",
        "batched_seconds": batched_s,
        "sequential_seconds": sequential_s,
        "batch_ratio": ratio,
        "min_batch_ratio": MIN_BATCH_RATIO,
        **backend_stamp(SIZE),
    })
    benchmark.extra_info["service_batch"] = {"ratio": ratio}

    assert ratio >= MIN_BATCH_RATIO, (
        f"batched plane only {ratio:.2f}x over {TENANTS} sequential "
        f"reductions (batched {batched_s * 1e3:.2f}ms incl. packing, "
        f"sequential {sequential_s * 1e3:.2f}ms); the guard floor is "
        f"{MIN_BATCH_RATIO}x")


def test_bench_service_end_to_end(benchmark):
    """64 tenants through a real server: requests/sec + p99 latency."""
    ops_per_tenant = 30

    async def drive() -> dict:
        service = DetectionService(ServiceConfig(
            shards=2, use_processes=False, tick_interval=0.001,
            max_pending=100_000, max_pending_per_tenant=1_000))
        await service.start(host="127.0.0.1", port=0)
        client = await ServiceClient.connect_tcp("127.0.0.1",
                                                 service.tcp_port)
        try:
            for index in range(TENANTS):
                await client.attach(f"t{index}", seed=index,
                                    m=16, n=16)

            async def tenant_stream(index: int):
                tenant = f"t{index}"
                rng = resolve_rng(seed=5_000 + index)
                held = set()
                for step in range(ops_per_tenant):
                    if step % 5 == 4:
                        await client.detect(tenant)
                        continue
                    pair = (rng.randrange(1, 17), rng.randrange(1, 17))
                    try:
                        if pair in held:
                            held.discard(pair)
                            await client.release(
                                tenant, f"p{pair[0]}", f"q{pair[1]}")
                        else:
                            held.add(pair)
                            await client.claim(
                                tenant, f"p{pair[0]}", f"q{pair[1]}")
                    except Exception:
                        pass        # violations still count as traffic

            started = time.perf_counter()
            await asyncio.gather(*(tenant_stream(index)
                                   for index in range(TENANTS)))
            elapsed = time.perf_counter() - started
            stats = await client.stats()
            total_ops = TENANTS * ops_per_tenant
            return {
                "tenants": TENANTS,
                "ops": total_ops,
                "seconds": elapsed,
                "requests_per_second": total_ops / elapsed,
                "p99_grant_latency_us":
                    stats["grant_latency"].get("p99_us", 0.0),
                "p99_verdict_latency_us":
                    stats["verdict_latency"].get("p99_us", 0.0),
                "mean_batch_size":
                    (stats["requests"] / stats["batches"]
                     if stats["batches"] else 0.0),
            }
        finally:
            await client.close()
            await service.stop()

    result = bench_once(benchmark, lambda: asyncio.run(drive()))
    _write_record({key: result[key] for key in (
        "requests_per_second", "p99_grant_latency_us",
        "p99_verdict_latency_us", "mean_batch_size")})
    benchmark.extra_info["service_end_to_end"] = result

    assert result["requests_per_second"] >= MIN_REQUESTS_PER_SECOND, (
        f"service served only {result['requests_per_second']:.0f} "
        f"requests/sec end to end; the sanity floor is "
        f"{MIN_REQUESTS_PER_SECOND:.0f}")
    assert result["p99_grant_latency_us"] > 0
    assert result["p99_verdict_latency_us"] > 0


async def _drive_streams(client, tenants: int, ops_per_tenant: int,
                         seed_base: int) -> float:
    """The shared claim/release/detect workload; returns wall seconds."""
    for index in range(tenants):
        await client.attach(f"t{index}", seed=index, m=16, n=16)

    async def stream(index: int) -> None:
        tenant = f"t{index}"
        rng = resolve_rng(seed=seed_base + index)
        for step in range(ops_per_tenant):
            if step % 5 == 4:
                await client.detect(tenant)
                continue
            process = f"p{rng.randrange(1, 17)}"
            resource = f"q{rng.randrange(1, 17)}"
            try:
                if rng.random() < 0.4:
                    await client.release(tenant, process, resource)
                else:
                    await client.claim(tenant, process, resource)
            except Exception:
                pass            # violations still count as traffic

    started = time.perf_counter()
    await asyncio.gather(*(stream(index) for index in range(tenants)))
    return time.perf_counter() - started


def test_bench_resilient_client_overhead(benchmark):
    """Fault-free wire: the retry machinery must cost < 5%.

    One sequential stream: every request pays the wrapper's per-call
    work (the timeout context, deadline/idem stamping, breaker
    bookkeeping — ~20us) against a full tick round-trip (~2ms), which
    is the overhead a caller actually observes.  Concurrent streams
    would instead measure event-loop contention between client
    bookkeeping and the in-process server tick — real, but a property
    of co-locating server and clients on one loop, not of the client.
    """
    tenants = 1
    ops_per_tenant = 80

    async def run(resilient: bool) -> float:
        service = DetectionService(ServiceConfig(
            shards=2, use_processes=False, tick_interval=0.001,
            max_pending=100_000, max_pending_per_tenant=1_000))
        await service.start(host="127.0.0.1", port=0)
        if resilient:
            client = ResilientServiceClient.tcp(
                "127.0.0.1", service.tcp_port, seed=7, tag="bench")
        else:
            client = await ServiceClient.connect_tcp(
                "127.0.0.1", service.tcp_port)
        try:
            return await _drive_streams(client, tenants,
                                        ops_per_tenant, 7_000)
        finally:
            await client.close()
            await service.stop()

    # Interleave the two variants, alternating which goes first each
    # round — back-to-back rounds of one variant (or a fixed order
    # within the pair) hand one side a warmed process and skew the
    # ratio by a few percent on a noisy machine.
    best = {True: float("inf"), False: float("inf")}
    order = [True, False]

    def paired_round() -> float:
        for resilient in order:
            best[resilient] = min(best[resilient],
                                  asyncio.run(run(resilient)))
        order.reverse()
        return best[True]

    paired_round()                  # warmup pair, discarded
    best[True] = best[False] = float("inf")
    bench_once(benchmark, paired_round)
    paired_round()
    plain_s = best[False]
    resilient_s = best[True]
    overhead = resilient_s / plain_s - 1.0

    _write_record({
        "plain_wire_seconds": plain_s,
        "resilient_wire_seconds": resilient_s,
        "resilient_overhead_fraction": max(0.0, overhead),
        "resilient_overhead_bound": MAX_RESILIENT_OVERHEAD,
    })
    benchmark.extra_info["resilient_overhead"] = overhead

    assert overhead < MAX_RESILIENT_OVERHEAD, (
        f"resilient client costs {overhead * 100:.1f}% over the plain "
        f"client on a fault-free wire (plain {plain_s * 1e3:.1f}ms, "
        f"resilient {resilient_s * 1e3:.1f}ms); the bound is "
        f"{MAX_RESILIENT_OVERHEAD * 100:.0f}%")


def test_bench_chaos_retry_profile(benchmark):
    """A fixed drop+duplicate plan: wall time + retry rate trended."""
    tenants = 6
    ops_per_tenant = 30

    async def run() -> dict:
        service = DetectionService(ServiceConfig(
            shards=2, use_processes=False, tick_interval=0.001,
            max_pending=100_000, max_pending_per_tenant=1_000))
        await service.start(host="127.0.0.1", port=0)
        plan = NetFaultPlan(
            name="bench-chaos", seed=99, specs=[
                NetFaultSpec("drop", direction="s2c", at=5, every=23),
                NetFaultSpec("duplicate", direction="c2s", at=3,
                             every=11),
            ])
        proxy = ChaosTransport(plan, target_host="127.0.0.1",
                               target_port=service.tcp_port)
        await proxy.start()
        obs = Observability(enabled=True)
        client = ResilientServiceClient.tcp(
            "127.0.0.1", proxy.listen_port, seed=99, tag="bench-chaos",
            obs=obs, policy=RetryPolicy(
                request_timeout_s=0.1, max_attempts=10,
                backoff_base_s=0.002, backoff_cap_s=0.02,
                fail_threshold=8, recover_after=1, cooldown_s=0.02))
        try:
            elapsed = await _drive_streams(client, tenants,
                                           ops_per_tenant, 9_000)
            requests = tenants * (1 + ops_per_tenant)
            retries = obs.metrics.get("service.client.retries").value
            return {
                "chaos_wall_seconds": elapsed,
                "chaos_retry_rate": retries / requests,
                "faults_fired": sum(proxy.fired.values()),
            }
        finally:
            await client.close()
            await proxy.stop()
            await service.stop()

    result = bench_once(benchmark, lambda: asyncio.run(run()))
    _write_record({
        "chaos_wall_seconds": result["chaos_wall_seconds"],
        "chaos_retry_rate": result["chaos_retry_rate"],
    })
    benchmark.extra_info["chaos_profile"] = result

    assert result["faults_fired"] > 0, \
        "the chaos plan injected nothing; the profile is meaningless"
    assert result["chaos_retry_rate"] > 0, \
        "no retries under drop faults; the retry loop never engaged"
