"""Benchmark: Table 2 — DAU synthesis summary and decision latency."""

from benchmarks.conftest import bench_once
from repro.deadlock.dau import DAU
from repro.experiments import table2_dau_synthesis


def test_bench_table2_regeneration(benchmark):
    result = bench_once(benchmark, table2_dau_synthesis.run)
    assert result.total_area == 1836
    assert result.avoidance_steps == 38
    assert result.measured_max_decision_cycles <= result.avoidance_steps
    benchmark.extra_info["table"] = result.render()


def test_bench_dau_decision_latency(benchmark):
    """Wall-clock of one DAU request decision on a loaded 5x5 unit."""
    processes = [f"p{i}" for i in range(1, 6)]
    resources = [f"q{i}" for i in range(1, 6)]

    def one_decision():
        dau = DAU(processes, resources,
                  {p: i for i, p in enumerate(processes, 1)})
        dau.request("p1", "q1")
        dau.request("p2", "q2")
        dau.request("p2", "q1")
        return dau.request("p1", "q2")   # the R-dl decision

    decision = bench_once(benchmark, one_decision)
    assert decision.deadlock_kind.value == "R-dl"
    benchmark.extra_info["modelled_cycles"] = decision.cycles
