#!/usr/bin/env python3
"""Generate a custom RTOS/MPSoC design with the delta framework.

The programmatic equivalent of the paper's GUI session (Figures 3-7):
configure a hierarchical bus system, size an SoCLC and an SoCDMMU, and
emit the Verilog artifacts — the bus system, the units, and the
Archi_gen top file.

Run with::

    python examples/generate_soc.py
"""

from repro.framework.archi_gen import generate_top
from repro.framework.busgen import generate_bus_system
from repro.framework.config import (
    BusSubsystemConfig,
    BusSystemConfig,
    MemoryConfig,
)
from repro.soclc.generator import generate_soclc
from repro.socdmmu.generator import generate_socdmmu


def main():
    # Figure 4-6: a two-BAN hierarchical bus, 32-bit address / 64-bit
    # data, one MPC755 subsystem and one ARM920 subsystem.
    bus_config = BusSystemConfig(
        num_bans=2,
        address_bus_width=32,
        data_bus_width=64,
        subsystems=(
            BusSubsystemConfig(cpu_type="MPC755", num_global_memory=1,
                               memories=(MemoryConfig("SRAM", 21, 64),)),
            BusSubsystemConfig(cpu_type="ARM920", num_global_memory=0,
                               num_local_memory=1,
                               memories=(MemoryConfig("SRAM", 18, 32),)),
        ))
    bus = generate_bus_system(bus_config)
    print(f"bus system: {bus.summary}")
    print(bus.verilog)

    # PARLAK: an SoCLC with 8 short and 8 long locks, PI on.
    soclc = generate_soclc(8, 8, priority_inheritance=True)
    print(f"SoCLC: {soclc.total_locks} locks, ~{soclc.gates} NAND2 gates")
    print(soclc.verilog)

    # DX-Gt: a 256-block SoCDMMU for four PEs with the crossbar.
    socdmmu = generate_socdmmu(num_blocks=256, block_bytes=64 * 1024,
                               num_pes=4, with_crossbar=True)
    print(f"SoCDMMU: {socdmmu.managed_bytes // (1024 * 1024)} MB managed, "
          f"~{socdmmu.gates} NAND2 gates")
    print(socdmmu.verilog)

    # Example 1: the Archi_gen top file for 3 PEs + the SoCLC.
    print("Top.v (Example 1):")
    print(generate_top("LockCache", num_pes=3,
                       parameters={"N_SHORT": 8, "N_LONG": 8}))


if __name__ == "__main__":
    main()
