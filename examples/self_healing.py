#!/usr/bin/env python3
"""A self-healing detection system: DDU + recovery manager.

The paper's detection experiments stop when the DDU reports the
deadlock (the application "has not yet finished because of deadlock").
A deployed system needs the next step — recovery — which this example
demonstrates: four workers randomly contend for the four peripherals in
a deliberately deadlock-prone pattern (unordered two-resource holds);
a supervisor task sleeps on the DDU's detection event and, each time it
fires, plans and executes a recovery (lowest-priority victim), after
which the workload flows on.

Run with::

    python examples/self_healing.py
"""

import random

from repro.deadlock.recovery import RecoveryManager
from repro.framework.builder import build_system
from repro.rtos.report import system_report
from repro.rtos.resources import NotificationKind

RESOURCES = ("VI", "IDCT", "DSP", "WI")


def worker(jobs, seed):
    def body(ctx):
        rng = random.Random(seed)
        completed = 0
        while completed < jobs:
            targets = rng.sample(RESOURCES, 2)
            aborted = False
            for resource in targets:
                outcome = yield from ctx.request(resource)
                if outcome.granted:
                    continue
                # Pending: wait for the grant, but obey a recovery
                # demand (give up and retry) if we are the victim.
                while resource not in ctx.task.held_resources:
                    note = yield from ctx.wait_notification()
                    if (note.kind is NotificationKind.GIVE_UP
                            and note.resource
                            in ctx.task.held_resources):
                        yield from ctx.withdraw_request(resource)
                        for held in list(ctx.task.held_resources):
                            yield from ctx.release_resource(held)
                        aborted = True
                        break
                if aborted:
                    break
            if aborted:
                yield from ctx.sleep(400 + rng.randint(0, 300))
                continue
            yield from ctx.compute(rng.randint(300, 900))
            for resource in list(ctx.task.held_resources):
                yield from ctx.release_resource(resource)
            completed += 1
            yield from ctx.sleep(rng.randint(50, 200))
    return body


def main():
    system = build_system("RTOS2")          # DDU detection
    kernel = system.kernel
    service = system.resource_service
    priorities = {f"p{i}": i for i in range(1, 5)}
    manager = RecoveryManager(service, priorities)
    healed = []

    def supervisor(ctx):
        while True:
            yield from ctx.kernel.block_on(ctx.task,
                                           service.deadlock_event)
            plan = manager.recover(ctx)
            healed.append((ctx.now, plan.victims))
            # Re-arm for the next deadlock.
            service.deadlock_event = ctx.kernel.engine.event(
                name="deadlock.detected")
            service.stats.deadlock_found_at = None

    for index in range(4):
        kernel.create_task(worker(5, 40 + index), f"p{index + 1}",
                           index + 1, f"PE{index + 1}")
    kernel.create_task(supervisor, "supervisor", 0, "PE1")
    kernel.run(until=800_000)

    print(f"deadlocks detected and healed: {len(healed)}")
    for when, victims in healed:
        print(f"  t={when:>8.0f}: victim(s) {', '.join(victims)}")
    workers_done = all(kernel.tasks[f"p{i}"].stats.finish_time
                       for i in range(1, 5))
    print(f"all workers completed their jobs: {workers_done}")
    print(f"DDU invocations: {service.stats.invocations}, "
          f"mean {service.stats.mean_algorithm_cycles:.1f} cycles")
    print()
    print(system_report(system))


if __name__ == "__main__":
    main()
