#!/usr/bin/env python3
"""Metrics dashboard: one instrumented run, three views of it.

Builds the DDU configuration (RTOS2), enables its observability hub,
runs a workload that exercises the bus, the locks, the heap and the
detection unit, and then prints:

1. the metric summary table (what ``--metrics`` shows on the CLI),
2. a per-phase delta between two snapshots,
3. the span tree of one task's service calls,

and writes a Chrome/Perfetto trace.  Load the JSON at
https://ui.perfetto.dev (or chrome://tracing) to see the same spans on
a zoomable timeline.

Run with::

    python examples/metrics_dashboard.py [--out TRACE.json]

The trace goes to a temporary directory unless ``--out`` says
otherwise, so running the example never litters the working tree.
"""

import argparse
import tempfile
from pathlib import Path

from repro import build_system
from repro.obs import write_chrome_trace


def worker(ctx):
    """Request a peripheral, crunch, allocate a frame buffer."""
    yield from ctx.request("IDCT")
    yield from ctx.use_peripheral("IDCT", 5_000)
    address = yield from ctx.malloc(64 * 1024)
    yield from ctx.compute(2_000)
    yield from ctx.free(address)
    yield from ctx.release_resource("IDCT")


def rival(ctx):
    """Contends for the same peripheral a moment later."""
    yield from ctx.sleep(500)
    outcome = yield from ctx.request("IDCT")
    if not outcome.granted:
        yield from ctx.wait_grant("IDCT")
    yield from ctx.use_peripheral("IDCT", 1_000)
    yield from ctx.release_resource("IDCT")


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", metavar="TRACE.json",
                        help="where to write the Perfetto trace "
                             "(default: a temporary directory)")
    args = parser.parse_args(argv)

    system = build_system("RTOS2",
                          processes=("worker", "rival"),
                          priorities={"worker": 1, "rival": 2})
    obs = system.soc.obs
    obs.enable()

    kernel = system.kernel
    kernel.create_task(worker, "worker", 1, "PE1")
    kernel.create_task(rival, "rival", 2, "PE2")

    # Snapshot mid-run to demonstrate per-phase deltas.
    kernel.run(until=10_000)
    halfway = obs.snapshot()
    kernel.run()
    final = obs.snapshot()

    print(obs.summary(title=f"{system.name} — full run"))

    second_half = final.delta(halfway)
    print("\nsecond half only (delta of two snapshots):")
    for name, value in sorted(second_half.counters.items()):
        if value:
            print(f"  {name:<28s} +{value:g}")

    print("\nworker's service-call spans:")
    print(obs.tracer.render_tree(actors=["worker"]))

    if args.out:
        out = Path(args.out)
    else:
        out = Path(tempfile.mkdtemp(prefix="repro_dashboard_")) \
            / "metrics_dashboard_trace.json"
    write_chrome_trace(str(out), obs)
    print(f"\nwrote {out} — open it at https://ui.perfetto.dev")


if __name__ == "__main__":
    main()
