#!/usr/bin/env python3
"""Metrics dashboard: one instrumented run, five views of it.

Builds the DDU configuration (RTOS2), enables its observability hub,
runs a workload that exercises the bus, the locks, the heap and the
detection unit, and then prints:

1. the metric summary table (what ``--metrics`` shows on the CLI),
2. a per-phase delta between two snapshots,
3. the span tree of one task's service calls,
4. the cycle-attribution profile (per-component cycle ledger),
5. the flight recorder's tail (the black box's last events),

and writes a Chrome/Perfetto trace plus the profile as canonical JSON.
Load the trace at https://ui.perfetto.dev (or chrome://tracing) to see
the same spans on a zoomable timeline.

Run with::

    python examples/metrics_dashboard.py [--out DIR]

Artifacts go to a temporary directory unless ``--out`` names one, so
running the example never litters the working tree.
"""

import argparse
import tempfile
from pathlib import Path

from repro import build_system
from repro.obs import write_chrome_trace, write_profile


def worker(ctx):
    """Request a peripheral, crunch, allocate a frame buffer."""
    yield from ctx.request("IDCT")
    yield from ctx.use_peripheral("IDCT", 5_000)
    address = yield from ctx.malloc(64 * 1024)
    yield from ctx.compute(2_000)
    yield from ctx.free(address)
    yield from ctx.release_resource("IDCT")


def rival(ctx):
    """Contends for the same peripheral a moment later."""
    yield from ctx.sleep(500)
    outcome = yield from ctx.request("IDCT")
    if not outcome.granted:
        yield from ctx.wait_grant("IDCT")
    yield from ctx.use_peripheral("IDCT", 1_000)
    yield from ctx.release_resource("IDCT")


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", metavar="DIR",
                        help="directory for the artifacts: Perfetto "
                             "trace + cycle profile (default: a "
                             "temporary directory)")
    args = parser.parse_args(argv)

    system = build_system("RTOS2",
                          processes=("worker", "rival"),
                          priorities={"worker": 1, "rival": 2})
    obs = system.soc.obs
    obs.enable()

    kernel = system.kernel
    kernel.create_task(worker, "worker", 1, "PE1")
    kernel.create_task(rival, "rival", 2, "PE2")

    # Snapshot mid-run to demonstrate per-phase deltas; the flight
    # recorder keeps the phase boundaries on its ring alongside any
    # fault trips or health transitions the run produces.
    kernel.run(until=10_000)
    obs.flight.record("phase_boundary", actor="dashboard",
                      at=system.soc.engine.now, phase="halfway")
    halfway = obs.snapshot()
    kernel.run()
    obs.flight.record("phase_boundary", actor="dashboard",
                      at=system.soc.engine.now, phase="final")
    final = obs.snapshot()

    print(obs.summary(title=f"{system.name} — full run"))

    second_half = final.delta(halfway)
    print("\nsecond half only (delta of two snapshots):")
    for name, value in sorted(second_half.counters.items()):
        if value:
            print(f"  {name:<28s} +{value:g}")

    print("\nworker's service-call spans:")
    print(obs.tracer.render_tree(actors=["worker"]))

    # The cycle-attribution profile: where did the cycles go, per
    # component and per operation, and how much of the timeline is
    # covered by instrumented spans.
    profile = obs.profile_report(label="metrics dashboard")
    print("\ncycle attribution:")
    print(profile.render())

    print("\nflight recorder tail (the black box):")
    print(obs.flight.render_tail())

    out = Path(args.out) if args.out \
        else Path(tempfile.mkdtemp(prefix="repro_dashboard_"))
    out.mkdir(parents=True, exist_ok=True)
    trace_path = out / "metrics_dashboard_trace.json"
    profile_path = out / "metrics_dashboard.profile.json"
    write_chrome_trace(str(trace_path), obs)
    write_profile(profile_path, profile)
    print(f"\nwrote {trace_path} — open it at https://ui.perfetto.dev")
    print(f"wrote {profile_path} — canonical repro.profile/1 JSON")


if __name__ == "__main__":
    main()
