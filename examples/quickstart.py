#!/usr/bin/env python3
"""Quickstart: build a DAU-equipped MPSoC and avoid a deadlock.

Builds the RTOS4 configuration (four MPC755-class PEs, the VI / IDCT /
DSP / WI resources, and the Deadlock Avoidance Unit), runs two tasks
whose requests would deadlock a naive system, and prints what the DAU
decided.

Run with::

    python examples/quickstart.py
"""

from repro import build_system


def task_a(ctx):
    """Holds the IDCT, then wants the WI."""
    yield from ctx.request("IDCT")
    yield from ctx.compute(1_000)
    outcome = yield from ctx.request("WI")
    if not outcome.granted:
        yield from ctx.wait_grant("WI")
    yield from ctx.use_peripheral("IDCT", 2_000)
    yield from ctx.use_peripheral("WI", 1_000)
    yield from ctx.release_resource("IDCT")
    yield from ctx.release_resource("WI")


def task_b(ctx):
    """Holds the WI, then wants the IDCT — the classic hold-and-wait."""
    yield from ctx.request("WI")
    yield from ctx.compute(1_200)
    # This request would close the cycle; the DAU detects the R-dl and,
    # because task_a has the higher priority... actually task_b does
    # here, so the DAU tells *us* how the conflict resolves.
    outcome = yield from ctx.request("IDCT")
    if outcome.must_give_up:
        # Obey the give-up demand: release, back off, retry.
        for _proc, resource in outcome.decision.ask_release:
            yield from ctx.release_resource(resource)
        yield from ctx.sleep(4_000)
        yield from ctx.request("WI")
        outcome = yield from ctx.request("IDCT")
    if not outcome.granted:
        yield from ctx.wait_grant("IDCT")
    yield from ctx.use_peripheral("WI", 800)
    yield from ctx.release_resource("IDCT")
    yield from ctx.release_resource("WI")


def main():
    system = build_system("RTOS4")
    kernel = system.kernel
    kernel.create_task(task_a, "p1", 1, "PE1")   # priority 1 = highest
    kernel.create_task(task_b, "p2", 2, "PE2")
    end = kernel.run()

    print(f"simulation finished at t={end:.0f} bus cycles")
    print(f"all tasks completed: {kernel.finished()}")
    stats = system.resource_service.core.stats
    print(f"DAU invocations: {stats.invocations}, "
          f"mean decision latency: {stats.mean_cycles:.1f} cycles")
    print(f"request deadlocks avoided: {stats.rdl_events}, "
          f"grant deadlocks avoided: {stats.gdl_events}")
    print("\nresource event timeline:")
    for rec in system.soc.trace.filter(
            predicate=lambda r: r.kind.startswith("resource")
            or r.kind == "asked_to_release"):
        print(f"  {rec.describe()}")
    print("\ngenerated HDL top file starts with:")
    print("  " + system.top_verilog.splitlines()[0])


if __name__ == "__main__":
    main()
