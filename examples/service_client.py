#!/usr/bin/env python3
"""A minimal service client: one tenant, one seeded stream, one histogram.

Starts an in-process :class:`~repro.service.DetectionService` (two
shards, batched reduction — the same server ``python -m repro.service``
runs), then uses :class:`~repro.service.ServiceClient` over a loopback
TCP socket to:

1. ``attach`` an empty 12x12 tenant,
2. replay a seeded claim/release/detect stream against it,
3. snapshot the ``service.*`` metrics and print the
   ``service.grant_latency_us`` histogram as ASCII bars, next to the
   request counters and the final verdict.

Run with::

    python examples/service_client.py [--ops 200] [--seed 42]

Point ``--connect HOST:PORT`` at an already-running
``python -m repro.service`` to drive a real server instead (the
histogram then comes from the wire ``stats`` percentiles, since the
registry lives in the server process).
"""

import argparse
import asyncio

from repro.obs import Observability
from repro.rag.generate import resolve_rng
from repro.service import (DetectionService, ServiceConfig, ServiceClient,
                           ServiceOpError)


def parse_args():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--ops", type=int, default=200,
                        help="operations in the seeded stream (default 200)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--connect", metavar="HOST:PORT", default=None,
                        help="drive an existing server instead of an "
                             "in-process one")
    return parser.parse_args()


async def replay_stream(client, tenant, seed, ops):
    """The seeded claim stream; returns (granted, blocked, refused)."""
    granted = blocked = refused = 0
    held = []
    rng = resolve_rng(seed=seed ^ 0x5EED)
    for step in range(ops):
        if step % 10 == 9:
            await client.detect(tenant)
            continue
        if held and rng.random() < 0.35:
            process, resource = held.pop(rng.randrange(len(held)))
            await client.release(tenant, process, resource)
            continue
        process = f"p{rng.randrange(1, 13)}"
        resource = f"q{rng.randrange(1, 13)}"
        try:
            reply = await client.claim(tenant, process, resource)
        except ServiceOpError:
            refused += 1          # double claims etc. — part of the stream
            continue
        if reply["granted"]:
            granted += 1
            held.append((process, resource))
        else:
            blocked += 1
    return granted, blocked, refused


def print_histogram(state):
    """ASCII bars for one HistogramState (bounds + overflow bucket)."""
    peak = max(state.counts) or 1
    labels = [f"<= {bound:g}" for bound in state.bounds] + ["overflow"]
    width = max(len(label) for label in labels)
    for label, count in zip(labels, state.counts):
        if not count:
            continue
        bar = "#" * max(1, round(40 * count / peak))
        print(f"  {label:>{width}}  {count:>6}  {bar}")
    print(f"  {'count':>{width}}  {state.count:>6}  "
          f"(mean {state.mean:.0f} us, max {state.max_value:g} us)")


async def run_local(args):
    obs = Observability(label="service", enabled=True)
    service = DetectionService(ServiceConfig(shards=2, tick_interval=0.001),
                               obs=obs)
    await service.start(host="127.0.0.1", port=0)
    try:
        client = await ServiceClient.connect_tcp("127.0.0.1",
                                                 service.tcp_port)
        tenant = "example"
        await client.attach(tenant, m=12, n=12)
        granted, blocked, refused = await replay_stream(
            client, tenant, args.seed, args.ops)
        verdict = await client.detect(tenant)
        await client.close()
    finally:
        await service.stop()

    snapshot = obs.metrics.snapshot()
    print(f"stream: {args.ops} ops (seed {args.seed}) -> "
          f"{granted} granted, {blocked} blocked, {refused} refused")
    print(f"verdict: deadlock={verdict['deadlock']} in "
          f"{verdict['iterations']} iterations "
          f"(op_seq {verdict['op_seq']})")
    for name in ("service.requests", "service.detects", "service.batches"):
        print(f"{name}: {snapshot.counters[name]:g}")
    print("service.grant_latency_us:")
    print_histogram(snapshot.histograms["service.grant_latency_us"])


async def run_remote(args):
    host, _, port = args.connect.rpartition(":")
    client = await ServiceClient.connect_tcp(host or "127.0.0.1", int(port))
    try:
        tenant = f"example-{args.seed}"
        await client.attach(tenant, m=12, n=12)
        granted, blocked, refused = await replay_stream(
            client, tenant, args.seed, args.ops)
        verdict = await client.detect(tenant)
        stats = await client.stats()
        await client.detach(tenant)
    finally:
        await client.close()
    print(f"stream: {args.ops} ops (seed {args.seed}) -> "
          f"{granted} granted, {blocked} blocked, {refused} refused")
    print(f"verdict: deadlock={verdict['deadlock']} in "
          f"{verdict['iterations']} iterations "
          f"(op_seq {verdict['op_seq']})")
    print(f"server grant latency: {stats['grant_latency']}")


def main():
    args = parse_args()
    asyncio.run(run_remote(args) if args.connect else run_local(args))


if __name__ == "__main__":
    main()
