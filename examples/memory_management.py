#!/usr/bin/env python3
"""Software heap vs SoCDMMU on an allocation-heavy workload.

Reproduces the Section 5.6 comparison interactively: the same
SPLASH-2-style kernels run on the glibc-like software heap (RTOS5) and
on the SoCDMMU (RTOS7), and the per-call determinism of the hardware
unit is demonstrated directly.

Run with::

    python examples/memory_management.py
"""

from repro.apps.splash import SPLASH_BENCHMARKS, run_splash
from repro.framework.builder import build_system


def compare_benchmarks():
    print(f"{'benchmark':<10}{'heap':<12}{'total':>10}{'mm':>9}"
          f"{'mm %':>8}{'calls':>7}")
    print("-" * 56)
    for name in SPLASH_BENCHMARKS:
        for config, label in (("RTOS5", "software"), ("RTOS7", "SoCDMMU")):
            run = run_splash(name, config)
            print(f"{name:<10}{label:<12}{run.total_cycles:>10.0f}"
                  f"{run.mm_cycles:>9.0f}{run.mm_percent:>7.2f}%"
                  f"{run.malloc_calls + run.free_calls:>7d}")


def show_determinism():
    """Per-call costs: the software heap's malloc gets slower as the
    free list fragments; the SoCDMMU's G_alloc never changes."""
    print("\nper-call allocation cost as the heap fragments:")
    for config, label in (("RTOS5", "software heap"),
                          ("RTOS7", "SoCDMMU")):
        system = build_system(config)
        costs = []

        def churn(ctx):
            # Three allocations on a pristine heap...
            for _ in range(3):
                start = ctx.now
                yield from ctx.malloc(48 * 1024)
                costs.append(ctx.now - start)
            # ...then punch small holes the later, larger requests
            # cannot use: a first-fit software allocator must walk
            # past every hole, so its per-call cost rises.
            smalls = []
            for _ in range(12):
                smalls.append((yield from ctx.malloc(8 * 1024)))
            for victim in smalls[::2]:
                yield from ctx.free(victim)
            for _ in range(3):
                start = ctx.now
                yield from ctx.malloc(48 * 1024)
                costs.append(ctx.now - start)

        system.kernel.create_task(churn, "churn", 1, "PE1")
        system.kernel.run()
        series = ", ".join(f"{c:.0f}" for c in costs)
        print(f"  {label:<14}: {series}  (cycles per malloc)")


def main():
    print("Tables 11-12 style comparison (see repro.experiments for "
          "the calibrated regenerations):\n")
    compare_benchmarks()
    show_determinism()


if __name__ == "__main__":
    main()
