#!/usr/bin/env python3
"""Walk through the paper's three deadlock scenarios.

Replays, in order:

1. the Table 4 *detection* scenario (Jini-style app) under RTOS1 and
   RTOS2 — the application deadlocks; the DDU just finds out ~500x
   faster;
2. the Table 6 *grant deadlock* scenario under RTOS4 — the DAU grants
   the contested IDCT to the lower-priority process and everything
   completes;
3. the Table 8 *request deadlock* scenario under RTOS4 — the DAU asks
   the lower-priority owner to give the IDCT up.

Run with::

    python examples/deadlock_walkthrough.py
"""

from repro.apps.grant_deadlock import run_gdl_app
from repro.apps.jini import run_jini_app
from repro.apps.request_deadlock import run_rdl_app
from repro.framework.builder import build_system


def show_detection():
    print("=" * 70)
    print("1. Detection (Table 4 / Figure 15): the app deadlocks")
    print("=" * 70)
    for config in ("RTOS1", "RTOS2"):
        result = run_jini_app(config)
        label = "software PDDA" if config == "RTOS1" else "hardware DDU"
        print(f"  {config} ({label}):")
        print(f"    deadlock detected at t={result.app_cycles:.0f}; "
              f"processes in the cycle: "
              f"{', '.join(result.deadlocked_processes)}")
        print(f"    mean detection time: "
              f"{result.mean_algorithm_cycles:.1f} cycles over "
              f"{result.detection_invocations} invocations")


def show_grant_deadlock():
    print("=" * 70)
    print("2. Grant deadlock avoided (Table 6 / Figure 16)")
    print("=" * 70)
    system = build_system("RTOS4")
    result = run_gdl_app("RTOS4", system=system)
    print(f"  application completed: {result.completed} "
          f"at t={result.app_cycles:.0f}")
    idct_grants = [(actor, t) for actor, res, t in result.grant_order
                   if res == "IDCT"]
    for actor, t in idct_grants:
        print(f"    IDCT granted to {actor} at t={t:.0f}")
    print("  note: after p1's release the IDCT went to p3, not the "
          "higher-priority p2 — granting p2 would have closed the "
          "p2-WI-p3-IDCT cycle (Algorithm 3, line 19).")


def show_request_deadlock():
    print("=" * 70)
    print("3. Request deadlock avoided (Table 8 / Figure 17)")
    print("=" * 70)
    system = build_system("RTOS4")
    result = run_rdl_app("RTOS4", system=system)
    print(f"  application completed: {result.completed} "
          f"at t={result.app_cycles:.0f}; "
          f"R-dl events: {result.rdl_events}")
    for rec in system.soc.trace.filter(kind="asked_to_release"):
        print(f"    t={rec.time:.0f}: {rec.actor} asked to give up "
              f"{rec.details['resource']} on behalf of "
              f"{rec.details['on_behalf_of']}")
    print("  note: p1's request for the IDCT would have closed the "
          "cycle; the DAU asked the lower-priority owner p2 to give "
          "it up (Algorithm 3, lines 6-8).")


def main():
    show_detection()
    show_grant_deadlock()
    show_request_deadlock()


if __name__ == "__main__":
    main()
