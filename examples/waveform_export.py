#!/usr/bin/env python3
"""Export a simulation's execution trace as waveforms and tables.

The paper's team debugged these systems in an HDL waveform viewer; this
example produces the equivalent artifacts from our simulator for a
two-period robot run under RTOS6:

* ``robot_trace.vcd`` — open in GTKWave: one ``_run``/``_blocked``
  signal pair per task;
* ``robot_trace.csv`` — the raw event table for spreadsheet analysis;
* an ASCII Gantt chart (the Figure 20 view) printed to stdout.

Run with::

    python examples/waveform_export.py [output-directory]
"""

import sys
from pathlib import Path

from repro.apps.robot import run_robot_app
from repro.framework.builder import build_system
from repro.sim.vcd import write_vcd


def main():
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(".")
    out_dir.mkdir(parents=True, exist_ok=True)

    system = build_system("RTOS6")
    result = run_robot_app("RTOS6", periods=2, system=system)
    trace = system.soc.trace
    tasks = [f"task{i}" for i in range(1, 6)]

    vcd_path = out_dir / "robot_trace.vcd"
    write_vcd(trace, str(vcd_path), actors=tasks)
    print(f"wrote {vcd_path} "
          f"({len(vcd_path.read_text().splitlines())} lines) — "
          "open with GTKWave")

    csv_path = out_dir / "robot_trace.csv"
    csv_path.write_text(trace.to_csv(
        kinds=["run_start", "run_end", "block_start", "block_end",
               "lock_acquired", "lock_released"]))
    print(f"wrote {csv_path} "
          f"({len(csv_path.read_text().splitlines())} rows)")

    print()
    print("ASCII execution trace (the Figure 20 view):")
    print(trace.gantt(actors=("task1", "task2", "task3")))
    print()
    print(f"run summary: {result.describe()}")


if __name__ == "__main__":
    main()
