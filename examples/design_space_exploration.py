#!/usr/bin/env python3
"""Design-space exploration with the delta framework (Section 2.2).

"The delta framework is specifically designed to provide a solution to
rapid RTOS/MPSoC design space exploration."  This example compares four
deadlock-management configurations (RTOS1..RTOS4) on one workload — a
bursty resource-sharing application — and prints a comparison table a
designer could use to pick a partitioning, plus the generated HDL top
file of the winner.

Run with::

    python examples/design_space_exploration.py
"""

from repro.framework.builder import build_system
from repro.framework.explorer import DesignSpaceExplorer


def resource_workload(system):
    """Three tasks sharing three resources with overlapping holds."""
    kernel = system.kernel
    avoidance = system.config.deadlock in ("RTOS3", "RTOS4")

    def make(name, first, second, offset):
        def body(ctx):
            if offset:
                yield from ctx.sleep(offset)
            for _ in range(3):
                if avoidance:
                    yield from ctx.acquire(first)
                    yield from ctx.compute(600)
                    yield from ctx.acquire(second)
                else:
                    # Detection configs: ordered requests (no deadlock;
                    # detection just keeps watch).
                    outcome = yield from ctx.request(first)
                    if not outcome.granted:
                        yield from ctx.wait_grant(first)
                    yield from ctx.compute(600)
                    outcome = yield from ctx.request(second)
                    if not outcome.granted:
                        yield from ctx.wait_grant(second)
                yield from ctx.use_peripheral(second, 900)
                yield from ctx.release_resource(second)
                yield from ctx.release_resource(first)
                yield from ctx.sleep(400)
        return body

    # Resource-ordered so the workload completes in every config.
    kernel.create_task(make("p1", "VI", "IDCT", 0), "p1", 1, "PE1")
    kernel.create_task(make("p2", "VI", "DSP", 300), "p2", 2, "PE2")
    kernel.create_task(make("p3", "IDCT", "DSP", 600), "p3", 3, "PE3")
    end = kernel.run()
    stats = system.resource_service.stats
    return {
        "app_cycles": end,
        "algo_invocations": stats.invocations,
        "mean_algo_cycles": round(stats.mean_algorithm_cycles, 1),
    }


def main():
    explorer = DesignSpaceExplorer(resource_workload)
    result = explorer.explore(["RTOS1", "RTOS2", "RTOS3", "RTOS4"])
    print("Design-space exploration: deadlock management options")
    print(result.render())
    best = result.best("app_cycles")
    print(f"\nfastest configuration: {best.config_name}")
    winner = build_system(best.config_name)
    print("\ngenerated Top.v for the winner:")
    print(winner.top_verilog)


if __name__ == "__main__":
    main()
