#!/usr/bin/env python3
"""A tour of the Atalanta-style RTOS services.

Exercises the kernel surface the paper attributes to Atalanta (Section
2.1): task management (creation, suspension, resumption), priority
scheduling, the IPC primitives (semaphore, mailbox, message queue,
event flags), memory management and a watchdog, then prints the system
report — the closest thing to watching the co-simulation's debugger.

Run with::

    python examples/rtos_services_tour.py
"""

from repro.framework.builder import build_system
from repro.rtos.api import AtalantaAPI
from repro.rtos.report import system_report
from repro.rtos.watchdog import Watchdog


def main():
    system = build_system("RTOS5")
    kernel = system.kernel
    api = AtalantaAPI(kernel)
    watchdog = Watchdog(kernel)

    data_ready = api.sema_create()
    results_box = api.mbox_create()
    work_queue = api.queue_create(capacity=4)
    phase_flags = api.flag_create()
    log = []

    def producer(ctx):
        # Produce three work items, then signal completion via flags.
        for item in range(3):
            yield from ctx.compute(600)
            yield from api.queue_send(ctx, work_queue, {"item": item})
            yield from api.sema_signal(ctx, data_ready)
        yield from api.flag_set(ctx, phase_flags, 0b01)

    def worker(ctx):
        watch = watchdog.arm("worker-loop", 10_000)
        total = 0
        for _ in range(3):
            yield from api.sema_wait(ctx, data_ready)
            work = yield from api.queue_receive(ctx, work_queue)
            buffer = yield from api.mem_alloc(ctx, 2_048)
            yield from ctx.compute(900)
            yield from api.mem_free(ctx, buffer)
            total += work["item"]
            watchdog.kick(watch)
        watchdog.disarm(watch)
        yield from api.mbox_post(ctx, results_box, {"sum": total})

    def supervisor(ctx):
        yield from api.flag_wait(ctx, phase_flags, 0b01)
        result = yield from api.mbox_pend(ctx, results_box)
        log.append(("result", result, ctx.now))

    def background(ctx):
        # Low-priority filler that gets suspended mid-flight.
        yield from ctx.compute(30_000)
        log.append(("background-done", ctx.now))

    api.task_create(producer, "producer", 2, "PE1")
    api.task_create(worker, "worker", 1, "PE2")
    api.task_create(supervisor, "supervisor", 3, "PE3")
    api.task_create(background, "background", 5, "PE4")

    kernel.run(until=2_000)
    api.task_suspend("background")
    log.append(("suspended background at", kernel.engine.now))
    kernel.run(until=8_000)
    api.task_resume("background")
    kernel.run()

    print("event log:")
    for entry in log:
        print("  ", entry)
    print(f"watchdog misses: {watchdog.miss_count}")
    print()
    print(system_report(system))


if __name__ == "__main__":
    main()
