#!/usr/bin/env python3
"""Multi-unit deadlock avoidance over a DMA channel pool (extension).

The paper's DAU manages single-unit resources; its conclusion points at
MPSoCs with many more resources, often pooled (DMA channels, buffer
banks).  This example drives the multi-unit extension
(:class:`repro.deadlock.multiunit_avoidance.MultiUnitAvoider`) through
a scenario with a 2-channel DMA pool and a single scratchpad:

* p1 grabs both DMA channels, then wants the scratchpad;
* p2 holds the scratchpad, then wants a DMA channel — in the counting
  model this *is* a deadlock (no spare unit anywhere), and the avoider
  resolves it the Algorithm 3 way: the lower-priority p2 is told to
  give up its scratchpad so the higher-priority p1 can finish.

It also shows the subtler multi-unit case: a grant of an *available*
unit being refused because it would starve a bigger waiter into a
deadlock.

Run with::

    python examples/multiunit_dma.py
"""

from repro.deadlock.daa import Action
from repro.deadlock.multiunit_avoidance import MultiUnitAvoider


def classic_conflict():
    print("=" * 64)
    print("1. Pool exhaustion deadlock, resolved by priority")
    print("=" * 64)
    avoider = MultiUnitAvoider(
        ["p1", "p2"], {"DMA": 2, "SPM": 1}, {"p1": 1, "p2": 2})
    print("p1 takes both DMA channels:",
          avoider.request("p1", "DMA", 2).action.value)
    print("p2 takes the scratchpad:   ",
          avoider.request("p2", "SPM", 1).action.value)
    print("p1 wants the scratchpad:   ",
          avoider.request("p1", "SPM", 1).action.value)
    decision = avoider.request("p2", "DMA", 1)
    print("p2 wants a DMA channel:    ", decision.action.value,
          f"({decision.deadlock_kind.value})")
    print("  demands:", list(decision.ask_release))
    # p2 obeys: releases the scratchpad, which goes straight to p1.
    handoff = avoider.release("p2", "SPM", 1)
    print("p2 releases the SPM ->", handoff.action.value,
          "to", handoff.granted_to)
    assert not avoider.system.detect().deadlock
    print("  system deadlock-free:", not avoider.system.detect().deadlock)


def available_unit_refused():
    print()
    print("=" * 64)
    print("2. An *available* unit refused: it would starve a waiter")
    print("=" * 64)
    avoider = MultiUnitAvoider(
        ["p1", "p2", "p3"], {"DMA": 2, "SPM": 1},
        {"p1": 1, "p2": 2, "p3": 3})
    avoider.request("p3", "DMA", 1)          # one channel to p3
    avoider.request("p1", "SPM", 1)          # p1 holds the scratchpad
    avoider.request("p1", "DMA", 2)          # p1 waits for BOTH channels
    avoider.request("p2", "SPM", 1)          # p2 queues behind p1's SPM
    # Still deadlock-free: p3 finishes, returns its channel, p1 gets
    # both, finishes, the SPM flows to p2.  But if p2 now takes the
    # *nominally available* spare channel, that unwind dies: p1 can
    # never assemble two channels while p2 waits on p1's SPM.
    decision = avoider.request("p2", "DMA", 1)
    print("p2 asks for the spare DMA channel ->", decision.action.value)
    assert decision.action is not Action.GRANTED
    print("  refused: a grant deadlock the counting model catches even")
    print("  though a unit was nominally available — the single-unit")
    print("  model has no way to express this case.")
    assert not avoider.system.detect().deadlock


def main():
    classic_conflict()
    available_unit_refused()


if __name__ == "__main__":
    main()
