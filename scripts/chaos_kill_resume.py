#!/usr/bin/env python3
"""Kill-and-resume soak harness for campaign crash consistency.

Runs a campaign to completion once (the reference), then runs it again
and SIGKILLs the whole runner process group mid-campaign — watching
the write-ahead journal and pulling the trigger once enough scenario
records have landed, so the kill provably interrupts a half-done run.
After each kill the run is continued with ``campaign resume``; the
next kill interrupts the *resume*.  After the final resume completes,
the crashed-and-resumed run's result digest must equal the clean
run's.

Usage::

    python scripts/chaos_kill_resume.py --out /tmp/chaos \\
        --builtin faults --seed-root 42 --workers 4 --kills 2

Exit codes: 0 digests equal; 1 mismatch or a step failed.
"""

from __future__ import annotations

import argparse
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
sys.path.insert(0, str(SRC))

from repro.campaign.journal import JOURNAL_NAME  # noqa: E402
from repro.campaign.store import load_results, results_digest  # noqa: E402


def _cli(*argv: str) -> list:
    return [sys.executable, "-m", "repro.campaign", *argv]


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _journal_records(run_dir: Path) -> int:
    """Completed-record lines currently in the journal (0 if absent)."""
    journal = run_dir / JOURNAL_NAME
    try:
        text = journal.read_text(encoding="utf-8")
    except FileNotFoundError:
        return 0
    return sum(1 for line in text.splitlines()
               if line.startswith('{"record"') or '"type":"result"' in line)


def run_to_completion(argv: list) -> int:
    process = subprocess.run(argv, env=_env(), cwd=REPO)
    return process.returncode


def run_and_kill(argv: list, run_dir: Path, trigger: int,
                 timeout: float) -> bool:
    """Start the runner in its own process group; SIGKILL the group
    once the journal holds ``trigger`` records.  Returns True when the
    kill landed mid-run (False: the run finished first)."""
    process = subprocess.Popen(argv, env=_env(), cwd=REPO,
                               start_new_session=True,
                               stdout=subprocess.DEVNULL,
                               stderr=subprocess.DEVNULL)
    deadline = time.time() + timeout
    try:
        while time.time() < deadline:
            if process.poll() is not None:
                return False              # finished before the trigger
            if _journal_records(run_dir) >= trigger:
                # Kill the whole group: runner AND its shard workers
                # die instantly, mid-scenario, with no unwinding.
                os.killpg(process.pid, signal.SIGKILL)
                process.wait(timeout=30)
                return True
            time.sleep(0.002)
    finally:
        if process.poll() is None:
            os.killpg(process.pid, signal.SIGKILL)
            process.wait(timeout=30)
    return True


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", required=True,
                        help="scratch directory for both runs")
    parser.add_argument("--builtin", default="faults")
    parser.add_argument("--seed-root", default="42")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--kills", type=int, default=2,
                        help="SIGKILLs to deliver before the final "
                             "resume (default: 2)")
    parser.add_argument("--trigger", type=int, default=3,
                        help="journaled records that arm each kill "
                             "(default: 3)")
    parser.add_argument("--timeout", type=float, default=600.0)
    args = parser.parse_args()

    out = Path(args.out)
    clean_dir = out / "clean"
    crashed_dir = out / "crashed"
    common = ["--builtin", args.builtin, "--seed-root", args.seed_root,
              "--workers", str(args.workers)]

    print(f"[1/4] clean run -> {clean_dir}")
    if run_to_completion(_cli("run", *common, "--out", str(clean_dir))):
        print("clean run failed", file=sys.stderr)
        return 1
    clean_digest = results_digest(load_results(clean_dir))
    print(f"      clean digest {clean_digest}")

    print(f"[2/4] crash run -> {crashed_dir} ({args.kills} kill(s))")
    interrupted = run_and_kill(
        _cli("run", *common, "--out", str(crashed_dir)),
        crashed_dir, args.trigger, args.timeout)
    kills = 1
    print(f"      kill #1 {'landed mid-run' if interrupted else 'missed (run finished)'} "
          f"with {_journal_records(crashed_dir)} record(s) journaled")
    while kills < args.kills and interrupted:
        trigger = _journal_records(crashed_dir) + args.trigger
        interrupted = run_and_kill(
            _cli("resume", str(crashed_dir)), crashed_dir, trigger,
            args.timeout)
        kills += 1
        print(f"      kill #{kills} "
              f"{'landed mid-resume' if interrupted else 'missed (resume finished)'} "
              f"with {_journal_records(crashed_dir)} record(s) journaled")

    print("[3/4] final resume to completion")
    status = run_to_completion(_cli("resume", str(crashed_dir)))
    if status not in (0, 1):          # 1 = scenario failures, still diffable
        print(f"resume failed with exit {status}", file=sys.stderr)
        return 1

    print("[4/4] digest comparison")
    crashed_digest = results_digest(load_results(crashed_dir))
    print(f"      clean   {clean_digest}")
    print(f"      resumed {crashed_digest}")
    if crashed_digest != clean_digest:
        print("DIGEST MISMATCH: resumed run is not equivalent to an "
              "uninterrupted run", file=sys.stderr)
        return 1
    print("kill-and-resume determinism holds")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
