#!/usr/bin/env python3
"""Memory-pressure soak: SIGKILL the torture campaign mid-exhaustion.

Three phases (see docs/memory_pressure.md):

1. A clean ``memory-pressure`` campaign run — the reference digest.
2. The same campaign SIGKILLed (whole process group, no unwinding)
   once enough scenario records have landed in the write-ahead
   journal, then ``campaign resume``d — possibly killed again
   mid-resume — until it completes.  The resumed digest must equal
   the clean one: CoW refcounts, OOM-ladder state and degradation
   mode all restore through the checkpoint protocol.
3. A direct allocator churn soak: millions of seeded
   alloc/share/write-fault/free ops with periodic derived-table
   corruption, auditing and verifying as it goes — the no-wrong-state
   invariant at a scale the unit tests don't reach.

Usage::

    python scripts/memory_torture_soak.py --out /tmp/pressure --kills 2
    python scripts/memory_torture_soak.py --quick     # CI-sized

Exit codes: 0 all phases hold; 1 digest mismatch or invariant broken.
"""

from __future__ import annotations

import argparse
import os
import random
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
sys.path.insert(0, str(SRC))

from repro.campaign.journal import JOURNAL_NAME  # noqa: E402
from repro.campaign.store import load_results, results_digest  # noqa: E402
from repro.errors import AllocationError  # noqa: E402
from repro.socdmmu.allocator import BlockAllocator  # noqa: E402


def _cli(*argv: str) -> list:
    return [sys.executable, "-m", "repro.campaign", *argv]


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _journal_records(run_dir: Path) -> int:
    journal = run_dir / JOURNAL_NAME
    try:
        text = journal.read_text(encoding="utf-8")
    except FileNotFoundError:
        return 0
    return sum(1 for line in text.splitlines()
               if line.startswith('{"record"') or '"type":"result"' in line)


def run_to_completion(argv: list) -> int:
    return subprocess.run(argv, env=_env(), cwd=REPO).returncode


def run_and_kill(argv: list, run_dir: Path, trigger: int,
                 timeout: float) -> bool:
    """SIGKILL the runner's process group once the journal holds
    ``trigger`` records; True when the kill landed mid-run."""
    process = subprocess.Popen(argv, env=_env(), cwd=REPO,
                               start_new_session=True,
                               stdout=subprocess.DEVNULL,
                               stderr=subprocess.DEVNULL)
    deadline = time.time() + timeout
    try:
        while time.time() < deadline:
            if process.poll() is not None:
                return False
            if _journal_records(run_dir) >= trigger:
                os.killpg(process.pid, signal.SIGKILL)
                process.wait(timeout=30)
                return True
            time.sleep(0.002)
    finally:
        if process.poll() is None:
            os.killpg(process.pid, signal.SIGKILL)
            process.wait(timeout=30)
    return True


def churn_soak(ops: int, seed: int, num_blocks: int = 48,
               audit_every: int = 997) -> int:
    """Grind the CoW datapath; returns violations found (want 0)."""
    rng = random.Random(f"memory-torture|{seed}")
    allocator = BlockAllocator(num_blocks, 1024)
    owners = tuple(f"t{i}" for i in range(6))
    violations = 0
    copies = shares = refusals = repairs = 0
    for index in range(ops):
        owner = rng.choice(owners)
        mapping = allocator._mappings.get(owner, {})
        roll = rng.random()
        try:
            if roll < 0.35 or not mapping:
                allocator.allocate(owner, rng.randint(1, 3))
            elif roll < 0.55:
                allocator.share(owner, rng.choice(sorted(mapping)),
                                rng.choice(owners))
                shares += 1
            elif roll < 0.75:
                copies += allocator.write_fault(
                    owner, rng.choice(sorted(mapping)))
            else:
                allocator.deallocate(owner, rng.choice(sorted(mapping)))
        except AllocationError:
            refusals += 1
        if index % audit_every == audit_every - 1:
            # Corrupt the derived tables, then prove the audit heals
            # them completely and idempotently.
            block = rng.randrange(num_blocks)
            if rng.random() < 0.5:
                allocator.corrupt(block, rng.choice((None, "<ghost>")))
            else:
                allocator.corrupt_refcount(block, rng.randint(0, 5))
            repairs += allocator.audit()
            if allocator.verify() or allocator.audit() != 0:
                violations += 1
    for owner in owners:
        allocator.deallocate_all(owner)
    if allocator.free_blocks != num_blocks or allocator.verify():
        violations += 1
    print(f"      {ops} ops: {shares} shares, {copies} CoW copies, "
          f"{refusals} refusals, {repairs} audit repairs, "
          f"{violations} violation(s)")
    return violations


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="/tmp/memory-torture",
                        help="scratch directory for both campaign runs")
    parser.add_argument("--seed-root", default="42")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--kills", type=int, default=2)
    parser.add_argument("--trigger", type=int, default=3,
                        help="journaled records that arm each kill")
    parser.add_argument("--churn-ops", type=int, default=500_000)
    parser.add_argument("--timeout", type=float, default=900.0)
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized: one kill, 100k churn ops")
    args = parser.parse_args()
    if args.quick:
        args.kills = min(args.kills, 1)
        args.churn_ops = min(args.churn_ops, 100_000)

    out = Path(args.out)
    clean_dir = out / "clean"
    crashed_dir = out / "crashed"
    common = ["--builtin", "memory-pressure", "--seed-root",
              args.seed_root, "--workers", str(args.workers)]

    print(f"[1/4] clean memory-pressure run -> {clean_dir}")
    if run_to_completion(_cli("run", *common, "--out", str(clean_dir))):
        print("clean run failed", file=sys.stderr)
        return 1
    clean_digest = results_digest(load_results(clean_dir))
    print(f"      clean digest {clean_digest}")

    print(f"[2/4] crash run -> {crashed_dir} ({args.kills} kill(s))")
    interrupted = run_and_kill(
        _cli("run", *common, "--out", str(crashed_dir)),
        crashed_dir, args.trigger, args.timeout)
    kills = 1
    print(f"      kill #1 "
          f"{'landed mid-run' if interrupted else 'missed (run finished)'} "
          f"with {_journal_records(crashed_dir)} record(s) journaled")
    while kills < args.kills and interrupted:
        trigger = _journal_records(crashed_dir) + args.trigger
        interrupted = run_and_kill(
            _cli("resume", str(crashed_dir)), crashed_dir, trigger,
            args.timeout)
        kills += 1
        print(f"      kill #{kills} "
              f"{'landed mid-resume' if interrupted else 'missed'} "
              f"with {_journal_records(crashed_dir)} record(s) journaled")

    print("[3/4] final resume, then digest comparison")
    status = run_to_completion(_cli("resume", str(crashed_dir)))
    if status not in (0, 1):
        print(f"resume failed with exit {status}", file=sys.stderr)
        return 1
    crashed_digest = results_digest(load_results(crashed_dir))
    print(f"      clean   {clean_digest}")
    print(f"      resumed {crashed_digest}")
    if crashed_digest != clean_digest:
        print("DIGEST MISMATCH: resumed memory-pressure run is not "
              "equivalent to an uninterrupted one", file=sys.stderr)
        return 1

    print(f"[4/4] allocator churn soak ({args.churn_ops} ops)")
    if churn_soak(args.churn_ops, seed=int(args.seed_root)):
        print("CHURN VIOLATION: derived tables diverged from the "
              "mapping RAM", file=sys.stderr)
        return 1
    print("memory-pressure soak holds: digests equal, tables clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
