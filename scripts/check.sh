#!/usr/bin/env bash
# Repository check gate: lint (when ruff is installed) + the tier-1 suite.
#
# Usage: scripts/check.sh [extra pytest args]
set -euo pipefail

cd "$(dirname "$0")/.."

if command -v ruff >/dev/null 2>&1; then
    echo "== ruff =="
    ruff check src tests benchmarks examples
else
    echo "== ruff not installed; skipping lint =="
fi

echo "== pytest =="
PYTHONPATH=src python -m pytest -q "$@"
