#!/usr/bin/env bash
# Repository check gate: lint (when ruff is installed) + the tier-1 suite.
#
# Usage: scripts/check.sh [extra pytest args]
#
# Any ruff finding or test failure makes the script exit non-zero.
# Set CHECK_BENCH=1 to also run the benchmark guards (observability
# overhead + fault-hook overhead + matrix-kernel throughput +
# checkpoint overhead + flight-recorder idle overhead + service
# batched-reduction throughput + SoCDMMU pressure guards — what CI's
# benchmark job does).
set -euo pipefail

cd "$(dirname "$0")/.."

if command -v ruff >/dev/null 2>&1; then
    echo "== ruff =="
    ruff check src tests benchmarks examples
elif python -c "import ruff" >/dev/null 2>&1; then
    echo "== ruff (module) =="
    python -m ruff check src tests benchmarks examples
else
    echo "== ruff not installed; skipping lint =="
fi

echo "== pytest =="
PYTHONPATH=src python -m pytest -q "$@"

if [[ "${CHECK_BENCH:-0}" == "1" ]]; then
    echo "== obs overhead guard =="
    PYTHONPATH=src python -m pytest -q benchmarks/test_bench_obs_overhead.py
    echo "== fault-hook overhead guard =="
    PYTHONPATH=src python -m pytest -q benchmarks/test_bench_fault_overhead.py
    echo "== matrix kernel guard =="
    PYTHONPATH=src python -m pytest -q benchmarks/test_bench_matrix_kernels.py
    echo "== checkpoint overhead guard =="
    PYTHONPATH=src python -m pytest -q benchmarks/test_bench_checkpoint.py
    echo "== flight-recorder idle overhead guard =="
    PYTHONPATH=src python -m pytest -q benchmarks/test_bench_flight_overhead.py
    echo "== service batched-reduction guard =="
    PYTHONPATH=src python -m pytest -q benchmarks/test_bench_service.py
    echo "== socdmmu pressure guard =="
    PYTHONPATH=src python -m pytest -q benchmarks/test_bench_socdmmu_pressure.py
fi
