#!/usr/bin/env python
"""Service soak: 1k tenants, a SIGKILLed shard, zero wrong verdicts.

Starts a real server subprocess (``python -m repro.service`` with
process-backed shards), attaches ``--tenants`` seeded tenants, and
drives each through a seeded claim/release/detect stream while a local
:class:`~repro.service.tenant.Tenant` oracle replays every *acked*
mutation.  Midway, one worker shard is SIGKILLed by pid (taken from the
``shards`` admin op).  The soak fails — exit 1 — if:

* any detect verdict, iteration count, pass count or ``op_seq``
  disagrees with the oracle's replay of the acked prefix;
* any grant/blocked bit or promotion disagrees;
* the rebalance is not clean: the stats must show exactly one shard
  crash, every tenant of the dead shard rehomed to a live shard, and
  the post-kill stream finishing without a single ``shard-lost`` error.

With ``--chaos KIND[,KIND...]`` every client connection runs through a
:class:`~repro.service.chaos.ChaosTransport` injecting the named wire
faults (see :data:`~repro.service.chaos.NET_FAULT_KINDS`), and the
drivers switch to the retrying
:class:`~repro.service.client.ResilientServiceClient` — the oracle
checks are unchanged, so the soak doubles as an exactly-once proof
under packet loss, duplication and resets.

Usage::

    python scripts/service_soak.py [--tenants 1000] [--ops 10]
                                   [--shards 4] [--seed 42] [--quick]
                                   [--chaos drop,duplicate,reset]
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.rag.generate import resolve_rng                 # noqa: E402
from repro.service import (                                # noqa: E402
    NET_FAULT_KINDS,
    ChaosTransport,
    NetFaultPlan,
    NetFaultSpec,
    ResilientServiceClient,
    RetryPolicy,
    ServiceClient,
    ServiceOpError,
)
from repro.service.tenant import Tenant                    # noqa: E402

#: Soak-grade chaos table: rarer than the campaign checker's (the soak
#: pushes thousands of lines per connection), but every kind still
#: fires many times over a 100-tenant run.
_CHAOS_TABLE = {
    "delay": NetFaultSpec("delay", direction="both", at=5, every=17,
                          params={"delay_s": 0.002}),
    "drop": NetFaultSpec("drop", direction="s2c", at=7, every=41),
    "duplicate": NetFaultSpec("duplicate", direction="c2s", at=3,
                              every=23),
    "reorder": NetFaultSpec("reorder", direction="s2c", at=11,
                            every=53),
    "truncate": NetFaultSpec("truncate", direction="s2c", at=9,
                             every=61),
    "corrupt": NetFaultSpec("corrupt", direction="s2c", at=13,
                            every=67, params={"span": 6}),
    "reset": NetFaultSpec("reset", direction="c2s", at=43, every=131),
    "slow_loris": NetFaultSpec("slow_loris", direction="s2c", at=19,
                               every=97, params={"pause_s": 0.01}),
}

_CHAOS_POLICY = RetryPolicy(
    deadline_ms=8000.0, request_timeout_s=0.5, max_attempts=12,
    backoff_base_s=0.005, backoff_cap_s=0.05, fail_threshold=8,
    recover_after=1, cooldown_s=0.02)


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tenants", type=int, default=1000)
    parser.add_argument("--ops", type=int, default=10,
                        help="operations per tenant (default 10)")
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--clients", type=int, default=8,
                        help="parallel client connections (default 8)")
    parser.add_argument("--quick", action="store_true",
                        help="100 tenants x 8 ops (smoke mode)")
    parser.add_argument("--chaos", default=None, metavar="KINDS",
                        help="comma-separated wire fault kinds to "
                             "inject between clients and server "
                             f"(any of: {', '.join(NET_FAULT_KINDS)})")
    args = parser.parse_args()
    if args.chaos:
        args.chaos = [kind.strip() for kind in args.chaos.split(",")
                      if kind.strip()]
        unknown = [kind for kind in args.chaos
                   if kind not in _CHAOS_TABLE]
        if unknown:
            parser.error(f"unknown chaos kind(s): {', '.join(unknown)}")
    if args.quick:
        args.tenants = min(args.tenants, 100)
        args.ops = min(args.ops, 8)
    return args


def start_server(shards: int) -> tuple:
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.service", "--shards", str(shards),
         "--port", "0"],
        cwd=str(REPO), stdout=subprocess.PIPE, text=True,
        env={**os.environ, "PYTHONPATH": str(REPO / "src")})
    line = process.stdout.readline()
    ready = json.loads(line)
    assert ready.get("ready"), f"server not ready: {ready}"
    return process, ready


class SoakFailure(AssertionError):
    pass


async def drive_tenant(client: ServiceClient, tenant_id: str,
                       seed: int, ops: int, errors: list) -> None:
    """One tenant's stream, oracle-checked response by response."""
    spec = {"seed": seed, "m": 12, "n": 12}
    await client.attach(tenant_id, **spec)
    oracle = Tenant.from_attach(tenant_id, spec)
    rng = resolve_rng(seed=seed ^ 0x5EED)
    for step in range(ops):
        if step % 4 == 3:
            reply = await client.detect(tenant_id)
            solo = oracle.matrix.copy()
            iterations, passes = solo.reduce()
            expected = (not solo.is_empty(), iterations, passes,
                        oracle.op_seq)
            got = (reply["deadlock"], reply["iterations"],
                   reply["passes"], reply["op_seq"])
            if got != expected:
                errors.append(f"{tenant_id} detect @ {step}: "
                              f"service {got} != oracle {expected}")
            continue
        process = f"p{rng.randrange(1, 13)}"
        resource = f"q{rng.randrange(1, 13)}"
        op = {"process": process, "resource": resource}
        kind = "release" if rng.random() < 0.4 else "claim"
        try:
            expected = (oracle.claim(dict(op)) if kind == "claim"
                        else oracle.release(dict(op)))
            code = None
        except ServiceOpError as exc:
            expected, code = None, exc.code
        try:
            reply = (await client.claim(tenant_id, process, resource)
                     if kind == "claim"
                     else await client.release(tenant_id, process,
                                               resource))
            got_code = None
        except ServiceOpError as exc:
            reply, got_code = None, exc.code
        if got_code != code:
            errors.append(f"{tenant_id} {kind} @ {step}: error "
                          f"{got_code} != oracle {code}")
        elif expected is not None:
            key = "granted" if kind == "claim" else "promoted"
            if (reply[key] != expected[key]
                    or reply["op_seq"] != expected["op_seq"]):
                errors.append(
                    f"{tenant_id} {kind} @ {step}: {key} "
                    f"{reply[key]!r}/{reply['op_seq']} != oracle "
                    f"{expected[key]!r}/{expected['op_seq']}")


async def soak(args: argparse.Namespace, port: int,
               shard_pids: dict) -> dict:
    proxy = None
    # The admin connection always talks straight to the server: stats
    # and the shard-pid lookup must not be lost to injected faults.
    admin = await ServiceClient.connect_tcp("127.0.0.1", port)
    if args.chaos:
        plan = NetFaultPlan(
            name="soak-chaos", seed=args.seed,
            specs=[_CHAOS_TABLE[kind] for kind in args.chaos])
        proxy = ChaosTransport(plan, target_host="127.0.0.1",
                               target_port=port)
        await proxy.start()
        clients = [
            ResilientServiceClient.tcp(
                "127.0.0.1", proxy.listen_port, policy=_CHAOS_POLICY,
                seed=args.seed + index, tag=f"soak{index}")
            for index in range(args.clients)]
    else:
        clients = [await ServiceClient.connect_tcp("127.0.0.1", port)
                   for _ in range(args.clients)]
    errors: list = []
    try:
        # Phase 1: first half of the population, full streams.
        half = args.tenants // 2
        await asyncio.gather(*(
            drive_tenant(clients[index % len(clients)], f"t{index}",
                         args.seed * 1_000 + index, args.ops, errors)
            for index in range(half)))

        # SIGKILL the busiest shard mid-run.
        shards = (await admin.shards())["shards"]
        victim = max((shard for shard in shards if shard["alive"]),
                     key=lambda shard: shard["tenants"])
        victim_tenants = victim["tenants"]
        os.kill(victim["pid"], signal.SIGKILL)
        killed_at = time.perf_counter()

        # Phase 2: the second half attaches and runs *through* the
        # recovery; phase-1 tenants keep detecting.
        await asyncio.gather(*(
            drive_tenant(clients[index % len(clients)], f"t{index}",
                         args.seed * 1_000 + index, args.ops, errors)
            for index in range(half, args.tenants)))
        recheck = [asyncio.ensure_future(
            clients[index % len(clients)].detect(f"t{index}"))
            for index in range(0, half, max(1, half // 50))]
        for reply in await asyncio.gather(*recheck,
                                          return_exceptions=True):
            if isinstance(reply, Exception):
                errors.append(f"post-kill detect failed: {reply}")

        stats = await admin.stats()
        shards_after = (await admin.shards())["shards"]
        alive = [shard for shard in shards_after if shard["alive"]]
        if stats["shard_crashes"] != 1:
            errors.append(f"expected exactly 1 shard crash, stats say "
                          f"{stats['shard_crashes']}")
        if stats["rebalanced_tenants"] != victim_tenants:
            errors.append(
                f"rebalance not clean: {victim_tenants} tenants lived "
                f"on the dead shard, {stats['rebalanced_tenants']} "
                "were rehomed")
        if len(alive) != args.shards - 1:
            errors.append(f"expected {args.shards - 1} live shards, "
                          f"found {len(alive)}")
        homed = sum(shard["tenants"] for shard in alive)
        if homed != stats["tenants"]:
            errors.append(f"{stats['tenants']} tenants but only "
                          f"{homed} homed on live shards")
        # Incremental-reduction health: how much per-tick work the
        # dirty-tenant tracking actually saved on the live shards.
        def tally(key):
            return sum(shard.get(key, 0) for shard in alive)

        dirty = tally("dirty_tenants")
        skipped = tally("skipped_detects")
        considered = dirty + skipped
        chaos_report = {}
        if proxy is not None:
            chaos_report = {
                "chaos_kinds": list(args.chaos),
                "chaos_plan_hash": plan.plan_hash()[:12],
                "net_faults_fired": {
                    kind: count
                    for kind, count in sorted(proxy.fired.items())
                    if count},
                "client_reconnects": sum(
                    max(0, client.connects - 1) for client in clients),
                "server_deduped": stats.get("deduped"),
                "deadline_exceeded": stats.get("deadline_exceeded"),
            }
            if not chaos_report["net_faults_fired"]:
                errors.append("chaos proxy injected no faults at all")
        return {
            **chaos_report,
            "tenants": args.tenants,
            "ops_per_tenant": args.ops,
            "requests": stats["requests"],
            "detects": stats["detects"],
            "batches": stats["batches"],
            "shard_killed": victim["shard"],
            "kill_to_done_s": time.perf_counter() - killed_at,
            "rebalanced_tenants": stats["rebalanced_tenants"],
            "journal_replayed": stats["journal_replayed"],
            "detect_batches": tally("detect_batches"),
            "dirty_tenants_reduced": dirty,
            "clean_detects_skipped": skipped,
            "dirty_fraction": (dirty / considered) if considered else None,
            "plane_repacks": tally("repacks"),
            "plane_grows": tally("plane_grows"),
            "unpacked_fallbacks": tally("unpacked_fallbacks"),
            "p99_grant_us": stats["grant_latency"].get("p99_us"),
            "p99_verdict_us": stats["verdict_latency"].get("p99_us"),
            "errors": errors,
        }
    finally:
        try:
            await admin.shutdown()
        except Exception:
            pass
        for client in clients:
            await client.close()
        await admin.close()
        if proxy is not None:
            await proxy.stop()


def main() -> int:
    args = parse_args()
    server, ready = start_server(args.shards)
    try:
        report = asyncio.run(soak(
            args, ready["port"],
            {shard["shard"]: shard["pid"]
             for shard in ready["shards"]}))
    finally:
        server.terminate()
        try:
            server.wait(timeout=10)
        except subprocess.TimeoutExpired:
            server.kill()
    errors = report.pop("errors")
    print(json.dumps(report, indent=2))
    if errors:
        print(f"SOAK FAILED: {len(errors)} mismatch(es)",
              file=sys.stderr)
        for error in errors[:20]:
            print(f"  {error}", file=sys.stderr)
        return 1
    fraction = report["dirty_fraction"]
    dirtiness = (f"{fraction:.1%} of considered tenants dirty"
                 if fraction is not None else "no detects observed")
    chaos_note = ""
    if report.get("chaos_kinds"):
        fired = sum(report["net_faults_fired"].values())
        chaos_note = (f"; {fired} wire fault(s) "
                      f"({'+'.join(report['chaos_kinds'])}) absorbed "
                      f"by {report['client_reconnects']} reconnect(s) "
                      f"and {report['server_deduped']:g} server "
                      "dedup(s)")
    print(f"soak OK: {report['tenants']} tenants, "
          f"{report['requests']:g} requests, shard "
          f"{report['shard_killed']} SIGKILLed and absorbed; "
          f"{dirtiness} across {report['plane_repacks']} plane "
          f"repack(s){chaos_note}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
