"""Tests for the prior-work baselines (Holt, reduction, Leibfried,
Banker's)."""

import random

import pytest

from repro.errors import ResourceProtocolError
from repro.rag.classic import (
    BankersAvoider,
    graph_reduction_detect,
    holt_detect,
    leibfried_detect,
)
from repro.rag.generate import (
    chain_state,
    cycle_state,
    deadlock_free_state,
    random_state,
)

DETECTORS = [holt_detect, graph_reduction_detect, leibfried_detect]


@pytest.mark.parametrize("detect", DETECTORS)
def test_detects_cycle(detect):
    assert detect(cycle_state(3)).deadlock


@pytest.mark.parametrize("detect", DETECTORS)
def test_chain_is_clean(detect):
    assert not detect(chain_state(4)).deadlock


@pytest.mark.parametrize("detect", DETECTORS)
def test_agrees_with_dfs_oracle_on_random_states(detect):
    rng = random.Random(1234)
    for _ in range(60):
        state = random_state(4, 4, rng=rng)
        assert detect(state).deadlock == state.has_cycle()


@pytest.mark.parametrize("detect", DETECTORS)
def test_ordered_states_never_deadlock(detect):
    rng = random.Random(99)
    for _ in range(40):
        state = deadlock_free_state(5, 5, rng=rng)
        assert not detect(state).deadlock


def test_operation_counts_scale():
    small = leibfried_detect(chain_state(3)).operations
    large = leibfried_detect(chain_state(6)).operations
    assert large > small > 0


# -- Banker's algorithm -------------------------------------------------------

def _bankers():
    return BankersAvoider(
        total={"A": 10, "B": 5},
        claims={"p1": {"A": 7, "B": 2}, "p2": {"A": 5, "B": 3}})


def test_bankers_grants_safe_request():
    banker = _bankers()
    assert banker.request("p1", "A", 3)
    assert banker.allocation["p1"]["A"] == 3


def test_bankers_denies_unsafe_request():
    banker = BankersAvoider(
        total={"A": 2},
        claims={"p1": {"A": 2}, "p2": {"A": 2}})
    assert banker.request("p1", "A", 1)
    # Granting p2 one unit leaves no way for either to reach its claim.
    assert not banker.request("p2", "A", 1)
    # The denied request must not leak allocation.
    assert banker.allocation["p2"]["A"] == 0


def test_bankers_denies_when_unavailable():
    banker = _bankers()
    assert banker.request("p1", "A", 7)
    # Only 3 units of A remain; p2's claim allows 5 but they are not
    # available right now.
    assert not banker.request("p2", "A", 5)


def test_bankers_rejects_claim_violation():
    banker = _bankers()
    with pytest.raises(ResourceProtocolError):
        banker.request("p1", "A", 8)


def test_bankers_release_and_reuse():
    banker = _bankers()
    assert banker.request("p1", "A", 5)
    banker.release("p1", "A", 5)
    assert banker.available()["A"] == 10


def test_bankers_release_more_than_held_rejected():
    banker = _bankers()
    with pytest.raises(ResourceProtocolError):
        banker.release("p1", "A", 1)


def test_bankers_rejects_overlarge_claim():
    with pytest.raises(ResourceProtocolError):
        BankersAvoider(total={"A": 1}, claims={"p1": {"A": 5}})


def test_bankers_safe_initial_state():
    assert _bankers().is_safe()
