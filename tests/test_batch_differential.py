"""Differential suite: the batched plane === the per-tenant kernel.

Every case builds an ensemble of seeded states, reduces it once through
:class:`~repro.rag.batch.BatchPlane` (or the Python fallback) and once
through per-tenant :meth:`BitMatrix.reduce`, and demands bit-identical
iterations, passes, verdicts and residual cells — the same contract
``tests/test_bitmatrix_equiv.py`` holds between BitMatrix and the
cell-object reference.  The parametrized ensembles cover > 100 seeded
cases plus the structured adversaries (chains, cycles, worst cases) and
mixed-shape packing.
"""

import pytest

from repro.rag.batch import (
    HAS_NUMPY,
    MAX_PACKED_SIDE,
    BatchPlane,
    PythonBatchPlane,
    batch_plane,
    batched_reduce,
)
from repro.rag.bitmatrix import BitMatrix
from repro.rag.generate import (
    chain_state,
    cycle_state,
    deadlock_free_state,
    random_state,
    worst_case_state,
)

needs_numpy = pytest.mark.skipif(not HAS_NUMPY,
                                 reason="numpy not installed")

#: (m, n, grant_fraction, request_fraction) shape mix per ensemble.
SHAPES = ((3, 3, 0.5, 0.3), (5, 8, 0.6, 0.3), (8, 5, 0.8, 0.5),
          (16, 16, 0.7, 0.4), (32, 24, 0.9, 0.5), (1, 1, 0.6, 0.3))


def _ensemble(seed_root: int) -> list:
    states = []
    for offset, (m, n, grants, requests) in enumerate(SHAPES):
        states.append(random_state(
            m, n, grant_fraction=grants, request_fraction=requests,
            seed=seed_root * 100 + offset))
    return states


def _assert_matches_per_tenant(states, vectorized) -> None:
    plane = batch_plane(states, vectorized=vectorized)
    batch_counts = plane.reduce_all()
    batch_verdicts = plane.deadlocked()
    for index, state in enumerate(states):
        solo = BitMatrix.from_rag(state) if not isinstance(
            state, BitMatrix) else state.copy()
        solo_counts = solo.reduce()
        assert batch_counts[index] == solo_counts, (
            f"tenant {index}: batched {batch_counts[index]} != "
            f"per-tenant {solo_counts}")
        assert batch_verdicts[index] == (not solo.is_empty())
        residual = plane.residual(index)
        assert residual == solo, f"tenant {index}: residual cells differ"
        assert residual.edge_count == solo.edge_count


@needs_numpy
@pytest.mark.parametrize("seed_root", range(18))
def test_vectorized_matches_per_tenant_random(seed_root):
    """18 ensembles x 6 shapes = 108 seeded random cases."""
    _assert_matches_per_tenant(_ensemble(seed_root), vectorized=True)


@pytest.mark.parametrize("seed_root", range(4))
def test_python_fallback_matches_per_tenant(seed_root):
    _assert_matches_per_tenant(_ensemble(seed_root), vectorized=False)


@needs_numpy
def test_structured_adversaries_match():
    """Chains (deepest reduction), cycles (irreducible), worst cases."""
    states = [chain_state(2), chain_state(17), chain_state(32),
              cycle_state(2), cycle_state(9), cycle_state(24),
              worst_case_state(12, 31), worst_case_state(31, 12),
              deadlock_free_state(10, 10, seed=7)]
    _assert_matches_per_tenant(states, vectorized=True)


@needs_numpy
def test_mixed_shapes_pack_inertly():
    """Padding rows/columns never read as terminal or leak edges."""
    states = [random_state(2, 11, seed=1), random_state(11, 2, seed=2),
              random_state(7, 7, seed=3), cycle_state(3)]
    results = batched_reduce(states, vectorized=True)
    for (deadlock, iterations, passes, residual), state in zip(results,
                                                               states):
        solo = BitMatrix.from_rag(state)
        solo_iters, solo_passes = solo.reduce()
        assert (iterations, passes) == (solo_iters, solo_passes)
        assert deadlock == (not solo.is_empty())
        assert residual == solo
        assert (residual.m, residual.n) == (state.num_resources,
                                            state.num_processes)


@needs_numpy
def test_vectorized_and_fallback_agree():
    states = _ensemble(99)
    fast = batched_reduce(states, vectorized=True)
    slow = batched_reduce(states, vectorized=False)
    for (fd, fi, fp, fres), (sd, si, sp, sres) in zip(fast, slow):
        assert (fd, fi, fp) == (sd, si, sp)
        assert fres == sres


@needs_numpy
def test_oversize_tenant_rejected_and_falls_back():
    from repro.errors import ConfigurationError
    big = worst_case_state(MAX_PACKED_SIDE + 1, 4)
    with pytest.raises(ConfigurationError):
        BatchPlane([big])
    plane = batch_plane([big])          # auto-fallback
    assert isinstance(plane, PythonBatchPlane)
    (iterations, passes), = plane.reduce_all()
    solo = BitMatrix.from_rag(big)
    assert (iterations, passes) == solo.reduce()


def test_empty_ensemble_rejected():
    from repro.errors import ConfigurationError
    with pytest.raises(ConfigurationError):
        batch_plane([])


@needs_numpy
def test_residuals_are_independent_copies():
    states = [cycle_state(4)]
    plane = BatchPlane(states)
    plane.reduce_all()
    first = plane.residual(0)
    first.clear_row(0)
    assert plane.residual(0).edge_count == 8  # plane unaffected
