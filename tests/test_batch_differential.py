"""Differential suite: the batched plane === the per-tenant kernel.

Every case builds an ensemble of seeded states, reduces it once through
:class:`~repro.rag.batch.BatchPlane` (or the Python fallback) and once
through per-tenant :meth:`BitMatrix.reduce`, and demands bit-identical
iterations, passes, verdicts and residual cells — the same contract
``tests/test_bitmatrix_equiv.py`` holds between BitMatrix and the
cell-object reference.  The parametrized ensembles cover > 100 seeded
cases plus the structured adversaries (chains, cycles, worst cases),
mixed-shape packing, multi-word (65x65 / 100x100 / 128x128) planes,
and the persistent :class:`~repro.rag.batch.PlaneAccumulator` under
seeded random op streams.
"""

import random

import pytest

from repro.rag.batch import (
    HAS_NUMPY,
    PLANE_WORD_BITS,
    BatchPlane,
    PythonBatchPlane,
    batch_plane,
    batched_reduce,
    plane_words,
)
from repro.rag.bitmatrix import BitMatrix
from repro.rag.generate import (
    chain_state,
    cycle_state,
    deadlock_free_state,
    random_state,
    worst_case_state,
)
from repro.rag.matrix import CellState

SEED_ROOT = 42

needs_numpy = pytest.mark.skipif(not HAS_NUMPY,
                                 reason="numpy not installed")

#: (m, n, grant_fraction, request_fraction) shape mix per ensemble.
SHAPES = ((3, 3, 0.5, 0.3), (5, 8, 0.6, 0.3), (8, 5, 0.8, 0.5),
          (16, 16, 0.7, 0.4), (32, 24, 0.9, 0.5), (1, 1, 0.6, 0.3))


def _ensemble(seed_root: int) -> list:
    states = []
    for offset, (m, n, grants, requests) in enumerate(SHAPES):
        states.append(random_state(
            m, n, grant_fraction=grants, request_fraction=requests,
            seed=seed_root * 100 + offset))
    return states


def _assert_matches_per_tenant(states, vectorized) -> None:
    plane = batch_plane(states, vectorized=vectorized)
    batch_counts = plane.reduce_all()
    batch_verdicts = plane.deadlocked()
    for index, state in enumerate(states):
        solo = BitMatrix.from_rag(state) if not isinstance(
            state, BitMatrix) else state.copy()
        solo_counts = solo.reduce()
        assert batch_counts[index] == solo_counts, (
            f"tenant {index}: batched {batch_counts[index]} != "
            f"per-tenant {solo_counts}")
        assert batch_verdicts[index] == (not solo.is_empty())
        residual = plane.residual(index)
        assert residual == solo, f"tenant {index}: residual cells differ"
        assert residual.edge_count == solo.edge_count


@needs_numpy
@pytest.mark.parametrize("seed_root", range(18))
def test_vectorized_matches_per_tenant_random(seed_root):
    """18 ensembles x 6 shapes = 108 seeded random cases."""
    _assert_matches_per_tenant(_ensemble(seed_root), vectorized=True)


@pytest.mark.parametrize("seed_root", range(4))
def test_python_fallback_matches_per_tenant(seed_root):
    _assert_matches_per_tenant(_ensemble(seed_root), vectorized=False)


@needs_numpy
def test_structured_adversaries_match():
    """Chains (deepest reduction), cycles (irreducible), worst cases."""
    states = [chain_state(2), chain_state(17), chain_state(32),
              cycle_state(2), cycle_state(9), cycle_state(24),
              worst_case_state(12, 31), worst_case_state(31, 12),
              deadlock_free_state(10, 10, seed=7)]
    _assert_matches_per_tenant(states, vectorized=True)


@needs_numpy
def test_mixed_shapes_pack_inertly():
    """Padding rows/columns never read as terminal or leak edges."""
    states = [random_state(2, 11, seed=1), random_state(11, 2, seed=2),
              random_state(7, 7, seed=3), cycle_state(3)]
    results = batched_reduce(states, vectorized=True)
    for (deadlock, iterations, passes, residual), state in zip(results,
                                                               states):
        solo = BitMatrix.from_rag(state)
        solo_iters, solo_passes = solo.reduce()
        assert (iterations, passes) == (solo_iters, solo_passes)
        assert deadlock == (not solo.is_empty())
        assert residual == solo
        assert (residual.m, residual.n) == (state.num_resources,
                                            state.num_processes)


@needs_numpy
def test_vectorized_and_fallback_agree():
    states = _ensemble(99)
    fast = batched_reduce(states, vectorized=True)
    slow = batched_reduce(states, vectorized=False)
    for (fd, fi, fp, fres), (sd, si, sp, sres) in zip(fast, slow):
        assert (fd, fi, fp) == (sd, si, sp)
        assert fres == sres


@needs_numpy
@pytest.mark.parametrize("m,n", [(65, 65), (100, 100), (128, 128),
                                 (65, 4), (4, 65), (128, 24)])
def test_multiword_planes_match_per_tenant(m, n):
    """Sides past one word pack into ceil(side/64) words, same bits.

    The old single-word plane rejected anything wider than 64; these
    ensembles must now ride the vectorized kernel (no fallback) and
    stay bit-identical to per-tenant reduction.
    """
    states = [random_state(m, n, grant_fraction=0.7,
                           request_fraction=0.4,
                           seed=SEED_ROOT * 1000 + m * 7 + n + index)
              for index in range(4)]
    states.append(worst_case_state(m, n))
    plane = batch_plane(states)
    assert plane.vectorized, "wide tenants must not fall back"
    assert plane.words_per_row == plane_words(n)
    assert plane.words_per_column == plane_words(m)
    _assert_matches_per_tenant(states, vectorized=True)


@needs_numpy
@pytest.mark.parametrize("side", [65, 100, 128])
def test_multiword_random_op_streams(side):
    """Drive a wide matrix through a seeded op stream; after every few
    mutations the batched reduction of a copy must equal the solo
    kernel's — the multi-word analogue of the service tick."""
    rng = random.Random(SEED_ROOT * side)
    matrix = BitMatrix(side, side)
    for step in range(120):
        s = rng.randrange(side)
        t = rng.randrange(side)
        cell = matrix.get(s, t)
        if cell is CellState.EMPTY:
            if matrix.row_bwo(s)[1] == 0:
                matrix.set_grant(s, t)
            else:
                matrix.set_request(s, t)
        else:
            matrix.clear(s, t)
        if step % 10 == 9:
            plane = BatchPlane([matrix])
            (iterations, passes), = plane.reduce_all()
            solo = matrix.copy()
            assert (iterations, passes) == solo.reduce()
            assert plane.residual(0) == solo


def test_word_width_unbounded():
    """There is no packing width limit anymore, only word growth."""
    assert plane_words(1) == 1
    assert plane_words(64) == 1
    assert plane_words(65) == 2
    assert plane_words(128) == 2
    assert plane_words(129) == 3
    assert PLANE_WORD_BITS == 64


@needs_numpy
def test_fallback_is_observable():
    """An automatic drop to the sequential plane must leave a trace:
    the ``matrix.batch.unpacked_fallbacks`` counter and a flight
    event.  (With numpy importable the automatic path never falls
    back, so force the decision by faking HAS_NUMPY off.)"""
    from repro.obs import Observability
    import repro.rag.batch as batch_module

    obs = Observability(label="fallback-test")
    obs.flight.enable()
    original = batch_module.HAS_NUMPY
    batch_module.HAS_NUMPY = False
    try:
        plane = batch_module.batch_plane(
            [cycle_state(4)], obs=obs)
    finally:
        batch_module.HAS_NUMPY = original
    assert isinstance(plane, PythonBatchPlane)
    counter = obs.metrics.counter(
        "matrix.batch.unpacked_fallbacks", "")
    assert counter.value == 1
    kinds = [event["kind"] for event in obs.flight.events()]
    assert "batch_unpacked_fallback" in kinds
    # An explicit vectorized=False is a deliberate choice: no signal.
    batch_module.batch_plane([cycle_state(4)], vectorized=False,
                             obs=obs)
    assert counter.value == 1


def test_empty_ensemble_rejected():
    from repro.errors import ConfigurationError
    with pytest.raises(ConfigurationError):
        batch_plane([])


@needs_numpy
def test_residuals_are_independent_copies():
    states = [cycle_state(4)]
    plane = BatchPlane(states)
    plane.reduce_all()
    first = plane.residual(0)
    first.clear_row(0)
    assert plane.residual(0).edge_count == 8  # plane unaffected


# -- the persistent accumulator (the service tick path) -----------------

@needs_numpy
def test_accumulator_matches_batch_plane():
    """add() + reduce() must equal a fresh BatchPlane reduction, and
    the persistent planes must survive the reduction untouched."""
    from repro.rag.batch import PlaneAccumulator

    matrices = [BitMatrix.from_rag(state) for state in _ensemble(7)]
    acc = PlaneAccumulator()
    slots = [acc.add(matrix) for matrix in matrices]
    assert acc.repacks == len(matrices)
    reduction = acc.reduce(slots)
    for position, matrix in enumerate(matrices):
        solo = matrix.copy()
        counts = solo.reduce()
        assert reduction.counts(position) == counts
        assert reduction.deadlocked(position) == (not solo.is_empty())
        assert reduction.residual(position, matrix) == solo
    # Scratch semantics: reducing the same slots again gives the same
    # answer — the persistent planes were not consumed.
    again = acc.reduce(slots)
    for position in range(len(matrices)):
        assert again.counts(position) == reduction.counts(position)


@needs_numpy
@pytest.mark.parametrize("side", [12, 65, 100])
def test_accumulator_incremental_updates(side):
    """In-place row/column refreshes track a seeded op stream exactly —
    no repack between mutations, including across the word boundary."""
    from repro.rag.batch import PlaneAccumulator

    acc = PlaneAccumulator()
    matrix = BitMatrix(side, side)
    slot = acc.add(matrix)
    rng = random.Random(SEED_ROOT * 31 + side)
    for step in range(150):
        s = rng.randrange(side)
        t = rng.randrange(side)
        cell = matrix.get(s, t)
        if cell is CellState.EMPTY:
            if matrix.row_bwo(s)[1] == 0:
                matrix.set_grant(s, t)
            else:
                matrix.set_request(s, t)
        else:
            matrix.clear(s, t)
        acc.update(slot, matrix, s, t)
        if step % 15 == 14:
            reduction = acc.reduce([slot])
            solo = matrix.copy()
            assert reduction.counts(0) == solo.reduce()
            assert reduction.residual(0, matrix) == solo
    assert acc.repacks == 1, "updates must never trigger a repack"


@needs_numpy
def test_accumulator_slot_recycling_and_growth():
    """remove() recycles slots zeroed; geometry grows for wider
    late-comers without disturbing existing tenants."""
    from repro.rag.batch import PlaneAccumulator

    acc = PlaneAccumulator()
    small = BitMatrix.from_rag(cycle_state(4))
    slot_a = acc.add(small)
    acc.remove(slot_a)
    replacement = BitMatrix.from_rag(chain_state(3))
    slot_b = acc.add(replacement)
    assert slot_b == slot_a, "freed slot should be recycled"
    reduction = acc.reduce([slot_b])
    solo = replacement.copy()
    assert reduction.counts(0) == solo.reduce()
    assert reduction.residual(0, replacement) == solo
    # A 100-wide tenant forces envelope + word growth; the recycled
    # small tenant must still reduce identically afterwards.
    wide = BitMatrix.from_rag(worst_case_state(100, 100))
    slot_c = acc.add(wide)
    assert acc.grows >= 1
    reduction = acc.reduce([slot_b, slot_c])
    solo_small, solo_wide = replacement.copy(), wide.copy()
    assert reduction.counts(0) == solo_small.reduce()
    assert reduction.counts(1) == solo_wide.reduce()
    assert reduction.residual(1, wide) == solo_wide
