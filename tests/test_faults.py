"""Unit tests for the fault-injection package (`repro.faults`).

Plans round-trip and validate, the injector counts visits the way the
docs promise, the health FSM walks HEALTHY/SUSPECT/FAILED/RECOVERING
correctly, and the resilient wrappers fail over and fail back against
real units driven by real fault plans.
"""

import pytest

from repro.deadlock.dau import DAU
from repro.deadlock.ddu import DDU
from repro.deadlock.pdda import pdda_detect
from repro.errors import ConfigurationError
from repro.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    HealthState,
    ResiliencePolicy,
    ResilientAvoider,
    ResilientDetector,
    UnitHealth,
    install_fault_plan,
)
from repro.faults.injector import force_cell
from repro.framework.builder import build_system
from repro.rag.graph import RAG
from repro.rag.matrix import CellState, StateMatrix


def _plan(*specs, name="p") -> FaultPlan:
    return FaultPlan(name=name, specs=tuple(specs))


class TestFaultPlan:
    def test_json_round_trip_preserves_hash(self):
        plan = _plan(
            FaultSpec("ddu.matrix", "stuck", at=3, duration=4,
                      params={"row": 1, "col": 2, "value": "g"}),
            FaultSpec("bus.bus", "timeout", master="PE1",
                      params={"extra_cycles": 32}),
            name="round-trip")
        back = FaultPlan.from_json(plan.to_json())
        assert back == plan
        assert back.plan_hash() == plan.plan_hash()

    def test_hash_changes_with_any_field(self):
        a = _plan(FaultSpec("ddu.hang", "hang", at=1))
        b = _plan(FaultSpec("ddu.hang", "hang", at=2))
        assert a.plan_hash() != b.plan_hash()

    def test_unknown_site_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault site"):
            _plan(FaultSpec("fpu.pipeline", "hang")).validate()

    def test_kind_must_match_site(self):
        with pytest.raises(ConfigurationError, match="supports kinds"):
            _plan(FaultSpec("ddu.matrix", "hang")).validate()

    def test_bus_sites_match_by_prefix(self):
        _plan(FaultSpec("bus.anything", "error")).validate()
        with pytest.raises(ConfigurationError, match="supports kinds"):
            _plan(FaultSpec("bus.anything", "stuck")).validate()

    def test_schedule_bounds_validated(self):
        with pytest.raises(ConfigurationError, match="at must be"):
            FaultSpec("ddu.hang", "hang", at=-1).validate()
        with pytest.raises(ConfigurationError, match="duration"):
            FaultSpec("ddu.hang", "hang", duration=0).validate()
        with pytest.raises(ConfigurationError, match="name"):
            FaultPlan(name="").validate()

    def test_malformed_json_rejected(self):
        with pytest.raises(ConfigurationError, match="not JSON"):
            FaultPlan.from_json("{nope")
        with pytest.raises(ConfigurationError, match="malformed"):
            FaultPlan.from_dict({"specs": []})

    def test_sites_sorted_and_unique(self):
        plan = _plan(FaultSpec("ddu.hang", "hang"),
                     FaultSpec("bus.bus", "error"),
                     FaultSpec("ddu.hang", "hang", at=5))
        assert plan.sites() == ("bus.bus", "ddu.hang")


class TestFaultInjector:
    def test_visit_window(self):
        injector = FaultInjector(_plan(
            FaultSpec("ddu.hang", "hang", at=2, duration=2)))
        hits = [bool(injector.fire("ddu.hang")) for _ in range(5)]
        assert hits == [False, False, True, True, False]
        assert [r.visit for r in injector.records] == [2, 3]

    def test_master_filter_counts_per_key(self):
        injector = FaultInjector(_plan(
            FaultSpec("bus.bus", "error", at=1, master="M2")))
        # M1 traffic never matches and never advances M2's counter.
        assert not injector.fire("bus.bus", "M1")
        assert not injector.fire("bus.bus", "M2")      # M2 visit 0
        assert not injector.fire("bus.bus", "M1")
        hit = injector.fire("bus.bus", "M2")           # M2 visit 1
        assert hit and hit[0].kind == "error"
        record = injector.records[0]
        assert (record.site, record.key, record.visit) == ("bus.bus", "M2", 1)

    def test_unplanned_sites_count_total_visits_only(self):
        injector = FaultInjector(_plan(FaultSpec("ddu.hang", "hang")))
        injector.fire("dau.hang")
        injector.fire("dau.hang")
        assert injector.visits == 2
        assert injector.visits_of("dau.hang") == 0     # no specs there
        injector.fire("ddu.hang")
        assert injector.visits == 3
        assert injector.visits_of("ddu.hang") == 1

    def test_invalid_plan_rejected_at_construction(self):
        with pytest.raises(ConfigurationError):
            FaultInjector(_plan(FaultSpec("nope", "hang")))


class TestForceCell:
    def test_grant_upset_moves_the_grant(self):
        matrix = StateMatrix(2, 3)
        matrix.set_grant(0, 0)
        force_cell(matrix, 0, 2, "g")
        assert matrix.get(0, 0) is CellState.EMPTY
        assert matrix.get(0, 2) is CellState.GRANT

    def test_request_and_clear_upsets(self):
        matrix = StateMatrix(2, 2)
        matrix.set_grant(1, 1)
        force_cell(matrix, 1, 1, "r")
        assert matrix.get(1, 1) is CellState.REQUEST
        force_cell(matrix, 1, 1, ".")
        assert matrix.get(1, 1) is CellState.EMPTY


class TestUnitHealth:
    def test_fail_threshold_path(self):
        health = UnitHealth("ddu", fail_threshold=3)
        assert health.anomaly("x") is HealthState.SUSPECT
        assert health.anomaly("x") is HealthState.SUSPECT
        assert health.anomaly("x") is HealthState.FAILED
        assert health.failed and health.anomalies == 3

    def test_clean_checks_recover_a_suspect(self):
        health = UnitHealth("ddu", fail_threshold=3, recover_after=2)
        health.anomaly("blip")
        assert health.clean() is HealthState.SUSPECT   # streak 1 of 2
        assert health.clean() is HealthState.HEALTHY

    def test_clean_resets_the_anomaly_streak(self):
        health = UnitHealth("ddu", fail_threshold=2)
        health.anomaly("x")
        health.clean()
        health.anomaly("x")                            # streak restarts
        assert health.state is HealthState.SUSPECT

    def test_recovery_must_be_earned(self):
        health = UnitHealth("ddu", fail_threshold=1, recover_after=2)
        health.anomaly("dead")
        assert health.begin_recovery() is HealthState.RECOVERING
        # One clean probe is not enough; an anomaly drops straight back.
        health.clean("probe")
        assert health.anomaly("probe") is HealthState.FAILED
        health.begin_recovery()
        health.clean("probe")
        assert health.clean("probe") is HealthState.HEALTHY
        states = [t.state for t in health.transitions]
        assert states == [HealthState.SUSPECT, HealthState.FAILED,
                          HealthState.RECOVERING, HealthState.FAILED,
                          HealthState.RECOVERING, HealthState.HEALTHY]

    def test_begin_recovery_requires_failed(self):
        health = UnitHealth("ddu")
        assert health.begin_recovery() is HealthState.HEALTHY


def _storm_specs(duration):
    """Stuck cells forming q1 -> p2 -> q2 -> p1 -> q1: the unit reports
    deadlock on *every* state, so every cross-check disagrees."""
    cells = [(0, 1, "g"), (1, 1, "r"), (1, 0, "g"), (0, 0, "r")]
    return tuple(FaultSpec("ddu.matrix", "stuck", at=0, duration=duration,
                           params={"row": r, "col": c, "value": v})
                 for r, c, v in cells)


class TestResilientDetector:
    def test_storm_forces_failover_then_failback(self):
        ddu = DDU(2, 2)
        ddu.faults = FaultInjector(_plan(*_storm_specs(duration=2)))
        detector = ResilientDetector(ddu, ResiliencePolicy(
            sample_every=1, fail_threshold=2, recover_after=2,
            scrub_after=2))
        rag = RAG(("p1", "p2"), ("q1", "q2"))      # deadlock-free
        verdicts = [detector.detect(rag) for _ in range(8)]
        # Never a wrong answer, before, during or after the fault.
        assert all(v.deadlock is False for v in verdicts)
        assert detector.failovers == 1
        assert detector.failbacks == 1
        assert detector.mode == "hardware"
        assert "anomaly:verdict" in detector.event_log
        assert detector.health.state is HealthState.HEALTHY

    def test_hang_exhausts_retries_then_fails_over(self):
        ddu = DDU(2, 2)
        ddu.faults = FaultInjector(_plan(
            FaultSpec("ddu.hang", "hang", at=0, duration=3)))
        detector = ResilientDetector(ddu, ResiliencePolicy(
            max_retries=1, sample_every=1, fail_threshold=2,
            recover_after=2, scrub_after=10 ** 9))
        outcome = detector.detect(RAG(("p1",), ("q1",)))
        assert outcome.deadlock is False and not outcome.hardware
        assert detector.mode == "software"
        assert outcome.events.count("anomaly:hang") == 2
        assert "retry" in outcome.events and "failover" in outcome.events

    def test_force_failover_and_scrub_failback(self):
        detector = ResilientDetector(DDU(3, 3), ResiliencePolicy(
            sample_every=1, fail_threshold=2, recover_after=2,
            scrub_after=2))
        detector.force_failover("operator")
        assert detector.mode == "software"
        rag = RAG(("p1", "p2", "p3"), ("q1", "q2", "q3"))
        detector.detect(rag)                       # software run 1
        outcome = detector.detect(rag)             # run 2 -> scrub
        assert "scrub" in outcome.events and "failback" in outcome.events
        assert detector.mode == "hardware"
        assert detector.detect(rag).hardware


class TestResilientAvoider:
    def _avoider(self, **policy):
        processes, resources = ("p1", "p2"), ("q1", "q2")
        dau = DAU(processes, resources,
                  {p: i + 1 for i, p in enumerate(processes)})
        return ResilientAvoider(dau, ResiliencePolicy(**policy))

    def test_healthy_path_crosschecks_and_stays_hardware(self):
        avoider = self._avoider(sample_every=1)
        ops = [("request", "p1", "q1"), ("request", "p2", "q2"),
               ("release", "p1", "q1"), ("release", "p2", "q2")]
        for op, process, resource in ops:
            outcome = avoider.decide("PE1", op, process, resource)
            assert outcome.hardware
        assert avoider.crosschecks == len(ops)
        assert avoider.health.state is HealthState.HEALTHY
        assert avoider.twin is None

    def test_force_failover_scrub_restores_unit_state(self):
        avoider = self._avoider(sample_every=1, fail_threshold=2,
                                recover_after=2, scrub_after=2)
        avoider.decide("PE1", "request", "p1", "q1")
        avoider.force_failover("operator")
        assert avoider.twin is not None
        assert avoider.active_core is avoider.twin
        # Decisions keep flowing in software mode; the second one scrubs
        # the (healthy) unit and fails back, copying state home.
        avoider.decide("PE1", "request", "p2", "q2")
        outcome = avoider.decide("PE1", "release", "p1", "q1")
        assert "failback" in outcome.events
        assert avoider.mode == "hardware" and avoider.twin is None
        assert avoider.active_core is avoider.dau
        assert avoider.dau.rag.holder_of("q2") == "p2"
        assert avoider.dau.rag.holder_of("q1") is None
        assert not pdda_detect(avoider.dau.rag).deadlock

    def test_dropped_commands_fail_over_without_losing_state(self):
        avoider = self._avoider(max_retries=1, sample_every=1,
                                fail_threshold=2, recover_after=2,
                                scrub_after=10 ** 9)
        avoider.dau.faults = FaultInjector(_plan(
            FaultSpec("dau.command", "drop", at=1, duration=10)))
        first = avoider.decide("PE1", "request", "p1", "q1")
        assert first.hardware
        second = avoider.decide("PE1", "request", "p2", "q2")
        assert not second.hardware
        assert second.decision.action.value == "granted"
        assert avoider.mode == "software"
        assert "anomaly:command" in second.events
        # Both grants live in the twin: nothing was lost in the handoff.
        assert avoider.active_core.rag.holder_of("q1") == "p1"
        assert avoider.active_core.rag.holder_of("q2") == "p2"


class TestInstallFaultPlan:
    def test_rtos2_wiring(self):
        system = build_system("RTOS2")
        plan = _plan(FaultSpec("ddu.hang", "hang", at=10 ** 6))
        injector = install_fault_plan(system, plan, ResiliencePolicy())
        assert system.fault_injector is injector
        assert system.fault_plan is plan
        assert system.soc.bus.faults is injector
        assert system.resource_service.faults is injector
        assert system.resource_service.ddu.faults is injector
        assert system.resource_service.resilient is not None

    def test_rtos1_has_no_unit_to_arm(self):
        system = build_system("RTOS1")
        injector = install_fault_plan(system, _plan(), ResiliencePolicy())
        assert system.fault_injector is injector
        assert system.resource_service.resilient is None

    def test_rtos6_and_rtos7_units_get_the_injector(self):
        for preset, attr in (("RTOS6", "lock_manager"), ("RTOS7", "heap")):
            system = build_system(preset)
            injector = install_fault_plan(system, _plan(),
                                          ResiliencePolicy())
            assert getattr(system, attr).faults is injector
