"""Tests for the bridged bus port and the flat-vs-hierarchical ablation."""

from repro.experiments import ablation_hierbus
from repro.mpsoc.hierbus import BridgedBusPort, HierarchicalBus
from repro.mpsoc.processor import ProcessingElement
from repro.sim.engine import Engine


def test_bridged_port_drives_a_processing_element():
    """A PE constructed over a bridged port routes its traffic through
    local + bridge + global — unchanged PE code."""
    engine = Engine()
    hier = HierarchicalBus(engine, num_subsystems=2, bridge_cycles=2)
    port = BridgedBusPort(hier, subsystem=0)
    pe = ProcessingElement(engine, port, "PE1")

    def work():
        yield from pe.bus_read()

    engine.spawn(work())
    engine.run()
    # local request phase (3) + bridge (2) + global word (3).
    assert engine.now == 8
    assert hier.global_bus.total_transactions == 1
    assert hier.bridges[0].stats.forwarded == 1


def test_bridged_port_local_traffic_stays_local():
    engine = Engine()
    hier = HierarchicalBus(engine, num_subsystems=2)
    port = BridgedBusPort(hier, subsystem=1)

    def work():
        yield from port.local_transaction("M", words=4)

    engine.spawn(work())
    engine.run()
    assert engine.now == 6                  # 3 + 3*1, no bridge
    assert hier.global_bus.total_transactions == 0
    assert port.total_transactions == 1


def test_ablation_shape():
    result = ablation_hierbus.run(masters=4, ops=120)
    rows = {row.locality: row for row in result.rows}
    # High locality: clear hierarchy win.
    assert rows[0.95].speedup > 1.5
    # Zero locality: throughput converges (within a few percent).
    assert abs(rows[0.0].speedup - 1.0) < 0.05
    # Speedup decreases monotonically as locality falls.
    speedups = [row.speedup for row in result.rows]
    assert all(a >= b - 0.05 for a, b in zip(speedups, speedups[1:]))
    # Flat latency never beaten by hier at zero locality.
    assert rows[0.0].hier_mean_latency >= rows[0.0].flat_mean_latency - 1
    assert "hierarchical" in result.render()


def test_ablation_deterministic():
    a = ablation_hierbus.run(masters=2, ops=60, seed=4)
    b = ablation_hierbus.run(masters=2, ops=60, seed=4)
    assert a == b
