"""Tests for the DDU hardware model."""

import random

import pytest

from repro.deadlock.ddu import DDU
from repro.deadlock.pdda import pdda_detect
from repro.errors import ConfigurationError
from repro.rag.generate import chain_state, cycle_state, random_state
from repro.rag.matrix import StateMatrix


def test_register_file_edge_interface():
    ddu = DDU(2, 2)
    ddu.set_request(0, 0)
    ddu.set_grant(1, 1)
    assert ddu.cell(0, 0).name == "REQUEST"
    assert ddu.cell(1, 1).name == "GRANT"
    ddu.clear_edge(0, 0)
    assert ddu.cell(0, 0).name == "EMPTY"


def test_load_checks_dimensions():
    ddu = DDU(3, 3)
    with pytest.raises(ConfigurationError):
        ddu.load(StateMatrix(2, 2))


def test_detect_on_cycle():
    ddu = DDU(4, 4)
    ddu.load(cycle_state(4))
    result = ddu.detect()
    assert result.deadlock
    assert result.iterations == 0
    assert result.passes == 1


def test_detect_on_chain():
    ddu = DDU(4, 4)
    ddu.load(chain_state(4))
    result = ddu.detect()
    assert not result.deadlock
    assert result.residual.is_empty()


def test_detect_preserves_register_file():
    ddu = DDU(3, 3)
    ddu.load(cycle_state(3))
    edges_before = ddu.matrix.edge_count
    ddu.detect()
    assert ddu.matrix.edge_count == edges_before


def test_matches_pdda_on_random_states():
    rng = random.Random(77)
    ddu = DDU(5, 5)
    for _ in range(200):
        state = random_state(5, 5, rng=rng)
        ddu.load(state)
        hw = ddu.detect()
        sw = pdda_detect(state)
        assert hw.deadlock == sw.deadlock
        assert hw.iterations == sw.iterations
        assert hw.passes == sw.passes


def test_iteration_bound_formula():
    assert DDU(5, 5).iteration_bound == 7       # 2*5 - 3
    assert DDU(3, 10).iteration_bound == 3      # 2*3 - 3
    assert DDU(2, 2).iteration_bound == 2       # floor at min = 2
    assert DDU(1, 1).iteration_bound == 1


def test_iterations_within_o_min_mn_bound():
    rng = random.Random(123)
    for m, n in ((3, 3), (5, 5), (5, 8), (8, 5)):
        ddu = DDU(m, n)
        for _ in range(100):
            ddu.load(random_state(m, n, rng=rng))
            result = ddu.detect()
            # The proven bound counts evaluation passes.
            assert result.passes <= ddu.iteration_bound + 1


def test_weight_cells_expose_terminal_and_connect():
    ddu = DDU(2, 2)
    matrix = StateMatrix.from_rows(["g r", ". r"])
    ddu.load(matrix)
    rows = ddu.row_weights()
    cols = ddu.column_weights()
    assert rows[0].connect and not rows[0].terminal
    assert rows[1].terminal and not rows[1].connect
    assert cols[0].terminal       # grant only
    assert cols[1].terminal       # requests only


def test_latency_counts_passes():
    ddu = DDU(4, 4)
    ddu.load(chain_state(4))
    result = ddu.detect()
    assert result.cycles == result.passes
    assert ddu.busy_cycles == result.cycles
    assert ddu.invocations == 1


def test_minimum_dimensions():
    with pytest.raises(ConfigurationError):
        DDU(0, 5)
