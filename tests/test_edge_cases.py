"""Edge-case coverage across the stack.

Targets the paths the main suites exercise only incidentally: trace
rendering on arbitrary records, scheduler round-robin interplay with
suspension, arbiters under ties, SoCLC without IPCP, engine success
paths, and explorer build-kwargs plumbing.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.framework.builder import build_system
from repro.framework.explorer import DesignSpaceExplorer
from repro.sim.engine import Engine
from repro.sim.process import PriorityArbiter, SimResource
from repro.sim.trace import Trace
from repro.sim.vcd import trace_to_vcd
from repro.rtos.task import TaskState


# -- trace robustness (property) ------------------------------------------------

kinds = st.sampled_from(["run_start", "run_end", "block_start",
                         "block_end", "custom", "resource_granted"])
actors = st.sampled_from(["a", "b", "c", "task with space"])


@st.composite
def traces(draw):
    trace = Trace()
    time = 0.0
    for _ in range(draw(st.integers(0, 40))):
        time += draw(st.floats(0, 100, allow_nan=False))
        trace.record(time, draw(actors), draw(kinds),
                     detail=draw(st.integers(0, 9)))
    return trace


@given(traces())
@settings(max_examples=80, deadline=None)
def test_trace_renderers_never_crash(trace):
    assert isinstance(trace.render(), str)
    assert isinstance(trace.gantt(), str)
    csv = trace.to_csv()
    assert csv.splitlines()[0].startswith("time,actor,kind")
    if trace.actors():
        vcd = trace_to_vcd(trace)
        assert vcd.startswith("$date")
        assert "," not in vcd.split("$enddefinitions")[0].split(
            "$var", 1)[-1].splitlines()[0]


# -- arbiter ties -----------------------------------------------------------------

def test_priority_arbiter_fifo_among_equal_priorities():
    engine = Engine()
    resource = SimResource(engine, "r", arbiter=PriorityArbiter())
    order = []

    def requester(name):
        def proc():
            yield from resource.acquire(name, priority=3)
            order.append(name)
            yield 5
            resource.release(name)
        return proc()

    engine.spawn(requester("first"))
    engine.spawn(requester("second"))
    engine.spawn(requester("third"))
    engine.run()
    assert order == ["first", "second", "third"]


# -- scheduler: round-robin + suspension interplay ----------------------------------

def test_suspended_task_skipped_by_round_robin():
    system = build_system("RTOS5", quantum=100)
    kernel = system.kernel
    kernel.schedulers["PE1"].round_robin = True
    slices = []

    def make(name):
        def body(ctx):
            for _ in range(4):
                yield from ctx.compute(100)
                slices.append(name)
        return body

    kernel.create_task(make("a"), "a", 3, "PE1")
    kernel.create_task(make("b"), "b", 3, "PE1")
    kernel.run(until=250)
    kernel.suspend_task("b")
    kernel.run(until=2_000)
    # After suspension only "a" makes progress.
    tail = slices[-3:]
    assert "b" not in tail
    kernel.resume_task("b")
    kernel.run()
    assert kernel.finished()
    assert slices.count("a") == 4 and slices.count("b") == 4


def test_suspend_new_task_parks_it_at_first_quantum():
    system = build_system("RTOS5")
    kernel = system.kernel
    progressed = []

    def body(ctx):
        yield from ctx.compute(1_000)
        progressed.append(ctx.now)

    task = kernel.create_task(body, "t", 1, "PE1", start_time=500)
    kernel.suspend_task("t")            # while still NEW
    kernel.run(until=5_000)
    assert task.state is TaskState.SUSPENDED
    assert progressed == []
    kernel.resume_task("t")
    kernel.run()
    assert progressed


# -- SoCLC without the IPCP option ----------------------------------------------------

def test_soclc_without_ipcp_keeps_priorities():
    from repro.framework.config import SystemConfig
    config = SystemConfig(name="RTOS6-noPI", soclc=True,
                          soclc_ipcp=False)
    system = build_system(config)
    system.lock_manager.register_lock("L", ceiling=1)
    observed = {}

    def body(ctx):
        yield from ctx.lock("L")
        observed["in_cs"] = ctx.task.priority
        yield from ctx.unlock("L")

    system.kernel.create_task(body, "t", 4, "PE1")
    system.kernel.run()
    assert observed["in_cs"] == 4      # no ceiling raise


# -- engine success paths ----------------------------------------------------------------

def test_run_until_complete_success():
    engine = Engine()

    def quick():
        yield 10
        return "done"

    handle = engine.spawn(quick())
    final = engine.run_until_complete([handle])
    assert final == 10
    assert handle.result == "done"


def test_engine_interleaves_hundreds_of_processes():
    engine = Engine()
    results = []

    def worker(index):
        yield index % 7
        results.append(index)

    for index in range(300):
        engine.spawn(worker(index))
    engine.run()
    assert len(results) == 300


# -- explorer with build kwargs --------------------------------------------------------------

def test_explorer_passes_build_kwargs():
    def workload(system):
        return {"quantum": system.kernel.quantum}

    explorer = DesignSpaceExplorer(workload)
    result = explorer.explore(["RTOS5"], quantum=333)
    assert result.rows[0].metrics["quantum"] == 333


# -- randomized smoke over presets --------------------------------------------------------------

@pytest.mark.parametrize("seed", [1, 2])
def test_random_compute_sleep_mix_on_every_preset(seed):
    rng = random.Random(seed)
    for preset in (f"RTOS{i}" for i in range(1, 8)):
        system = build_system(preset)
        kernel = system.kernel

        def make(pe_index):
            def body(ctx):
                for _ in range(rng.randint(1, 3)):
                    yield from ctx.compute(rng.randint(50, 400))
                    yield from ctx.sleep(rng.randint(10, 100))
            return body

        for index in range(2):
            kernel.create_task(make(index), f"p{index + 1}",
                               index + 1, f"PE{index + 1}")
        kernel.run()
        assert kernel.finished()
