"""Tests for trace recording, querying and rendering."""

import pytest

from repro.sim.trace import Trace


def _sample_trace():
    trace = Trace()
    trace.record(0, "t1", "run_start", pe="PE1")
    trace.record(10, "t1", "run_end", pe="PE1")
    trace.record(10, "t2", "run_start", pe="PE1")
    trace.record(12, "t1", "block_start")
    trace.record(20, "t1", "block_end")
    trace.record(25, "t2", "run_end", pe="PE1")
    return trace


def test_record_and_len():
    trace = _sample_trace()
    assert len(trace) == 6
    assert trace[0].actor == "t1"


def test_filter_by_actor_and_kind():
    trace = _sample_trace()
    assert len(trace.filter(actor="t1")) == 4
    assert len(trace.filter(kind="run_start")) == 2
    assert len(trace.filter(actor="t2", kind="run_end")) == 1
    only_late = trace.filter(predicate=lambda rec: rec.time > 10)
    assert all(rec.time > 10 for rec in only_late)


def test_first_last_count():
    trace = _sample_trace()
    assert trace.first("run_start").time == 0
    assert trace.last("run_end").time == 25
    assert trace.count("run_start") == 2
    assert trace.first("nonexistent") is None
    assert trace.last("nonexistent") is None


def test_actors_in_first_seen_order():
    trace = _sample_trace()
    assert trace.actors() == ["t1", "t2"]


def test_span():
    trace = _sample_trace()
    assert trace.span("run_start", "run_end") == 25


def test_span_missing_kind_raises():
    trace = Trace()
    trace.record(0, "x", "start")
    with pytest.raises(ValueError):
        trace.span("start", "end")


def test_render_filters_kinds():
    trace = _sample_trace()
    text = trace.render(kinds=["run_start"])
    assert text.count("run_start") == 2
    assert "block_start" not in text


def test_describe_includes_details():
    trace = _sample_trace()
    assert "pe=PE1" in trace[0].describe()


def test_describe_columns_align_for_long_actor_names():
    trace = Trace()
    trace.record(0, "p1", "run_start")
    trace.record(5, "a_rather_long_task_name", "run_end")
    text = trace.render()
    lines = text.splitlines()
    # The kind column starts at the same offset on every line, even
    # when one actor name is far longer than the default width.
    offsets = {line.index(kind) for line, kind
               in zip(lines, ["run_start", "run_end"])}
    assert len(offsets) == 1


def test_describe_widens_for_own_actor():
    trace = Trace()
    trace.record(0, "a_very_long_actor_name", "tick")
    line = trace[0].describe(actor_width=4)
    assert "a_very_long_actor_name tick" in line


def test_jsonl_round_trip():
    trace = _sample_trace()
    text = trace.to_jsonl()
    assert text.endswith("\n")
    rebuilt = Trace.from_jsonl(text)
    assert len(rebuilt) == len(trace)
    for original, copy in zip(trace, rebuilt):
        assert (original.time, original.actor, original.kind,
                original.details) == \
            (copy.time, copy.actor, copy.kind, copy.details)


def test_jsonl_kind_filter_and_blank_lines():
    trace = _sample_trace()
    text = trace.to_jsonl(kinds=["run_start"])
    assert len(text.splitlines()) == 2
    rebuilt = Trace.from_jsonl("\n" + text + "\n\n")
    assert all(rec.kind == "run_start" for rec in rebuilt)
    assert Trace.from_jsonl("").actors() == []
    assert Trace().to_jsonl() == ""


def test_gantt_renders_rows_for_actors():
    trace = _sample_trace()
    chart = trace.gantt()
    lines = chart.splitlines()
    assert lines[0].startswith("t1")
    assert "#" in lines[0]
    assert lines[1].startswith("t2")


def test_gantt_empty_trace():
    assert Trace().gantt() == "(empty trace)"
