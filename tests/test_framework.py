"""Tests for the delta framework: config, busgen, archi_gen, builder,
explorer."""

import pytest

from repro.errors import ConfigurationError, GenerationError
from repro.framework.archi_gen import (
    DESCRIPTION_LIBRARY,
    generate_top,
    generate_top_for_config,
)
from repro.framework.builder import build_system
from repro.framework.busgen import generate_bus_system
from repro.framework.config import (
    BusSubsystemConfig,
    BusSystemConfig,
    MemoryConfig,
    RTOS_PRESETS,
    SystemConfig,
    preset,
)
from repro.framework.explorer import DesignSpaceExplorer
from repro.rtos.resources import (
    AvoidanceResourceService,
    DetectionResourceService,
)
from repro.rtos.sync import SoftwareLockManager
from repro.soclc.lockcache import SoCLC
from repro.socdmmu.dmmu import SoCDMMU
from repro.rtos.memory import SoftwareHeap


# -- configuration ---------------------------------------------------------------

def test_presets_cover_table_3():
    assert set(RTOS_PRESETS) == {f"RTOS{i}" for i in range(1, 8)}
    assert RTOS_PRESETS["RTOS1"].deadlock == "RTOS1"
    assert RTOS_PRESETS["RTOS6"].soclc
    assert RTOS_PRESETS["RTOS7"].socdmmu
    for config in RTOS_PRESETS.values():
        config.validate()


def test_preset_lookup_case_insensitive():
    assert preset("rtos4").name == "RTOS4"
    with pytest.raises(ConfigurationError):
        preset("RTOS99")


def test_config_validation():
    with pytest.raises(ConfigurationError):
        SystemConfig(num_pes=0).validate()
    with pytest.raises(ConfigurationError):
        SystemConfig(deadlock="banker").validate()
    with pytest.raises(ConfigurationError):
        SystemConfig(soclc=True, soclc_short_locks=0,
                     soclc_long_locks=0).validate()


def test_memory_config_validation():
    MemoryConfig().validate()
    with pytest.raises(ConfigurationError):
        MemoryConfig(memory_type="MRAM").validate()
    with pytest.raises(ConfigurationError):
        MemoryConfig(data_bus_width=48).validate()


def test_bus_config_validation_and_defaults():
    config = BusSystemConfig(num_bans=3)
    config.validate()
    filled = config.with_default_subsystems()
    assert len(filled.subsystems) == 3
    with pytest.raises(ConfigurationError):
        BusSystemConfig(num_bans=0).validate()
    with pytest.raises(ConfigurationError):
        BusSystemConfig(num_bans=2, subsystems=(
            BusSubsystemConfig(),)).validate()


# -- bus generation -----------------------------------------------------------------

def test_bus_generation_counts_masters():
    config = BusSystemConfig(num_bans=2, subsystems=(
        BusSubsystemConfig(cpu_type="MPC755"),
        BusSubsystemConfig(cpu_type="ARM920", non_cpu_type="DSP"),
    ))
    bus = generate_bus_system(config)
    assert bus.num_masters == 3
    assert bus.num_bridges == 2
    assert "bus_bridge bridge_1" in bus.verilog
    assert "ADDR_W = 32" in bus.verilog
    assert "2 BAN(s)" in bus.summary


def test_bus_generation_needs_a_master():
    config = BusSystemConfig(num_bans=1, subsystems=(
        BusSubsystemConfig(cpu_type="None", non_cpu_type="None",
                           num_global_memory=0, num_local_memory=0,
                           memories=()),))
    with pytest.raises(GenerationError):
        generate_bus_system(config)


# -- Archi_gen -----------------------------------------------------------------------

def test_description_library_entries():
    assert {"Base", "LockCache", "DDU", "DAU", "DMMU"} <= set(
        DESCRIPTION_LIBRARY)


def test_generate_top_example_1():
    top = generate_top("LockCache", num_pes=3,
                       parameters={"N_SHORT": 8, "N_LONG": 8})
    assert top.count("mpc755 pe") == 3
    assert "soclc #(.N_SHORT(8), .N_LONG(8))" in top
    assert "memory_controller" in top
    assert "bus_arbiter" in top
    assert "interrupt_controller" in top
    assert "initial begin" in top
    assert top.strip().endswith("endmodule")


def test_generate_top_unknown_description():
    with pytest.raises(GenerationError):
        generate_top("Mystery")
    with pytest.raises(GenerationError):
        generate_top("Base", num_pes=0)


def test_generate_top_for_each_preset():
    expectations = {
        "RTOS1": "Base", "RTOS2": "ddu", "RTOS3": "Base",
        "RTOS4": "dau", "RTOS5": "Base", "RTOS6": "soclc",
        "RTOS7": "socdmmu",
    }
    for name, marker in expectations.items():
        top = generate_top_for_config(RTOS_PRESETS[name])
        assert marker.lower() in top.lower()


def test_generated_top_is_deterministic():
    a = generate_top("DAU", num_pes=4)
    b = generate_top("DAU", num_pes=4)
    assert a == b


# -- builder --------------------------------------------------------------------------

def test_builder_wires_expected_backends():
    rtos1 = build_system("RTOS1")
    assert isinstance(rtos1.resource_service, DetectionResourceService)
    assert not rtos1.resource_service.hardware
    rtos4 = build_system("RTOS4")
    assert isinstance(rtos4.resource_service, AvoidanceResourceService)
    assert rtos4.resource_service.hardware
    rtos5 = build_system("RTOS5")
    assert rtos5.resource_service is None
    assert isinstance(rtos5.lock_manager, SoftwareLockManager)
    assert isinstance(rtos5.heap, SoftwareHeap)
    rtos6 = build_system("RTOS6")
    assert isinstance(rtos6.lock_manager, SoCLC)
    rtos7 = build_system("RTOS7")
    assert isinstance(rtos7.heap, SoCDMMU)


def test_builder_custom_census():
    system = build_system("RTOS4", processes=["a", "b"],
                          resources=["r1", "r2", "r3"],
                          priorities={"a": 1, "b": 2})
    core = system.resource_service.core
    assert core.rag.processes == ("a", "b")
    assert core.rag.resources == ("r1", "r2", "r3")


def test_builder_missing_priority_rejected():
    with pytest.raises(ConfigurationError):
        build_system("RTOS4", processes=["a", "b"],
                     priorities={"a": 1})


def test_built_system_run_delegates():
    system = build_system("RTOS5")
    system.kernel.create_task(lambda ctx: ctx.compute(50), "t", 1, "PE1")
    assert system.run() > 0
    assert system.name == "RTOS5"


# -- explorer -------------------------------------------------------------------------

def test_explorer_compares_configurations():
    def workload(system):
        kernel = system.kernel

        def body(ctx):
            yield from ctx.request("DSP")
            yield from ctx.release_resource("DSP")

        kernel.create_task(body, "p1", 1, "PE1")
        kernel.run()
        return {"algo_cycles":
                system.resource_service.stats.mean_algorithm_cycles}

    explorer = DesignSpaceExplorer(workload)
    result = explorer.explore(["RTOS3", "RTOS4"])
    assert len(result.rows) == 2
    best = result.best("algo_cycles")
    assert best.config_name == "RTOS4"
    rendered = result.render()
    assert "RTOS3" in rendered and "algo_cycles" in rendered


def test_explorer_best_unknown_metric():
    explorer = DesignSpaceExplorer(lambda system: {})
    result = explorer.explore(["RTOS5"])
    with pytest.raises(KeyError):
        result.best("nope")
