"""Tests for RAG/matrix serialization."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ResourceProtocolError
from repro.rag.generate import cycle_state, random_state
from repro.rag.matrix import StateMatrix
from repro.rag.serialize import (
    matrix_from_dict,
    matrix_to_dict,
    matrix_to_rows,
    rag_from_dict,
    rag_from_json,
    rag_to_dict,
    rag_to_json,
    restore,
    snapshot,
)


def test_rag_dict_round_trip():
    state = cycle_state(3)
    assert rag_from_dict(rag_to_dict(state)) == state


def test_rag_json_round_trip():
    state = cycle_state(4)
    text = rag_to_json(state, indent=2)
    assert '"grants"' in text
    assert rag_from_json(text) == state


def test_rag_dict_missing_field():
    with pytest.raises(ResourceProtocolError):
        rag_from_dict({"processes": ["p1"]})


def test_rag_dict_rejects_illegal_edges():
    data = rag_to_dict(cycle_state(2))
    data["grants"].append(["q1", "p2"])      # q1 already granted
    with pytest.raises(ResourceProtocolError):
        rag_from_dict(data)


def test_matrix_rows_round_trip():
    matrix = StateMatrix.from_rows(["g r .", ". . g"])
    rows = matrix_to_rows(matrix)
    assert rows == ["g r .", ". . g"]
    assert StateMatrix.from_rows(rows) == matrix


def test_matrix_dict_round_trip_preserves_names():
    matrix = StateMatrix.from_rows(["g r"])
    matrix.resource_names = ["IDCT"]
    matrix.process_names = ["alpha", "beta"]
    rebuilt = matrix_from_dict(matrix_to_dict(matrix))
    assert rebuilt == matrix
    assert rebuilt.resource_names == ["IDCT"]
    assert rebuilt.process_names == ["alpha", "beta"]


def test_matrix_dict_name_length_mismatch():
    data = matrix_to_dict(StateMatrix.from_rows(["g r"]))
    data["process_names"] = ["only-one"]
    with pytest.raises(ResourceProtocolError):
        matrix_from_dict(data)


def test_snapshot_restore_dispatch():
    state = cycle_state(3)
    assert restore(snapshot(state)) == state
    matrix = StateMatrix.from_rag(state)
    assert restore(snapshot(matrix)) == matrix
    with pytest.raises(ResourceProtocolError):
        restore({"kind": "hologram"})
    with pytest.raises(ResourceProtocolError):
        snapshot(42)


@given(st.integers(0, 2**32 - 1), st.integers(2, 6), st.integers(2, 6))
@settings(max_examples=100, deadline=None)
def test_property_round_trip_any_state(seed, m, n):
    state = random_state(m, n, rng=random.Random(seed))
    assert rag_from_dict(rag_to_dict(state)) == state
    matrix = StateMatrix.from_rag(state)
    assert matrix_from_dict(matrix_to_dict(matrix)) == matrix
