"""End-to-end resilience tests: ResilientServiceClient vs. a hostile wire.

The centrepiece is a differential test: the same seeded workload runs
once against a pristine service (the oracle) and once through a
:class:`ChaosTransport` that resets connections and drops response
lines while a shard is crashed mid-run — and the per-tenant
``state_hash`` digests must come out identical.  A retried mutation
whose first attempt died anywhere on the wire applies exactly once.

Everything runs with in-process shards inside plain ``asyncio.run``
(no pytest-asyncio in this repo).
"""

import asyncio
import json
import random
import socket
import time

import pytest

from repro.errors import ServiceError
from repro.obs import Observability
from repro.service import (
    ChaosTransport,
    CircuitOpenError,
    DetectionService,
    NetFaultPlan,
    NetFaultSpec,
    ResilientServiceClient,
    RetryPolicy,
    ServiceClient,
    ServiceConfig,
    ServiceOpError,
)


def _run(coro):
    return asyncio.run(coro)


async def _service(**overrides):
    overrides.setdefault("tick_interval", 0.002)
    config = ServiceConfig(shards=2, use_processes=False, **overrides)
    service = DetectionService(config)
    await service.start(host="127.0.0.1", port=0)
    return service


def _free_port() -> int:
    """A port that was just free — connecting to it gets refused."""
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


# -- the exactly-once differential ---------------------------------------------

async def _apply_workload(client, tenants, ops_per_tenant, seed,
                          crash=None):
    """Drive a seeded claim/release mix; optionally crash mid-run."""
    rng = random.Random(seed)
    for tenant in tenants:
        await client.attach(tenant, m=8, n=8)
    plan = [(tenant, step) for step in range(ops_per_tenant)
            for tenant in tenants]
    crash_at = len(plan) // 2
    for index, (tenant, _step) in enumerate(plan):
        if crash is not None and index == crash_at:
            crash()
        process = f"p{rng.randrange(8)}"
        resource = f"q{rng.randrange(8)}"
        try:
            if rng.random() < 0.35:
                await client.release(tenant, process, resource)
            else:
                await client.claim(tenant, process, resource)
        except ServiceOpError:
            # protocol-violation (release of an unheld resource, claim
            # of a held one) is a deterministic no-op on both sides.
            pass


async def _state_hashes(service, client, tenants):
    """Per-tenant digest via migrate-in-place (returns ``state_hash``)."""
    hashes = {}
    for tenant in tenants:
        shard = service.tenants[tenant].shard_id
        reply = await client.request("migrate", tenant=tenant,
                                     shard=shard)
        hashes[tenant] = reply["state_hash"]
    return hashes


#: Each plan kills the connection at its first fault, so a sequential
#: workload only ever sees one kind per run — the differential runs
#: once per plan.  ``drop`` swallows responses to *applied* mutations
#: (the retry is a true replay the idem window must absorb); ``reset``
#: tears the socket so retries must cross a reconnect.
_DROP_PLAN = NetFaultPlan(name="diff-drop", seed=17, specs=(
    NetFaultSpec("drop", direction="s2c", at=3, every=7),))
_RESET_PLAN = NetFaultPlan(name="diff-reset", seed=17, specs=(
    NetFaultSpec("reset", direction="c2s", at=7, every=19),))

_DIFF_POLICY = RetryPolicy(
    deadline_ms=8000.0, request_timeout_s=0.2, max_attempts=12,
    backoff_base_s=0.005, backoff_cap_s=0.05,
    fail_threshold=8, recover_after=1, cooldown_s=0.02)


def test_retried_mutations_apply_exactly_once_under_chaos():
    """Oracle vs. chaos+crash runs: identical final state digests."""
    tenants = ["t0", "t1", "t2"]

    async def oracle():
        service = await _service()
        client = await ServiceClient.connect_tcp(
            "127.0.0.1", service.tcp_port)
        try:
            await _apply_workload(client, tenants, 25, seed=99)
            return await _state_hashes(service, client, tenants)
        finally:
            await client.close()
            await service.stop()

    async def chaotic(plan):
        service = await _service()
        proxy = ChaosTransport(plan, target_port=service.tcp_port)
        await proxy.start()
        client = ResilientServiceClient.tcp(
            "127.0.0.1", proxy.listen_port, policy=_DIFF_POLICY,
            seed=4, tag="diff")
        try:
            await _apply_workload(
                client, tenants, 25, seed=99,
                crash=lambda: service.shards[0].crash())
            hashes = await _state_hashes(service, client, tenants)
            stats = await client.stats()
            return hashes, proxy, client.connects, stats
        finally:
            await client.close()
            await proxy.stop()
            await service.stop()

    expected = _run(oracle())

    got, proxy, connects, stats = _run(chaotic(_DROP_PLAN))
    assert got == expected
    assert proxy.fired["drop"] > 0
    assert connects > 1                  # timeouts forced reconnects
    assert stats["shard_crashes"] == 1
    assert stats["deduped"] > 0          # replays hit the idem window

    got, proxy, connects, stats = _run(chaotic(_RESET_PLAN))
    assert got == expected
    assert proxy.fired["reset"] > 0
    assert connects > 1                  # retries crossed the resets
    assert stats["shard_crashes"] == 1


# -- idempotency window, direct ------------------------------------------------

def test_idem_window_dedups_claim_release_and_attach():
    async def scenario():
        service = await _service()
        client = await ServiceClient.connect_tcp(
            "127.0.0.1", service.tcp_port)
        try:
            await client.request("attach", tenant="t0", m=4, n=4,
                                 idem="a1")
            replay = await client.request("attach", tenant="t0",
                                          m=4, n=4, idem="a1")
            assert replay["deduped"] is True
            first = await client.request("claim", tenant="t0",
                                         process="p1", resource="q1",
                                         idem="k1")
            assert first["granted"] is True
            replay = await client.request("claim", tenant="t0",
                                          process="p1", resource="q1",
                                          idem="k1")
            assert replay["deduped"] is True
            assert replay["granted"] is True
            await client.request("release", tenant="t0", process="p1",
                                 resource="q1", idem="k2")
            replay = await client.request("release", tenant="t0",
                                          process="p1", resource="q1",
                                          idem="k2")
            assert replay["deduped"] is True
            # Replays were answered, not applied: two mutations total.
            verdict = await client.detect("t0")
            assert verdict["op_seq"] == 2
        finally:
            await client.close()
            await service.stop()
    _run(scenario())


# -- circuit breaker -----------------------------------------------------------

def test_circuit_opens_fails_fast_and_recloses(tmp_path):
    """Dead wire opens the circuit; a revived wire closes it again."""
    obs = Observability(enabled=True)
    obs.flight.enable()
    obs.flight.autodump_to(tmp_path / "blackbox.json")
    target = {"port": _free_port()}

    async def factory():
        return await ServiceClient.connect_tcp("127.0.0.1",
                                               target["port"])

    policy = RetryPolicy(request_timeout_s=0.2, max_attempts=3,
                         backoff_base_s=0.001, backoff_cap_s=0.005,
                         fail_threshold=2, recover_after=1,
                         cooldown_s=0.3)
    client = ResilientServiceClient(factory, policy=policy, seed=1,
                                    tag="cb", obs=obs)

    async def scenario():
        service = await _service()
        try:
            # Phase 1: nothing listens on the target port.  Three
            # attempts all fail at the transport; the second anomaly
            # trips the breaker.
            with pytest.raises(ServiceError):
                await client.ping()
            assert client.health.failed
            assert obs.metrics.get(
                "service.client.circuit_open").value == 1
            # Phase 2: still inside the cooldown, requests fail fast
            # without touching the wire — CircuitOpenError burns the
            # attempts.
            with pytest.raises(ServiceError, match="circuit open"):
                await client.ping()
            # Phase 3: revive the wire, wait out the cooldown; the next
            # request probes half-open and one clean answer recloses.
            target["port"] = service.tcp_port
            await asyncio.sleep(policy.cooldown_s + 0.05)
            reply = await client.ping()
            assert reply["ok"] is True
            assert not client.health.failed
        finally:
            await client.close()
            await service.stop()

    _run(scenario())
    kinds = [event["kind"] for event in obs.flight.events()]
    assert "circuit_open" in kinds
    assert "circuit_close" in kinds
    assert "request_retried" in kinds
    # TRIP_KINDS events armed the black box: the dump must exist.
    assert (tmp_path / "blackbox.json").exists()


def test_circuit_open_error_is_a_service_error():
    assert issubclass(CircuitOpenError, ServiceError)


# -- plain-client hygiene ------------------------------------------------------

def test_send_failure_does_not_leak_pending_entries():
    """A request whose send dies must not strand its future."""
    async def scenario():
        service = await _service()
        client = await ServiceClient.connect_tcp(
            "127.0.0.1", service.tcp_port)
        try:
            async def broken_drain():
                raise BrokenPipeError("wire gone mid-send")

            client._writer.drain = broken_drain
            with pytest.raises(ServiceError):
                await client.request("ping")
            assert client._pending == {}
        finally:
            await client.close()
            await service.stop()
    _run(scenario())


def test_reader_skips_undecodable_response_lines():
    """Garbage on the response stream is counted, not fatal."""
    async def scenario():
        obs = Observability(enabled=True)

        async def stooge(reader, writer):
            line = await reader.readline()
            request = json.loads(line)
            writer.write(b"\xff\xfe{torn response\n")
            writer.write((json.dumps({"id": request["id"], "ok": True,
                                      "pong": True}) + "\n").encode())
            await writer.drain()

        server = await asyncio.start_server(stooge, "127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        client = await ServiceClient.connect_tcp("127.0.0.1", port,
                                                 obs=obs)
        try:
            reply = await asyncio.wait_for(client.request("ping"), 2.0)
            assert reply["pong"] is True
            assert obs.metrics.get(
                "service.client.decode_errors").value == 1
        finally:
            await client.close()
            server.close()
            await server.wait_closed()
    _run(scenario())


# -- server-side v2 behaviour --------------------------------------------------

def test_deadline_shedding_refuses_without_applying():
    """An op that cannot dispatch inside deadline_ms is shed, and the
    mutation is provably not applied."""
    async def scenario():
        service = await _service(tick_interval=0.05)
        client = await ServiceClient.connect_tcp(
            "127.0.0.1", service.tcp_port)
        try:
            await client.attach("t0", m=4, n=4)
            with pytest.raises(ServiceOpError) as excinfo:
                await client.request("claim", tenant="t0",
                                     process="p1", resource="q1",
                                     deadline_ms=0.001)
            assert excinfo.value.code == "deadline-exceeded"
            verdict = await client.detect("t0")
            assert verdict["op_seq"] == 0    # the claim never landed
        finally:
            await client.close()
            await service.stop()
    _run(scenario())


def test_drain_timeout_is_configurable():
    """A short drain_timeout bounds stop() even with a mute client."""
    async def scenario():
        service = await _service(drain_timeout=0.05)
        assert service.config.drain_timeout == 0.05
        client = await ServiceClient.connect_tcp(
            "127.0.0.1", service.tcp_port)
        await client.attach("t0", m=4, n=4)
        # A raw connection that sends nothing and never reads: stop()
        # must not hang on it past the configured drain window.
        _reader, mute = await asyncio.open_connection(
            "127.0.0.1", service.tcp_port)
        started = time.monotonic()
        await service.stop()
        elapsed = time.monotonic() - started
        assert elapsed < 1.5
        for writer in (mute,):
            try:
                writer.close()
            except OSError:
                pass
        await client.close()
    _run(scenario())
