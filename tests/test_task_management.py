"""Tests for task suspension, resumption and priority changes."""

import pytest

from repro.errors import RTOSError
from repro.rtos.task import TaskState


def test_suspend_ready_task(kernel):
    progress = []

    def busy(ctx):
        yield from ctx.compute(2000)
        progress.append("busy-done")

    def victim(ctx):
        yield from ctx.compute(100)
        progress.append("victim-done")

    kernel.create_task(busy, "busy", 1, "PE1")
    victim_task = kernel.create_task(victim, "victim", 2, "PE1")
    # Let the system start; victim sits READY behind busy.
    kernel.run(until=500)
    assert victim_task.state is TaskState.READY
    kernel.suspend_task("victim")
    assert victim_task.state is TaskState.SUSPENDED
    kernel.run(until=10_000)
    assert progress == ["busy-done"]       # victim never ran
    kernel.resume_task("victim")
    kernel.run()
    assert "victim-done" in progress


def test_suspend_running_task_parks_at_next_point(kernel):
    marks = []

    def runner(ctx):
        yield from ctx.compute(5000)
        marks.append(ctx.now)

    task = kernel.create_task(runner, "runner", 1, "PE1")
    kernel.run(until=1000)
    assert task.state is TaskState.RUNNING
    kernel.suspend_task("runner")
    kernel.run(until=20_000)
    assert task.state is TaskState.SUSPENDED
    assert marks == []
    kernel.resume_task("runner")
    kernel.run()
    assert marks and task.state is TaskState.FINISHED


def test_suspend_blocked_task_defers_past_wakeup(kernel):
    marks = []

    def sleeper(ctx):
        yield from ctx.sleep(1000)
        marks.append(("woke", ctx.now))

    task = kernel.create_task(sleeper, "sleeper", 1, "PE1")
    kernel.run(until=500)
    assert task.state is TaskState.BLOCKED
    kernel.suspend_task("sleeper")
    kernel.run(until=5000)
    # The timer fired at t=1000, but the task parked instead of running.
    assert task.state is TaskState.SUSPENDED
    assert marks == []
    kernel.resume_task("sleeper")
    kernel.run()
    # The task finally ran, strictly after its timer fired at t=1180.
    assert marks and marks[0][1] > 1180
    assert task.state is TaskState.FINISHED


def test_resume_cancels_pending_suspension(kernel):
    done = []

    def runner(ctx):
        yield from ctx.compute(3000)
        done.append(ctx.now)

    kernel.create_task(runner, "runner", 1, "PE1")
    kernel.run(until=500)
    kernel.suspend_task("runner")
    kernel.resume_task("runner")          # cancel before the next point
    kernel.run()
    assert done                            # ran to completion


def test_resume_of_active_task_is_noop(kernel):
    kernel.create_task(lambda ctx: ctx.compute(100), "t", 1, "PE1")
    kernel.run(until=50)
    kernel.resume_task("t")
    kernel.run()
    assert kernel.finished("t")


def test_unknown_task_rejected(kernel):
    with pytest.raises(RTOSError):
        kernel.suspend_task("ghost")
    with pytest.raises(RTOSError):
        kernel.resume_task("ghost")
    with pytest.raises(RTOSError):
        kernel.set_task_priority("ghost", 1)


def test_priority_change_triggers_preemption(kernel):
    order = []

    def make(name, cycles):
        def body(ctx):
            yield from ctx.compute(cycles)
            order.append(name)
        return body

    kernel.create_task(make("a", 4000), "a", 2, "PE1")
    b = kernel.create_task(make("b", 400), "b", 5, "PE1")
    kernel.run(until=600)
    assert b.state is TaskState.READY
    # Promote b above the running task: it should preempt and finish first.
    kernel.set_task_priority("b", 1)
    kernel.run()
    assert order[0] == "b"


def test_priority_change_rejected_while_boosted(kernel, base_system):
    observed = {}

    def holder(ctx):
        yield from ctx.lock("L")
        yield from ctx.compute(4000)
        try:
            kernel.set_task_priority("holder", 9)
        except RTOSError:
            observed["rejected"] = True
        yield from ctx.unlock("L")

    def contender(ctx):
        yield from ctx.compute(200)
        yield from ctx.lock("L")
        yield from ctx.unlock("L")

    kernel.create_task(holder, "holder", 5, "PE1")
    kernel.create_task(contender, "contender", 1, "PE2")
    kernel.run()
    assert observed.get("rejected")


def test_negative_priority_rejected(kernel):
    kernel.create_task(lambda ctx: ctx.compute(10), "t", 1, "PE1")
    with pytest.raises(RTOSError):
        kernel.set_task_priority("t", -1)
