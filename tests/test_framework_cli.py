"""Tests for configuration persistence and the framework CLI."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.framework.__main__ import main as cli_main
from repro.framework.config import (
    BusSubsystemConfig,
    BusSystemConfig,
    MemoryConfig,
    RTOS_PRESETS,
    SystemConfig,
    config_from_dict,
    config_to_dict,
)


def test_config_dict_round_trip_for_every_preset():
    for config in RTOS_PRESETS.values():
        rebuilt = config_from_dict(config_to_dict(config))
        assert rebuilt == config


def test_config_dict_round_trip_with_custom_bus():
    config = SystemConfig(
        name="CUSTOM", num_pes=3,
        bus=BusSystemConfig(num_bans=2, subsystems=(
            BusSubsystemConfig(cpu_type="ARM920",
                               memories=(MemoryConfig("SRAM", 18, 32),)),
            BusSubsystemConfig(),
        )))
    assert config_from_dict(config_to_dict(config)) == config


def test_config_from_dict_validates():
    with pytest.raises(ConfigurationError):
        config_from_dict({"num_pes": 0})
    with pytest.raises(ConfigurationError):
        config_from_dict({"deadlock": "wishful-thinking"})


def test_config_from_dict_defaults():
    config = config_from_dict({})
    assert config.num_pes == 4
    assert config.name == "CUSTOM"


def test_cli_generates_artifacts(tmp_path, capsys):
    out = tmp_path / "build"
    assert cli_main(["--preset", "RTOS6", "--out", str(out)]) == 0
    top = (out / "Top.v").read_text()
    assert "soclc" in top
    assert (out / "bus_system.v").exists()
    assert (out / "soclc.v").exists()
    assert not (out / "socdmmu.v").exists()


def test_cli_socdmmu_preset(tmp_path):
    out = tmp_path / "build"
    assert cli_main(["--preset", "RTOS7", "--out", str(out)]) == 0
    assert (out / "socdmmu.v").exists()


def test_cli_dump_and_reload_config(tmp_path, capsys):
    dump = tmp_path / "rtos4.json"
    assert cli_main(["--preset", "RTOS4", "--dump-config",
                     str(dump)]) == 0
    data = json.loads(dump.read_text())
    assert data["deadlock"] == "RTOS4"
    out = tmp_path / "build"
    assert cli_main(["--config", str(dump), "--out", str(out)]) == 0
    assert "dau" in (out / "Top.v").read_text()


def test_cli_prints_top_without_out(capsys):
    assert cli_main(["--preset", "RTOS2"]) == 0
    captured = capsys.readouterr()
    assert "ddu" in captured.out


def test_cli_bad_config_file(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text("{\"num_pes\": 0}")
    assert cli_main(["--config", str(bad)]) == 2
    assert "error" in capsys.readouterr().err
