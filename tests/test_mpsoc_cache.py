"""Tests for the L1 cache model."""

import pytest

from repro.errors import ConfigurationError
from repro.mpsoc.bus import SystemBus
from repro.mpsoc.cache import L1Cache
from repro.sim.engine import Engine


def _cache(size_kb=1, line_bytes=32, associativity=2, engine=None):
    engine = engine if engine is not None else Engine()
    bus = SystemBus(engine)
    return engine, bus, L1Cache(bus, "PE1.D", size_kb=size_kb,
                                line_bytes=line_bytes,
                                associativity=associativity)


def _run(engine, gen):
    handle = engine.spawn(gen)
    engine.run()
    return handle.result


def test_geometry():
    _engine, _bus, cache = _cache(size_kb=1, line_bytes=32, associativity=2)
    assert cache.num_sets == 16
    assert cache.line_words == 8


def test_bad_geometry_rejected():
    engine = Engine()
    bus = SystemBus(engine)
    with pytest.raises(ConfigurationError):
        L1Cache(bus, "x", size_kb=0)
    with pytest.raises(ConfigurationError):
        L1Cache(bus, "x", size_kb=1, line_bytes=48, associativity=7)


def test_miss_then_hit():
    engine, _bus, cache = _cache()

    def accesses():
        first = yield from cache.access(0x100)
        second = yield from cache.access(0x104)    # same line
        return (first, second)

    first, second = _run(engine, accesses())
    assert (first, second) == (False, True)
    assert cache.stats.misses == 1 and cache.stats.hits == 1
    # Miss cost: one 8-word burst (10 cycles); hit cost: 1 cycle.
    assert engine.now == 11


def test_distinct_lines_miss_independently():
    engine, _bus, cache = _cache()

    def accesses():
        yield from cache.access(0x000)
        yield from cache.access(0x200)   # different set
        yield from cache.access(0x000)   # still resident

    _run(engine, accesses())
    assert cache.stats.misses == 2 and cache.stats.hits == 1


def test_lru_eviction_within_set():
    engine, _bus, cache = _cache(size_kb=1, line_bytes=32, associativity=2)
    set_stride = cache.num_sets * cache.line_bytes    # same set, new tag

    def accesses():
        yield from cache.access(0)                    # tag 0
        yield from cache.access(set_stride)           # tag 1
        yield from cache.access(0)                    # touch tag 0 (MRU)
        yield from cache.access(2 * set_stride)       # evicts tag 1
        hit_tag0 = yield from cache.access(0)
        hit_tag1 = yield from cache.access(set_stride)
        return (hit_tag0, hit_tag1)

    hit_tag0, hit_tag1 = _run(engine, accesses())
    assert hit_tag0 is True        # kept (was MRU)
    assert hit_tag1 is False       # evicted (was LRU)
    assert cache.stats.evictions >= 1


def test_capacity_never_exceeded():
    engine, _bus, cache = _cache(size_kb=1, line_bytes=32, associativity=2)
    capacity = cache.num_sets * cache.associativity

    def accesses():
        for i in range(4 * capacity):
            yield from cache.access(i * cache.line_bytes)

    _run(engine, accesses())
    assert cache.resident_lines <= capacity


def test_write_through_posts_bus_word():
    engine, bus, cache = _cache()

    def accesses():
        yield from cache.access(0x40, write=True)     # miss + write
        yield from cache.access(0x40, write=True)     # hit + write

    _run(engine, accesses())
    assert cache.stats.write_throughs == 2
    # burst (miss fill) + 2 single-word writes + 1 hit cycle
    assert bus.total_transactions == 3


def test_flush_invalidates():
    engine, _bus, cache = _cache()

    def accesses():
        yield from cache.access(0x80)
        cache.flush()
        hit = yield from cache.access(0x80)
        return hit

    hit = _run(engine, accesses())
    assert hit is False
    assert cache.resident_lines == 1


def test_pe_data_access_counts_bus_on_miss():
    from repro.mpsoc.soc import MPSoC, SoCConfig
    soc = MPSoC(SoCConfig(num_pes=1, peripherals=()))
    pe = soc.pes[0]

    def accesses():
        yield from pe.data_access(0x1000)
        yield from pe.data_access(0x1000)

    soc.engine.spawn(accesses())
    soc.engine.run()
    assert pe.dcache.stats.hits == 1
    assert pe.bus_accesses == 1
