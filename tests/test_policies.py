"""Tests for the rejected avoidance policies and the policy ablation."""

import pytest

from repro.deadlock.daa import Action, DeadlockKind, SoftwareDAA
from repro.deadlock.policies import POLICIES, DenyRetryDAA, RequesterYieldsDAA
from repro.experiments import ablation_policies


def _setup_rdl(core):
    """p1 holds q1; p2 holds q2 and waits for q1.  p1 requesting q2
    closes the cycle."""
    core.request("p1", "q1")
    core.request("p2", "q2")
    core.request("p2", "q1")


def _make(policy_cls):
    return policy_cls(["p1", "p2", "p3"], ["q1", "q2", "q3"],
                      {"p1": 1, "p2": 2, "p3": 3})


def test_policies_registry():
    assert set(POLICIES) == {"algorithm3", "requester-yields",
                             "deny-retry"}
    assert POLICIES["algorithm3"] is SoftwareDAA


def test_requester_yields_ignores_priority():
    core = _make(RequesterYieldsDAA)
    _setup_rdl(core)
    decision = core.request("p1", "q2")
    # Algorithm 3 would pend p1 (higher priority) and demand from p2;
    # this policy makes even the top-priority requester give up.
    assert decision.action is Action.GIVE_UP
    assert decision.deadlock_kind is DeadlockKind.REQUEST
    assert ("p1", "q1") in decision.ask_release
    assert "q2" not in core.rag.requests_of("p1")


def test_deny_retry_denies_without_demands():
    core = _make(DenyRetryDAA)
    _setup_rdl(core)
    decision = core.request("p1", "q2")
    assert decision.action is Action.DENIED
    assert decision.ask_release == ()
    # p1 keeps its holdings.
    assert core.rag.held_by("p1") == ("q1",)


def test_deny_retry_flags_livelock_after_repeats():
    core = _make(DenyRetryDAA)
    core.livelock_threshold = 2
    _setup_rdl(core)
    first = core.request("p1", "q2")
    assert not first.livelock
    second = core.request("p1", "q2")
    assert second.livelock


def test_no_fallback_policies_leave_resource_idle_on_gdl():
    # Build the Table 6 shape; under the no-fallback policy the released
    # q2 stays idle instead of going to the safe lower-priority waiter.
    core = _make(RequesterYieldsDAA)
    core.request("p1", "q2")
    core.request("p3", "q2")
    core.request("p3", "q1")
    core.request("p2", "q2")
    core.request("p2", "q1")
    decision = core.release("p1", "q2")
    assert decision.action is Action.RELEASED
    assert decision.granted_to is None
    assert core.rag.is_available("q2")


def test_rejected_policies_also_avoid_deadlock():
    # Whatever their other flaws, both rejected policies must keep the
    # state deadlock-free (they are avoidance policies too).
    for name in ("requester-yields", "deny-retry"):
        row = ablation_policies.run_policy(name, ticks=400)
        assert row.deadlocked_ticks == 0


def test_ablation_algorithm3_wins():
    result = ablation_policies.run(ticks=1200)
    rows = {row.policy: row for row in result.rows}
    alg3 = rows["algorithm3"]
    assert alg3.jobs_completed >= rows["requester-yields"].jobs_completed
    assert alg3.jobs_completed > 5 * rows["deny-retry"].jobs_completed
    # Priority protection: p1 completes more under Algorithm 3.
    assert (alg3.jobs_highest_priority
            >= rows["requester-yields"].jobs_highest_priority)
    # Deny-retry is the livelock-prone one.
    assert rows["deny-retry"].livelock_flags > alg3.livelock_flags
    assert alg3.deadlocked_ticks == 0
    assert "ablation" in result.render().lower()
