"""Tests pinning the calibration's structural facts and relationships.

These are the relationships DESIGN.md and docs/calibration.md promise;
a recalibration that breaks one of them would silently change what the
experiments mean.
"""

from repro import calibration
from repro.experiments.table11_malloc import PAPER_TABLE_11
from repro.experiments.table12_socdmmu import PAPER_TABLE_12


def test_structural_bus_constants():
    assert calibration.BUS_CLOCK_NS == 10           # 100 MHz
    assert calibration.MEM_FIRST_WORD_CYCLES == 3
    assert calibration.MEM_BURST_WORD_CYCLES == 1


def test_idct_frame_matches_section_5_3():
    assert calibration.IDCT_FRAME_CYCLES == 23_600


def test_mpsoc_area_reference():
    # Table 2: 4 x 1.7M PEs + 33.5M memory = 40.3M gates.
    assert calibration.MPSOC_TOTAL_GATES == (
        4 * calibration.MPC755_GATES + calibration.MEM_16MB_GATES)
    assert 40_000_000 < calibration.MPSOC_TOTAL_GATES < 41_000_000


def test_hardware_always_cheaper_than_software():
    assert (calibration.DDU_CYCLES_PER_ITERATION
            < calibration.SW_PDDA_CELL_CYCLES)
    assert (calibration.SOCLC_LOCK_LATENCY_CYCLES
            < calibration.SW_LOCK_LATENCY_CYCLES)
    assert (calibration.SOCLC_LOCK_RELEASE_CYCLES
            < calibration.SW_LOCK_RELEASE_CYCLES)
    assert (calibration.SOCLC_SHORT_LOCK_CYCLES
            < calibration.SW_SHORT_LOCK_CYCLES)
    assert (calibration.SOCDMMU_ALLOC_CYCLES
            < calibration.SW_MALLOC_BASE_CYCLES)
    assert (calibration.SOCLC_LOCK_WAKE_CYCLES
            < calibration.SW_LOCK_WAKE_CYCLES)


def test_table_10_latency_anchors():
    # The published 570 vs 318 latency row is taken as the direct
    # per-primitive cost (1.79X).
    ratio = (calibration.SW_LOCK_LATENCY_CYCLES
             / calibration.SOCLC_LOCK_LATENCY_CYCLES)
    assert abs(ratio - 1.79) < 0.01


def test_splash_compute_is_paper_total_minus_paper_mm():
    for name, (total, mm, _pct) in PAPER_TABLE_11.items():
        assert calibration.SPLASH_COMPUTE_CYCLES[name] == total - mm
    # ...and the same compute reconciles Table 12.
    for name, row in PAPER_TABLE_12.items():
        assert calibration.SPLASH_COMPUTE_CYCLES[name] == row[0] - row[1]


def test_software_pdda_lands_near_published_mean():
    # 2-4 passes at m=n=5 should straddle the paper's 1830-cycle mean.
    low = (2 * 25 * calibration.SW_PDDA_CELL_CYCLES
           + calibration.SW_PDDA_OVERHEAD_CYCLES)
    high = (4 * 25 * calibration.SW_PDDA_CELL_CYCLES
            + calibration.SW_PDDA_OVERHEAD_CYCLES)
    assert low < 1_830 < high
