"""Tests for the watchdog / deadline monitor."""

import pytest

from repro.errors import RTOSError
from repro.rtos.watchdog import Watchdog


def test_timeout_fires_and_records(kernel):
    watchdog = Watchdog(kernel)
    fired = []
    watchdog.arm("ctl-loop", 1000,
                 on_timeout=lambda t: fired.append(t))
    kernel.create_task(lambda ctx: ctx.compute(5000), "busy", 1, "PE1")
    kernel.run()
    assert watchdog.miss_count == 1
    assert fired and fired[0].name == "ctl-loop"
    assert fired[0].fired_at == 1000
    assert kernel.trace.count("deadline_missed") == 1


def test_disarm_before_deadline_prevents_timeout(kernel):
    watchdog = Watchdog(kernel)
    watch_id = watchdog.arm("op", 1000)

    def body(ctx):
        yield from ctx.compute(500)
        assert watchdog.disarm(watch_id) is True

    kernel.create_task(body, "t", 1, "PE1")
    kernel.run()
    assert watchdog.miss_count == 0


def test_kick_extends_the_deadline(kernel):
    watchdog = Watchdog(kernel)
    watch_id = watchdog.arm("loop", 1000)

    def body(ctx):
        for _ in range(4):
            yield from ctx.compute(800)
            watchdog.kick(watch_id)     # always inside the window

    kernel.create_task(body, "t", 1, "PE1")
    kernel.run(until=3600)
    assert watchdog.miss_count == 0
    kernel.run()                         # the final window expires
    assert watchdog.miss_count == 1


def test_missed_then_kick_rejected(kernel):
    watchdog = Watchdog(kernel)
    watch_id = watchdog.arm("late", 100)
    kernel.create_task(lambda ctx: ctx.compute(1000), "t", 1, "PE1")
    kernel.run()
    assert watchdog.miss_count == 1
    with pytest.raises(RTOSError):
        watchdog.kick(watch_id)


def test_disarm_after_miss_returns_false(kernel):
    watchdog = Watchdog(kernel)
    watch_id = watchdog.arm("late", 100)
    kernel.create_task(lambda ctx: ctx.compute(500), "t", 1, "PE1")
    kernel.run()
    assert watchdog.disarm(watch_id) is False


def test_validation(kernel):
    watchdog = Watchdog(kernel)
    with pytest.raises(RTOSError):
        watchdog.arm("x", 0)
    with pytest.raises(RTOSError):
        watchdog.kick(999)
    assert not watchdog.is_active(999)


def test_trace_csv_export(kernel, base_system):
    kernel.create_task(lambda ctx: ctx.compute(100), "t", 1, "PE1")
    kernel.run()
    csv = base_system.soc.trace.to_csv(kinds=["run_start", "finish"])
    lines = csv.splitlines()
    assert lines[0].startswith("time,actor,kind")
    assert any(",t,run_start" in line for line in lines)
    assert any(",t,finish" in line for line in lines)

def test_kick_racing_stale_expiry_does_not_resurrect(kernel):
    """A kick leaves the old deadline event queued; when that stale
    event fires it must be ignored (generation check), not kill the
    freshly-kicked watch."""
    watchdog = Watchdog(kernel)
    watch_id = watchdog.arm("race", 1000)
    # Kick one cycle before the first deadline: the event scheduled for
    # t=1000 still carries generation 0 and must be a no-op.
    kernel.engine.schedule(999, watchdog.kick, watch_id)
    kernel.run(until=1500)
    assert watchdog.is_active(watch_id)
    assert watchdog.miss_count == 0
    assert kernel.trace.count("deadline_missed") == 0
    kernel.run(until=2100)               # the kicked deadline (t=1999)
    assert watchdog.miss_count == 1
    assert watchdog.timeouts[0].deadline == 1999


def test_kick_after_fire_does_not_resurrect(kernel):
    """Kicking a watch whose generation already fired is rejected and
    must not schedule a new expiry for the dead watch."""
    watchdog = Watchdog(kernel)
    watch_id = watchdog.arm("late", 100)

    def body(ctx):
        yield from ctx.compute(200)          # miss recorded at t=100
        with pytest.raises(RTOSError):
            watchdog.kick(watch_id)
        yield from ctx.compute(1000)         # nothing else may fire

    kernel.create_task(body, "t", 1, "PE1")
    kernel.run()
    assert watchdog.miss_count == 1
    assert not watchdog.is_active(watch_id)
