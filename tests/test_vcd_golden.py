"""Golden-file test for the VCD exporter.

The golden file pins the exact byte-level VCD output for a small
deterministic two-task scenario; any change to header layout, identifier
assignment, edge mapping or timestamp grouping shows up as a diff
against ``tests/data/two_tasks.vcd``.

To regenerate after an intentional format change::

    PYTHONPATH=src python tests/test_vcd_golden.py
"""

from pathlib import Path

from repro.framework.builder import build_system
from repro.sim.vcd import trace_to_vcd

GOLDEN = Path(__file__).parent / "data" / "two_tasks.vcd"


def _two_task_trace():
    system = build_system("RTOS5")
    kernel = system.kernel

    def worker(ctx):
        yield from ctx.compute(50)
        yield from ctx.sleep(20)
        yield from ctx.compute(30)

    def rival(ctx):
        yield from ctx.compute(40)

    kernel.create_task(worker, "p1", 1, "PE1")
    kernel.create_task(rival, "p2", 2, "PE1")
    kernel.run()
    return kernel.trace


def test_vcd_matches_golden_file():
    document = trace_to_vcd(_two_task_trace(), actors=["p1", "p2"])
    assert document == GOLDEN.read_text()


def test_vcd_structure():
    document = trace_to_vcd(_two_task_trace(), actors=["p1", "p2"])
    lines = document.splitlines()
    assert lines[0].startswith("$date")
    assert any(line.startswith("$timescale") for line in lines)
    assert sum(1 for line in lines if line.startswith("$var")) == 4
    assert "$enddefinitions $end" in lines
    # Every value-change line flips a declared identifier.
    idents = {line.split()[3] for line in lines if line.startswith("$var")}
    for line in lines[lines.index("$end") + 1:]:
        if line.startswith("#"):
            continue
        assert line[0] in "01" and line[1:] in idents


if __name__ == "__main__":   # regeneration helper
    GOLDEN.parent.mkdir(exist_ok=True)
    GOLDEN.write_text(trace_to_vcd(_two_task_trace(),
                                   actors=["p1", "p2"]))
    print(f"wrote {GOLDEN}")
