"""The ``python -m repro.campaign`` CLI: run, replay, diff, list."""

import json

import pytest

from repro.campaign import CampaignSpec, ScenarioSpec
from repro.campaign.__main__ import main


@pytest.fixture()
def tiny_spec_file(tmp_path):
    spec = CampaignSpec(name="tiny", scenarios=(
        ScenarioSpec(name="pdda", generator="rag.random",
                     checker="pdda-vs-oracle",
                     params={"m": 4, "n": 4}, repeats=3),
        ScenarioSpec(name="recovery", generator="rag.random",
                     checker="recovery-converges",
                     params={"m": 4, "n": 4, "grant_fraction": 0.85},
                     repeats=2),
    ))
    path = tmp_path / "tiny.json"
    path.write_text(spec.to_json())
    return path


def _run(argv):
    return main([str(arg) for arg in argv])


def test_run_writes_results_and_manifest(tiny_spec_file, tmp_path,
                                         capsys):
    out = tmp_path / "run-a"
    assert _run(["run", "--spec", tiny_spec_file, "--seed-root", "42",
                 "--out", out]) == 0
    printed = capsys.readouterr().out
    assert "5 scenario(s)" in printed
    assert "result digest:" in printed
    assert (out / "results.jsonl").exists()
    manifest = json.loads((out / "manifest.json").read_text())
    assert manifest["campaign"] == "tiny"
    assert manifest["counts"]["pass"] == 5


def test_run_twice_same_digest(tiny_spec_file, capsys):
    digests = []
    for workers in ("1", "2"):
        assert _run(["run", "--spec", tiny_spec_file, "--seed-root",
                     "7", "--workers", workers]) == 0
        out = capsys.readouterr().out
        digests.append([line for line in out.splitlines()
                        if line.startswith("result digest:")][0])
    assert digests[0] == digests[1]


def test_replay_matches(tiny_spec_file, tmp_path, capsys):
    out = tmp_path / "run-a"
    assert _run(["run", "--spec", tiny_spec_file, "--seed-root", "42",
                 "--out", out]) == 0
    capsys.readouterr()
    assert _run(["replay", out, "pdda/00001"]) == 0
    printed = capsys.readouterr().out
    assert "replay matches the recorded outcome" in printed


def test_replay_unknown_scenario_is_usage_error(tiny_spec_file,
                                                tmp_path, capsys):
    out = tmp_path / "run-a"
    assert _run(["run", "--spec", tiny_spec_file, "--out", out]) == 0
    capsys.readouterr()
    assert _run(["replay", out, "pdda/99999"]) == 2
    assert "error:" in capsys.readouterr().err


def test_diff_identical_runs_is_clean(tiny_spec_file, tmp_path, capsys):
    for name in ("run-a", "run-b"):
        assert _run(["run", "--spec", tiny_spec_file, "--seed-root",
                     "42", "--out", tmp_path / name]) == 0
    capsys.readouterr()
    assert _run(["diff", tmp_path / "run-a", tmp_path / "run-b"]) == 0
    assert "no regressions" in capsys.readouterr().out


def test_diff_flags_injected_regression(tiny_spec_file, tmp_path,
                                        capsys):
    out = tmp_path / "run-a"
    assert _run(["run", "--spec", tiny_spec_file, "--seed-root", "42",
                 "--out", out]) == 0
    manifest_path = out / "manifest.json"
    manifest = json.loads(manifest_path.read_text())
    manifest["scenarios"]["pdda/00000"].update(ok=False,
                                               verdict="fail")
    broken = tmp_path / "run-broken"
    broken.mkdir()
    (broken / "manifest.json").write_text(json.dumps(manifest))
    capsys.readouterr()
    assert _run(["diff", out, broken]) == 1
    assert "NEW FAILURE" in capsys.readouterr().out


def test_run_with_baseline_gate_passes_itself(tiny_spec_file, tmp_path,
                                              capsys):
    out = tmp_path / "run-a"
    assert _run(["run", "--spec", tiny_spec_file, "--seed-root", "42",
                 "--out", out]) == 0
    assert _run(["run", "--spec", tiny_spec_file, "--seed-root", "42",
                 "--baseline", out]) == 0
    assert "no regressions" in capsys.readouterr().out


def test_run_failure_exit_code(tmp_path, capsys):
    spec = CampaignSpec(name="hangs", scenarios=(
        ScenarioSpec(name="hang", generator="census",
                     checker="chaos.hang",
                     params={"m": 2, "n": 2, "seconds": 30.0}),))
    path = tmp_path / "hangs.json"
    path.write_text(spec.to_json())
    assert _run(["run", "--spec", path, "--timeout", "0.3"]) == 1
    assert "TIMEOUT" in capsys.readouterr().out


def test_trace_out_merges_workers(tiny_spec_file, tmp_path, capsys):
    trace = tmp_path / "trace.json"
    assert _run(["run", "--spec", tiny_spec_file, "--workers", "2",
                 "--metrics", "--trace-out", trace]) == 0
    printed = capsys.readouterr().out
    assert "campaign.scenarios" in printed
    data = json.loads(trace.read_text())
    events = data["traceEvents"] if isinstance(data, dict) else data
    names = {e["args"]["name"] for e in events if e.get("ph") == "M"
             and e["name"] == "thread_name"}
    assert names == {"shard0", "shard1"}
    assert sum(1 for e in events if e.get("ph") == "X") == 5


def test_list_shows_registries(capsys):
    assert _run(["list"]) == 0
    printed = capsys.readouterr().out
    for token in ("smoke", "claims", "chaos", "rag.random",
                  "pdda-vs-oracle", "sim-run-completes"):
        assert token in printed


def test_missing_manifest_is_usage_error(tmp_path, capsys):
    assert _run(["diff", tmp_path / "nope-a", tmp_path / "nope-b"]) == 2
    assert "error:" in capsys.readouterr().err
