"""Tests for PDDA (Algorithms 1-2) and its software cost model."""

import random

from repro import calibration
from repro.deadlock.pdda import (
    pdda_detect,
    software_detection_cycles,
    terminal_reduction,
)
from repro.rag.generate import (
    chain_state,
    cycle_state,
    empty_state,
    random_state,
)
from repro.rag.matrix import StateMatrix


def test_empty_matrix_no_deadlock_one_pass():
    result = pdda_detect(empty_state(3, 3))
    assert not result.deadlock
    assert result.iterations == 0
    assert result.passes == 1


def test_cycle_is_irreducible_immediately():
    result = pdda_detect(cycle_state(3))
    assert result.deadlock
    assert result.iterations == 0
    assert result.residual.edge_count == 6


def test_chain_reduces_completely():
    result = pdda_detect(chain_state(4))
    assert not result.deadlock
    assert result.residual.is_empty()
    assert result.iterations >= 1


def test_cycle_plus_tail_reduces_to_cycle():
    # A cycle with a dangling request from an outside process: the tail
    # edge is reducible, the cycle is not.
    state = cycle_state(3)
    # p1..p3, q1..q3 are taken; build a 4-process variant instead.
    from repro.rag.graph import RAG
    rag = RAG(["p1", "p2", "p3", "p4"], ["q1", "q2", "q3"])
    rag.grant("q1", "p1")
    rag.grant("q2", "p2")
    rag.add_request("p1", "q2")
    rag.add_request("p2", "q1")
    rag.add_request("p4", "q1")       # the reducible tail
    result = pdda_detect(rag)
    assert result.deadlock
    assert result.residual.edge_count == 4
    assert result.deadlocked_processes() == ["p1", "p2"]
    assert result.deadlocked_resources() == ["q1", "q2"]
    assert state.has_cycle()          # sanity on the unused helper


def test_terminal_reduction_is_idempotent_on_residual():
    state = random_state(5, 5, rng=random.Random(11))
    first = terminal_reduction(state)
    second = terminal_reduction(first.matrix)
    assert second.iterations == 0
    assert second.matrix == first.matrix


def test_reduction_never_increases_edges():
    rng = random.Random(5)
    for _ in range(30):
        state = random_state(5, 5, rng=rng)
        matrix = StateMatrix.from_rag(state)
        before = matrix.edge_count
        result = terminal_reduction(matrix)
        assert result.matrix.edge_count <= before


def test_matches_cycle_oracle_on_many_random_states():
    rng = random.Random(2026)
    for _ in range(300):
        state = random_state(5, 5, rng=rng)
        assert pdda_detect(state).deadlock == state.has_cycle()


def test_detect_does_not_mutate_input_matrix():
    matrix = StateMatrix.from_rag(chain_state(3))
    before = matrix.copy()
    pdda_detect(matrix)
    assert matrix == before


def test_software_cost_model_formula():
    cycles = software_detection_cycles(5, 5, passes=4)
    expected = (4 * 25 * calibration.SW_PDDA_CELL_CYCLES
                + calibration.SW_PDDA_OVERHEAD_CYCLES)
    assert cycles == expected


def test_software_cycles_grow_with_passes():
    shallow = pdda_detect(empty_state(5, 5))
    deep = pdda_detect(chain_state(5))
    assert deep.software_cycles > shallow.software_cycles
