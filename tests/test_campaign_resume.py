"""Crash-consistent campaign runs: journal, resume, timeout fallback.

Covers the write-ahead journal's durability contract, the
``run(completed=...)`` resume path, the SIGALRM timeout guard's two
branches, and end-to-end kill-and-resume determinism at 1 and 4
workers (SIGKILL the whole runner process group mid-campaign, resume,
and require the digest of an uninterrupted run).
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.campaign import (
    CampaignRunner,
    CampaignSpec,
    ScenarioSpec,
    builtin_campaign,
    load_results,
    results_digest,
)
from repro.campaign import runner as runner_module
from repro.campaign.journal import (
    JOURNAL_NAME,
    RunJournal,
    journal_header,
)
from repro.campaign.runner import _run_with_timeout
from repro.errors import ConfigurationError, ReproError

REPO = Path(__file__).resolve().parent.parent
SRC = str(REPO / "src")


def _header(spec=None, **overrides):
    spec = spec or builtin_campaign("smoke")
    header = journal_header(spec.to_dict(), spec.spec_hash(),
                            seed_root=42, workers=1,
                            task_timeout=None, retries=1)
    header.update(overrides)
    return header


def _record(scenario_id, verdict="pass"):
    return {"scenario_id": scenario_id, "seed": 1,
            "generator": "rag.random", "checker": "pdda-vs-oracle",
            "params": {}, "verdict": verdict, "ok": verdict == "pass",
            "steps": 3, "cycles": 3.0, "detail": "", "duration": 0.01,
            "start": 0.0, "shard": 0, "attempts": 1}


# -- RunJournal ----------------------------------------------------------------

class TestRunJournal:
    def test_create_append_load_roundtrip(self, tmp_path):
        with RunJournal.create(tmp_path, _header()) as journal:
            journal.append_result(_record("smoke/00000"))
            journal.append_result(_record("smoke/00001", "fail"))
        header, records = RunJournal.load(tmp_path)
        assert header["seed_root"] == 42
        assert sorted(records) == ["smoke/00000", "smoke/00001"]
        assert records["smoke/00001"]["verdict"] == "fail"

    def test_torn_final_line_is_tolerated(self, tmp_path):
        with RunJournal.create(tmp_path, _header()) as journal:
            journal.append_result(_record("smoke/00000"))
        path = tmp_path / JOURNAL_NAME
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"type":"result","record":{"scenario_id"')
        header, records = RunJournal.load(tmp_path)
        assert list(records) == ["smoke/00000"]

    def test_mid_journal_corruption_raises(self, tmp_path):
        with RunJournal.create(tmp_path, _header()) as journal:
            journal.append_result(_record("smoke/00000"))
        path = tmp_path / JOURNAL_NAME
        lines = path.read_text().splitlines()
        lines.insert(1, "{ torn mid-file")
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ConfigurationError, match="corrupt"):
            RunJournal.load(tmp_path)

    def test_missing_header_raises(self, tmp_path):
        path = tmp_path / JOURNAL_NAME
        path.write_text(json.dumps(
            {"type": "result", "record": _record("smoke/00000")}) + "\n")
        with pytest.raises(ConfigurationError, match="run_start"):
            RunJournal.load(tmp_path)

    def test_missing_journal_raises(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no journal"):
            RunJournal.load(tmp_path)
        with pytest.raises(ConfigurationError, match="no journal"):
            RunJournal.append_to(tmp_path)

    def test_duplicate_record_keeps_last(self, tmp_path):
        with RunJournal.create(tmp_path, _header()) as journal:
            journal.append_result(_record("smoke/00000", "crash"))
            journal.append_result(_record("smoke/00000", "pass"))
        _, records = RunJournal.load(tmp_path)
        assert records["smoke/00000"]["verdict"] == "pass"

    def test_append_to_continues_existing_journal(self, tmp_path):
        with RunJournal.create(tmp_path, _header()) as journal:
            journal.append_result(_record("smoke/00000"))
        with RunJournal.append_to(tmp_path) as journal:
            journal.append_result(_record("smoke/00001"))
        _, records = RunJournal.load(tmp_path)
        assert sorted(records) == ["smoke/00000", "smoke/00001"]

    def test_header_validation(self, tmp_path):
        with pytest.raises(ConfigurationError, match="missing"):
            RunJournal.create(tmp_path, {"spec": {}})

    def test_every_line_is_durable_immediately(self, tmp_path):
        # Each append is flushed before returning: a concurrent reader
        # (or a post-SIGKILL resume) sees it without close().
        journal = RunJournal.create(tmp_path, _header())
        journal.append_result(_record("smoke/00000"))
        try:
            _, records = RunJournal.load(tmp_path)
            assert list(records) == ["smoke/00000"]
        finally:
            journal.close()


# -- runner integration: journal + resume --------------------------------------

def _tiny_spec():
    return CampaignSpec(name="resume-t", scenarios=(
        ScenarioSpec(name="pdda", generator="rag.random",
                     checker="pdda-vs-oracle",
                     params={"m": 3, "n": 3}, repeats=4),))


class TestRunnerResume:
    def test_run_journals_every_record(self, tmp_path):
        spec = _tiny_spec()
        journal = RunJournal.create(tmp_path, _header(spec))
        try:
            run = CampaignRunner(spec, seed_root=42, workers=1,
                                 journal=journal).run()
        finally:
            journal.close()
        _, records = RunJournal.load(tmp_path)
        assert sorted(records) == sorted(
            r.scenario_id for r in run.results)

    def test_resume_skips_completed_and_matches_digest(self, tmp_path):
        spec = _tiny_spec()
        reference = CampaignRunner(spec, seed_root=42, workers=1).run()
        full = {r.scenario_id: r.to_record() for r in reference.results}
        # Resume with half the records journaled: only the rest re-run,
        # and the merged digest equals the uninterrupted run's.
        half = dict(list(sorted(full.items()))[:2])
        resumed = CampaignRunner(spec, seed_root=42, workers=1).run(
            completed=half)
        assert results_digest(resumed.results) == \
            results_digest(reference.results)

    def test_resume_with_all_records_runs_nothing(self):
        spec = _tiny_spec()
        reference = CampaignRunner(spec, seed_root=42, workers=1).run()
        full = {r.scenario_id: r.to_record() for r in reference.results}
        resumed = CampaignRunner(spec, seed_root=42, workers=1).run(
            completed=full)
        assert results_digest(resumed.results) == \
            results_digest(reference.results)

    def test_resume_with_unknown_scenario_is_spec_mismatch(self):
        runner = CampaignRunner(_tiny_spec(), seed_root=42, workers=1)
        with pytest.raises(ReproError, match="spec mismatch"):
            runner.run(completed={"other/00000": _record("other/00000")})


# -- SIGALRM guard: both branches ----------------------------------------------

class TestTimeoutGuard:
    def _scenario(self):
        return _tiny_spec().expand(42)[0]

    def test_platform_has_sigalrm_detected(self):
        # On POSIX CI both attributes exist; the constant reflects that.
        expected = hasattr(signal, "SIGALRM") and \
            hasattr(signal, "setitimer")
        assert runner_module.HAS_SIGALRM == expected

    @pytest.mark.skipif(not runner_module.HAS_SIGALRM,
                        reason="platform has no SIGALRM")
    def test_sigalrm_branch_times_out_hung_scenario(self):
        spec = CampaignSpec(name="hang-t", scenarios=(
            ScenarioSpec(name="hang", generator="rag.random",
                         checker="chaos.hang",
                         params={"m": 2, "n": 2, "seconds": 30}),))
        result = _run_with_timeout(spec.expand(0)[0], timeout=0.2)
        assert result.verdict == "timeout"
        assert not result.ok

    def test_fallback_branch_never_touches_setitimer(self, monkeypatch):
        # Simulate a SIGALRM-less platform (Windows): the guard must
        # run the scenario to completion without any itimer syscall.
        def forbidden(*args, **kwargs):      # pragma: no cover - guard
            raise AssertionError("setitimer used on no-SIGALRM path")

        monkeypatch.setattr(runner_module, "HAS_SIGALRM", False)
        monkeypatch.setattr(runner_module.signal, "setitimer", forbidden,
                            raising=False)
        result = _run_with_timeout(self._scenario(), timeout=0.001)
        assert result.verdict in ("pass", "fail")   # ran, unbounded

    def test_fallback_branch_matches_untimed_outcome(self, monkeypatch):
        scenario = self._scenario()
        reference = _run_with_timeout(scenario, timeout=None)
        monkeypatch.setattr(runner_module, "HAS_SIGALRM", False)
        fallback = _run_with_timeout(scenario, timeout=5.0)
        assert fallback.verdict == reference.verdict
        assert fallback.steps == reference.steps
        assert fallback.cycles == reference.cycles


# -- end-to-end kill-and-resume determinism ------------------------------------

def _cli_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _cli(*argv):
    return [sys.executable, "-m", "repro.campaign", *argv]


def _journal_records(run_dir: Path) -> int:
    journal = run_dir / JOURNAL_NAME
    if not journal.exists():
        return 0
    return sum(1 for line in journal.read_text().splitlines()
               if '"type":"result"' in line)


def _run_and_kill(argv, run_dir: Path, trigger: int,
                  timeout: float = 120.0) -> bool:
    """SIGKILL the runner's whole process group once ``trigger``
    records are journaled; True when the kill landed mid-run."""
    process = subprocess.Popen(argv, env=_cli_env(), cwd=REPO,
                               start_new_session=True,
                               stdout=subprocess.DEVNULL,
                               stderr=subprocess.DEVNULL)
    deadline = time.time() + timeout
    try:
        while time.time() < deadline:
            if process.poll() is not None:
                return False
            if _journal_records(run_dir) >= trigger:
                os.killpg(process.pid, signal.SIGKILL)
                process.wait(timeout=30)
                return True
            time.sleep(0.002)
    finally:
        if process.poll() is None:
            os.killpg(process.pid, signal.SIGKILL)
            process.wait(timeout=30)
    return True


@pytest.mark.parametrize("workers", [1, 4])
def test_kill_and_resume_digest_matches_clean_run(tmp_path, workers):
    clean_dir = tmp_path / "clean"
    crashed_dir = tmp_path / "crashed"
    common = ["--builtin", "faults", "--seed-root", "42",
              "--workers", str(workers)]

    clean = subprocess.run(
        _cli("run", *common, "--out", str(clean_dir)),
        env=_cli_env(), cwd=REPO, capture_output=True, text=True,
        timeout=300)
    assert clean.returncode == 0, clean.stderr
    clean_digest = results_digest(load_results(clean_dir))

    interrupted = _run_and_kill(
        _cli("run", *common, "--out", str(crashed_dir)),
        crashed_dir, trigger=3)
    if interrupted:
        # The kill landed mid-campaign: the journal must be a strict
        # prefix of the full run, and resume must finish it.
        assert _journal_records(crashed_dir) < len(
            load_results(clean_dir))
    resume = subprocess.run(
        _cli("resume", str(crashed_dir)),
        env=_cli_env(), cwd=REPO, capture_output=True, text=True,
        timeout=300)
    assert resume.returncode == 0, resume.stderr

    assert results_digest(load_results(crashed_dir)) == clean_digest
