"""Tests for the state-matrix encoding (Definition 6, Equations 3-6)."""

import pytest

from repro.errors import ResourceProtocolError
from repro.rag.graph import RAG
from repro.rag.matrix import CellState, StateMatrix


def test_cell_encoding_bits():
    assert CellState.EMPTY.r_bit == 0 and CellState.EMPTY.g_bit == 0
    assert CellState.GRANT.r_bit == 0 and CellState.GRANT.g_bit == 1
    assert CellState.REQUEST.r_bit == 1 and CellState.REQUEST.g_bit == 0


def test_from_rows_and_symbols():
    matrix = StateMatrix.from_rows(["g r .", ". g r"])
    assert matrix.m == 2 and matrix.n == 3
    assert matrix.get(0, 0) is CellState.GRANT
    assert matrix.get(0, 1) is CellState.REQUEST
    assert matrix.get(1, 0) is CellState.EMPTY


def test_from_rows_rejects_bad_input():
    with pytest.raises(ResourceProtocolError):
        StateMatrix.from_rows(["g x"])
    with pytest.raises(ResourceProtocolError):
        StateMatrix.from_rows(["g r", "g"])
    with pytest.raises(ResourceProtocolError):
        StateMatrix.from_rows([])


def test_rag_round_trip():
    rag = RAG(["p1", "p2"], ["q1", "q2"])
    rag.grant("q1", "p1")
    rag.add_request("p2", "q1")
    rag.add_request("p1", "q2")
    matrix = StateMatrix.from_rag(rag)
    assert matrix.to_rag() == rag


def test_single_grant_per_row_enforced():
    matrix = StateMatrix(2, 2)
    matrix.set_grant(0, 0)
    with pytest.raises(ResourceProtocolError):
        matrix.set_grant(0, 1)


def test_request_promoted_to_grant_in_place():
    matrix = StateMatrix(1, 2)
    matrix.set_request(0, 1)
    matrix.set_grant(0, 1)
    assert matrix.get(0, 1) is CellState.GRANT


def test_set_request_on_occupied_cell_rejected():
    matrix = StateMatrix(1, 1)
    matrix.set_request(0, 0)
    with pytest.raises(ResourceProtocolError):
        matrix.set_request(0, 0)


def test_bwo_row_and_column():
    matrix = StateMatrix.from_rows(["g r", ". r"])
    assert matrix.row_bwo(0) == (1, 1)     # both kinds in row 0
    assert matrix.row_bwo(1) == (1, 0)     # request only
    assert matrix.column_bwo(0) == (0, 1)  # grant only
    assert matrix.column_bwo(1) == (1, 0)  # requests only


def test_terminal_flags_match_definitions():
    # Row with only requests: terminal (Definition 7 case i).
    only_requests = StateMatrix.from_rows(["r r ."])
    assert only_requests.row_terminal(0)
    # Row with a single grant: terminal (case ii).
    single_grant = StateMatrix.from_rows([". g ."])
    assert single_grant.row_terminal(0)
    # Mixed row: connect, not terminal.
    mixed = StateMatrix.from_rows(["g r ."])
    assert not mixed.row_terminal(0)
    assert mixed.row_connect(0)
    # Empty row: neither.
    empty = StateMatrix.from_rows([". . ."])
    assert not empty.row_terminal(0)
    assert not empty.row_connect(0)


def test_terminal_sets_of_example_4():
    # The Example 4 structure: q2, q3 terminal rows; p2, p4, p6 terminal
    # columns (see repro.experiments.fig11_matrix_example).
    from repro.experiments.fig11_matrix_example import example_rag
    matrix = StateMatrix.from_rag(example_rag())
    rows = [matrix.resource_names[s] for s in matrix.terminal_rows()]
    cols = [matrix.process_names[t] for t in matrix.terminal_columns()]
    assert rows == ["q2", "q3"]
    assert cols == ["p2", "p4", "p6"]


def test_clear_row_and_column():
    matrix = StateMatrix.from_rows(["g r", "r g"])
    matrix.clear_row(0)
    assert matrix.row(0) == (CellState.EMPTY, CellState.EMPTY)
    matrix.clear_column(1)
    assert matrix.column(1) == (CellState.EMPTY, CellState.EMPTY)
    assert matrix.edge_count == 1


def test_copy_and_equality():
    matrix = StateMatrix.from_rows(["g r", ". ."])
    clone = matrix.copy()
    assert clone == matrix
    clone.clear(0, 0)
    assert clone != matrix


def test_render_contains_labels_and_symbols():
    matrix = StateMatrix.from_rows(["g r"])
    text = matrix.render()
    assert "q1" in text and "p1" in text and "p2" in text
    assert "g" in text and "r" in text


def test_dimension_validation():
    with pytest.raises(ResourceProtocolError):
        StateMatrix(0, 1)
    with pytest.raises(ResourceProtocolError):
        StateMatrix(2, 2, resource_names=["a"])
