"""Tests for multi-cycle recovery plans and the recovery ablation."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.deadlock.pdda import pdda_detect
from repro.deadlock.recovery import apply_plan, plan_recovery, strategies
from repro.experiments import ablation_recovery
from repro.rag.generate import random_state
from repro.rag.graph import RAG


def _two_disjoint_cycles():
    rag = RAG([f"p{i}" for i in range(1, 5)],
              [f"q{i}" for i in range(1, 5)])
    # Cycle 1: p1 <-> p2 over q1, q2.
    rag.grant("q1", "p1"); rag.grant("q2", "p2")
    rag.add_request("p1", "q2"); rag.add_request("p2", "q1")
    # Cycle 2: p3 <-> p4 over q3, q4.
    rag.grant("q3", "p3"); rag.grant("q4", "p4")
    rag.add_request("p3", "q4"); rag.add_request("p4", "q3")
    return rag


def test_plan_covers_disjoint_cycles():
    rag = _two_disjoint_cycles()
    priorities = {f"p{i}": i for i in range(1, 5)}
    plan = plan_recovery(rag, priorities)
    assert len(plan.steps) == 2
    # One victim per cycle, each the cycle's lowest-priority member.
    assert set(plan.victims) == {"p2", "p4"}
    apply_plan(rag, plan)
    assert not rag.has_cycle()


def test_plan_single_cycle_has_one_step():
    from repro.rag.generate import cycle_state
    state = cycle_state(4)
    plan = plan_recovery(state, {f"p{i}": i for i in range(1, 5)})
    assert len(plan.steps) == 1
    assert plan.victim == "p4"
    assert plan.cost == 1


@given(st.integers(0, 2**32 - 1))
@settings(max_examples=150, deadline=None)
def test_property_every_strategy_clears_every_deadlock(seed):
    state = random_state(5, 5, grant_fraction=0.85,
                         request_fraction=0.5,
                         rng=random.Random(seed))
    if not pdda_detect(state).deadlock:
        return
    priorities = {p: i for i, p in enumerate(state.processes, 1)}
    for strategy in strategies():
        working = state.copy()
        plan = plan_recovery(working, priorities, strategy)
        apply_plan(working, plan)          # raises if a cycle survives
        assert not working.has_cycle()


def test_ablation_shows_the_tradeoff():
    result = ablation_recovery.run(samples=60)
    rows = {row.strategy: row for row in result.rows}
    assert rows["lowest-priority"].top_priority_victimized == 0
    assert rows["fewest-resources"].top_priority_victimized >= 0
    assert (rows["fewest-resources"].mean_work_lost
            <= rows["lowest-priority"].mean_work_lost)
    assert "ablation" in result.render().lower()
