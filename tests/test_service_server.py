"""End-to-end tests for the asyncio front end.

Each test spins a real :class:`DetectionService` (TCP on an ephemeral
port; in-process shards unless the test is about killing workers) and
drives it with :class:`ServiceClient` inside ``asyncio.run`` — the
repo carries no pytest-asyncio dependency, and plain coroutines keep
the tests debuggable with a bare interpreter.
"""

import asyncio
import os
import signal

import pytest

from repro.service import (
    DetectionService,
    ServiceClient,
    ServiceConfig,
    ServiceOpError,
)


def _run(coro):
    return asyncio.run(coro)


async def _started(config=None):
    service = DetectionService(config or ServiceConfig(
        shards=2, use_processes=False, tick_interval=0.001))
    await service.start(host="127.0.0.1", port=0)
    client = await ServiceClient.connect_tcp("127.0.0.1",
                                             service.tcp_port)
    return service, client


async def _stop(service, client):
    await client.close()
    await service.stop()


def test_ping_and_stats():
    async def scenario():
        service, client = await _started()
        try:
            reply = await client.ping()
            assert reply["protocol"] == 2
            stats = await client.stats()
            assert stats["tenants"] == 0
            assert len(stats["shards"]) == 2
        finally:
            await _stop(service, client)
    _run(scenario())


def test_attach_claim_detect_detach():
    async def scenario():
        service, client = await _started()
        try:
            reply = await client.attach("t0", m=4, n=4)
            assert reply["attached"] and reply["m"] == 4
            assert (await client.claim("t0", "p1", "q1"))["granted"]
            assert (await client.claim("t0", "p2", "q1"))["blocked"]
            verdict = await client.detect("t0")
            assert verdict["deadlock"] is False
            assert verdict["op_seq"] == 2
            # Close the cycle p1->q2->p2->q1->p1.
            await client.claim("t0", "p2", "q2")
            await client.claim("t0", "p1", "q2")
            verdict = await client.detect("t0")
            assert verdict["deadlock"] is True
            assert sorted(verdict["deadlocked_processes"]) == ["p1", "p2"]
            assert (await client.detach("t0"))["detached"]
            with pytest.raises(ServiceOpError) as excinfo:
                await client.detect("t0")
            assert excinfo.value.code == "unknown-tenant"
        finally:
            await _stop(service, client)
    _run(scenario())


def test_duplicate_and_unknown_tenant():
    async def scenario():
        service, client = await _started()
        try:
            await client.attach("t0", m=2, n=2)
            with pytest.raises(ServiceOpError) as excinfo:
                await client.attach("t0", m=2, n=2)
            assert excinfo.value.code == "duplicate-tenant"
            with pytest.raises(ServiceOpError) as excinfo:
                await client.claim("ghost", "p1", "q1")
            assert excinfo.value.code == "unknown-tenant"
        finally:
            await _stop(service, client)
    _run(scenario())


def test_admission_control_cap():
    async def scenario():
        service, client = await _started(ServiceConfig(
            shards=2, use_processes=False, tick_interval=0.001,
            max_tenants=3))
        try:
            for i in range(3):
                await client.attach(f"t{i}", m=2, n=2)
            with pytest.raises(ServiceOpError) as excinfo:
                await client.attach("t3", m=2, n=2)
            assert excinfo.value.code == "admission-rejected"
            stats = await client.stats()
            assert stats["admission_rejected"] == 1
            events = [event["kind"]
                      for event in service.obs.flight.events()]
            assert "tenant_admission_rejected" in events
            # Detach frees a slot.
            await client.detach("t0")
            await client.attach("t3", m=2, n=2)
        finally:
            await _stop(service, client)
    _run(scenario())


def test_backpressure_bounded_queue():
    async def scenario():
        service, client = await _started(ServiceConfig(
            shards=1, use_processes=False, tick_interval=0.05,
            max_pending_per_tenant=4))
        try:
            await client.attach("t0", m=8, n=8)
            await asyncio.sleep(0.1)    # let the attach tick flush
            # Fire detects without awaiting; the 0.05s tick holds them
            # queued, so the 5th in the window must bounce.
            pending = [asyncio.ensure_future(client.request(
                "detect", tenant="t0")) for _ in range(8)]
            replies = await asyncio.gather(*pending,
                                           return_exceptions=True)
            codes = [reply.code for reply in replies
                     if isinstance(reply, ServiceOpError)]
            assert "backpressure" in codes
            served = [reply for reply in replies
                      if isinstance(reply, dict) and reply.get("ok")]
            assert len(served) == 4
            stats = await client.stats()
            assert stats["backpressure_rejected"] >= 1
        finally:
            await _stop(service, client)
    _run(scenario())


def test_tick_batches_multiple_tenants_into_one_reduction():
    async def scenario():
        service, client = await _started(ServiceConfig(
            shards=1, use_processes=False, tick_interval=0.02))
        try:
            for i in range(6):
                await client.attach(f"t{i}", seed=40 + i, m=8, n=8)
            await asyncio.sleep(0.05)
            pending = [asyncio.ensure_future(client.detect(f"t{i}"))
                       for i in range(6)]
            replies = await asyncio.gather(*pending)
            # All six landed in the same tick -> one batched plane.
            assert {reply["batched"] for reply in replies} == {6}
        finally:
            await _stop(service, client)
    _run(scenario())


def test_detach_then_queued_op_errors_cleanly():
    async def scenario():
        service, client = await _started(ServiceConfig(
            shards=1, use_processes=False, tick_interval=0.02))
        try:
            await client.attach("t0", m=2, n=2)
            await asyncio.sleep(0.05)
            detach = asyncio.ensure_future(client.detach("t0"))
            detect = asyncio.ensure_future(client.request(
                "detect", tenant="t0"))
            replies = await asyncio.gather(detach, detect,
                                           return_exceptions=True)
            assert replies[0]["detached"]
            assert (isinstance(replies[1], ServiceOpError)
                    and replies[1].code == "unknown-tenant")
        finally:
            await _stop(service, client)
    _run(scenario())


def test_migrate_preserves_digest_and_state():
    async def scenario():
        service, client = await _started()
        try:
            await client.attach("t0", seed=77, m=12, n=12)
            before = await client.detect("t0")
            shard_before = next(
                record.shard_id for tid, record
                in service.tenants.items() if tid == "t0")
            target = 1 - shard_before
            reply = await client.migrate("t0", target)
            assert reply["moved"] is True
            after = await client.detect("t0")
            assert after["deadlock"] == before["deadlock"]
            assert after["op_seq"] == before["op_seq"]
            events = [event["kind"]
                      for event in service.obs.flight.events()]
            assert "tenant_migration" in events
        finally:
            await _stop(service, client)
    _run(scenario())


def test_rebalance_evens_population():
    async def scenario():
        service, client = await _started(ServiceConfig(
            shards=2, use_processes=False, tick_interval=0.001))
        try:
            for i in range(8):
                await client.attach(f"t{i}", m=2, n=2)
            # Force-skew: move everything to shard 0.
            for i in range(8):
                await client.migrate(f"t{i}", 0)
            reply = await client.rebalance()
            assert reply["moves"] == 4
            shards = (await client.shards())["shards"]
            counts = sorted(shard["tenants"] for shard in shards)
            assert counts == [4, 4]
        finally:
            await _stop(service, client)
    _run(scenario())


def test_inprocess_shard_crash_recovers_tenants():
    async def scenario():
        service, client = await _started(ServiceConfig(
            shards=2, use_processes=False, tick_interval=0.001,
            snapshot_every=4))
        try:
            await client.attach("t0", m=4, n=4)
            await client.attach("t1", m=4, n=4)
            # Build state past a snapshot refresh plus a journal tail.
            for resource in ("q1", "q2", "q3", "q4"):
                await client.claim("t0", "p1", resource)
            await client.release("t0", "p1", "q4")
            await asyncio.sleep(0.02)   # let the refresh land
            victim = next(record.shard_id for tid, record
                          in service.tenants.items() if tid == "t0")
            service.shards[victim].crash()
            verdict = await client.detect("t0")
            assert verdict["op_seq"] == 5   # 4 claims + 1 release
            assert verdict["deadlock"] is False
            reply = await client.claim("t0", "p2", "q1")
            assert reply["blocked"] is True     # p1 still holds q1
            stats = await client.stats()
            assert stats["shard_crashes"] == 1
            events = [event["kind"]
                      for event in service.obs.flight.events()]
            assert "shard_rebalance" in events
        finally:
            await _stop(service, client)
    _run(scenario())


def test_sigkilled_worker_process_recovers():
    async def scenario():
        service, client = await _started(ServiceConfig(
            shards=2, use_processes=True, tick_interval=0.002))
        try:
            await client.attach("t0", seed=13, m=10, n=10)
            before = await client.detect("t0")
            shards = (await client.shards())["shards"]
            victim = next(shard for shard in shards
                          if shard["tenants"] > 0)
            os.kill(victim["pid"], signal.SIGKILL)
            await asyncio.sleep(0.05)
            after = await client.detect("t0")
            assert after["deadlock"] == before["deadlock"]
            assert after["op_seq"] == before["op_seq"]
            shards = (await client.shards())["shards"]
            assert sum(1 for shard in shards if shard["alive"]) == 1
            stats = await client.stats()
            assert stats["shard_crashes"] == 1
            assert stats["rebalanced_tenants"] == 1
        finally:
            await _stop(service, client)
    _run(scenario())


def test_unix_socket_transport(tmp_path):
    async def scenario():
        service = DetectionService(ServiceConfig(
            shards=1, use_processes=False, tick_interval=0.001))
        path = str(tmp_path / "service.sock")
        await service.start(unix_path=path)
        client = await ServiceClient.connect_unix(path)
        try:
            await client.attach("t0", m=2, n=2)
            reply = await client.claim("t0", "p1", "q1")
            assert reply["granted"]
        finally:
            await _stop(service, client)
    _run(scenario())


def test_shutdown_op_drains():
    async def scenario():
        service, client = await _started()
        try:
            await client.attach("t0", m=2, n=2)
            reply = await client.shutdown()
            assert reply["stopping"] is True
            await asyncio.sleep(0.05)
            assert not service._servers
        finally:
            await client.close()
            if service._servers:
                await service.stop()
    _run(scenario())


def test_latency_metrics_populate():
    async def scenario():
        service, client = await _started()
        try:
            await client.attach("t0", m=4, n=4)
            await client.claim("t0", "p1", "q1")
            await client.detect("t0")
            stats = await client.stats()
            assert stats["grant_latency"]["count"] == 1
            assert stats["verdict_latency"]["count"] == 1
            assert stats["grant_latency"]["p99_us"] > 0
        finally:
            await _stop(service, client)
    _run(scenario())
