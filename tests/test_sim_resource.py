"""Tests for SimResource arbitration (FIFO and priority)."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Engine
from repro.sim.process import FifoArbiter, PriorityArbiter, SimResource


def _holder(engine, resource, name, hold, log, priority=0):
    def proc():
        yield from resource.acquire(name, priority=priority)
        log.append(("acquired", name, engine.now))
        yield hold
        resource.release(name)
        log.append(("released", name, engine.now))
    return engine.spawn(proc(), name=name)


def test_uncontended_acquire_is_immediate():
    engine = Engine()
    resource = SimResource(engine, "r")
    log = []
    _holder(engine, resource, "a", 5, log)
    engine.run()
    assert log == [("acquired", "a", 0), ("released", "a", 5)]


def test_fifo_ordering():
    engine = Engine()
    resource = SimResource(engine, "r", arbiter=FifoArbiter())
    log = []
    for name in ("a", "b", "c"):
        _holder(engine, resource, name, 10, log)
    engine.run()
    acquired = [entry[1] for entry in log if entry[0] == "acquired"]
    assert acquired == ["a", "b", "c"]
    assert engine.now == 30


def test_priority_arbitration():
    engine = Engine()
    resource = SimResource(engine, "r", arbiter=PriorityArbiter())
    log = []
    # "a" grabs the resource; "low" then "high" queue while it holds.
    _holder(engine, resource, "a", 10, log)
    _holder(engine, resource, "low", 10, log, priority=5)
    _holder(engine, resource, "high", 10, log, priority=1)
    engine.run()
    acquired = [entry[1] for entry in log if entry[0] == "acquired"]
    assert acquired == ["a", "high", "low"]


def test_capacity_two_admits_two_holders():
    engine = Engine()
    resource = SimResource(engine, "r", capacity=2)
    log = []
    for name in ("a", "b", "c"):
        _holder(engine, resource, name, 10, log)
    engine.run()
    first_two = [entry for entry in log if entry[2] == 0]
    assert len(first_two) == 2
    assert engine.now == 20


def test_release_without_holding_is_error():
    engine = Engine()
    resource = SimResource(engine, "r")
    with pytest.raises(SimulationError):
        resource.release("ghost")


def test_zero_capacity_rejected():
    engine = Engine()
    with pytest.raises(SimulationError):
        SimResource(engine, "r", capacity=0)


def test_queue_length_visible():
    engine = Engine()
    resource = SimResource(engine, "r")
    log = []
    _holder(engine, resource, "a", 50, log)
    _holder(engine, resource, "b", 1, log)
    _holder(engine, resource, "c", 1, log)
    engine.run(until=10)
    assert resource.queue_length == 2
    assert resource.holders == ("a",)
