"""Tests for the discrete-event engine, events and processes."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Engine


def test_empty_engine_runs_to_time_zero():
    engine = Engine()
    assert engine.run() == 0


def test_schedule_orders_by_time():
    engine = Engine()
    seen = []
    engine.schedule(5, seen.append, "b")
    engine.schedule(1, seen.append, "a")
    engine.schedule(9, seen.append, "c")
    engine.run()
    assert seen == ["a", "b", "c"]
    assert engine.now == 9


def test_same_time_events_run_fifo():
    engine = Engine()
    seen = []
    for tag in ("first", "second", "third"):
        engine.schedule(3, seen.append, tag)
    engine.run()
    assert seen == ["first", "second", "third"]


def test_negative_delay_rejected():
    engine = Engine()
    with pytest.raises(SimulationError):
        engine.schedule(-1, lambda: None)


def test_run_until_bounds_time():
    engine = Engine()
    seen = []
    engine.schedule(10, seen.append, "late")
    final = engine.run(until=5)
    assert final == 5
    assert seen == []
    engine.run()
    assert seen == ["late"]


def test_process_delays_advance_time():
    engine = Engine()

    def proc():
        yield 10
        yield 5
        return engine.now

    handle = engine.spawn(proc(), name="delays")
    engine.run()
    assert handle.result == 15


def test_process_yield_none_resumes_same_time():
    engine = Engine()
    times = []

    def proc():
        times.append(engine.now)
        yield None
        times.append(engine.now)

    engine.spawn(proc())
    engine.run()
    assert times == [0, 0]


def test_event_wakes_waiter_with_payload():
    engine = Engine()
    results = []

    def waiter(event):
        payload = yield event
        results.append((engine.now, payload))

    event = engine.event("ping")
    engine.spawn(waiter(event))
    engine.schedule(7, event.set, "hello")
    engine.run()
    assert results == [(7, "hello")]


def test_event_set_twice_is_error():
    engine = Engine()
    event = engine.event()
    event.set()
    with pytest.raises(SimulationError):
        event.set()


def test_already_set_event_resumes_immediately():
    engine = Engine()
    event = engine.event()
    event.set("early")

    def waiter():
        payload = yield event
        return payload

    handle = engine.spawn(waiter())
    engine.run()
    assert handle.result == "early"


def test_event_wakes_all_waiters():
    engine = Engine()
    woken = []

    def waiter(name, event):
        yield event
        woken.append(name)

    event = engine.event()
    for name in ("a", "b", "c"):
        engine.spawn(waiter(name, event))
    engine.schedule(1, event.set, None)
    engine.run()
    assert sorted(woken) == ["a", "b", "c"]


def test_process_join():
    engine = Engine()

    def child():
        yield 20
        return "child-result"

    def parent():
        handle = engine.spawn(child(), name="child")
        result = yield handle
        return (engine.now, result)

    handle = engine.spawn(parent(), name="parent")
    engine.run()
    assert handle.result == (20, "child-result")


def test_process_failure_surfaces_at_run():
    engine = Engine()

    def bad():
        yield 1
        raise ValueError("boom")

    engine.spawn(bad(), name="bad")
    with pytest.raises(SimulationError):
        engine.run()


def test_result_of_running_process_is_error():
    engine = Engine()

    def proc():
        yield 1

    handle = engine.spawn(proc())
    with pytest.raises(SimulationError):
        _ = handle.result


def test_unsupported_yield_command_fails():
    engine = Engine()

    def proc():
        yield "what is this"

    engine.spawn(proc(), name="weird")
    with pytest.raises(SimulationError):
        engine.run()


def test_negative_yield_delay_fails():
    engine = Engine()

    def proc():
        yield -5

    engine.spawn(proc(), name="negative")
    with pytest.raises(SimulationError):
        engine.run()


def test_max_events_guard_catches_livelock():
    engine = Engine()

    def spinner():
        while True:
            yield 1

    engine.spawn(spinner(), name="spin")
    with pytest.raises(SimulationError):
        engine.run(max_events=100)


def test_run_until_complete_raises_on_stuck_process():
    engine = Engine()
    never = engine.event()

    def stuck():
        yield never

    handle = engine.spawn(stuck(), name="stuck")
    with pytest.raises(SimulationError):
        engine.run_until_complete([handle])


def test_profile_stats_counts_events():
    engine = Engine()

    def proc():
        yield 5
        yield 5

    engine.spawn(proc(), name="p")
    engine.run()
    stats = engine.profile_stats()
    assert stats["events_processed"] >= 2
    assert stats["sim_cycles"] == 10
    assert stats["events_per_cycle"] > 0
    assert stats["wall_seconds"] == 0.0     # profiling was off


def test_profiling_accumulates_wall_time():
    engine = Engine()
    engine.profiling = True

    def proc():
        for _ in range(100):
            yield 1

    engine.spawn(proc(), name="p")
    engine.run()
    stats = engine.profile_stats()
    assert stats["wall_seconds"] > 0
    assert stats["wall_us_per_cycle"] > 0
