"""Campaign-level observability: merged traces, per-scenario profiles,
and metric-snapshot exactness across a checkpoint/restore boundary."""

import json

from repro.campaign import (
    CampaignRunner,
    CampaignSpec,
    ScenarioSpec,
    load_manifest,
    write_run,
)
from repro.campaign.__main__ import main as campaign_main
from repro.framework.builder import build_system
from repro.obs import Observability, ProfileReport, chrome_trace_document


def _campaign(repeats=8):
    return CampaignSpec(name="t", scenarios=(
        ScenarioSpec(name="honest", generator="rag.random",
                     checker="pdda-vs-oracle",
                     params={"m": 4, "n": 4}, repeats=repeats),))


# -- multi-shard trace merging -------------------------------------------------

def test_merged_trace_spans_equal_union_of_shards():
    """4 workers: the merged Perfetto trace's span set must equal the
    union of the per-shard span sets the shard map implies."""
    campaign = _campaign(repeats=8)
    obs = Observability(label="campaign:t", enabled=True)
    run = CampaignRunner(campaign, workers=4, obs=obs).run()
    assert len(run.results) == 8
    assert set(run.shard_map.values()) == {0, 1, 2, 3}

    document = chrome_trace_document(obs)
    threads = {event["tid"]: event["args"]["name"]
               for event in document["traceEvents"]
               if event["ph"] == "M" and event["name"] == "thread_name"}
    merged = {(threads[event["tid"]], event["name"])
              for event in document["traceEvents"]
              if event["ph"] == "X"}
    expected = {(f"shard{shard}", scenario_id)
                for scenario_id, shard in run.shard_map.items()}
    assert merged == expected


# -- per-scenario profile emission --------------------------------------------

def test_campaign_profiles_reach_manifest_and_disk(tmp_path):
    campaign = _campaign(repeats=4)
    run = CampaignRunner(campaign, workers=2, profile=True).run()
    # One profile per scenario, keyed by scenario id.
    assert sorted(run.profiles) == [r.scenario_id for r in run.results]
    manifest = run.manifest()
    assert sorted(manifest["profiles"]) == sorted(run.profiles)
    # write_run materialises them at the manifest-relative paths.
    write_run(tmp_path, run)
    for scenario_id, relative in manifest["profiles"].items():
        payload = json.loads((tmp_path / relative).read_text())
        profile = ProfileReport.from_dict(payload)
        assert profile.meta["scenario_id"] == scenario_id
    # Profiles never contaminate the result records or the manifest's
    # required keys.
    reloaded = load_manifest(tmp_path)
    assert reloaded["profiles"] == manifest["profiles"]
    record_keys = set(run.results[0].to_record())
    assert "profile" not in record_keys


def test_unprofiled_run_has_no_profiles_key():
    run = CampaignRunner(_campaign(repeats=2), workers=1).run()
    assert run.profiles == {}
    assert "profiles" not in run.manifest()


def test_profile_flag_does_not_change_digest():
    from repro.campaign import results_digest
    campaign = _campaign(repeats=4)
    plain = CampaignRunner(campaign, seed_root=7, workers=2).run()
    profiled = CampaignRunner(campaign, seed_root=7, workers=2,
                              profile=True).run()
    assert results_digest(plain.results) == \
        results_digest(profiled.results)


def test_cli_profile_out_references_manifest(tmp_path, capsys):
    out = tmp_path / "run"
    profiles = tmp_path / "profiles"
    status = campaign_main([
        "run", "--builtin", "smoke", "--workers", "2",
        "--out", str(out), "--profile-out", str(profiles)])
    assert status == 0
    manifest = json.loads((out / "manifest.json").read_text())
    assert manifest["profiles"]
    assert len(manifest["profiles"]) == manifest["scenario_count"]
    for relative in manifest["profiles"].values():
        assert (out / relative).exists()
    assert list(profiles.glob("*.profile.json"))


# -- snapshot exactness across checkpoint/restore ------------------------------

def _phase(kernel, names):
    # Services-free on purpose: a kernel restored by Kernel.restore_state
    # sits on a fresh default MPSoC without lock/resource services, so the
    # phase workload sticks to compute (quantum preemption still drives
    # the scheduler and context-switch counters on both kernels).
    def body(ctx):
        yield from ctx.compute(50)
        yield from ctx.compute(30)

    for index, name in enumerate(names):
        kernel.create_task(body, name, index + 1, "PE1")
    kernel.run()


def test_snapshot_delta_exact_across_checkpoint_restore():
    """Phase-B metric deltas measured with Snapshot.delta on a live
    system must equal the from-zero counters of a system restored from
    the phase-A checkpoint and run through the same phase B."""
    from repro.rtos.kernel import Kernel

    live = build_system("RTOS5")
    live.soc.obs.enable()
    _phase(live.kernel, ["a1", "a2"])                   # phase A
    snap_a = live.soc.obs.snapshot()
    envelope = live.kernel.snapshot_state()

    restored_kernel = Kernel.restore_state(envelope)
    restored_obs = restored_kernel.soc.obs
    restored_obs.enable()
    baseline = restored_obs.snapshot()                  # all zeros

    _phase(live.kernel, ["b1", "b2", "b3"])             # phase B, live
    _phase(restored_kernel, ["b1", "b2", "b3"])         # phase B, restored

    delta = live.soc.obs.snapshot().delta(snap_a)
    restored_delta = restored_obs.snapshot().delta(baseline)

    for name in ("kernel.context_switches", "sched.dispatches"):
        assert delta.counters[name] == \
            restored_delta.counters[name], name
    # Histogram contents subtract exactly too.
    for name, state in restored_delta.histograms.items():
        if name in delta.histograms:
            assert delta.histograms[name].count == state.count, name
            assert delta.histograms[name].counts == state.counts, name
    # And the simulated clocks agree: restore resumed at phase A's end.
    assert live.soc.engine.now == restored_kernel.engine.now
