"""Tests for deadlock recovery (victim selection + plan execution)."""

import pytest

from repro.deadlock.recovery import (
    RecoveryManager,
    apply_plan,
    deadlocked_processes,
    plan_recovery,
    strategies,
)
from repro.errors import DeadlockError
from repro.framework.builder import build_system
from repro.rag.generate import cycle_state
from repro.rag.graph import RAG
from repro.rtos.resources import NotificationKind


def _priorities(rag):
    return {p: i + 1 for i, p in enumerate(rag.processes)}


def test_strategies_registered():
    assert strategies() == ("fewest-resources", "lowest-priority",
                            "youngest-request")


def test_deadlocked_processes_of_cycle():
    state = cycle_state(3)
    assert set(deadlocked_processes(state)) == {"p1", "p2", "p3"}
    clean = RAG(["p1"], ["q1"])
    assert deadlocked_processes(clean) == ()


def test_plan_picks_lowest_priority_victim():
    state = cycle_state(3)
    plan = plan_recovery(state, _priorities(state))
    assert plan.victim == "p3"         # numerically largest priority
    assert plan.releases == ("q3",)
    assert plan.withdrawals == ("q1",)
    assert plan.cost == 1


def test_plan_fewest_resources_strategy():
    # p1 holds two resources, p2 holds one; both are on the cycle.
    rag = RAG(["p1", "p2"], ["q1", "q2", "q3"])
    rag.grant("q1", "p1")
    rag.grant("q3", "p1")
    rag.grant("q2", "p2")
    rag.add_request("p1", "q2")
    rag.add_request("p2", "q1")
    plan = plan_recovery(rag, {"p1": 2, "p2": 1},
                         strategy="fewest-resources")
    assert plan.victim == "p2"
    assert plan.cost == 1


def test_plan_rejects_clean_state():
    rag = RAG(["p1"], ["q1"])
    with pytest.raises(DeadlockError):
        plan_recovery(rag, {"p1": 1})


def test_plan_rejects_unknown_strategy():
    state = cycle_state(2)
    with pytest.raises(DeadlockError):
        plan_recovery(state, _priorities(state), strategy="coin-flip")


def test_apply_plan_breaks_every_cycle():
    state = cycle_state(4)
    plan = plan_recovery(state, _priorities(state))
    apply_plan(state, plan)
    assert not state.has_cycle()
    assert state.is_available("q4")


def test_recovery_lets_the_jini_system_finish():
    """End to end: the Table 4 deadlock happens under RTOS2; a
    supervisor recovers; the surviving processes complete."""
    system = build_system("RTOS2")
    kernel = system.kernel
    service = system.resource_service
    priorities = {"p1": 1, "p2": 2, "p3": 3, "p4": 4}
    manager = RecoveryManager(service, priorities)
    completions = []

    def p1(ctx):
        yield from ctx.request("IDCT")
        yield from ctx.use_peripheral("IDCT", 2_000)
        yield from ctx.request("WI")           # pending behind p2
        yield from ctx.wait_grant("WI")
        yield from ctx.release_resource("WI")
        yield from ctx.release_resource("IDCT")
        completions.append("p1")

    def p2(ctx):
        yield from ctx.request("WI")
        yield from ctx.compute(500)
        outcome = yield from ctx.request("IDCT")   # closes the cycle
        if not outcome.granted:
            # Blocked in the deadlock; wait for the recovery demand
            # (skipping stale grant notifications) and obey it — the
            # victim's job is aborted, so it just cleans up.
            while True:
                note = yield from ctx.wait_notification()
                if note.kind is NotificationKind.GIVE_UP:
                    yield from ctx.release_resource(note.resource)
                    break
        completions.append("p2")

    def supervisor(ctx):
        yield from ctx.kernel.block_on(ctx.task, service.deadlock_event)
        manager.recover(ctx)

    kernel.create_task(p1, "p1", 1, "PE1")
    kernel.create_task(p2, "p2", 2, "PE2")
    kernel.create_task(supervisor, "supervisor", 0, "PE4")
    kernel.run()
    assert manager.recoveries
    plan = manager.recoveries[0].plan
    assert plan.victim == "p2"       # the lowest-priority cycle member
    assert "p1" in completions and "p2" in completions
    assert not service.rag.has_cycle()
