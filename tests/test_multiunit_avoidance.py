"""Tests for the multi-unit avoidance extension."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.deadlock.daa import Action, DeadlockKind
from repro.deadlock.multiunit_avoidance import MultiUnitAvoider
from repro.errors import ResourceProtocolError


def _avoider(dma_units=2):
    return MultiUnitAvoider(
        ["p1", "p2", "p3"], {"DMA": dma_units, "SPM": 1},
        {"p1": 1, "p2": 2, "p3": 3})


def test_available_units_granted_immediately():
    avoider = _avoider()
    decision = avoider.request("p1", "DMA", 2)
    assert decision.action is Action.GRANTED
    assert avoider.system.allocation_of("p1", "DMA") == 2


def test_unavailable_units_pend_without_deadlock():
    avoider = _avoider()
    avoider.request("p1", "DMA", 2)
    decision = avoider.request("p2", "DMA", 1)
    assert decision.action is Action.PENDING
    assert decision.deadlock_kind is DeadlockKind.NONE


def _build_rdl(avoider):
    """p1 holds both DMA units and waits on SPM; p2 holds the SPM.
    p2 then requesting a DMA unit closes the deadlock."""
    avoider.request("p1", "DMA", 2)
    avoider.request("p2", "SPM", 1)
    avoider.request("p1", "SPM", 1)      # pending behind p2


def test_rdl_low_priority_requester_gives_up():
    avoider = _avoider()
    _build_rdl(avoider)
    decision = avoider.request("p2", "DMA", 1)
    # p2 (lower priority than holder p1) must give up its holdings.
    assert decision.action is Action.GIVE_UP
    assert ("p2", "SPM") in decision.ask_release
    assert avoider.system.outstanding_request("p2", "DMA") == 0


def test_rdl_high_priority_requester_pends_owner_asked():
    avoider = MultiUnitAvoider(
        ["p1", "p2"], {"DMA": 1, "SPM": 1}, {"p1": 1, "p2": 2})
    avoider.request("p2", "DMA", 1)
    avoider.request("p1", "SPM", 1)
    avoider.request("p2", "SPM", 1)      # p2 waits on p1
    decision = avoider.request("p1", "DMA", 1)   # closes the deadlock
    assert decision.action is Action.PENDING
    assert decision.deadlock_kind is DeadlockKind.REQUEST
    assert decision.ask_release == (("p2", "DMA"),)


def test_release_hands_units_to_best_waiter():
    avoider = _avoider()
    avoider.request("p1", "DMA", 2)
    avoider.request("p3", "DMA", 1)
    avoider.request("p2", "DMA", 1)
    decision = avoider.release("p1", "DMA", 2)
    assert decision.action is Action.HANDED_OFF
    assert decision.granted_to == "p2"        # priority order
    # p3's request is still outstanding (only one release event ran).
    assert avoider.system.outstanding_request("p3", "DMA") == 1


def test_livelock_threshold_escalates():
    avoider = _avoider()
    avoider.livelock_threshold = 2
    _build_rdl(avoider)
    first = avoider.request("p2", "DMA", 1)
    assert first.action is Action.GIVE_UP
    second = avoider.request("p2", "DMA", 1)
    assert second.action is Action.PENDING
    assert second.livelock


def test_validation():
    with pytest.raises(ResourceProtocolError):
        MultiUnitAvoider(["p1"], {"A": 1}, {})
    with pytest.raises(ResourceProtocolError):
        MultiUnitAvoider(["p1"], {"A": 1}, {"p1": 1},
                         livelock_threshold=0)


@st.composite
def scripts(draw):
    length = draw(st.integers(1, 40))
    return [(draw(st.integers(1, 3)), draw(st.integers(0, 1)),
             draw(st.integers(1, 2)), draw(st.booleans()))
            for _ in range(length)]


@given(scripts())
@settings(max_examples=150, deadline=None)
def test_property_never_stays_deadlocked(script):
    """With cooperative give-ups, the counting state never stays
    deadlocked after a command resolves."""
    avoider = MultiUnitAvoider(
        ["p1", "p2", "p3"], {"A": 2, "B": 1},
        {"p1": 1, "p2": 2, "p3": 3})
    resources = ("A", "B")

    def obey(decision):
        queue = list(decision.ask_release)
        hops = 0
        while queue:
            target, resource = queue.pop(0)
            hops += 1
            assert hops < 60
            held = avoider.system.allocation_of(target, resource)
            if held:
                follow = avoider.release(target, resource, held)
                queue.extend(follow.ask_release)

    for p_index, q_index, units, prefer_release in script:
        process = f"p{p_index}"
        resource = resources[q_index]
        held = avoider.system.allocation_of(process, resource)
        outstanding = avoider.system.outstanding_request(process, resource)
        if prefer_release and held:
            decision = avoider.release(process, resource, held)
        elif (held + outstanding + units
              <= avoider.system.total_units(resource)):
            decision = avoider.request(process, resource, units)
        else:
            continue
        obey(decision)
        assert not avoider.system.detect().deadlock