"""Tests for the shared memory and its controller."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.mpsoc.bus import SystemBus
from repro.mpsoc.memory import MemoryController, SharedMemory
from repro.sim.engine import Engine


def test_memory_size_validation():
    with pytest.raises(ConfigurationError):
        SharedMemory(0)
    with pytest.raises(ConfigurationError):
        SharedMemory(6)   # not a word multiple


def test_peek_poke():
    memory = SharedMemory(1024)
    memory.poke(10, 0xDEAD)
    assert memory.peek(10) == 0xDEAD
    assert memory.peek(11) == 0
    memory.poke(10, 0)
    assert memory.peek(10) == 0


def test_bounds_check():
    memory = SharedMemory(1024)
    with pytest.raises(SimulationError):
        memory.peek(memory.num_words)
    with pytest.raises(SimulationError):
        memory.poke(-1, 0)


def test_controller_read_write_cost_cycles():
    engine = Engine()
    bus = SystemBus(engine)
    controller = MemoryController(bus, SharedMemory(1024))

    def master():
        yield from controller.write("PE1", 4, 99)
        value = yield from controller.read("PE1", 4)
        return (value, engine.now)

    handle = engine.spawn(master())
    engine.run()
    assert handle.result == (99, 6)    # two single-word transactions
    assert controller.reads == 1 and controller.writes == 1


def test_controller_burst_round_trip():
    engine = Engine()
    bus = SystemBus(engine)
    controller = MemoryController(bus, SharedMemory(1024))

    def master():
        yield from controller.write_burst("PE1", 0, [1, 2, 3, 4])
        values = yield from controller.read_burst("PE1", 0, 4)
        return values

    handle = engine.spawn(master())
    engine.run()
    assert handle.result == [1, 2, 3, 4]
    assert engine.now == 12            # two 4-word bursts: 6 + 6


def test_default_memory_is_16mb():
    controller = MemoryController(SystemBus(Engine()))
    assert controller.memory.size_bytes == 16 * 1024 * 1024
