"""Tests for the wire chaos layer (repro.service.chaos).

The proxy tests run against a trivial NDJSON echo server, so every
assertion is about the *wire* transformation alone: what goes in, what
comes out, in which order, and what the ``fired`` ledger says.
"""

import asyncio
import json

import pytest

from repro.errors import ConfigurationError, ServiceError
from repro.obs import Observability
from repro.service import (
    NET_FAULT_KINDS,
    ChaosTransport,
    NetFaultPlan,
    NetFaultSpec,
)
from repro.service.chaos import _derive_rng


def _run(coro):
    return asyncio.run(coro)


# -- specs and plans -----------------------------------------------------------

def test_spec_validation_rejects_nonsense():
    for bad in (
        NetFaultSpec("gamma-ray"),
        NetFaultSpec("drop", direction="sideways"),
        NetFaultSpec("drop", at=-1),
        NetFaultSpec("drop", duration=0),
        NetFaultSpec("drop", every=0),
    ):
        with pytest.raises(ConfigurationError):
            bad.validate()


def test_spec_periodic_activation():
    spec = NetFaultSpec("drop", at=2, duration=1, every=3)
    active = [visit for visit in range(12) if spec.active_at(visit)]
    assert active == [2, 5, 8, 11]
    once = NetFaultSpec("drop", at=4, duration=2)
    assert [v for v in range(10) if once.active_at(v)] == [4, 5]


def test_plan_roundtrips_and_hashes_canonically():
    plan = NetFaultPlan(name="p", seed=9, specs=(
        NetFaultSpec("drop", direction="s2c", at=3, every=7),
        NetFaultSpec("corrupt", at=1, params={"span": 6}),
    ))
    clone = NetFaultPlan.from_json(plan.to_json())
    assert clone == plan
    assert clone.plan_hash() == plan.plan_hash()
    assert clone.kinds() == ("corrupt", "drop")
    shifted = NetFaultPlan(name="p", seed=9, specs=(
        NetFaultSpec("drop", direction="s2c", at=4, every=7),
        NetFaultSpec("corrupt", at=1, params={"span": 6}),
    ))
    assert shifted.plan_hash() != plan.plan_hash()


def test_plan_from_dict_rejects_malformed():
    with pytest.raises(ConfigurationError):
        NetFaultPlan.from_dict({"name": "p", "specs": [{"kind": "nope"}]})
    with pytest.raises(ConfigurationError):
        NetFaultPlan.from_json("{not json")
    with pytest.raises(ConfigurationError):
        NetFaultPlan(name="", specs=()).validate()


def test_derived_rng_is_stable_per_connection_and_direction():
    a = _derive_rng(7, 0, "c2s").random()
    assert a == _derive_rng(7, 0, "c2s").random()
    assert a != _derive_rng(7, 1, "c2s").random()
    assert a != _derive_rng(7, 0, "s2c").random()


def test_proxy_needs_exactly_one_target():
    plan = NetFaultPlan(name="p")
    with pytest.raises(ServiceError):
        ChaosTransport(plan)
    with pytest.raises(ServiceError):
        ChaosTransport(plan, target_port=1, target_unix="/tmp/x")


# -- the proxy against an echo server ------------------------------------------

async def _echo(reader, writer):
    try:
        while True:
            line = await reader.readline()
            if not line:
                break
            writer.write(line)
            await writer.drain()
    except (ConnectionResetError, BrokenPipeError, OSError):
        pass
    finally:
        try:
            writer.close()
        except OSError:
            pass


async def _through_proxy(plan, lines, obs=None, settle=0.3):
    """Send ``lines`` through proxy -> echo; return the echoed lines."""
    server = await asyncio.start_server(_echo, "127.0.0.1", 0)
    proxy = ChaosTransport(plan,
                           target_port=server.sockets[0].getsockname()[1],
                           obs=obs)
    await proxy.start()
    reader, writer = await asyncio.open_connection(
        "127.0.0.1", proxy.listen_port)
    got = []
    try:
        writer.write(b"".join(lines))
        await writer.drain()
        if writer.can_write_eof():
            writer.write_eof()       # clean close must drain responses
        while True:
            try:
                line = await asyncio.wait_for(reader.readline(), settle)
            except (asyncio.TimeoutError, ConnectionResetError, OSError):
                break
            if not line:
                break
            got.append(line)
    finally:
        try:
            writer.close()
        except OSError:
            pass
        await proxy.stop()
        server.close()
        await server.wait_closed()
    return got, proxy


_LINES = [json.dumps({"n": index}).encode() + b"\n" for index in range(3)]


def test_drop_swallows_exactly_the_scheduled_line():
    plan = NetFaultPlan(name="p", specs=(
        NetFaultSpec("drop", direction="s2c", at=1),))
    got, proxy = _run(_through_proxy(plan, _LINES))
    assert got == [_LINES[0], _LINES[2]]
    assert proxy.fired["drop"] == 1


def test_duplicate_forwards_twice():
    plan = NetFaultPlan(name="p", specs=(
        NetFaultSpec("duplicate", direction="s2c", at=0),))
    got, proxy = _run(_through_proxy(plan, _LINES))
    assert got == [_LINES[0], _LINES[0], _LINES[1], _LINES[2]]
    assert proxy.fired["duplicate"] == 1


def test_reorder_swaps_with_the_next_line():
    plan = NetFaultPlan(name="p", specs=(
        NetFaultSpec("reorder", direction="s2c", at=0),))
    got, _proxy = _run(_through_proxy(plan, _LINES))
    assert got == [_LINES[1], _LINES[0], _LINES[2]]


def test_reorder_at_stream_tail_is_not_a_drop():
    plan = NetFaultPlan(name="p", specs=(
        NetFaultSpec("reorder", direction="s2c", at=2),))
    got, _proxy = _run(_through_proxy(plan, _LINES))
    # Nothing rides behind the held line, so EOF flushes it.
    assert sorted(got) == sorted(_LINES)


def test_truncate_tears_the_line_but_keeps_framing():
    plan = NetFaultPlan(name="p", specs=(
        NetFaultSpec("truncate", direction="s2c", at=0,
                     params={"keep": 3}),))
    got, _proxy = _run(_through_proxy(plan, _LINES))
    assert got[0] == _LINES[0][:3] + b"\n"
    assert got[1:] == _LINES[1:]


def test_corrupt_is_never_decodable():
    plan = NetFaultPlan(name="p", seed=5, specs=(
        NetFaultSpec("corrupt", direction="s2c", at=0,
                     params={"span": 4}),))
    got, _proxy = _run(_through_proxy(plan, _LINES))
    assert len(got) == 3
    assert b"\xff" * 4 in got[0]
    with pytest.raises(UnicodeDecodeError):
        got[0].decode("utf-8")
    assert got[1:] == _LINES[1:]


def test_reset_aborts_the_connection():
    plan = NetFaultPlan(name="p", specs=(
        NetFaultSpec("reset", direction="c2s", at=1),))

    async def scenario():
        server = await asyncio.start_server(_echo, "127.0.0.1", 0)
        proxy = ChaosTransport(
            plan, target_port=server.sockets[0].getsockname()[1])
        await proxy.start()
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", proxy.listen_port)
        try:
            writer.write(_LINES[0])
            await writer.drain()
            assert await asyncio.wait_for(reader.readline(),
                                          2.0) == _LINES[0]
            writer.write(_LINES[1])          # the visit that resets
            await writer.drain()
            try:
                line = await asyncio.wait_for(reader.readline(), 2.0)
            except (ConnectionResetError, OSError):
                line = b""
            assert line == b""               # connection torn down
        finally:
            try:
                writer.close()
            except OSError:
                pass
            await proxy.stop()
            server.close()
            await server.wait_closed()
        return proxy

    proxy = _run(scenario())
    assert proxy.fired["reset"] == 1


def test_slow_loris_still_delivers_the_whole_line():
    plan = NetFaultPlan(name="p", specs=(
        NetFaultSpec("slow_loris", direction="s2c", at=0,
                     params={"pause_s": 0.01}),))
    got, proxy = _run(_through_proxy(plan, _LINES))
    assert got == _LINES
    assert proxy.fired["slow_loris"] == 1


def test_delay_holds_then_delivers_in_order():
    plan = NetFaultPlan(name="p", specs=(
        NetFaultSpec("delay", direction="s2c", at=0,
                     params={"delay_s": 0.02}),))
    got, _proxy = _run(_through_proxy(plan, _LINES))
    assert got == _LINES


def test_periodic_drop_fires_on_schedule():
    lines = [json.dumps({"n": index}).encode() + b"\n"
             for index in range(6)]
    plan = NetFaultPlan(name="p", specs=(
        NetFaultSpec("drop", direction="s2c", at=0, every=2),))
    got, proxy = _run(_through_proxy(plan, lines))
    assert got == [lines[1], lines[3], lines[5]]
    assert proxy.fired["drop"] == 3


def test_chaos_metrics_and_flight_events_land():
    obs = Observability(enabled=True)
    obs.flight.enable()
    plan = NetFaultPlan(name="p", specs=(
        NetFaultSpec("drop", direction="s2c", at=0),))
    _got, _proxy = _run(_through_proxy(plan, _LINES, obs=obs))
    assert obs.metrics.get("service.chaos.drop").value == 1
    assert obs.metrics.get("service.chaos.connections").value == 1
    faults = [event for event in obs.flight.events()
              if event["kind"] == "net_fault"]
    assert faults and faults[0]["data"]["fault"] == "drop"


def test_fired_ledger_covers_all_kinds():
    proxy = ChaosTransport(NetFaultPlan(name="p"), target_port=1)
    assert sorted(proxy.fired) == sorted(NET_FAULT_KINDS)
    assert not any(proxy.fired.values())
