"""Tests for the DDU/DAU Verilog generators and their CLI wiring."""

import pytest

from repro.deadlock.generator import generate_dau, generate_ddu
from repro.errors import GenerationError
from repro.framework.__main__ import main as cli_main


def test_ddu_generation_carries_table1_area():
    config = generate_ddu(5, 5)
    assert config.unit == "DDU"
    assert config.gates == 364              # Table 1 anchor
    assert config.worst_case_steps == 6
    assert "module ddu" in config.verilog
    assert "N_PROC = 5" in config.verilog


def test_dau_generation_carries_table2_area():
    config = generate_dau(5, 5)
    assert config.gates == 1836             # Table 2 anchor
    assert config.worst_case_steps == 38
    assert "module dau" in config.verilog
    assert "ddu #(" in config.verilog       # embedded detector


def test_generation_scales_with_census():
    small = generate_ddu(3, 3)
    large = generate_ddu(20, 20)
    assert large.gates > small.gates
    assert large.worst_case_steps > small.worst_case_steps


def test_generation_validation():
    with pytest.raises(GenerationError):
        generate_ddu(0, 5)
    with pytest.raises(GenerationError):
        generate_dau(5, 0)


def test_cli_writes_deadlock_units(tmp_path):
    out = tmp_path / "rtos2"
    assert cli_main(["--preset", "RTOS2", "--out", str(out)]) == 0
    assert (out / "ddu.v").exists()
    out = tmp_path / "rtos4"
    assert cli_main(["--preset", "RTOS4", "--out", str(out)]) == 0
    assert "module dau" in (out / "dau.v").read_text()
