"""Tests for the structural (cell-level) DDU and its cross-validation
against the behavioural model."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.deadlock.ddu import DDU
from repro.deadlock.ddu_rtl import MatrixCell, StructuralDDU
from repro.errors import ConfigurationError
from repro.rag.generate import chain_state, cycle_state, random_state
from repro.rag.matrix import CellState, StateMatrix


def test_matrix_cell_encoding():
    cell = MatrixCell()
    cell.load(CellState.REQUEST)
    assert (cell.r, cell.g) == (1, 0)
    cell.load(CellState.GRANT)
    assert (cell.r, cell.g) == (0, 1)
    cell.load(CellState.EMPTY)
    assert cell.value() is CellState.EMPTY


def test_matrix_cell_local_clear():
    cell = MatrixCell()
    cell.load(CellState.GRANT)
    assert cell.clear_if(False, False) is False
    assert cell.clear_if(True, False) is True
    assert cell.value() is CellState.EMPTY
    assert cell.clear_if(True, True) is False      # already empty


def test_structural_detects_cycle_in_one_pass():
    unit = StructuralDDU(3, 3)
    unit.load(cycle_state(3))
    result = unit.detect()
    assert result.deadlock
    assert result.iterations == 0
    assert result.residual.edge_count == 6


def test_structural_reduces_chain_completely():
    unit = StructuralDDU(4, 4)
    unit.load(chain_state(4))
    result = unit.detect()
    assert not result.deadlock
    assert result.residual.is_empty()


def test_step_by_step_visibility():
    unit = StructuralDDU(4, 4)
    unit.load(chain_state(4))
    edges = [unit.snapshot().edge_count]
    while unit.step():
        edges.append(unit.snapshot().edge_count)
    # Monotone decrease to zero.
    assert edges[0] == 7
    assert all(a >= b for a, b in zip(edges, edges[1:]))
    assert edges[-1] == 0


def test_load_dimension_check():
    unit = StructuralDDU(2, 2)
    with pytest.raises(ConfigurationError):
        unit.load(StateMatrix(3, 3))
    with pytest.raises(ConfigurationError):
        StructuralDDU(0, 1)


def test_settle_guard():
    unit = StructuralDDU(2, 2)
    unit.load(chain_state(2))
    with pytest.raises(ConfigurationError):
        unit.detect(max_steps=0)


@given(st.integers(0, 2**32 - 1), st.integers(2, 7), st.integers(2, 7))
@settings(max_examples=200, deadline=None)
def test_structural_equals_behavioural(seed, m, n):
    """The architectural model and the cell-level model must agree on
    verdict, iteration count, pass count and residual for any state."""
    state = random_state(m, n, rng=random.Random(seed))
    behavioural = DDU(m, n)
    behavioural.load(state)
    expected = behavioural.detect()
    structural = StructuralDDU(m, n)
    structural.load(state)
    measured = structural.detect()
    assert measured.deadlock == expected.deadlock
    assert measured.iterations == expected.iterations
    assert measured.passes == expected.passes
    assert measured.residual == expected.residual


def test_reusable_after_detection():
    unit = StructuralDDU(3, 3)
    unit.load(cycle_state(3))
    assert unit.detect().deadlock
    unit.load(chain_state(3))
    assert not unit.detect().deadlock
