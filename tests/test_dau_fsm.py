"""Tests for the clocked FSM DAU model (Table 2 step accounting)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.deadlock.dau import DAU
from repro.deadlock.dau_fsm import FSMDAU
from repro.errors import ResourceProtocolError


def _fsm(n=3):
    names = [f"p{i}" for i in range(1, n + 1)]
    resources = [f"q{i}" for i in range(1, n + 1)]
    return FSMDAU(names, resources,
                  {p: i for i, p in enumerate(names, 1)})


def test_immediate_grant_uses_fixed_states_only():
    fsm = _fsm()
    stepped = fsm.write_command("PE1", "request", "p1", "q1")
    assert stepped.decision.action.value == "granted"
    assert stepped.state_trace == ("DECODE", "CHECK_AVAIL",
                                   "MATRIX_WRITE", "WRITE_STATUS")
    assert stepped.steps == 4


def test_pending_request_adds_detect_burst():
    fsm = _fsm()
    fsm.write_command("PE1", "request", "p1", "q1")
    stepped = fsm.write_command("PE2", "request", "p2", "q1")
    assert "DETECT" in stepped.state_trace
    assert stepped.decision.action.value == "pending"


def test_release_with_candidates_interleaves_resolve():
    fsm = _fsm()
    # Build the Table 6 shape so the grant search skips a candidate.
    fsm.write_command("PE1", "request", "p1", "q2")
    fsm.write_command("PE3", "request", "p3", "q2")
    fsm.write_command("PE3", "request", "p3", "q1")
    fsm.write_command("PE2", "request", "p2", "q2")
    fsm.write_command("PE2", "request", "p2", "q1")
    stepped = fsm.write_command("PE1", "release", "p1", "q2")
    assert stepped.decision.granted_to == "p3"
    assert "RESOLVE" in stepped.state_trace
    assert stepped.decision.detection_runs == 2


def test_steps_never_exceed_table_2_bound():
    fsm = _fsm(5)
    rng = random.Random(3)
    processes = [f"p{i}" for i in range(1, 6)]
    resources = [f"q{i}" for i in range(1, 6)]
    for _ in range(400):
        process = rng.choice(processes)
        held = fsm.core.rag.held_by(process)
        pending = fsm.core.rag.requests_of(process)
        if held and rng.random() < 0.45:
            fsm.write_command("PE1", "release", process,
                              rng.choice(held))
        else:
            options = [q for q in resources
                       if fsm.core.rag.holder_of(q) != process
                       and q not in pending]
            if options:
                fsm.write_command("PE1", "request", process,
                                  rng.choice(options))
    assert fsm.commands > 100
    assert fsm.max_steps_seen <= fsm.worst_case_steps == 38
    assert 4 <= fsm.mean_steps <= 12


def test_fsm_decisions_equal_behavioural_dau():
    script = [("request", "p1", "q1"), ("request", "p2", "q2"),
              ("request", "p2", "q1"), ("request", "p1", "q2"),
              ("release", "p2", "q2"), ("release", "p1", "q1"),
              ("release", "p1", "q2")]
    fsm = _fsm()
    plain = DAU(["p1", "p2", "p3"], ["q1", "q2", "q3"],
                {"p1": 1, "p2": 2, "p3": 3})
    for op, process, resource in script:
        if op == "release" and plain.rag.holder_of(resource) != process:
            continue
        stepped = fsm.write_command("PE1", op, process, resource)
        expected = plain.write_command("PE1", op, process, resource)
        assert stepped.decision.action == expected.action
        assert stepped.decision.granted_to == expected.granted_to
    assert fsm.core.rag == plain.rag


def test_unknown_command_rejected():
    with pytest.raises(ResourceProtocolError):
        _fsm().write_command("PE1", "teleport", "p1", "q1")


@given(st.lists(st.tuples(st.integers(1, 4), st.integers(1, 4),
                          st.booleans()), min_size=1, max_size=40))
@settings(max_examples=100, deadline=None)
def test_property_step_bound_holds(script):
    names = [f"p{i}" for i in range(1, 5)]
    resources = [f"q{i}" for i in range(1, 5)]
    fsm = FSMDAU(names, resources,
                 {p: i for i, p in enumerate(names, 1)})
    for p_index, q_index, prefer_release in script:
        process = f"p{p_index}"
        resource = f"q{q_index}"
        held = fsm.core.rag.held_by(process)
        if prefer_release and held:
            fsm.write_command("PE1", "release", process, held[0])
        elif (fsm.core.rag.holder_of(resource) != process
              and resource not in fsm.core.rag.requests_of(process)):
            stepped = fsm.write_command("PE1", "request", process,
                                        resource)
            # Obey give-ups so the protocol stays legal.
            for target, res in stepped.decision.ask_release:
                if fsm.core.rag.holder_of(res) == target:
                    fsm.write_command("PE1", "release", target, res)
    assert fsm.max_steps_seen <= fsm.worst_case_steps
