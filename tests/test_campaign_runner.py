"""The sharded runner: determinism, fault isolation, retry, replay."""

import pytest

from repro.campaign import (
    CampaignRunner,
    CampaignSpec,
    ScenarioSpec,
    builtin_campaign,
    execute_scenario,
    load_manifest,
    load_results,
    replay_scenario,
    results_digest,
    strip_timing,
    write_run,
)
from repro.errors import ReproError
from repro.obs import Observability


def _campaign(*specs, name="t") -> CampaignSpec:
    return CampaignSpec(name=name, scenarios=tuple(specs))


def _honest(name="honest", repeats=4, m=4, n=4) -> ScenarioSpec:
    return ScenarioSpec(name=name, generator="rag.random",
                        checker="pdda-vs-oracle",
                        params={"m": m, "n": n}, repeats=repeats)


class TestExecuteScenario:
    def test_same_scenario_same_outcome(self):
        scenario = builtin_campaign("smoke").expand(42)[0]
        first = execute_scenario(scenario)
        second = execute_scenario(scenario)
        assert strip_timing(first.to_record()) == \
            strip_timing(second.to_record())

    def test_checker_exception_becomes_error_verdict(self):
        spec = _campaign(ScenarioSpec(
            name="bad", generator="rag.random",
            checker="pdda-vs-oracle", params={"m": -1, "n": 3}))
        result = execute_scenario(spec.expand(0)[0])
        assert result.verdict == "error"
        assert not result.ok
        assert result.detail

    def test_every_checker_in_smoke_passes(self):
        for scenario in builtin_campaign("smoke").expand(7):
            result = execute_scenario(scenario)
            assert result.ok, (scenario.scenario_id, result.detail)


class TestDeterminism:
    def test_digest_is_placement_independent(self):
        campaign = _campaign(_honest(repeats=6), _honest("b", repeats=3))
        runs = [CampaignRunner(campaign, seed_root=42, workers=w).run()
                for w in (1, 3)]
        digests = {results_digest(run.results) for run in runs}
        assert len(digests) == 1
        assert all(len(r.results) == campaign.count() for r in runs)

    def test_different_seed_roots_differ(self):
        campaign = _campaign(_honest(repeats=8, m=6, n=6))
        a = CampaignRunner(campaign, seed_root=1).run()
        b = CampaignRunner(campaign, seed_root=2).run()
        assert results_digest(a.results) != results_digest(b.results)

    def test_results_sorted_by_scenario_id(self):
        run = CampaignRunner(_campaign(_honest(repeats=5)),
                             workers=2).run()
        ids = [r.scenario_id for r in run.results]
        assert ids == sorted(ids)


class TestFaultIsolation:
    def test_worker_crash_loses_nothing_else(self):
        campaign = _campaign(
            _honest(repeats=6),
            ScenarioSpec(name="boom", generator="census",
                         checker="chaos.crash", params={"m": 2, "n": 2}))
        run = CampaignRunner(campaign, workers=2, retries=1,
                             backoff=0.01).run()
        assert len(run.results) == campaign.count()
        by_id = {r.scenario_id: r for r in run.results}
        assert by_id["boom/00000"].verdict == "crash"
        assert by_id["boom/00000"].attempts == 2
        honest = [r for r in run.results
                  if r.scenario_id.startswith("honest/")]
        assert all(r.verdict == "pass" for r in honest)

    def test_crash_retry_recovers_flaky_scenario(self, tmp_path):
        marker = tmp_path / "crashed-once"
        campaign = _campaign(
            _honest(repeats=2),
            ScenarioSpec(name="flaky", generator="census",
                         checker="chaos.crash_once",
                         params={"m": 2, "n": 2,
                                 "marker": str(marker)}))
        run = CampaignRunner(campaign, workers=2, retries=2,
                             backoff=0.01).run()
        by_id = {r.scenario_id: r for r in run.results}
        assert by_id["flaky/00000"].verdict == "pass"
        assert by_id["flaky/00000"].attempts == 2
        assert marker.exists()

    def test_interrupted_worker_recorded_and_retried(self, tmp_path):
        marker = tmp_path / "interrupted-once"
        campaign = _campaign(
            _honest(repeats=4),
            ScenarioSpec(name="intr", generator="census",
                         checker="chaos.interrupt_once",
                         params={"m": 2, "n": 2,
                                 "marker": str(marker)}))
        run = CampaignRunner(campaign, workers=2, retries=2,
                             backoff=0.01).run()
        assert len(run.results) == campaign.count()
        by_id = {r.scenario_id: r for r in run.results}
        assert by_id["intr/00000"].verdict == "pass"
        assert by_id["intr/00000"].attempts == 2
        assert marker.exists()
        assert [loss["scenario_id"] for loss in run.worker_losses] == \
            ["intr/00000"]
        assert run.manifest()["worker_losses"] == run.worker_losses
        honest = [r for r in run.results
                  if r.scenario_id.startswith("honest/")]
        assert all(r.verdict == "pass" for r in honest)

    def test_persistent_interrupt_exhausts_to_crash(self):
        campaign = _campaign(
            _honest(repeats=2),
            ScenarioSpec(name="intr", generator="census",
                         checker="chaos.interrupt",
                         params={"m": 2, "n": 2}))
        run = CampaignRunner(campaign, workers=2, retries=1,
                             backoff=0.01).run()
        by_id = {r.scenario_id: r for r in run.results}
        assert by_id["intr/00000"].verdict == "crash"
        # Initial worker plus every retry attempt reported itself lost.
        assert len(run.worker_losses) == 2
        assert all(loss["scenario_id"] == "intr/00000"
                   for loss in run.worker_losses)

    def test_sigterm_in_worker_is_a_recorded_loss(self):
        campaign = _campaign(
            _honest(repeats=2),
            ScenarioSpec(name="term", generator="census",
                         checker="chaos.interrupt",
                         params={"m": 2, "n": 2, "sigterm": True}))
        run = CampaignRunner(campaign, workers=2, retries=1,
                             backoff=0.01).run()
        by_id = {r.scenario_id: r for r in run.results}
        assert by_id["term/00000"].verdict == "crash"
        assert run.worker_losses
        assert all(loss["scenario_id"] == "term/00000"
                   for loss in run.worker_losses)
        honest = [r for r in run.results
                  if r.scenario_id.startswith("honest/")]
        assert all(r.verdict == "pass" for r in honest)

    def test_per_task_timeout_keeps_the_shard_going(self):
        campaign = _campaign(
            ScenarioSpec(name="hang", generator="census",
                         checker="chaos.hang",
                         params={"m": 2, "n": 2, "seconds": 30.0}),
            _honest(repeats=3))
        run = CampaignRunner(campaign, workers=1,
                             task_timeout=0.3).run()
        assert len(run.results) == campaign.count()
        by_id = {r.scenario_id: r for r in run.results}
        assert by_id["hang/00000"].verdict == "timeout"
        assert all(by_id[f"honest/{i:05d}"].verdict == "pass"
                   for i in range(3))

    def test_counts_and_failures_reflect_verdicts(self):
        campaign = _campaign(
            _honest(repeats=2),
            ScenarioSpec(name="hang", generator="census",
                         checker="chaos.hang",
                         params={"m": 2, "n": 2, "seconds": 30.0}))
        run = CampaignRunner(campaign, task_timeout=0.3).run()
        assert run.counts["pass"] == 2
        assert run.counts["timeout"] == 1
        assert [r.scenario_id for r in run.failures] == ["hang/00000"]


class TestManifestAndReplay:
    def test_replay_matches_recorded_outcome(self, tmp_path):
        campaign = _campaign(_honest(repeats=4, m=5, n=5))
        run = CampaignRunner(campaign, seed_root="soak-1",
                             workers=2).run()
        write_run(tmp_path, run)
        manifest = load_manifest(tmp_path)
        for scenario_id, summary in manifest["scenarios"].items():
            replayed = replay_scenario(manifest, scenario_id)
            assert replayed.verdict == summary["verdict"]
            assert replayed.steps == summary["steps"]
            assert replayed.cycles == summary["cycles"]

    def test_replay_unknown_scenario_raises(self, tmp_path):
        run = CampaignRunner(_campaign(_honest(repeats=1))).run()
        write_run(tmp_path, run)
        with pytest.raises(ReproError, match="not in campaign"):
            replay_scenario(load_manifest(tmp_path), "honest/99999")

    def test_store_round_trip_preserves_digest(self, tmp_path):
        run = CampaignRunner(_campaign(_honest(repeats=5)),
                             workers=2).run()
        results_path, _manifest_path = write_run(tmp_path, run)
        reloaded = load_results(results_path)
        assert results_digest(reloaded) == results_digest(run.results)

    def test_manifest_carries_spec_and_shard_map(self, tmp_path):
        campaign = _campaign(_honest(repeats=4))
        run = CampaignRunner(campaign, seed_root=3, workers=2).run()
        manifest = run.manifest()
        assert manifest["spec_hash"] == campaign.spec_hash()
        assert manifest["seed_root"] == 3
        assert set(manifest["shard_map"].values()) == {0, 1}
        assert manifest["scenario_count"] == campaign.count()


class TestObservability:
    def test_metrics_and_spans_cover_every_scenario(self):
        campaign = _campaign(_honest(repeats=5))
        obs = Observability(label="campaign:test", enabled=True)
        run = CampaignRunner(campaign, workers=2, obs=obs).run()
        counters = obs.metrics.snapshot().counters
        assert counters["campaign.scenarios"] == campaign.count()
        assert counters["campaign.pass"] == campaign.count()
        spans = obs.tracer.all_spans()
        assert len(spans) == campaign.count()
        assert {span.actor for span in spans} == {"shard0", "shard1"}
        recorded = {span.name for span in spans}
        assert recorded == {r.scenario_id for r in run.results}


class TestArgumentValidation:
    def test_zero_workers_rejected(self):
        with pytest.raises(ReproError, match="worker"):
            CampaignRunner(_campaign(_honest()), workers=0)

    def test_negative_retries_rejected(self):
        with pytest.raises(ReproError, match="retries"):
            CampaignRunner(_campaign(_honest()), retries=-1)

    def test_unknown_checker_fails_before_spawning(self):
        campaign = _campaign(ScenarioSpec(
            name="x", generator="rag.random", checker="nope"))
        with pytest.raises(ReproError, match="unknown checker"):
            CampaignRunner(campaign).run()
