"""Shared fixtures for the RTOS-level tests."""

import pytest

from repro.framework.builder import build_system


@pytest.fixture
def base_system():
    """A plain RTOS5 system (software locks + heap, no deadlock unit)."""
    return build_system("RTOS5")


@pytest.fixture
def kernel(base_system):
    return base_system.kernel
