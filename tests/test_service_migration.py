"""Differential migration tests: migrated == unmigrated.

The service moves live tenants between shards with the PR-5 snapshot
protocol; these tests hold that move to the same standard as the
checkpoint differential suite (``test_checkpoint_differential.py``):
interrupt a seeded claim/release stream at its midpoint, migrate the
tenant from shard A to shard B (or SIGKILL-equivalently crash A), finish
the stream, and require the **entire observable trajectory** — every
grant/blocked bit, every promotion, every verdict with its iteration and
pass counts, and the final snapshot ``state_hash`` — to be
position-for-position identical to a run that never moved.
"""

import asyncio

from repro.rag.generate import resolve_rng
from repro.service import (
    DetectionService,
    ServiceClient,
    ServiceConfig,
    ServiceOpError,
)

SEED_ROOT = 42


def _scripted_ops(seed, m, n, count):
    """A deterministic claim/release/detect stream for an m x n tenant."""
    rng = resolve_rng(seed=seed)
    held = set()
    ops = []
    for step in range(count):
        if step % 5 == 4:
            ops.append(("detect",))
            continue
        if held and rng.random() < 0.35:
            pair = sorted(held)[rng.randrange(len(held))]
            held.discard(pair)
            ops.append(("release", f"p{pair[0]}", f"q{pair[1]}"))
            continue
        pair = (rng.randrange(1, n + 1), rng.randrange(1, m + 1))
        if pair in held:
            ops.append(("detect",))
            continue
        held.add(pair)
        ops.append(("claim", f"p{pair[0]}", f"q{pair[1]}"))
    ops.append(("detect",))
    return ops


async def _drive(client, tenant, ops):
    """Apply ops; returns the trajectory of observable responses."""
    trajectory = []
    for op in ops:
        try:
            if op[0] == "detect":
                reply = await client.detect(tenant)
                trajectory.append((
                    "detect", reply["deadlock"], reply["iterations"],
                    reply["passes"],
                    tuple(reply["deadlocked_processes"]),
                    reply["op_seq"]))
            elif op[0] == "claim":
                reply = await client.claim(tenant, op[1], op[2])
                trajectory.append(("claim", reply["granted"],
                                   reply["op_seq"]))
            else:
                reply = await client.release(tenant, op[1], op[2])
                trajectory.append(("release", reply["promoted"],
                                   reply["op_seq"]))
        except ServiceOpError as exc:
            # Protocol violations (double-claim against a promoted
            # holder, release of a never-granted pair) are part of the
            # observable trajectory too — they must match exactly.
            trajectory.append(("error", op[0], exc.code))
    return trajectory


async def _final_hash(service, tenant):
    record = service.tenants[tenant]
    handle = service.shards[record.shard_id]
    _kind, envelope = await handle.request("snapshot", tenant)
    return envelope["state_hash"]


async def _run_stream(seed, interrupt=None):
    """Run a scripted stream; ``interrupt(service, client)`` fires at
    the midpoint.  Returns (trajectory, final state_hash)."""
    service = DetectionService(ServiceConfig(
        shards=2, use_processes=False, tick_interval=0.001,
        snapshot_every=8))
    await service.start(host="127.0.0.1", port=0)
    client = await ServiceClient.connect_tcp("127.0.0.1",
                                             service.tcp_port)
    try:
        await client.attach("t", seed=seed, m=10, n=10)
        ops = _scripted_ops(seed * 31 + 7, 10, 10, 40)
        midpoint = len(ops) // 2
        trajectory = await _drive(client, "t", ops[:midpoint])
        if interrupt is not None:
            await interrupt(service, client)
        trajectory += await _drive(client, "t", ops[midpoint:])
        return trajectory, await _final_hash(service, "t")
    finally:
        await client.close()
        await service.stop()


def _differential(interrupt, seeds=range(SEED_ROOT, SEED_ROOT + 6)):
    async def scenario():
        for seed in seeds:
            plain = await _run_stream(seed)
            moved = await _run_stream(seed, interrupt=interrupt)
            assert moved[0] == plain[0], f"trajectory diverged @ seed {seed}"
            assert moved[1] == plain[1], f"state_hash diverged @ seed {seed}"
    asyncio.run(scenario())


def test_migration_midstream_is_invisible():
    """Snapshot on shard A, restore on shard B, finish the stream."""
    async def interrupt(service, client):
        source = service.tenants["t"].shard_id
        reply = await client.migrate("t", 1 - source)
        assert reply["moved"] is True
    _differential(interrupt)


def test_double_migration_round_trip_is_invisible():
    """A -> B -> A: two digest-checked moves change nothing."""
    async def interrupt(service, client):
        source = service.tenants["t"].shard_id
        await client.migrate("t", 1 - source)
        await client.migrate("t", source)
    _differential(interrupt, seeds=(SEED_ROOT,))


def test_shard_crash_midstream_is_invisible():
    """Crash the tenant's shard instead of migrating: snapshot +
    journal replay must reconstruct the same trajectory."""
    async def interrupt(service, client):
        await asyncio.sleep(0.01)   # let pending snapshot refresh land
        service.shards[service.tenants["t"].shard_id].crash()
    _differential(interrupt, seeds=range(SEED_ROOT, SEED_ROOT + 3))


def test_migration_digest_verified_on_the_wire():
    """The migrate reply's state_hash equals a fresh source snapshot."""
    async def scenario():
        service = DetectionService(ServiceConfig(
            shards=2, use_processes=False, tick_interval=0.001))
        await service.start(host="127.0.0.1", port=0)
        client = await ServiceClient.connect_tcp("127.0.0.1",
                                                 service.tcp_port)
        try:
            await client.attach("t", seed=9, m=8, n=8)
            await client.claim("t", "p1", "q1")
            record = service.tenants["t"]
            handle = service.shards[record.shard_id]
            _kind, envelope = await handle.request("snapshot", "t")
            reply = await client.migrate("t", 1 - record.shard_id)
            assert reply["state_hash"] == envelope["state_hash"]
        finally:
            await client.close()
            await service.stop()
    asyncio.run(scenario())
