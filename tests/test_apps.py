"""Integration tests for the five evaluation applications."""

import pytest

from repro.apps.grant_deadlock import run_gdl_app
from repro.apps.jini import run_jini_app
from repro.apps.request_deadlock import run_rdl_app
from repro.apps.robot import run_robot_app
from repro.apps.splash import SPLASH_BENCHMARKS, run_splash
from repro.errors import ConfigurationError


# -- jini / detection -----------------------------------------------------------

@pytest.mark.parametrize("config", ["RTOS1", "RTOS2"])
def test_jini_app_reaches_deadlock(config):
    result = run_jini_app(config)
    assert result.deadlock_detected
    # The cycle involves exactly p2 (holding IDCT, wanting WI) and p3
    # (holding WI, wanting IDCT).
    assert set(result.deadlocked_processes) == {"p2", "p3"}
    assert result.detection_invocations > 0
    assert result.app_cycles > 0


def test_jini_hardware_beats_software():
    hw = run_jini_app("RTOS2")
    sw = run_jini_app("RTOS1")
    assert hw.app_cycles < sw.app_cycles
    assert hw.mean_algorithm_cycles * 100 < sw.mean_algorithm_cycles
    assert hw.detection_invocations == sw.detection_invocations


def test_jini_rejects_avoidance_configs():
    with pytest.raises(ConfigurationError):
        run_jini_app("RTOS3")


# -- grant deadlock / avoidance ---------------------------------------------------

@pytest.mark.parametrize("config", ["RTOS3", "RTOS4"])
def test_gdl_app_completes_with_gdl_avoided(config):
    result = run_gdl_app(config)
    assert result.completed
    assert result.gdl_events >= 1
    assert result.avoidance_invocations == 12     # 6 requests + 6 releases


def test_gdl_contested_idct_goes_to_lower_priority():
    result = run_gdl_app("RTOS4")
    idct_grants = [(actor, t) for actor, res, t in result.grant_order
                   if res == "IDCT"]
    # First to p1, then — avoiding the G-dl — to p3, finally to p2.
    assert [actor for actor, _t in idct_grants] == ["p1", "p3", "p2"]


def test_gdl_hardware_beats_software():
    hw = run_gdl_app("RTOS4")
    sw = run_gdl_app("RTOS3")
    assert hw.app_cycles < sw.app_cycles
    assert sw.mean_algorithm_cycles / hw.mean_algorithm_cycles > 100


def test_gdl_rejects_detection_configs():
    with pytest.raises(ConfigurationError):
        run_gdl_app("RTOS1")


# -- request deadlock / avoidance --------------------------------------------------

@pytest.mark.parametrize("config", ["RTOS3", "RTOS4"])
def test_rdl_app_completes_with_rdl_avoided(config):
    result = run_rdl_app(config)
    assert result.completed
    assert result.rdl_events >= 1
    assert result.giveup_events >= 1
    assert result.avoidance_invocations == 14     # 7 requests + 7 releases


def test_rdl_hardware_beats_software():
    hw = run_rdl_app("RTOS4")
    sw = run_rdl_app("RTOS3")
    assert hw.app_cycles < sw.app_cycles
    assert sw.mean_algorithm_cycles / hw.mean_algorithm_cycles > 100


# -- robot / locks --------------------------------------------------------------------

def test_robot_app_completes_both_configs():
    for config in ("RTOS5", "RTOS6"):
        result = run_robot_app(config, periods=3)
        assert result.completed
        assert result.acquisitions == 3 * 7   # 7 lock ops per period
        assert result.deadline_misses == 0


def test_robot_soclc_beats_software_pi():
    sw = run_robot_app("RTOS5", periods=4)
    hw = run_robot_app("RTOS6", periods=4)
    assert hw.lock_latency < sw.lock_latency
    assert hw.overall_cycles < sw.overall_cycles


def test_robot_rejects_deadlock_configs():
    with pytest.raises(ConfigurationError):
        run_robot_app("RTOS4")


# -- splash / memory management ----------------------------------------------------------

@pytest.mark.parametrize("bench_name", sorted(SPLASH_BENCHMARKS))
def test_splash_runs_on_both_heaps(bench_name):
    sw = run_splash(bench_name, "RTOS5")
    hw = run_splash(bench_name, "RTOS7")
    spec = SPLASH_BENCHMARKS[bench_name]
    assert sw.malloc_calls == hw.malloc_calls == spec.total_pairs
    assert sw.free_calls == spec.total_pairs
    # The SoCDMMU slashes memory-management time and total time.
    assert hw.mm_cycles < sw.mm_cycles / 10
    assert hw.total_cycles < sw.total_cycles
    assert hw.mm_percent < 2.0


def test_splash_mm_share_shape():
    # FFT spends the largest share in memory management (Table 11).
    shares = {name: run_splash(name, "RTOS5").mm_percent
              for name in SPLASH_BENCHMARKS}
    assert shares["FFT"] > shares["RADIX"] > shares["LU"]


def test_splash_unknown_benchmark():
    with pytest.raises(ConfigurationError):
        run_splash("BARNES")
