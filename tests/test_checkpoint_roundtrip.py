"""Checkpoint round-trips: restore(snapshot(x)) preserves state_hash.

Every layer named by the acceptance criteria — Engine, Kernel,
StateMatrix/BitMatrix, DDU, DAU, SoCLC, SoCDMMU, FaultInjector — plus
the rest of the registry, driven into a non-trivial state first so the
round-trip exercises real payloads, not empty constructors.
"""

import pytest

from repro import checkpoint
from repro.checkpoint.protocol import (
    SCHEMA_VERSION,
    open_envelope,
    read_snapshot,
    snapshot_envelope,
    state_hash,
    write_snapshot,
)
from repro.deadlock.daa import SoftwareDAA
from repro.deadlock.dau import DAU
from repro.deadlock.dau_fsm import FSMDAU
from repro.deadlock.ddu import DDU
from repro.errors import CheckpointError
from repro.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    ResilientAvoider,
    ResilientDetector,
    UnitHealth,
)
from repro.framework.builder import build_system
from repro.rag.bitmatrix import BitMatrix
from repro.rag.graph import RAG
from repro.rag.matrix import StateMatrix
from repro.rag.multiunit import MultiUnitSystem
from repro.rtos.kernel import Kernel
from repro.sim.engine import Engine

ROWS = ["g r .", ". g r", "r . g"]          # 3x3 knot


def roundtrip(unit, restore, **context):
    """snapshot -> restore -> re-snapshot; assert equal state_hash."""
    before = unit.snapshot_state()
    clone = restore(before, **context)
    after = clone.snapshot_state()
    assert after["state_hash"] == before["state_hash"]
    assert after["state"] == before["state"]
    return clone


# -- sim.Engine ----------------------------------------------------------------

def _ticker(steps):
    def proc():
        for _ in range(steps):
            yield 1.0
    return proc()


class TestEngine:
    def test_roundtrip_preserves_hash(self):
        engine = Engine()
        engine.spawn(_ticker(3), name="a")
        engine.spawn(_ticker(5), name="b")
        engine.run()
        clone = roundtrip(engine, Engine.restore_state)
        assert clone.now == engine.now
        assert clone.events_processed == engine.events_processed
        assert clone.is_quiescent()

    def test_refuses_snapshot_with_pending_events(self):
        engine = Engine()
        engine.spawn(_ticker(10), name="long")
        engine.run(until=3.0)
        assert not engine.is_quiescent()
        with pytest.raises(CheckpointError, match="not quiescent"):
            engine.snapshot_state()

    def test_restored_engine_keeps_simulating(self):
        engine = Engine()
        engine.spawn(_ticker(4), name="a")
        engine.run()
        clone = Engine.restore_state(engine.snapshot_state())
        clone.spawn(_ticker(2), name="later")
        assert clone.run() == engine.now + 2.0


# -- rtos.Kernel ---------------------------------------------------------------

def _run_kernel():
    system = build_system("RTOS5")
    kernel = system.kernel

    def worker(ctx):
        yield from ctx.compute(100)

    kernel.create_task(worker, "t1", 1, "PE1")
    kernel.create_task(worker, "t2", 2, "PE2")
    kernel.run()
    return system, kernel


class TestKernel:
    def test_roundtrip_preserves_hash(self):
        _, kernel = _run_kernel()
        clone = roundtrip(kernel, Kernel.restore_state)
        assert sorted(clone.tasks) == sorted(kernel.tasks)
        assert clone.engine.now == kernel.engine.now

    def test_task_stats_survive(self):
        _, kernel = _run_kernel()
        clone = Kernel.restore_state(kernel.snapshot_state())
        for name, task in kernel.tasks.items():
            restored = clone.tasks[name]
            assert restored.state is task.state
            assert restored.stats.finish_time == task.stats.finish_time
            assert restored.stats.preemptions == task.stats.preemptions

    def test_refuses_snapshot_mid_run(self):
        system = build_system("RTOS5")
        kernel = system.kernel

        def worker(ctx):
            yield from ctx.compute(10_000)

        kernel.create_task(worker, "t", 1, "PE1")
        kernel.engine.run(until=50.0)      # partial: task still alive
        with pytest.raises(CheckpointError, match="not quiescent"):
            kernel.snapshot_state()


# -- rag matrices --------------------------------------------------------------

class TestMatrices:
    def test_statematrix_roundtrip(self):
        matrix = StateMatrix.from_rows(ROWS)
        roundtrip(matrix, StateMatrix.restore_state)

    def test_bitmatrix_roundtrip(self):
        matrix = BitMatrix.from_rows(ROWS)
        roundtrip(matrix, BitMatrix.restore_state)

    def test_backends_emit_identical_payloads(self):
        # kind lives outside the hashed payload, so the two backends
        # produce byte-identical state and state_hash for one state.
        reference = StateMatrix.from_rows(ROWS).snapshot_state()
        fast = BitMatrix.from_rows(ROWS).snapshot_state()
        assert reference["state"] == fast["state"]
        assert reference["state_hash"] == fast["state_hash"]
        assert reference["kind"] != fast["kind"]

    def test_cross_backend_restore(self):
        # A BitMatrix snapshot restores into a StateMatrix and back.
        fast = BitMatrix.from_rows(ROWS)
        reference = StateMatrix.restore_state(fast.snapshot_state())
        again = BitMatrix.restore_state(reference.snapshot_state())
        assert again.snapshot_state()["state_hash"] == \
            fast.snapshot_state()["state_hash"]


# -- rag graph / multiunit -----------------------------------------------------

class TestRagStates:
    def test_rag_roundtrip(self):
        rag = RAG(["p1", "p2"], ["q1", "q2"])
        rag.grant("q1", "p1")
        rag.add_request("p2", "q1")
        clone = roundtrip(rag, RAG.restore_state)
        assert sorted(clone.grant_edges()) == sorted(rag.grant_edges())
        assert sorted(clone.request_edges()) == sorted(rag.request_edges())

    def test_multiunit_roundtrip(self):
        system = MultiUnitSystem(["p1", "p2"], {"q1": 2, "q2": 1})
        system.request("p1", "q1", 2)
        system.grant("p1", "q1", 2)
        system.request("p2", "q1", 1)
        clone = roundtrip(system, MultiUnitSystem.restore_state)
        assert clone.available("q1") == system.available("q1")
        assert clone.outstanding_request("p2", "q1") == 1


# -- deadlock units ------------------------------------------------------------

class TestDeadlockUnits:
    def test_ddu_roundtrip_with_latched_result(self):
        ddu = DDU(3, 3)
        ddu.load(StateMatrix.from_rows(ROWS))
        result = ddu.detect()
        clone = roundtrip(ddu, DDU.restore_state)
        assert clone.invocations == ddu.invocations
        # The restored unit republishes the same latched verdict and
        # answers the next detect() exactly as the original.
        assert clone.detect().deadlock == result.deadlock

    @pytest.mark.parametrize("backend", ["bitmask", "reference"])
    def test_ddu_roundtrip_both_backends(self, backend):
        ddu = DDU(3, 3, backend=backend)
        ddu.load(StateMatrix.from_rows(ROWS))
        ddu.detect()
        roundtrip(ddu, DDU.restore_state)

    def test_dau_roundtrip_with_pending_ports(self):
        dau = DAU(["p1", "p2", "p3"], ["q1", "q2", "q3"],
                  {"p1": 1, "p2": 2, "p3": 3})
        dau.write_command("PE1", "request", "p1", "q1")
        dau.write_command("PE2", "request", "p2", "q1")   # pending
        clone = roundtrip(dau, DAU.restore_state)
        assert clone.read_status("p2").pending

    def test_fsmdau_roundtrip_preserves_step_accounting(self):
        fsm = FSMDAU(["p1", "p2", "p3"], ["q1", "q2", "q3"],
                     {"p1": 1, "p2": 2, "p3": 3})
        fsm.write_command("PE1", "request", "p1", "q1")
        fsm.write_command("PE2", "request", "p2", "q1")
        clone = roundtrip(fsm, FSMDAU.restore_state)
        assert clone.total_steps == fsm.total_steps
        assert clone.max_steps_seen == fsm.max_steps_seen

    def test_software_daa_roundtrip(self):
        daa = SoftwareDAA(["p1", "p2", "p3"], ["q1", "q2", "q3"],
                          {"p1": 1, "p2": 2, "p3": 3})
        daa.request("p1", "q1")
        daa.request("p2", "q1")
        roundtrip(daa, SoftwareDAA.restore_state)


# -- SoCLC / SoCDMMU -----------------------------------------------------------

class TestHardwareOS:
    def test_soclc_roundtrip(self):
        system = build_system("RTOS6")
        system.lock_manager.register_lock("L", kind="long", ceiling=1)
        kernel = system.kernel

        def body(ctx):
            yield from ctx.lock("L")
            yield from ctx.compute(50)
            yield from ctx.unlock("L")

        kernel.create_task(body, "t", 1, "PE1")
        kernel.run()
        soclc = system.lock_manager
        restored_kernel = Kernel.restore_state(kernel.snapshot_state())
        clone = roundtrip(soclc, type(soclc).restore_state,
                          kernel=restored_kernel)
        assert clone.stats.acquisitions == soclc.stats.acquisitions

    def test_soclc_holder_rebinds_by_name(self):
        system = build_system("RTOS6")
        system.lock_manager.register_lock("L", kind="long", ceiling=1)
        kernel = system.kernel

        def body(ctx):
            yield from ctx.compute(10)

        kernel.create_task(body, "t", 1, "PE1")
        kernel.run()
        soclc = system.lock_manager
        soclc._locks["L"].holder = kernel.tasks["t"]   # leaked holder
        restored_kernel = Kernel.restore_state(kernel.snapshot_state())
        clone = roundtrip(soclc, type(soclc).restore_state,
                          kernel=restored_kernel)
        assert clone.holder_name("L") == "t"
        assert clone._locks["L"].holder is restored_kernel.tasks["t"]

    def test_socdmmu_roundtrip(self):
        system = build_system("RTOS7")
        kernel = system.kernel
        heap = system.heap

        def body(ctx):
            handle = yield from heap.malloc(ctx, 4096)
            yield from ctx.compute(20)
            yield from heap.free(ctx, handle)
            yield from heap.malloc(ctx, 2048)     # left allocated

        kernel.create_task(body, "t", 1, "PE1")
        kernel.run()
        restored_kernel = Kernel.restore_state(kernel.snapshot_state())
        clone = roundtrip(heap, type(heap).restore_state,
                          kernel=restored_kernel)
        assert clone.stats.malloc_calls == heap.stats.malloc_calls
        assert clone.allocator.free_blocks == heap.allocator.free_blocks


# -- faults --------------------------------------------------------------------

def _plan():
    return FaultPlan(name="rt", specs=(
        FaultSpec("ddu.matrix", "stuck", at=1, duration=2,
                  params={"s": 0, "t": 0, "value": "g"}),
        FaultSpec("ddu.hang", "hang", at=4),
    ))


class TestFaults:
    def test_injector_roundtrip(self):
        injector = FaultInjector(_plan())
        for _ in range(3):
            injector.fire("ddu.matrix")
        clone = roundtrip(injector, FaultInjector.restore_state)
        assert clone.visits == injector.visits
        assert [r.visit for r in clone.records] == \
            [r.visit for r in injector.records]

    def test_restored_injector_continues_fault_history(self):
        # The spec at ddu.hang visit 4 must fire on the restored clone
        # exactly when it would have fired on the original.
        injector = FaultInjector(_plan())
        for _ in range(3):
            injector.fire("ddu.hang")
        clone = FaultInjector.restore_state(injector.snapshot_state())
        assert not injector.fire("ddu.hang")     # visit 3
        assert not clone.fire("ddu.hang")
        assert injector.fire("ddu.hang")         # visit 4: armed
        assert clone.fire("ddu.hang")

    def test_health_roundtrip(self):
        health = UnitHealth("ddu", fail_threshold=2, recover_after=3)
        health.anomaly("test")
        health.anomaly("test")           # -> FAILED
        health.begin_recovery()
        clone = roundtrip(health, UnitHealth.restore_state)
        assert clone.state is health.state
        assert len(clone.transitions) == len(health.transitions)

    def test_resilient_detector_roundtrip(self):
        detector = ResilientDetector(DDU(3, 3))
        rag = RAG(["p1", "p2", "p3"], ["q1", "q2", "q3"])
        rag.grant("q1", "p1")
        rag.add_request("p2", "q1")
        detector.detect(rag)
        detector.force_failover("test")
        detector.detect(rag)
        clone = roundtrip(detector, ResilientDetector.restore_state)
        assert clone.detect(rag).deadlock == detector.detect(rag).deadlock

    def test_resilient_avoider_roundtrip(self):
        avoider = ResilientAvoider(DAU(
            ["p1", "p2"], ["q1", "q2"], {"p1": 1, "p2": 2}))
        avoider.decide("PE1", "request", "p1", "q1")
        avoider.decide("PE2", "request", "p2", "q1")
        roundtrip(avoider, ResilientAvoider.restore_state)


# -- generic registry dispatch -------------------------------------------------

class TestRegistry:
    def test_generic_snapshot_and_restore(self):
        matrix = StateMatrix.from_rows(ROWS)
        envelope = checkpoint.snapshot_state(matrix)
        clone = checkpoint.restore_state(envelope)
        assert isinstance(clone, StateMatrix)
        assert clone.snapshot_state()["state_hash"] == \
            envelope["state_hash"]

    def test_context_kwargs_filtered_per_restorer(self):
        # One heterogeneous context serves every kind: kwargs a given
        # restorer does not accept are dropped silently.
        _, kernel = _run_kernel()
        matrix_env = BitMatrix.from_rows(ROWS).snapshot_state()
        kernel_env = kernel.snapshot_state()
        restored_kernel = checkpoint.restore_state(kernel_env,
                                                   kernel=None, clock=None)
        assert isinstance(restored_kernel, Kernel)
        clone = checkpoint.restore_state(matrix_env, kernel=restored_kernel)
        assert isinstance(clone, BitMatrix)

    def test_unknown_kind_raises(self):
        envelope = snapshot_envelope("no.such.layer", {"x": 1})
        with pytest.raises(CheckpointError, match="no restorer"):
            checkpoint.restore_state(envelope)

    def test_object_without_protocol_raises(self):
        with pytest.raises(CheckpointError, match="snapshot_state"):
            checkpoint.snapshot_state(object())


# -- envelope / protocol -------------------------------------------------------

class TestProtocol:
    def test_newer_schema_version_refused(self):
        envelope = snapshot_envelope("rag.matrix", {"a": 1})
        envelope["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(CheckpointError, match="newer"):
            open_envelope(envelope)

    def test_tampered_state_detected(self):
        envelope = snapshot_envelope("rag.matrix", {"a": 1})
        envelope["state"]["a"] = 2
        with pytest.raises(CheckpointError, match="state_hash mismatch"):
            open_envelope(envelope)

    def test_kind_mismatch_detected(self):
        envelope = snapshot_envelope("rag.matrix", {"a": 1})
        with pytest.raises(CheckpointError, match="expected"):
            open_envelope(envelope, kind="deadlock.ddu")

    def test_missing_keys_detected(self):
        with pytest.raises(CheckpointError, match="missing"):
            open_envelope({"schema": "repro.checkpoint/1"})
        with pytest.raises(CheckpointError):
            open_envelope("not a dict")

    def test_unserialisable_payload_refused(self):
        with pytest.raises(CheckpointError, match="JSON-safe"):
            snapshot_envelope("rag.matrix", {"fn": open})

    def test_state_hash_is_canonical(self):
        assert state_hash({"b": 1, "a": 2}) == state_hash({"a": 2, "b": 1})
        assert state_hash({"a": 1}) != state_hash({"a": 2})

    def test_write_read_snapshot_roundtrip(self, tmp_path):
        envelope = snapshot_envelope("rag.matrix", {"a": [1, 2, 3]})
        path = tmp_path / "nested" / "snap.json"
        write_snapshot(path, envelope)
        assert read_snapshot(path, kind="rag.matrix") == envelope
        assert list(path.parent.glob("*.tmp")) == []   # no tmp litter

    def test_read_missing_snapshot_is_none(self, tmp_path):
        assert read_snapshot(tmp_path / "absent.json") is None

    def test_corrupt_snapshot_file_raises(self, tmp_path):
        path = tmp_path / "snap.json"
        path.write_text("{ torn")
        with pytest.raises(CheckpointError, match="not valid JSON"):
            read_snapshot(path)

    def test_truncated_snapshot_file_raises(self, tmp_path):
        envelope = snapshot_envelope("rag.matrix", {"a": 1})
        path = tmp_path / "snap.json"
        write_snapshot(path, envelope)
        text = path.read_text()
        path.write_text(text[:len(text) // 2])
        with pytest.raises(CheckpointError):
            read_snapshot(path)
