"""Tests for the experiment harnesses: every table/figure regenerates
and reproduces the paper's qualitative claims."""

import pytest

from repro.experiments import EXPERIMENTS, run_experiment
from repro.experiments import (
    fig7_top_generation,
    fig11_matrix_example,
    fig20_trace,
    table1_ddu_synthesis,
    table2_dau_synthesis,
    table4_event_sequence,
    table5_ddu_vs_pdda,
    table6_gdl_sequence,
    table7_gdl,
    table8_rdl_sequence,
    table9_rdl,
    table10_soclc_robot,
    table11_malloc,
    table12_socdmmu,
)


def test_registry_covers_every_table_and_figure():
    expected = {"table1", "table2", "table3", "table4", "table5", "table6",
                "table7", "table8", "table9", "table10", "table11",
                "table12", "fig7", "fig11", "fig20",
                "ablation_policies", "ablation_recovery", "ablation_hierbus", "complexity_survey",
                "latency_profile", "diagrams", "exhaustive_bound"}
    assert set(EXPERIMENTS) == expected


def test_run_experiment_unknown_id():
    with pytest.raises(KeyError):
        run_experiment("table99")


def test_table1_matches_published_rows():
    result = table1_ddu_synthesis.run()
    for row in result.rows:
        assert row.lines == row.paper_lines
        assert row.area == row.paper_area
        assert row.worst_iterations == row.paper_worst
        assert row.measured_chain_iterations <= row.worst_iterations
    assert "Table 1" in result.render()


def test_table2_reproduces_dau_summary():
    result = table2_dau_synthesis.run()
    assert result.total_area == 1836
    assert result.avoidance_steps == 38
    assert 0.004 < result.area_percent < 0.006
    assert result.measured_max_decision_cycles <= result.avoidance_steps
    assert ".005%" in result.render() or "0.005" in result.render()


def test_table4_sequence_ends_in_detection():
    result = table4_event_sequence.run()
    assert result.deadlock_detected_at > 0
    kinds = [kind for _t, _a, kind, _r in result.events]
    assert "deadlock_detected" in kinds
    assert "r" in result.residual_matrix_text
    assert "g" in result.residual_matrix_text


def test_table5_hardware_wins():
    result = table5_ddu_vs_pdda.run()
    assert result.app_speedup_percent > 20
    assert result.algorithm_speedup > 100
    text = result.render()
    assert "paper" in text and "46%" in text


def test_table6_idct_to_lower_priority():
    result = table6_gdl_sequence.run()
    assert result.gdl_avoided
    assert result.idct_went_to == "p3"


def test_table7_hardware_wins():
    result = table7_gdl.run()
    assert result.app_speedup_percent > 15
    assert result.algorithm_speedup > 100
    assert result.hardware.avoidance_invocations == 12


def test_table8_giveup_asked_of_p2():
    result = table8_rdl_sequence.run()
    assert result.rdl_avoided
    assert result.giveup_asked_of == "p2"


def test_table9_hardware_wins():
    result = table9_rdl.run()
    assert result.app_speedup_percent > 20
    assert result.algorithm_speedup > 100
    assert result.hardware.avoidance_invocations == 14


def test_table10_soclc_wins_all_three_rows():
    result = table10_soclc_robot.run()
    assert result.software.lock_latency > result.hardware.lock_latency
    assert result.software.lock_delay > result.hardware.lock_delay
    assert result.software.overall_cycles > result.hardware.overall_cycles
    # Latency ratio is the calibrated 1.79X.
    ratio = result.software.lock_latency / result.hardware.lock_latency
    assert ratio == pytest.approx(1.79, abs=0.01)


def test_table11_mm_shares_close_to_paper():
    result = table11_malloc.run()
    from repro.experiments.table11_malloc import PAPER_TABLE_11
    for run_ in result.runs:
        paper_total, paper_mm, paper_pct = PAPER_TABLE_11[run_.benchmark]
        assert run_.total_cycles == pytest.approx(paper_total, rel=0.05)
        assert run_.mm_cycles == pytest.approx(paper_mm, rel=0.10)
        assert run_.mm_percent == pytest.approx(paper_pct, abs=2.0)


def test_table12_reductions_close_to_paper():
    result = table12_socdmmu.run()
    from repro.experiments.table12_socdmmu import PAPER_TABLE_12
    for row in result.rows:
        paper = PAPER_TABLE_12[row.benchmark]
        assert row.mm_reduction_percent == pytest.approx(paper[3], abs=3)
        assert row.exe_reduction_percent == pytest.approx(paper[4], abs=3)
        assert row.mm_percent < 1.5


def test_fig7_generates_three_pe_soclc_top():
    result = fig7_top_generation.run()
    assert result.num_pe_instances == 3
    assert result.has_soclc


def test_fig11_terminal_sets_match_example_4():
    result = fig11_matrix_example.run()
    assert list(result.terminal_rows) == ["q2", "q3"]
    assert list(result.terminal_columns) == ["p2", "p4", "p6"]
    assert result.deadlock        # the example contains a cycle


def test_fig20_gantt_renders_three_tasks():
    result = fig20_trace.run()
    assert "task1" in result.gantt_rtos6
    assert "task3" in result.gantt_rtos5
    assert "#" in result.gantt_rtos6


def test_every_experiment_renders_text():
    for exp_id in EXPERIMENTS:
        result = run_experiment(exp_id)
        text = result.render()
        assert isinstance(text, str) and len(text) > 40
