"""Tests for the Atalanta-style API façade and the system report."""

import pytest

from repro.errors import RTOSError
from repro.framework.builder import build_system
from repro.rtos.api import AtalantaAPI
from repro.rtos.report import system_report


@pytest.fixture
def api(base_system):
    return AtalantaAPI(base_system.kernel)


def test_task_lifecycle_via_api(api, kernel):
    done = []

    def body(ctx):
        yield from api.task_delay(ctx, 500)
        done.append(ctx.now)

    assert api.task_create(body, "worker", 2, "PE1") == "worker"
    kernel.run()
    assert done and done[0] >= 500


def test_sema_via_api(api, kernel):
    order = []
    sid = api.sema_create(initial=0)

    def consumer(ctx):
        yield from api.sema_wait(ctx, sid)
        order.append(("consumed", ctx.now))

    def producer(ctx):
        yield from ctx.compute(700)
        yield from api.sema_signal(ctx, sid)

    api.task_create(consumer, "consumer", 1, "PE1")
    api.task_create(producer, "producer", 1, "PE2")
    kernel.run()
    assert order and order[0][1] >= 700


def test_mbox_and_queue_via_api(api, kernel):
    got = []
    mid = api.mbox_create()
    qid = api.queue_create(capacity=2)

    def producer(ctx):
        yield from api.mbox_post(ctx, mid, "letter")
        yield from api.queue_send(ctx, qid, 1)
        yield from api.queue_send(ctx, qid, 2)

    def consumer(ctx):
        yield from ctx.sleep(200)
        got.append((yield from api.mbox_pend(ctx, mid)))
        got.append((yield from api.queue_receive(ctx, qid)))
        got.append((yield from api.queue_receive(ctx, qid)))

    api.task_create(producer, "producer", 1, "PE1")
    api.task_create(consumer, "consumer", 1, "PE2")
    kernel.run()
    assert got == ["letter", 1, 2]


def test_flags_via_api(api, kernel):
    woken = []
    fid = api.flag_create()

    def waiter(ctx):
        value = yield from api.flag_wait(ctx, fid, 0b10)
        woken.append(value)

    def setter(ctx):
        yield from ctx.compute(300)
        yield from api.flag_set(ctx, fid, 0b10)

    api.task_create(waiter, "waiter", 1, "PE1")
    api.task_create(setter, "setter", 1, "PE2")
    kernel.run()
    assert woken and woken[0] & 0b10


def test_locks_and_memory_via_api(api, kernel, base_system):
    def body(ctx):
        yield from api.lock(ctx, "L")
        address = yield from api.mem_alloc(ctx, 256)
        yield from api.mem_free(ctx, address)
        yield from api.unlock(ctx, "L")

    api.task_create(body, "worker", 1, "PE1")
    kernel.run()
    assert base_system.heap.stats.malloc_calls == 1
    assert base_system.lock_manager.stats.acquisitions == 1


def test_suspend_resume_priority_via_api(api, kernel):
    api.task_create(lambda ctx: ctx.compute(3000), "runner", 2, "PE1")
    kernel.run(until=500)
    api.task_suspend("runner")
    kernel.run(until=800)
    api.task_resume("runner")
    api.task_priority_change("runner", 1)
    kernel.run()
    assert kernel.finished("runner")
    assert kernel.tasks["runner"].priority == 1


def test_bad_handles_rejected(api, kernel):
    def body(ctx):
        yield from api.sema_wait(ctx, 999)

    api.task_create(body, "bad", 1, "PE1")
    with pytest.raises(Exception):
        kernel.run()


# -- system report --------------------------------------------------------------

def test_system_report_contents():
    system = build_system("RTOS4")
    kernel = system.kernel

    def body(ctx):
        yield from ctx.request("DSP")
        yield from ctx.use_peripheral("DSP", 500)
        yield from ctx.release_resource("DSP")

    kernel.create_task(body, "p1", 1, "PE1")
    kernel.run()
    report = system_report(system)
    assert "Task table" in report
    assert "Processing elements" in report
    assert "p1" in report and "PE1" in report
    assert "deadlock service (RTOS4)" in report
    assert "bus:" in report


def test_system_report_flags_leaks_and_failures():
    system = build_system("RTOS4")
    kernel = system.kernel
    kernel.isolate_task_failures = True

    def leaker(ctx):
        yield from ctx.request("DSP")

    def crasher(ctx):
        yield from ctx.compute(10)
        raise RuntimeError("boom")

    kernel.create_task(leaker, "p1", 1, "PE1")
    kernel.create_task(crasher, "p2", 2, "PE2")
    kernel.run()
    report = system_report(system)
    assert "RESOURCE LEAKS" in report
    assert "FAILED TASKS" in report
