"""Tests for the cycle-attribution profiler (repro.obs.profile)."""

import json

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.framework.builder import build_system
from repro.obs import (
    ProfileReport,
    build_profile,
    merge_profiles,
    read_profile,
    write_profile,
)
from repro.sim.engine import Engine


def _run_scenario(config):
    """A small request/compute/release workload on one config."""
    system = build_system(config)
    system.soc.obs.enable()

    def body(ctx):
        yield from ctx.request("DSP")
        yield from ctx.compute(100)
        yield from ctx.release_resource("DSP")

    system.kernel.create_task(body, "p1", 1, "PE1")
    system.kernel.create_task(body, "p2", 2, "PE2")
    system.kernel.run()
    return system


# -- construction --------------------------------------------------------------

def test_engine_profile_report_requires_obs():
    with pytest.raises(SimulationError):
        Engine().profile_report()


def test_profile_report_from_engine():
    system = _run_scenario("RTOS2")
    profile = system.soc.engine.profile_report()
    assert profile.total_cycles == system.soc.engine.now
    assert profile.components
    assert "kernel" in profile.components
    # The DDU served the detection spans on a hardware config.
    assert "ddu" in profile.components
    assert profile.events_processed == system.soc.engine.events_processed


def test_table5_scenario_attributes_95_percent():
    # The acceptance scenario: the Table-5 DDU-vs-PDDA workload keeps
    # its tasks inside instrumented service calls almost all the time.
    from repro.experiments.table5_ddu_vs_pdda import run as run_table5
    from repro import obs as obs_module
    obs_module.clear_live_systems()
    obs_module.set_default_enabled(True)
    try:
        run_table5()
    finally:
        obs_module.set_default_enabled(False)
    systems = obs_module.live_systems()
    obs_module.clear_live_systems()
    assert len(systems) == 2           # hardware (DDU) and software (PDDA)
    for obs in systems:
        profile = build_profile(obs)
        assert profile.attributed_fraction >= 0.95, (
            f"{profile.label}: only "
            f"{profile.attributed_fraction * 100:.1f}% attributed")


def test_hardware_vs_software_component_resolution():
    hw = build_profile(_run_scenario("RTOS2").soc.obs)
    sw = build_profile(_run_scenario("RTOS1").soc.obs)
    assert "ddu" in hw.components
    assert "software.pdda" in sw.components
    assert "ddu" not in sw.components or \
        sw.components["ddu"]["cycles"] == 0


# -- serialisation -------------------------------------------------------------

def test_profile_round_trips_canonical_json():
    profile = build_profile(_run_scenario("RTOS2").soc.obs)
    text = profile.to_json()
    again = ProfileReport.from_json(text)
    assert again.to_json() == text
    # Canonical form: sorted keys, no whitespace.
    assert text == json.dumps(json.loads(text), sort_keys=True,
                              separators=(",", ":"))
    assert again.total_cycles == profile.total_cycles
    assert again.components == profile.components
    assert again.attributed_fraction == profile.attributed_fraction


def test_profile_rejects_wrong_schema():
    with pytest.raises(ConfigurationError):
        ProfileReport.from_dict({"schema": "bogus/9", "label": "x",
                                 "total_cycles": 0, "components": {}})
    with pytest.raises(ConfigurationError):
        ProfileReport.from_json("not json at all {")


def test_write_and_read_profile(tmp_path):
    profile = build_profile(_run_scenario("RTOS2").soc.obs)
    path = tmp_path / "p.profile.json"
    write_profile(path, profile)
    again = read_profile(path)
    assert again.to_json() == profile.to_json()


# -- views ---------------------------------------------------------------------

def test_render_mentions_components_and_coverage():
    profile = build_profile(_run_scenario("RTOS2").soc.obs)
    text = profile.render()
    assert "kernel" in text
    assert "% attributed" in text


def test_profile_diff_flags_growth():
    base = ProfileReport(label="base", total_cycles=1000)
    base.charge("ddu", 100, "algorithm")
    base.charge("kernel", 200, "request")
    cand = ProfileReport(label="cand", total_cycles=1600)
    cand.charge("ddu", 400, "algorithm")     # 4x: a regression
    cand.charge("kernel", 210, "request")    # within the band
    diff = cand.diff(base)
    assert diff.total_delta == 600
    regressed = diff.regressions(threshold=1.25)
    assert [row[0] for row in regressed] == ["ddu"]
    text = diff.render()
    assert "ddu" in text and "4.00x" in text


def test_merge_profiles_sums_ledgers():
    a = ProfileReport(label="a", total_cycles=100, covered_cycles=80)
    a.charge("ddu", 10, "algorithm")
    a.counters["faults.injected"] = 2
    b = ProfileReport(label="b", total_cycles=50, covered_cycles=40)
    b.charge("ddu", 5, "algorithm")
    b.charge("kernel", 7, "request")
    b.counters["faults.injected"] = 1
    merged = merge_profiles([a, b], label="both")
    assert merged.total_cycles == 150
    assert merged.covered_cycles == 120
    assert merged.components["ddu"]["cycles"] == 15
    assert merged.components["ddu"]["operations"]["algorithm"]["count"] == 2
    assert merged.components["kernel"]["cycles"] == 7
    assert merged.counters["faults.injected"] == 3
    assert merged.meta["merged_from"] == ["a", "b"]
