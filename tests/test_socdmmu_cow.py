"""Tests for the SoCDMMU memory-pressure machinery (see
``docs/memory_pressure.md``): copy-on-write sharing, the recoverable
OOM ladder, task-teardown reclamation, and the audit-cadence fix."""

import pytest
from dataclasses import replace

from repro.errors import AllocationError, CheckpointError, SimulationError
from repro.faults.health import HealthState, ResiliencePolicy
from repro.faults.install import install_fault_plan
from repro.faults.plan import FaultPlan, FaultSpec
from repro.framework.builder import build_system
from repro.framework.config import preset
from repro.socdmmu.allocator import BlockAllocator
from repro.socdmmu.dmmu import SoCDMMU


def _system(blocks=16, block_kb=4):
    return build_system(replace(preset("RTOS7"), socdmmu_blocks=blocks,
                                socdmmu_block_bytes=block_kb * 1024))


def _run_task(system, body, name="bench"):
    result = {}

    def task(ctx):
        result["value"] = yield from body(ctx)

    system.kernel.create_task(task, name, 1, "PE1")
    system.kernel.run()
    return result.get("value")


def _policy(**overrides):
    defaults = dict(max_retries=1, sample_every=1, fail_threshold=2,
                    recover_after=2, scrub_after=2, audit_every=10)
    defaults.update(overrides)
    return ResiliencePolicy(**defaults)


# -- BlockAllocator CoW datapath -----------------------------------------------------


def test_share_bumps_refcount_and_maps_both_owners():
    allocator = BlockAllocator(8, 1024)
    virtual = allocator.allocate("a", 1)[0]
    physical = allocator.translate("a", virtual)
    peer_virtual = allocator.share("a", virtual, "b")
    assert allocator.translate("b", peer_virtual) == physical
    assert allocator.refcount_of(physical) == 2
    assert allocator.shared_blocks == 1
    assert allocator.free_blocks == 7          # no data moved
    assert allocator.verify() == []


def test_owner_table_names_smallest_referencing_owner():
    allocator = BlockAllocator(8, 1024)
    virtual = allocator.allocate("m", 1)[0]
    physical = allocator.translate("m", virtual)
    allocator.share("m", virtual, "a")          # "a" < "m"
    assert allocator.owner_of(physical) == "a"
    allocator.deallocate("a", 0)
    assert allocator.owner_of(physical) == "m"


def test_write_fault_splits_shared_block():
    allocator = BlockAllocator(8, 1024)
    virtual = allocator.allocate("a", 1)[0]
    physical = allocator.translate("a", virtual)
    peer_virtual = allocator.share("a", virtual, "b")
    assert allocator.write_fault("b", peer_virtual) is True
    copy = allocator.translate("b", peer_virtual)
    assert copy != physical
    assert allocator.refcount_of(physical) == 1
    assert allocator.refcount_of(copy) == 1
    assert allocator.shared_blocks == 0
    assert allocator.verify() == []


def test_write_fault_on_private_block_is_a_noop():
    allocator = BlockAllocator(4, 1024)
    virtual = allocator.allocate("a", 1)[0]
    physical = allocator.translate("a", virtual)
    assert allocator.write_fault("a", virtual) is False
    assert allocator.translate("a", virtual) == physical
    assert allocator.free_blocks == 3


def test_write_fault_needs_a_free_block():
    allocator = BlockAllocator(2, 1024)
    first = allocator.allocate("a", 1)[0]
    allocator.allocate("c", 1)
    shared = allocator.share("a", first, "b")
    assert allocator.free_blocks == 0
    with pytest.raises(AllocationError):
        allocator.write_fault("b", shared)
    # The failed split left the sharing intact.
    assert allocator.refcount_of(allocator.translate("b", shared)) == 2
    assert allocator.verify() == []


def test_deallocate_shared_block_frees_only_at_refcount_zero():
    allocator = BlockAllocator(4, 1024)
    virtual = allocator.allocate("a", 1)[0]
    physical = allocator.translate("a", virtual)
    shared = allocator.share("a", virtual, "b")
    allocator.deallocate("a", virtual)
    assert allocator.owner_of(physical) == "b"   # still referenced
    assert allocator.refcount_of(physical) == 1
    allocator.deallocate("b", shared)
    assert allocator.owner_of(physical) is None
    assert allocator.free_blocks == 4


def test_audit_repairs_owner_and_refcount_corruption():
    allocator = BlockAllocator(8, 1024)
    virtual = allocator.allocate("a", 1)[0]
    physical = allocator.translate("a", virtual)
    allocator.share("a", virtual, "b")
    allocator.corrupt(physical, None)                 # leaked entry
    allocator.corrupt_refcount(physical, 7)           # skewed count
    violations = allocator.verify()
    assert any("owner" in v for v in violations)
    assert any("refcount" in v for v in violations)
    assert allocator.audit() >= 2
    assert allocator.verify() == []
    assert allocator.refcount_of(physical) == 2
    assert allocator.audit() == 0                     # idempotent


def test_allocator_payload_roundtrip_keeps_refcounts():
    allocator = BlockAllocator(8, 1024)
    virtual = allocator.allocate("a", 2)[0]
    allocator.share("a", virtual, "b")
    payload = allocator.snapshot_payload()
    restored = BlockAllocator.from_payload(payload)
    assert restored.snapshot_payload() == payload
    assert restored.shared_blocks == 1


def test_allocator_v1_payload_derives_refcounts():
    allocator = BlockAllocator(8, 1024)
    allocator.allocate("a", 3)
    payload = allocator.snapshot_payload()
    del payload["refcounts"]                          # pre-CoW shape
    restored = BlockAllocator.from_payload(payload)
    assert restored.verify() == []
    assert sum(restored.refcount_of(b) for b in range(8)) == 3


# -- front-end CoW commands -----------------------------------------------------------


def test_fork_handle_shares_then_write_fault_copies():
    system = _system(blocks=16)
    heap = system.heap

    def body(ctx):
        parent = yield from heap.malloc(ctx, 2 * heap.allocator.block_bytes)
        fork = yield from heap.fork_handle(ctx, parent)
        copied = yield from heap.write_fault(ctx, fork, 0)
        again = yield from heap.write_fault(ctx, fork, 0)
        yield from heap.free(ctx, fork)
        yield from heap.free(ctx, parent)
        return copied, again

    copied, again = _run_task(system, body)
    assert copied is True and again is False
    assert heap.cow_shares == 2
    assert heap.cow_write_faults == 2
    assert heap.cow_copies == 1
    assert heap.in_use_bytes == 0
    assert heap.allocator.verify() == []


def test_malloc_shared_hands_each_peer_a_handle():
    system = _system(blocks=16)
    heap = system.heap

    def body(ctx):
        handles = yield from heap.malloc_shared(
            ctx, heap.allocator.block_bytes, peers=("peer-a", "peer-b"))
        return handles

    handles = _run_task(system, body)
    assert set(handles) == {"bench", "peer-a", "peer-b"}
    assert heap.allocator.shared_blocks == 1
    assert heap.allocator.used_blocks == 1            # one physical block
    for peer in ("peer-a", "peer-b"):
        assert heap.reclaim_task(peer) == 1
    assert heap.reclaim_task("bench") == 1
    assert heap.allocator.free_blocks == 16


def test_fork_requires_ownership():
    system = _system()
    heap = system.heap
    kernel = system.kernel
    handles = []

    def owner(ctx):
        handles.append((yield from heap.malloc(ctx, 1024)))

    def thief(ctx):
        yield from ctx.sleep(500)
        yield from heap.fork_handle(ctx, handles[0])

    kernel.create_task(owner, "owner", 1, "PE1")
    kernel.create_task(thief, "thief", 1, "PE2")
    with pytest.raises(SimulationError):
        kernel.run()


# -- satellite 1: audit cadence ------------------------------------------------------


def test_audit_runs_on_the_nth_command_not_the_first():
    system = _system()
    heap = system.heap
    install_fault_plan(system, FaultPlan("empty"),
                       policy=_policy(audit_every=3))
    audits_seen = []

    def body(ctx):
        handles = []
        for _ in range(3):
            handles.append((yield from heap.malloc(ctx, 1024)))
            audits_seen.append(heap.audits)
        for handle in handles:
            yield from heap.free(ctx, handle)
            audits_seen.append(heap.audits)

    _run_task(system, body)
    # Mallocs: no audit on #1/#2, one on #3; frees keep their own
    # cadence counter and audit on free #3.
    assert audits_seen == [0, 0, 1, 1, 1, 2]


def test_cow_commands_share_an_audit_cadence():
    system = _system()
    heap = system.heap
    install_fault_plan(system, FaultPlan("empty"),
                       policy=_policy(audit_every=2))

    def body(ctx):
        parent = yield from heap.malloc(ctx, 1024)
        yield from heap.fork_handle(ctx, parent)     # CoW command 1
        before = heap.audits
        yield from heap.fork_handle(ctx, parent)     # CoW command 2
        return before

    before = _run_task(system, body)
    assert before == 0
    assert heap.audits == 1


# -- satellite 2: task-teardown reclamation ------------------------------------------


def test_failed_task_handles_are_reclaimed_at_teardown():
    system = _system(blocks=8)
    heap = system.heap
    kernel = system.kernel
    kernel.isolate_task_failures = True

    def doomed(ctx):
        yield from heap.malloc(ctx, 2 * heap.allocator.block_bytes)
        raise RuntimeError("boom")

    kernel.create_task(doomed, "doomed", 1, "PE1")
    kernel.run()
    assert [name for name, _exc in kernel.task_failures] == ["doomed"]
    assert heap.reclaimed_blocks == 2
    assert heap.allocator.free_blocks == 8
    assert heap._handles == {}
    assert heap.allocator.verify() == []


def test_reclaim_task_is_a_noop_for_strangers():
    system = _system()
    assert system.heap.reclaim_task("never-existed") == 0
    assert system.heap.reclaimed_blocks == 0


# -- satellite 3: gauges on the failure paths ----------------------------------------


def test_failed_allocation_still_updates_usage_gauges():
    system = _system(blocks=4)
    heap = system.heap
    system.soc.obs.enabled = True
    kernel = system.kernel
    kernel.isolate_task_failures = True
    block = heap.allocator.block_bytes

    def hog(ctx):
        yield from heap.malloc(ctx, 3 * block)
        yield from heap.malloc(ctx, 2 * block)       # refused

    kernel.create_task(hog, "hog", 1, "PE1")
    kernel.run()
    assert heap.stats.failed_allocations == 1
    assert heap.stats.peak_in_use == 3 * block
    # The gauge was refreshed on the failure path (then teardown
    # reclaimed the hog, refreshing it again to zero).
    gauge = kernel.obs.metrics.gauge("socdmmu.in_use_bytes")
    assert gauge.value == 0
    assert heap.reclaimed_blocks == 3


# -- the OOM ladder ------------------------------------------------------------------


def test_oom_reclaims_finished_owners_and_retries():
    system = _system(blocks=8)
    heap = system.heap
    heap.enable_resilience(_policy())
    kernel = system.kernel
    pool = heap.allocator.num_blocks * heap.allocator.block_bytes

    def hog(ctx):
        yield from heap.malloc(ctx, pool)            # holds until death

    def late(ctx):
        yield from ctx.sleep(5000)
        handle = yield from heap.malloc(ctx, heap.allocator.block_bytes)
        yield from heap.free(ctx, handle)

    kernel.create_task(hog, "hog", 1, "PE1")
    kernel.create_task(late, "late", 2, "PE1")
    kernel.run()
    assert kernel.finished("hog", "late")
    assert heap.oom_events == 1
    assert heap.oom_retries == 1
    assert heap.oom_recoveries == 1
    assert heap.reclaimed_blocks == heap.allocator.num_blocks
    assert heap.mode == "hardware"                   # never degraded
    assert [kind for _at, kind in heap.event_log] == [
        "oom", "oom-retry", "oom-recovered"]


def test_persistent_exhaustion_degrades_then_fails_back():
    system = _system(blocks=8)
    heap = system.heap
    heap.enable_resilience(_policy(max_retries=1, fail_threshold=2,
                                   recover_after=2, scrub_after=2))
    block = heap.allocator.block_bytes
    pool = heap.allocator.num_blocks * block

    def body(ctx):
        hog = yield from heap.malloc(ctx, pool)
        # Two refused allocations: nothing is reclaimable (the hog is
        # this very task), so the ladder trips the health FSM.
        yield from heap.malloc(ctx, block)
        assert heap.mode == "hardware"               # SUSPECT, not FAILED
        yield from heap.malloc(ctx, block)
        assert heap.mode == "software"
        yield from heap.free(ctx, hog)               # hardware path still frees
        # Scrub probes run every scrub_after software mallocs; two
        # clean probes (recover_after) bring the unit back.
        for _ in range(6):
            if heap.mode == "hardware":
                break
            yield from heap.malloc(ctx, 512)
        final = yield from heap.malloc(ctx, block)
        yield from heap.free(ctx, final)

    _run_task(system, body)
    assert heap.failovers == 1
    assert heap.failbacks == 1
    assert heap.scrubs == 2
    assert heap.oom_events == 2
    assert heap.software_served > 0
    assert heap.health.state is HealthState.HEALTHY
    kinds = [kind for _at, kind in heap.event_log]
    assert kinds.index("failover") < kinds.index("scrub") \
        < kinds.index("failback")
    assert heap.in_use_bytes == 0


def test_write_fault_exhaustion_runs_the_reclaim_ladder():
    system = _system(blocks=4)
    heap = system.heap
    heap.enable_resilience(_policy())
    kernel = system.kernel
    block = heap.allocator.block_bytes

    def hog(ctx):
        yield from heap.malloc(ctx, 2 * block)       # fills the pool...

    def sharer(ctx):
        yield from ctx.sleep(5000)
        parent = yield from heap.malloc(ctx, block)
        fork = yield from heap.fork_handle(ctx, parent)   # no block moves
        filler = yield from heap.malloc(ctx, block)       # pool now full
        # The split's copy finds no free block; the ladder sweeps the
        # dead hog's two blocks and the copy lands.
        copied = yield from heap.write_fault(ctx, fork, 0)
        assert copied is True
        yield from heap.free(ctx, fork)
        yield from heap.free(ctx, filler)
        yield from heap.free(ctx, parent)

    kernel.create_task(hog, "hog", 1, "PE1")
    kernel.create_task(sharer, "sharer", 2, "PE1")
    kernel.run()
    assert kernel.finished("sharer")
    assert heap.oom_events == 1
    assert heap.oom_recoveries == 1
    assert heap.reclaimed_blocks == 2
    assert heap.allocator.free_blocks == 4
    assert heap.allocator.verify() == []


def test_exhaustion_without_resilience_still_raises():
    system = _system(blocks=4)
    heap = system.heap

    def body(ctx):
        yield from heap.malloc(
            ctx, heap.allocator.num_blocks * heap.allocator.block_bytes)
        yield from heap.malloc(ctx, 1)

    with pytest.raises(SimulationError):
        _run_task(system, body)
    assert heap.stats.failed_allocations == 1
    assert heap.mode == "hardware"
    assert heap.software_served == 0


# -- fault sites ---------------------------------------------------------------------


def test_exhaust_fault_ghosts_are_reclaimed_by_the_ladder():
    system = _system(blocks=8)
    heap = system.heap
    plan = FaultPlan("ghosts", (FaultSpec(
        "socdmmu.exhaust", "ghost", at=0, duration=1,
        params={"blocks": 8}),))
    install_fault_plan(system, plan, policy=_policy())

    def body(ctx):
        handle = yield from heap.malloc(ctx, 1024)
        yield from heap.free(ctx, handle)

    _run_task(system, body)
    assert heap.oom_events == 1
    assert heap.oom_recoveries == 1
    assert heap.audit_repairs >= 8                   # every ghost repaired
    assert heap.allocator.free_blocks == 8
    assert heap.allocator.verify() == []


def test_refcount_fault_is_repaired_on_the_next_audit():
    system = _system(blocks=8)
    heap = system.heap
    plan = FaultPlan("skew", (FaultSpec(
        "socdmmu.refcount", "inflate", at=1, duration=1,
        params={"block": 0, "delta": 3}),))
    install_fault_plan(system, plan, policy=_policy(audit_every=1))

    def body(ctx):
        first = yield from heap.malloc(ctx, 1024)    # fault visit 0: no-op
        second = yield from heap.malloc(ctx, 1024)   # visit 1: inflates
        yield from heap.free(ctx, first)
        yield from heap.free(ctx, second)

    _run_task(system, body)
    assert heap.audit_repairs >= 1
    assert heap.allocator.verify() == []
    assert heap.allocator.free_blocks == 8


# -- checkpoint protocol -------------------------------------------------------------


def _mid_torture_heap():
    system = _system(blocks=16)
    heap = system.heap
    heap.enable_resilience(_policy())

    def body(ctx):
        parent = yield from heap.malloc(ctx, 3 * heap.allocator.block_bytes)
        fork = yield from heap.fork_handle(ctx, parent)
        yield from heap.write_fault(ctx, fork, 1)
        yield from heap.free(ctx, fork)
        yield from heap.fork_handle(ctx, parent, "peer")

    _run_task(system, body)
    return heap


def test_snapshot_restore_is_an_identity():
    heap = _mid_torture_heap()
    envelope = heap.snapshot_state()
    fresh = build_system("RTOS7")
    restored = SoCDMMU.restore_state(envelope, fresh.kernel)
    assert restored.snapshot_state() == envelope
    assert restored.cow_shares == heap.cow_shares
    assert restored.cow_copies == heap.cow_copies
    assert restored.allocator.shared_blocks == heap.allocator.shared_blocks
    assert restored.allocator.verify() == []


def test_v1_payload_still_restores():
    from repro.checkpoint.protocol import open_envelope, snapshot_envelope
    heap = _mid_torture_heap()
    state = open_envelope(heap.snapshot_state(), kind="socdmmu")
    state["payload_version"] = 1
    for key in ("cow", "oom", "health", "fallback", "events"):
        del state[key]
    del state["allocator"]["refcounts"]               # pre-CoW allocator
    restored = SoCDMMU.restore_state(
        snapshot_envelope("socdmmu", state), build_system("RTOS7").kernel)
    assert restored.mode == "hardware"
    assert restored.cow_shares == 0
    assert restored.allocator.verify() == []          # refcounts derived
    assert restored.stats.malloc_calls == heap.stats.malloc_calls


def test_newer_payload_version_is_rejected():
    from repro.checkpoint.protocol import open_envelope, snapshot_envelope
    heap = _mid_torture_heap()
    state = open_envelope(heap.snapshot_state(), kind="socdmmu")
    state["payload_version"] = SoCDMMU.PAYLOAD_VERSION + 1
    with pytest.raises(CheckpointError):
        SoCDMMU.restore_state(snapshot_envelope("socdmmu", state),
                              build_system("RTOS7").kernel)
