"""Property-based invariants for the CoW block allocator.

The mapping RAM is the single authoritative copy; the owner table and
the refcount table are derived state.  Whatever interleaving of
G_alloc / G_share / write-fault / G_dealloc runs — and whatever the
fault backdoors corrupt in between — four invariants must hold:

* ``verify()`` is empty whenever no corruption is outstanding, and
  empty again right after an ``audit()``;
* ``audit()`` is idempotent (a second sweep repairs nothing);
* the refcount table sums to the number of mapping-RAM references;
* ``deallocate_all`` of every owner returns the pool to fully free —
  shared blocks free exactly once, never twice (no double-free, no
  leak).
"""

import random

from hypothesis import given, settings, strategies as st

from repro.errors import AllocationError
from repro.socdmmu.allocator import BlockAllocator

ROOT_SEED = 42

OWNERS = ("a", "b", "c", "d")

seeds = st.integers(0, 2**16)
pools = st.integers(4, 24)


def _rng(seed: int) -> random.Random:
    return random.Random(f"{ROOT_SEED}|{seed}")


def _total_references(allocator: BlockAllocator) -> int:
    return sum(len(allocator._mappings.get(owner, {})) for owner in OWNERS)


def _refcount_sum(allocator: BlockAllocator) -> int:
    return sum(allocator.refcount_of(block)
               for block in range(allocator.num_blocks))


def _torture(allocator: BlockAllocator, rng: random.Random,
             ops: int) -> None:
    """A random, always-legal op stream over the CoW command set."""
    for _ in range(ops):
        owner = rng.choice(OWNERS)
        mapping = allocator._mappings.get(owner, {})
        roll = rng.random()
        if roll < 0.4 or not mapping:
            blocks = rng.randint(1, 2)
            try:
                allocator.allocate(owner, blocks)
            except AllocationError:
                pass                        # pool full: legal refusal
        elif roll < 0.6:
            virtual = rng.choice(sorted(mapping))
            allocator.share(owner, virtual, rng.choice(OWNERS))
        elif roll < 0.8:
            virtual = rng.choice(sorted(mapping))
            try:
                allocator.write_fault(owner, virtual)
            except AllocationError:
                pass                        # no free block for the copy
        else:
            allocator.deallocate(owner, rng.choice(sorted(mapping)))


@given(seed=seeds, num_blocks=pools, ops=st.integers(10, 120))
@settings(max_examples=40, deadline=None)
def test_torture_keeps_derived_tables_consistent(seed, num_blocks, ops):
    allocator = BlockAllocator(num_blocks, 1024)
    _torture(allocator, _rng(seed), ops)
    assert allocator.verify() == []
    assert allocator.audit() == 0
    assert _refcount_sum(allocator) == _total_references(allocator)
    used = sum(1 for block in range(num_blocks)
               if allocator.refcount_of(block) > 0)
    assert used == allocator.used_blocks


@given(seed=seeds, num_blocks=pools, corruptions=st.integers(1, 8))
@settings(max_examples=40, deadline=None)
def test_audit_repairs_any_corruption_and_is_idempotent(
        seed, num_blocks, corruptions):
    rng = _rng(seed)
    allocator = BlockAllocator(num_blocks, 1024)
    _torture(allocator, rng, 60)
    reference = allocator.snapshot_payload()
    for _ in range(corruptions):
        block = rng.randrange(num_blocks)
        if rng.random() < 0.5:
            allocator.corrupt(block, rng.choice((None, "<ghost>", "a")))
        else:
            allocator.corrupt_refcount(block, rng.randint(0, 5))
    allocator.audit()
    assert allocator.verify() == []
    assert allocator.audit() == 0
    # The repaired tables match the never-corrupted reference exactly:
    # corruption of derived state is always fully reversible.
    assert allocator.snapshot_payload() == reference


@given(seed=seeds, num_blocks=pools)
@settings(max_examples=40, deadline=None)
def test_deallocate_all_returns_the_pool_to_fully_free(seed, num_blocks):
    allocator = BlockAllocator(num_blocks, 1024)
    _torture(allocator, _rng(seed), 80)
    dropped = sum(allocator.deallocate_all(owner) for owner in OWNERS)
    assert dropped == _refcount_sum_zero_check(allocator, dropped)
    assert allocator.free_blocks == num_blocks
    assert allocator.shared_blocks == 0
    assert _refcount_sum(allocator) == 0
    assert allocator.verify() == []


def _refcount_sum_zero_check(allocator: BlockAllocator,
                             dropped: int) -> int:
    """Every reference was dropped exactly once (no double-free)."""
    assert all(allocator.owner_of(block) is None
               for block in range(allocator.num_blocks))
    return dropped


@given(seed=seeds, num_blocks=pools, sharers=st.integers(1, 3))
@settings(max_examples=40, deadline=None)
def test_share_write_fault_free_round_trip(seed, num_blocks, sharers):
    rng = _rng(seed)
    allocator = BlockAllocator(num_blocks, 1024)
    virtual = allocator.allocate("a", 1)[0]
    physical = allocator.translate("a", virtual)
    peers = [(peer, allocator.share("a", virtual, peer))
             for peer in rng.sample(("b", "c", "d"), sharers)]
    assert allocator.refcount_of(physical) == 1 + sharers
    for peer, peer_virtual in peers:
        if allocator.free_blocks > 0:
            allocator.write_fault(peer, peer_virtual)
        allocator.deallocate(peer, peer_virtual)
    allocator.deallocate("a", virtual)
    assert allocator.free_blocks == num_blocks
    assert allocator.verify() == []


@given(seed=seeds, num_blocks=pools, ops=st.integers(10, 100))
@settings(max_examples=40, deadline=None)
def test_snapshot_payload_round_trips_any_state(seed, num_blocks, ops):
    allocator = BlockAllocator(num_blocks, 1024)
    _torture(allocator, _rng(seed), ops)
    payload = allocator.snapshot_payload()
    restored = BlockAllocator.from_payload(payload)
    assert restored.snapshot_payload() == payload
    assert restored.verify() == []
