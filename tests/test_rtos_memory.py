"""Tests for the software heap (free list, costs, fragmentation)."""

import pytest

from repro import calibration
from repro.errors import AllocationError
from repro.rtos.memory import SoftwareHeap


def _run_heap_task(kernel, heap, body):
    kernel.attach_heap_service(heap)
    result = {}

    def task(ctx):
        result["value"] = yield from body(ctx)

    kernel.create_task(task, "heap-task", 1, "PE1")
    kernel.run()
    return result.get("value")


def test_malloc_free_round_trip(kernel):
    heap = SoftwareHeap(kernel, size_bytes=1 << 20)

    def body(ctx):
        address = yield from ctx.malloc(1024)
        assert heap.in_use_bytes > 0
        yield from ctx.free(address)
        return address

    address = _run_heap_task(kernel, heap, body)
    assert address is not None
    assert heap.in_use_bytes == 0
    assert heap.free_bytes == 1 << 20
    assert heap.stats.malloc_calls == 1
    assert heap.stats.free_calls == 1
    assert heap.stats.mm_cycles > 0


def test_distinct_blocks_do_not_overlap(kernel):
    heap = SoftwareHeap(kernel, size_bytes=1 << 20)

    def body(ctx):
        a = yield from ctx.malloc(4096)
        b = yield from ctx.malloc(4096)
        return (a, b)

    a, b = _run_heap_task(kernel, heap, body)
    assert abs(a - b) >= 4096


def test_free_coalesces_adjacent_blocks(kernel):
    heap = SoftwareHeap(kernel, size_bytes=1 << 20)

    def body(ctx):
        blocks = []
        for _ in range(4):
            blocks.append((yield from ctx.malloc(1000)))
        for address in blocks:
            yield from ctx.free(address)
        return None

    _run_heap_task(kernel, heap, body)
    # Everything freed in order coalesces back to one region.
    assert len(heap._free) == 1
    assert heap.fragmentation == 0.0


def test_fragmentation_metric_rises_with_holes(kernel):
    heap = SoftwareHeap(kernel, size_bytes=1 << 20)

    def body(ctx):
        blocks = []
        for _ in range(6):
            blocks.append((yield from ctx.malloc(1000)))
        # Free every other block: leaves holes.
        for address in blocks[::2]:
            yield from ctx.free(address)
        return None

    _run_heap_task(kernel, heap, body)
    assert heap.fragmentation > 0.0


def test_exhaustion_raises(kernel):
    heap = SoftwareHeap(kernel, size_bytes=4096)

    def body(ctx):
        yield from ctx.malloc(10_000)

    with pytest.raises(Exception):
        _run_heap_task(kernel, heap, body)
    assert heap.stats.failed_allocations == 1


def test_double_free_rejected(kernel):
    heap = SoftwareHeap(kernel, size_bytes=1 << 20)

    def body(ctx):
        address = yield from ctx.malloc(128)
        yield from ctx.free(address)
        yield from ctx.free(address)

    with pytest.raises(Exception):
        _run_heap_task(kernel, heap, body)


def test_malloc_cost_includes_walk_and_size(kernel):
    heap = SoftwareHeap(kernel, size_bytes=1 << 20)

    def body(ctx):
        yield from ctx.malloc(64 * 1024)
        return None

    _run_heap_task(kernel, heap, body)
    expected_min = (calibration.SW_MALLOC_BASE_CYCLES
                    + calibration.SW_MALLOC_WALK_CYCLES
                    + 64 * calibration.SW_MALLOC_SIZE_CYCLES_PER_KB)
    assert heap.stats.mm_cycles >= expected_min


def test_zero_size_malloc_rejected(kernel):
    heap = SoftwareHeap(kernel, size_bytes=1 << 20)

    def body(ctx):
        yield from ctx.malloc(0)

    with pytest.raises(Exception):
        _run_heap_task(kernel, heap, body)


def test_bad_heap_size():
    from repro.sim.engine import Engine
    from repro.mpsoc.soc import MPSoC
    from repro.rtos.kernel import Kernel
    kernel = Kernel(MPSoC.base_system())
    with pytest.raises(AllocationError):
        SoftwareHeap(kernel, size_bytes=0)
