"""Tests for the exporters and the experiments CLI observability flags."""

import json

import pytest

from repro import obs as obs_module
from repro.experiments.__main__ import main as experiments_main
from repro.framework.builder import build_system
from repro.obs import (
    Observability,
    chrome_trace_document,
    metrics_to_jsonl,
    spans_to_jsonl,
    summary_table,
    write_chrome_trace,
)


def _instrumented_system():
    system = build_system("RTOS2")
    system.soc.obs.enable()
    kernel = system.kernel

    def body(ctx):
        yield from ctx.request("DSP")
        yield from ctx.use_peripheral("DSP", 50)
        yield from ctx.release_resource("DSP")

    kernel.create_task(body, "p1", 1, "PE1")
    kernel.run()
    return system


# -- Chrome / Perfetto trace ---------------------------------------------------

def test_chrome_trace_document_schema():
    system = _instrumented_system()
    doc = chrome_trace_document(system.soc.obs)
    assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
    events = doc["traceEvents"]
    metas = [e for e in events if e["ph"] == "M"]
    completes = [e for e in events if e["ph"] == "X"]
    assert metas and completes
    process_names = [e for e in metas if e["name"] == "process_name"]
    assert process_names[0]["args"]["name"] == "RTOS2"
    thread_names = {e["args"]["name"] for e in metas
                    if e["name"] == "thread_name"}
    assert "p1" in thread_names
    for event in completes:
        assert event["dur"] >= 0
        assert isinstance(event["pid"], int)
        assert isinstance(event["tid"], int)
    # Round-trips through JSON.
    json.loads(json.dumps(doc))


def test_open_spans_exported_as_unfinished():
    obs = Observability(enabled=True, label="sys")
    obs.begin("t", "stuck")
    events = chrome_trace_document(obs)["traceEvents"]
    stuck = [e for e in events if e["ph"] == "X"][0]
    assert stuck["args"]["unfinished"] is True


def test_write_chrome_trace_merges_systems(tmp_path):
    a = Observability(enabled=True, label="sysA")
    b = Observability(enabled=True, label="sysB")
    span = a.begin("t", "x")
    a.end(span)
    path = tmp_path / "trace.json"
    write_chrome_trace(str(path), [a, b])
    doc = json.loads(path.read_text())
    pids = {e["pid"] for e in doc["traceEvents"]}
    assert pids == {1, 2}


# -- JSONL + summary -----------------------------------------------------------

def test_spans_jsonl_round_trips():
    system = _instrumented_system()
    lines = system.soc.obs.spans_jsonl().splitlines()
    assert lines
    payloads = [json.loads(line) for line in lines]
    assert all({"actor", "name", "begin", "end", "depth", "attrs"}
               <= set(p) for p in payloads)
    begins = [p["begin"] for p in payloads]
    assert begins == sorted(begins)


def test_metrics_jsonl_covers_every_metric():
    system = _instrumented_system()
    registry = system.soc.obs.metrics
    payloads = [json.loads(line)
                for line in metrics_to_jsonl(registry).splitlines()]
    assert {p["name"] for p in payloads} == set(registry.names())
    kinds = {p["kind"] for p in payloads}
    assert kinds == {"counter", "gauge", "histogram"}


def test_summary_table_renders_all_sections():
    system = _instrumented_system()
    text = summary_table(system.soc.obs, title="RTOS2")
    assert text.splitlines()[0] == "RTOS2"
    assert "counter" in text and "histogram" in text
    assert "bus.transactions" in text
    assert "(no metrics" not in text


def test_summary_table_empty_registry():
    assert "(no metrics registered)" in summary_table(
        Observability(enabled=True))


# -- the CLI flags -------------------------------------------------------------

@pytest.fixture(autouse=True)
def _reset_capture_mode():
    yield
    obs_module.set_default_enabled(False)
    obs_module.clear_live_systems()


def test_cli_metrics_flag_prints_summaries(capsys):
    assert experiments_main(["table5", "--metrics"]) == 0
    out = capsys.readouterr().out
    assert "bus.transactions" in out
    assert "ddu.invocations" in out
    assert "kernel.context_switches" in out


def test_cli_trace_out_writes_valid_json(tmp_path, capsys):
    path = tmp_path / "t.json"
    assert experiments_main(["table5", "--trace-out", str(path)]) == 0
    doc = json.loads(path.read_text())
    assert doc["traceEvents"]
    names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
    assert "request" in names
    assert f"wrote {path}" in capsys.readouterr().out


def test_cli_without_flags_stays_uninstrumented(capsys):
    assert experiments_main(["fig7"]) == 0
    assert not obs_module.default_enabled()
    assert obs_module.live_systems() == ()
