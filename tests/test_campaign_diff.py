"""Manifest diffing and the regression gate."""

import pytest

from repro.campaign import diff_manifests
from repro.errors import ConfigurationError


def _manifest(scenarios, campaign="c", spec_hash="h"):
    return {"campaign": campaign, "spec_hash": spec_hash,
            "scenarios": scenarios}


def _entry(ok=True, steps=3, cycles=100.0, verdict=None):
    return {"ok": ok, "verdict": verdict or ("pass" if ok else "fail"),
            "steps": steps, "cycles": cycles, "duration": 0.0}


def test_identical_manifests_have_no_regressions():
    manifest = _manifest({"a/00000": _entry(), "a/00001": _entry()})
    diff = diff_manifests(manifest, manifest)
    assert not diff.has_regressions
    assert "no regressions" in diff.render()


def test_new_failure_gates():
    diff = diff_manifests(
        _manifest({"a/00000": _entry(ok=True)}),
        _manifest({"a/00000": _entry(ok=False, verdict="timeout")}))
    assert diff.new_failures == ("a/00000",)
    assert diff.has_regressions
    assert "NEW FAILURE" in diff.render()


def test_fixed_scenario_reported_but_not_gating():
    diff = diff_manifests(
        _manifest({"a/00000": _entry(ok=False)}),
        _manifest({"a/00000": _entry(ok=True)}))
    assert diff.fixed == ("a/00000",)
    assert not diff.has_regressions


def test_step_growth_gates_but_shrink_does_not():
    grew = diff_manifests(_manifest({"a/00000": _entry(steps=3)}),
                          _manifest({"a/00000": _entry(steps=5)}))
    assert grew.step_regressions[0].steps == 5
    assert grew.has_regressions
    shrank = diff_manifests(_manifest({"a/00000": _entry(steps=5)}),
                            _manifest({"a/00000": _entry(steps=3)}))
    assert not shrank.has_regressions


@pytest.mark.parametrize("cycles", [150.0, 50.0])
def test_cycle_drift_flagged_in_both_directions(cycles):
    diff = diff_manifests(
        _manifest({"a/00000": _entry(cycles=100.0)}),
        _manifest({"a/00000": _entry(cycles=cycles)}),
        cycle_drift_pct=10.0)
    assert len(diff.cycle_drifts) == 1
    assert diff.has_regressions
    assert "CYCLE DRIFT" in diff.render()


def test_drift_within_band_is_quiet():
    diff = diff_manifests(
        _manifest({"a/00000": _entry(cycles=100.0)}),
        _manifest({"a/00000": _entry(cycles=105.0)}),
        cycle_drift_pct=10.0)
    assert not diff.cycle_drifts


def test_failing_scenarios_do_not_contribute_drift():
    diff = diff_manifests(
        _manifest({"a/00000": _entry(ok=False, cycles=100.0)}),
        _manifest({"a/00000": _entry(ok=False, cycles=900.0)}))
    assert not diff.has_regressions


def test_added_and_removed_are_reported():
    diff = diff_manifests(
        _manifest({"a/00000": _entry(), "old/00000": _entry()}),
        _manifest({"a/00000": _entry(), "new/00000": _entry()}))
    assert diff.added == ("new/00000",)
    assert diff.removed == ("old/00000",)
    assert not diff.has_regressions


def test_spec_hash_mismatch_is_surfaced():
    diff = diff_manifests(
        _manifest({"a/00000": _entry()}, spec_hash="x"),
        _manifest({"a/00000": _entry()}, spec_hash="y"))
    assert not diff.same_spec
    assert "different spec hashes" in diff.render()


def test_nonpositive_band_rejected():
    with pytest.raises(ConfigurationError, match="positive"):
        diff_manifests(_manifest({}), _manifest({}), cycle_drift_pct=0)
