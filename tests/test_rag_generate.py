"""Tests for the RAG state generators."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.rag.generate import (
    chain_state,
    cycle_state,
    deadlock_free_state,
    empty_state,
    random_state,
    worst_case_state,
)


def test_empty_state_has_no_edges():
    state = empty_state(3, 4)
    assert state.is_empty()
    assert state.num_resources == 3
    assert state.num_processes == 4


def test_cycle_state_structure():
    state = cycle_state(4)
    assert state.has_cycle()
    assert state.edge_count == 8  # 4 grants + 4 requests
    for i, process in enumerate(state.processes):
        assert state.holder_of(state.resources[i]) == process


def test_cycle_state_minimum_length():
    with pytest.raises(ConfigurationError):
        cycle_state(1)


def test_chain_state_is_reducible():
    state = chain_state(5)
    assert not state.has_cycle()
    assert state.edge_count == 9  # 5 grants + 4 requests


def test_worst_case_state_fits_rectangle():
    state = worst_case_state(3, 6)
    assert not state.has_cycle()
    # chain limited by min(m, n) = 3: 3 grants + 2 requests
    assert state.edge_count == 5


def test_random_state_is_reproducible_with_seed():
    a = random_state(5, 5, rng=random.Random(7))
    b = random_state(5, 5, rng=random.Random(7))
    assert a == b


def test_random_state_respects_protocol():
    rng = random.Random(3)
    for _ in range(50):
        state = random_state(6, 6, rng=rng)
        # Every holder is a known process; no process requests a
        # resource it holds (the RAG constructor enforces this, so
        # building the state at all is the assertion).
        for q in state.resources:
            holder = state.holder_of(q)
            if holder is not None:
                assert holder in state.processes
                assert q not in state.requests_of(holder)


def test_deadlock_free_state_never_cycles():
    rng = random.Random(42)
    for _ in range(100):
        assert not deadlock_free_state(6, 6, rng=rng).has_cycle()


def test_dimension_validation():
    with pytest.raises(ConfigurationError):
        empty_state(0, 3)
    with pytest.raises(ConfigurationError):
        chain_state(1)
