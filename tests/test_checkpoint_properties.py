"""Property tests: serialization round-trips preserve ``state_hash``.

The invariants (root-42 seeds, hypothesis-driven dimensions):

* ``rag.serialize`` snapshot/restore over random multi-unit states is
  lossless — the restored system's checkpoint ``state_hash`` equals the
  original's;
* BitMatrix <-> StateMatrix conversions preserve the checkpoint
  ``state_hash`` (the two backends hash identically by construction);
* random RAG states round-trip through the checkpoint envelope;
* the checkpoint envelope itself is stable: snapshotting twice yields
  byte-identical canonical JSON.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checkpoint.protocol import canonical_json
from repro.rag import serialize
from repro.rag.bitmatrix import BitMatrix
from repro.rag.generate import (
    random_multiunit_state,
    random_state,
)
from repro.rag.graph import RAG
from repro.rag.matrix import StateMatrix
from repro.rag.multiunit import MultiUnitSystem

ROOT_SEED = 42

dims = st.tuples(st.integers(2, 7), st.integers(2, 7))
seeds = st.integers(0, 2**16)


def _rng(seed):
    return random.Random(f"{ROOT_SEED}|{seed}")


# -- rag.serialize over random multiunit states --------------------------------

@settings(max_examples=40, deadline=None)
@given(dims=dims, seed=seeds, max_units=st.integers(1, 4))
def test_serialize_multiunit_roundtrip_preserves_hash(dims, seed, max_units):
    m, n = dims
    system = random_multiunit_state(m, n, max_units=max_units,
                                    rng=_rng(seed))
    restored = serialize.restore(serialize.snapshot(system))
    assert isinstance(restored, MultiUnitSystem)
    assert restored.snapshot_state()["state_hash"] == \
        system.snapshot_state()["state_hash"]


@settings(max_examples=40, deadline=None)
@given(dims=dims, seed=seeds)
def test_serialize_rag_roundtrip_preserves_hash(dims, seed):
    m, n = dims
    rag = random_state(m, n, rng=_rng(seed))
    restored = serialize.restore(serialize.snapshot(rag))
    assert isinstance(restored, RAG)
    assert restored.snapshot_state()["state_hash"] == \
        rag.snapshot_state()["state_hash"]


@settings(max_examples=40, deadline=None)
@given(dims=dims, seed=seeds)
def test_serialize_json_text_roundtrip_preserves_hash(dims, seed):
    m, n = dims
    rag = random_state(m, n, rng=_rng(seed))
    restored = serialize.rag_from_json(serialize.rag_to_json(rag))
    assert restored.snapshot_state()["state_hash"] == \
        rag.snapshot_state()["state_hash"]


# -- BitMatrix <-> StateMatrix conversions -------------------------------------

@settings(max_examples=60, deadline=None)
@given(dims=dims, seed=seeds)
def test_backend_conversions_preserve_hash(dims, seed):
    m, n = dims
    rag = random_state(m, n, rng=_rng(seed))
    reference = StateMatrix.from_rag(rag)
    fast = BitMatrix.from_matrix(reference)
    back = fast.to_state_matrix()
    hashes = {matrix.snapshot_state()["state_hash"]
              for matrix in (reference, fast, back,
                             BitMatrix.from_rag(rag),
                             StateMatrix.from_matrix(fast))}
    assert len(hashes) == 1


@settings(max_examples=40, deadline=None)
@given(dims=dims, seed=seeds)
def test_cross_backend_envelope_restore_preserves_hash(dims, seed):
    m, n = dims
    rag = random_state(m, n, rng=_rng(seed))
    fast = BitMatrix.from_rag(rag)
    # A bitmatrix envelope restored as a StateMatrix (and vice versa)
    # re-snapshots to the same state_hash: kind is outside the payload.
    reference = StateMatrix.restore_state(fast.snapshot_state())
    again = BitMatrix.restore_state(reference.snapshot_state())
    assert reference.snapshot_state()["state_hash"] == \
        fast.snapshot_state()["state_hash"]
    assert again.snapshot_state()["state_hash"] == \
        fast.snapshot_state()["state_hash"]


@settings(max_examples=40, deadline=None)
@given(dims=dims, seed=seeds)
def test_serialize_matrix_text_rows_roundtrip(dims, seed):
    m, n = dims
    rag = random_state(m, n, rng=_rng(seed))
    matrix = StateMatrix.from_rag(rag)
    restored = serialize.restore(serialize.snapshot(matrix))
    assert restored.snapshot_state()["state_hash"] == \
        matrix.snapshot_state()["state_hash"]


# -- envelope stability --------------------------------------------------------

@settings(max_examples=30, deadline=None)
@given(dims=dims, seed=seeds)
def test_snapshot_is_deterministic_bytes(dims, seed):
    m, n = dims
    system = random_multiunit_state(m, n, max_units=3, rng=_rng(seed))
    first = system.snapshot_state()
    second = system.snapshot_state()
    assert canonical_json(first) == canonical_json(second)
    clone = MultiUnitSystem.restore_state(first)
    assert canonical_json(clone.snapshot_state()) == canonical_json(first)
