"""Tests for the SoC Lock Cache (IPCP, costs, generator)."""

import pytest

from repro import calibration
from repro.errors import ConfigurationError, RTOSError
from repro.framework.builder import build_system
from repro.soclc.generator import estimate_gates, generate_soclc
from repro.soclc.lockcache import SoCLC


@pytest.fixture
def soclc_system():
    system = build_system("RTOS6")
    system.lock_manager.register_lock("L", kind="long", ceiling=1)
    return system


def test_uncontended_acquire_is_cheaper_than_software(soclc_system):
    kernel = soclc_system.kernel
    times = {}

    def body(ctx):
        start = ctx.now
        yield from ctx.lock("L")
        times["latency"] = ctx.now - start
        yield from ctx.unlock("L")

    kernel.create_task(body, "t", 1, "PE1")
    kernel.run()
    assert times["latency"] == calibration.SOCLC_LOCK_LATENCY_CYCLES
    assert (times["latency"]
            < calibration.SW_LOCK_LATENCY_CYCLES)


def test_ipcp_raises_priority_at_acquisition(soclc_system):
    kernel = soclc_system.kernel
    observed = {}

    def body(ctx):
        yield from ctx.lock("L")
        observed["in_cs"] = ctx.task.priority
        yield from ctx.unlock("L")
        observed["after"] = ctx.task.priority

    kernel.create_task(body, "t", 4, "PE1")
    kernel.run()
    assert observed["in_cs"] == 1     # the ceiling, immediately
    assert observed["after"] == 4


def test_ipcp_prevents_mid_cs_preemption(soclc_system):
    kernel = soclc_system.kernel
    order = []

    def low(ctx):
        yield from ctx.lock("L")
        yield from ctx.compute(2000)
        order.append(("low-cs-done", ctx.now))
        yield from ctx.unlock("L")

    def medium(ctx):
        yield from ctx.compute(600)
        order.append(("medium-ran", ctx.now))

    kernel.create_task(low, "low", 3, "PE1")
    kernel.create_task(medium, "medium", 2, "PE1", start_time=500)
    kernel.run()
    # Medium arrived mid-CS but could not preempt: the CS completed
    # first (its end time precedes medium's completion).
    assert order[0][0] == "low-cs-done"


def test_contended_handoff_priority_order(soclc_system):
    kernel = soclc_system.kernel
    manager = soclc_system.lock_manager
    order = []

    def holder(ctx):
        yield from ctx.lock("L")
        yield from ctx.compute(5000)
        yield from ctx.unlock("L")

    def make_waiter(name):
        def body(ctx):
            yield from ctx.compute(100)
            yield from ctx.lock("L")
            order.append(name)
            yield from ctx.unlock("L")
        return body

    kernel.create_task(holder, "holder", 4, "PE1")
    kernel.create_task(make_waiter("low"), "low", 3, "PE2")
    kernel.create_task(make_waiter("high"), "high", 2, "PE3")
    kernel.run()
    assert order == ["high", "low"]
    assert manager.interrupt_handoffs == 2
    assert manager.stats.contended_acquisitions == 2


def test_unregistered_lock_is_error(soclc_system):
    kernel = soclc_system.kernel

    def body(ctx):
        yield from ctx.lock("unknown")

    kernel.create_task(body, "t", 1, "PE1")
    with pytest.raises(Exception):
        kernel.run()


def test_lock_cell_capacity_enforced():
    system = build_system("RTOS6")
    manager = system.lock_manager
    for i in range(manager.num_long_locks):
        manager.register_lock(f"L{i}", kind="long")
    with pytest.raises(ConfigurationError):
        manager.register_lock("overflow", kind="long")
    # Short cells are a separate pool.
    manager.register_lock("S0", kind="short")


def test_release_by_non_holder_rejected(soclc_system):
    kernel = soclc_system.kernel

    def body(ctx):
        yield from ctx.unlock("L")

    kernel.create_task(body, "t", 1, "PE1")
    with pytest.raises(Exception):
        kernel.run()


def test_generator_area_anchor():
    # The paper quotes ~10,000 NAND2 gates for the SoCLC with PI.
    gates = estimate_gates(64, 16, priority_inheritance=True)
    assert 8_000 < gates < 12_000
    without_pi = estimate_gates(64, 16, priority_inheritance=False)
    assert without_pi < gates


def test_generator_emits_verilog():
    config = generate_soclc(8, 8)
    assert config.total_locks == 16
    assert "module soclc" in config.verilog
    assert "N_SHORT = 8" in config.verilog


def test_generator_validation():
    from repro.errors import GenerationError
    with pytest.raises(GenerationError):
        generate_soclc(0, 0)
    with pytest.raises(GenerationError):
        generate_soclc(-1, 2)


def test_soclc_config_validation():
    system = build_system("RTOS5")
    with pytest.raises(ConfigurationError):
        SoCLC(system.kernel, num_short_locks=0, num_long_locks=0)
