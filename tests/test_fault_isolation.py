"""Tests for task fault isolation and the latency-profile experiment."""

import pytest

from repro.errors import SimulationError
from repro.experiments import latency_profile
from repro.framework.builder import build_system
from repro.rtos.task import TaskState


def test_default_propagates_task_failure():
    system = build_system("RTOS5")
    kernel = system.kernel

    def bad(ctx):
        yield from ctx.compute(100)
        raise ValueError("application bug")

    kernel.create_task(bad, "bad", 1, "PE1")
    with pytest.raises(SimulationError):
        kernel.run()


def test_isolated_failure_keeps_system_running():
    system = build_system("RTOS5")
    kernel = system.kernel
    kernel.isolate_task_failures = True
    survived = []

    def bad(ctx):
        yield from ctx.compute(100)
        raise ValueError("application bug")

    def good(ctx):
        yield from ctx.compute(2_000)
        survived.append(ctx.now)

    bad_task = kernel.create_task(bad, "bad", 1, "PE1")
    kernel.create_task(good, "good", 2, "PE1")
    kernel.run()
    assert bad_task.state is TaskState.FAILED
    assert survived                      # the other task completed
    assert kernel.task_failures and kernel.task_failures[0][0] == "bad"
    assert kernel.trace.count("task_failed") == 1


def test_isolated_failure_releases_held_resources():
    system = build_system("RTOS4")
    kernel = system.kernel
    kernel.isolate_task_failures = True
    acquired = []

    def bad(ctx):
        yield from ctx.request("IDCT")
        raise RuntimeError("crash while holding the IDCT")

    def heir(ctx):
        yield from ctx.sleep(1_000)
        outcome = yield from ctx.request("IDCT")
        if not outcome.granted:
            yield from ctx.wait_grant("IDCT")
        acquired.append(ctx.now)
        yield from ctx.release_resource("IDCT")

    kernel.create_task(bad, "p1", 1, "PE1")
    kernel.create_task(heir, "p2", 2, "PE2")
    kernel.run()
    # The crashed task's IDCT was recovered and re-granted.
    assert acquired
    assert system.resource_service.holder_of("IDCT") is None


def test_failed_task_not_counted_finished():
    system = build_system("RTOS5")
    kernel = system.kernel
    kernel.isolate_task_failures = True

    def bad(ctx):
        yield from ctx.compute(10)
        raise RuntimeError("boom")

    kernel.create_task(bad, "bad", 1, "PE1")
    kernel.run()
    assert not kernel.finished("bad")


# -- latency profile ----------------------------------------------------------

def test_latency_profile_shapes():
    result = latency_profile.run(samples=120)
    hw, sw = result.rows
    assert hw.implementation.startswith("DDU")
    assert hw.maximum <= hw.bound            # the O(min) guarantee
    assert sw.minimum > hw.maximum           # even sw best loses
    assert sw.maximum > sw.median            # software has a tail
    assert "latency profile" in result.render().lower()


def test_latency_profile_deterministic():
    a = latency_profile.run(samples=50, seed=7)
    b = latency_profile.run(samples=50, seed=7)
    assert a == b
