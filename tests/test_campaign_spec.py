"""Campaign specs: seeding, grid expansion, JSON round-trip, hashing."""

import pytest

from repro.campaign import (
    CampaignSpec,
    Scenario,
    ScenarioSpec,
    builtin_campaign,
    derive_seed,
)
from repro.errors import ConfigurationError


def _spec(**overrides) -> ScenarioSpec:
    base = dict(name="s", generator="rag.random",
                checker="pdda-vs-oracle", params={}, repeats=1)
    base.update(overrides)
    return ScenarioSpec(**base)


class TestDeriveSeed:
    def test_stable_across_calls(self):
        assert derive_seed(42, "a/00001") == derive_seed(42, "a/00001")

    def test_distinct_per_scenario_and_root(self):
        seeds = {derive_seed(root, scenario_id)
                 for root in (0, 1, "zork")
                 for scenario_id in ("a/00000", "a/00001", "b/00000")}
        assert len(seeds) == 9

    def test_int_and_str_roots_with_same_text_agree(self):
        # The manifest stores the root as JSON; 42 and "42" must not
        # silently change every seed on reload.
        assert derive_seed(42, "x/00000") == derive_seed("42", "x/00000")

    def test_fits_in_63_bits(self):
        for scenario_id in ("a/00000", "b/12345"):
            assert 0 <= derive_seed(7, scenario_id) < 2 ** 63


class TestGridExpansion:
    def test_scalars_only_is_one_point(self):
        spec = _spec(params={"m": 5, "n": 3})
        assert list(spec.grid_points()) == [{"m": 5, "n": 3}]

    def test_list_values_fan_out_as_axes(self):
        spec = _spec(params={"m": [3, 5], "n": [2, 4], "frac": 0.5})
        points = list(spec.grid_points())
        assert len(points) == 4
        assert all(p["frac"] == 0.5 for p in points)
        assert {(p["m"], p["n"]) for p in points} == \
            {(3, 2), (3, 4), (5, 2), (5, 4)}

    def test_repeats_multiply_the_count(self):
        assert _spec(params={"m": [3, 5]}, repeats=4).count() == 8

    def test_expand_ids_are_per_spec_and_zero_padded(self):
        campaign = CampaignSpec(name="c", scenarios=(
            _spec(name="alpha", params={"m": [3, 5]}),
            _spec(name="beta", repeats=2),
        ))
        ids = [s.scenario_id for s in campaign.expand(0)]
        assert ids == ["alpha/00000", "alpha/00001",
                       "beta/00000", "beta/00001"]

    def test_expand_seeds_do_not_depend_on_sibling_specs(self):
        solo = CampaignSpec(name="c", scenarios=(_spec(name="alpha"),))
        both = CampaignSpec(name="c", scenarios=(
            _spec(name="alpha"), _spec(name="beta")))
        assert solo.expand(9)[0].seed == both.expand(9)[0].seed

    def test_scenarios_carry_concrete_params(self):
        campaign = CampaignSpec(name="c", scenarios=(
            _spec(params={"m": [3, 5], "n": 2}),))
        for scenario in campaign.expand(0):
            assert isinstance(scenario, Scenario)
            assert scenario.params["n"] == 2
            assert scenario.params["m"] in (3, 5)


class TestRoundTrip:
    def test_json_round_trip_preserves_expansion(self):
        campaign = builtin_campaign("smoke")
        clone = CampaignSpec.from_json(campaign.to_json())
        assert clone.spec_hash() == campaign.spec_hash()
        original = campaign.expand(42)
        reloaded = clone.expand(42)
        assert [s.to_dict() for s in original] == \
            [s.to_dict() for s in reloaded]

    def test_scenario_dict_round_trip(self):
        scenario = builtin_campaign("smoke").expand(1)[0]
        assert Scenario.from_dict(scenario.to_dict()) == scenario

    def test_spec_hash_changes_with_content(self):
        a = CampaignSpec(name="c", scenarios=(_spec(),))
        b = CampaignSpec(name="c",
                         scenarios=(_spec(params={"m": 9}),))
        assert a.spec_hash() != b.spec_hash()

    def test_tuple_params_serialize_as_lists(self):
        spec = _spec(params={"m": (3, 5)})
        clone = ScenarioSpec.from_dict(spec.to_dict())
        assert clone.params["m"] == [3, 5]
        assert clone.count() == spec.count()

    def test_malformed_json_raises(self):
        with pytest.raises(ConfigurationError, match="not JSON"):
            CampaignSpec.from_json("{nope")


class TestValidation:
    def test_empty_campaign_rejected(self):
        with pytest.raises(ConfigurationError, match="empty"):
            CampaignSpec(name="c").validate()

    def test_duplicate_spec_names_rejected(self):
        campaign = CampaignSpec(name="c",
                                scenarios=(_spec(), _spec()))
        with pytest.raises(ConfigurationError, match="duplicate"):
            campaign.validate()

    @pytest.mark.parametrize("bad_name", ["", "a/b", "a|b"])
    def test_reserved_characters_in_names_rejected(self, bad_name):
        campaign = CampaignSpec(name="c",
                                scenarios=(_spec(name=bad_name),))
        with pytest.raises(ConfigurationError):
            campaign.validate()

    def test_zero_repeats_rejected(self):
        with pytest.raises(ConfigurationError, match="repeats"):
            _spec(repeats=0).validate()


class TestBuiltins:
    @pytest.mark.parametrize("name", ["smoke", "claims", "chaos"])
    def test_builtin_campaigns_validate_and_expand(self, name):
        campaign = builtin_campaign(name)
        campaign.validate()
        scenarios = campaign.expand(0)
        assert len(scenarios) == campaign.count() > 0

    def test_unknown_builtin_raises(self):
        with pytest.raises(ConfigurationError, match="unknown built-in"):
            builtin_campaign("nope")
