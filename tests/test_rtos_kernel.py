"""Tests for the kernel: scheduling, preemption, blocking, stats."""

import pytest

from repro.errors import RTOSError
from repro.framework.builder import build_system
from repro.rtos.task import TaskState


def test_single_task_runs_to_completion(kernel):
    log = []

    def body(ctx):
        yield from ctx.compute(500)
        log.append(ctx.now)

    task = kernel.create_task(body, "t", 1, "PE1")
    kernel.run()
    assert task.state is TaskState.FINISHED
    assert log and log[0] >= 500
    assert task.stats.finish_time is not None
    assert task.stats.context_switches >= 1


def test_start_time_delays_activation(kernel):
    task = kernel.create_task(lambda ctx: ctx.compute(10), "t", 1, "PE1",
                              start_time=1000)
    kernel.run()
    assert task.stats.activation_time == 1000


def test_duplicate_task_name_rejected(kernel):
    kernel.create_task(lambda ctx: ctx.compute(1), "t", 1, "PE1")
    with pytest.raises(RTOSError):
        kernel.create_task(lambda ctx: ctx.compute(1), "t", 1, "PE2")


def test_unknown_pe_rejected(kernel):
    with pytest.raises(RTOSError):
        kernel.create_task(lambda ctx: ctx.compute(1), "t", 1, "PE99")


def test_higher_priority_preempts_at_quantum(kernel):
    order = []

    def low(ctx):
        yield from ctx.compute(3000)
        order.append(("low-done", ctx.now))

    def high(ctx):
        yield from ctx.compute(400)
        order.append(("high-done", ctx.now))

    kernel.create_task(low, "low", 5, "PE1")
    kernel.create_task(high, "high", 1, "PE1", start_time=500)
    kernel.run()
    assert order[0][0] == "high-done"
    # High priority finished long before low despite starting later.
    assert order[0][1] < order[1][1]
    assert kernel.tasks["low"].stats.preemptions >= 1


def test_equal_priority_is_run_to_completion_without_rr(kernel):
    order = []

    def make(name):
        def body(ctx):
            yield from ctx.compute(1000)
            order.append(name)
        return body

    kernel.create_task(make("first"), "first", 3, "PE1")
    kernel.create_task(make("second"), "second", 3, "PE1")
    kernel.run()
    assert order == ["first", "second"]


def test_round_robin_interleaves_equal_priority():
    system = build_system("RTOS5", quantum=100)
    kernel = system.kernel
    kernel.schedulers["PE1"].round_robin = True
    slices = []

    def make(name):
        def body(ctx):
            for _ in range(3):
                yield from ctx.compute(100)
                slices.append(name)
        return body

    kernel.create_task(make("a"), "a", 3, "PE1")
    kernel.create_task(make("b"), "b", 3, "PE1")
    kernel.run()
    # With round-robin both tasks make progress before either finishes.
    assert set(slices[:4]) == {"a", "b"}


def test_tasks_on_different_pes_run_in_parallel(kernel):
    finish = {}

    def make(name):
        def body(ctx):
            yield from ctx.compute(1000)
            finish[name] = ctx.now
        return body

    kernel.create_task(make("a"), "a", 1, "PE1")
    kernel.create_task(make("b"), "b", 1, "PE2")
    kernel.run()
    # Both finish around t=1000 + context switch, not serialized.
    assert abs(finish["a"] - finish["b"]) < 10


def test_sleep_releases_cpu(kernel):
    order = []

    def sleeper(ctx):
        yield from ctx.sleep(1000)
        order.append(("sleeper", ctx.now))

    def worker(ctx):
        yield from ctx.compute(300)
        order.append(("worker", ctx.now))

    kernel.create_task(sleeper, "sleeper", 1, "PE1")
    kernel.create_task(worker, "worker", 2, "PE1")
    kernel.run()
    # The worker ran while the high-priority sleeper slept.
    assert order[0][0] == "worker"
    blocked = kernel.tasks["sleeper"].stats.blocked_cycles
    assert blocked >= 1000


def test_finished_predicate(kernel):
    kernel.create_task(lambda ctx: ctx.compute(10), "a", 1, "PE1")
    kernel.create_task(lambda ctx: ctx.compute(10), "b", 1, "PE2")
    assert not kernel.finished()
    kernel.run()
    assert kernel.finished()
    assert kernel.finished("a")


def test_notifications_delivery(kernel):
    got = []

    def listener(ctx):
        note = yield from ctx.wait_notification()
        got.append((ctx.now, note))

    task = kernel.create_task(listener, "listener", 1, "PE1")
    kernel.engine.schedule(700, kernel.notify_task, task, "ping")
    kernel.run()
    # Delivery wakes the task at t=700; it reads the note after CPU
    # re-acquisition (context switch), so a little later.
    assert got[0][1] == "ping"
    assert 700 <= got[0][0] <= 700 + 2 * kernel.context_switch_cycles


def test_pop_notifications_drains(kernel):
    seen = []

    def listener(ctx):
        yield from ctx.sleep(100)
        seen.extend(ctx.pop_notifications())

    task = kernel.create_task(listener, "listener", 1, "PE1")
    kernel.notify_task(task, "a")
    kernel.notify_task(task, "b")
    kernel.run()
    assert seen == ["a", "b"]
    assert task.notifications == []


def test_trace_records_run_segments(kernel, base_system):
    kernel.create_task(lambda ctx: ctx.compute(100), "t", 1, "PE1")
    kernel.run()
    trace = base_system.soc.trace
    assert trace.count("run_start") >= 1
    assert trace.count("finish") == 1


def test_bad_quantum_rejected(base_system):
    from repro.rtos.kernel import Kernel
    with pytest.raises(RTOSError):
        Kernel(base_system.soc, quantum=0)
