"""System-level stress tests: liveness under sustained random load.

These run whole RTOS/MPSoC systems for thousands of cycles with
randomized resource traffic and assert the end-to-end guarantees:

* under RTOS4 (DAU) every job eventually completes and the system is
  never left deadlocked — avoidance as a *system* property, not just a
  core property;
* under RTOS2 (DDU) + the recovery manager, deadlocks that do form are
  detected and healed repeatedly, and the system keeps completing work
  (the self-healing configuration the paper's components enable);
* the books balance afterwards: no leaked resources, no stuck tasks,
  empty ready queues.
"""

import random

import pytest

from repro.deadlock.recovery import RecoveryManager
from repro.framework.builder import build_system
from repro.rtos.resources import NotificationKind
from repro.rtos.task import TaskState

RESOURCES = ("VI", "IDCT", "DSP", "WI")


def _try_acquire(ctx, targets):
    """Acquire every target or roll everything back; returns success.

    The cooperative protocol: obey any give-up demand by aborting the
    whole multi-resource acquisition — withdraw the pending request,
    release all holdings — and let the caller back off and retry.
    """
    for resource in targets:
        outcome = yield from ctx.request(resource)
        if outcome.granted:
            continue
        if outcome.must_give_up:
            # The core rolled the request back; shed the holdings.
            for held in list(ctx.task.held_resources):
                yield from ctx.release_resource(held)
            return False
        # Pending: wait for the grant, obeying demands that arrive.
        while resource not in ctx.task.held_resources:
            note = yield from ctx.wait_notification()
            if (note.kind is NotificationKind.GIVE_UP
                    and note.resource in ctx.task.held_resources):
                yield from ctx.withdraw_request(resource)
                for held in list(ctx.task.held_resources):
                    yield from ctx.release_resource(held)
                return False
            # Stale grants / irrelevant demands: ignore.
    return True


def _worker(jobs, rng_seed, backoff=400):
    """A task that repeatedly acquires two random resources, works,
    releases — obeying give-up demands like a cooperative application."""

    def body(ctx):
        rng = random.Random(rng_seed)
        completed = 0
        while completed < jobs:
            targets = rng.sample(RESOURCES, 2)
            acquired = yield from _try_acquire(ctx, targets)
            if not acquired:
                yield from ctx.sleep(backoff + rng.randint(0, 200))
                continue
            yield from ctx.compute(rng.randint(200, 800))
            for resource in list(ctx.task.held_resources):
                yield from ctx.release_resource(resource)
            completed += 1
            yield from ctx.sleep(rng.randint(50, 250))
        ctx.task.notifications.clear()

    return body


@pytest.mark.parametrize("seed", [11, 23, 47])
def test_rtos4_liveness_under_random_load(seed):
    system = build_system("RTOS4")
    kernel = system.kernel
    jobs = 6
    for index in range(4):
        kernel.create_task(_worker(jobs, seed + index),
                           f"p{index + 1}", index + 1, f"PE{index + 1}")
    kernel.run()
    assert kernel.finished(), {
        name: task.state for name, task in kernel.tasks.items()}
    core = system.resource_service.core
    assert not core.rag.has_cycle()
    assert all(core.rag.is_available(q) for q in RESOURCES)
    assert kernel.leaks == []
    for scheduler in kernel.schedulers.values():
        assert scheduler.running is None and scheduler.ready == []


def test_rtos2_with_recovery_self_heals():
    """Detection + recovery keeps a deadlock-prone workload flowing."""
    system = build_system("RTOS2")
    kernel = system.kernel
    service = system.resource_service
    priorities = {f"p{i}": i for i in range(1, 5)}
    manager = RecoveryManager(service, priorities)

    def supervisor(ctx):
        while True:
            yield from ctx.kernel.block_on(ctx.task,
                                           service.deadlock_event)
            manager.recover(ctx)
            # Re-arm for the next deadlock.
            service.deadlock_event = ctx.kernel.engine.event(
                name="deadlock.detected")
            service.stats.deadlock_found_at = None

    for index in range(4):
        kernel.create_task(_worker(4, 100 + index),
                           f"p{index + 1}", index + 1, f"PE{index + 1}")
    kernel.create_task(supervisor, "supervisor", 0, "PE1")
    # The supervisor loops forever; run bounded and check the workers.
    kernel.run(until=600_000)
    workers_done = [kernel.tasks[f"p{i}"].state is TaskState.FINISHED
                    for i in range(1, 5)]
    assert all(workers_done), workers_done
    assert not service.rag.has_cycle()
    # At least one recovery actually happened in this workload... or
    # none was needed; either way the system never wedged.
    assert service.stats.invocations > 50
