"""Tests for the system bus timing and arbitration."""

import pytest

from repro.errors import ConfigurationError
from repro.mpsoc.bus import BusTiming, SystemBus
from repro.sim.engine import Engine


def test_transaction_cycles_formula():
    timing = BusTiming()
    assert timing.transaction_cycles(1) == 3
    assert timing.transaction_cycles(8) == 10   # 3 + 7*1
    with pytest.raises(ConfigurationError):
        timing.transaction_cycles(0)


def test_single_word_transaction_takes_three_cycles():
    engine = Engine()
    bus = SystemBus(engine)

    def master():
        yield from bus.read_word("PE1")
        return engine.now

    handle = engine.spawn(master())
    engine.run()
    assert handle.result == 3
    assert bus.total_transactions == 1
    assert bus.busy_cycles == 3


def test_burst_transaction():
    engine = Engine()
    bus = SystemBus(engine)

    def master():
        yield from bus.burst("PE1", words=8)

    engine.spawn(master())
    engine.run()
    assert engine.now == 10


def test_contention_serializes_masters():
    engine = Engine()
    bus = SystemBus(engine)
    finish = {}

    def master(name):
        yield from bus.read_word(name)
        finish[name] = engine.now

    engine.spawn(master("PE1"))
    engine.spawn(master("PE2"))
    engine.run()
    assert sorted(finish.values()) == [3, 6]
    assert bus.contention_cycles == 3


def test_utilization():
    engine = Engine()
    bus = SystemBus(engine)

    def master():
        yield from bus.read_word("PE1")
        yield 7   # idle bus

    engine.spawn(master())
    engine.run()
    assert bus.utilization == pytest.approx(0.3)


def test_custom_timing():
    engine = Engine()
    bus = SystemBus(engine, timing=BusTiming(first_word_cycles=5,
                                             burst_word_cycles=2))

    def master():
        yield from bus.transaction("PE1", words=3)

    engine.spawn(master())
    engine.run()
    assert engine.now == 9   # 5 + 2*2
