"""Tests for peripherals, interrupts, PEs and the MPSoC assembly."""

import pytest

from repro.errors import ConfigurationError, ResourceProtocolError
from repro.mpsoc.interrupt import InterruptController
from repro.mpsoc.peripheral import Peripheral
from repro.mpsoc.soc import MPSoC, SoCConfig
from repro.sim.engine import Engine


# -- interrupt controller ------------------------------------------------------

def test_irq_wakes_waiter_with_payload():
    engine = Engine()
    intc = InterruptController(engine, lines=("irq.VI",))
    results = []

    def waiter():
        payload = yield from intc.wait_irq("irq.VI")
        results.append((engine.now, payload))

    engine.spawn(waiter())
    engine.schedule(9, intc.raise_irq, "irq.VI", "frame")
    engine.run()
    assert results == [(9, "frame")]
    assert intc.raised_counts["irq.VI"] == 1


def test_unknown_line_rejected():
    intc = InterruptController(Engine())
    with pytest.raises(ConfigurationError):
        intc.raise_irq("nope")
    intc.add_line("x")
    with pytest.raises(ConfigurationError):
        intc.add_line("x")


# -- peripheral ----------------------------------------------------------------

def test_peripheral_ownership_enforced():
    engine = Engine()
    peripheral = Peripheral(engine, "IDCT")

    def user():
        yield from peripheral.serve("p1", 100)

    engine.spawn(user())
    with pytest.raises(Exception):
        engine.run()


def test_peripheral_serve_accounts_time():
    engine = Engine()
    peripheral = Peripheral(engine, "IDCT")
    peripheral.assign("p1")

    def user():
        yield from peripheral.serve("p1", 250)

    engine.spawn(user())
    engine.run()
    assert engine.now == 250
    assert peripheral.busy_cycles == 250
    assert peripheral.service_count == 1


def test_peripheral_reassignment_rules():
    peripheral = Peripheral(Engine(), "DSP")
    peripheral.assign("p1")
    with pytest.raises(ResourceProtocolError):
        peripheral.assign("p2")
    with pytest.raises(ResourceProtocolError):
        peripheral.unassign("p2")
    peripheral.unassign("p1")
    peripheral.assign("p2")


def test_peripheral_irq_on_completion():
    engine = Engine()
    intc = InterruptController(engine)
    peripheral = Peripheral(engine, "VI", interrupt_controller=intc,
                            irq_line="irq.VI")
    peripheral.assign("p1")
    fired = []

    def watcher():
        yield from intc.wait_irq("irq.VI")
        fired.append(engine.now)

    def user():
        yield from peripheral.serve("p1", 40, raise_irq_when_done=True)

    engine.spawn(watcher())
    engine.spawn(user())
    engine.run()
    assert fired == [40]


# -- the SoC -------------------------------------------------------------------

def test_base_system_census():
    soc = MPSoC.base_system()
    assert len(soc.pes) == 4
    assert set(soc.peripherals) == {"VI", "IDCT", "DSP", "WI"}
    assert soc.pe("PE3").name == "PE3"
    assert soc.peripheral("WI").name == "WI"
    assert soc.memory.size_bytes == 16 * 1024 * 1024


def test_unknown_lookups():
    soc = MPSoC.base_system()
    with pytest.raises(ConfigurationError):
        soc.pe("PE99")
    with pytest.raises(ConfigurationError):
        soc.peripheral("GPU")


def test_config_validation():
    with pytest.raises(ConfigurationError):
        MPSoC(SoCConfig(num_pes=0))
    with pytest.raises(ConfigurationError):
        MPSoC(SoCConfig(peripherals=("VI", "VI")))


def test_pe_execute_accumulates_busy_cycles():
    soc = MPSoC(SoCConfig(num_pes=1, peripherals=()))
    pe = soc.pes[0]

    def work():
        yield from pe.execute(123)

    soc.engine.spawn(work())
    soc.engine.run()
    assert pe.busy_cycles == 123
    assert soc.now == 123
