"""Tests for span tracing: nesting, lenient teardown, kernel wiring."""

import pytest

from repro.errors import SimulationError
from repro.framework.builder import build_system
from repro.obs import Observability, Span, SpanTracer
from repro.sim.trace import Trace


class _Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


# -- the tracer alone ----------------------------------------------------------

def test_spans_nest_per_actor():
    clock = _Clock()
    tracer = SpanTracer(clock)
    outer = tracer.begin("t1", "acquire")
    clock.now = 5
    inner = tracer.begin("t1", "request")
    other = tracer.begin("t2", "malloc")
    assert (outer.depth, inner.depth, other.depth) == (0, 1, 0)
    clock.now = 9
    tracer.end(inner)
    clock.now = 12
    tracer.end(outer)
    tracer.end(other)
    assert inner.duration == 4
    assert outer.duration == 12
    assert tracer.open_spans() == []
    assert [span.name for span in tracer.completed] == \
        ["request", "acquire", "malloc"]


def test_end_is_lenient_about_open_children_and_reentry():
    clock = _Clock()
    tracer = SpanTracer(clock)
    outer = tracer.begin("t", "outer")
    inner = tracer.begin("t", "inner")
    clock.now = 3
    tracer.end(outer)               # closes the abandoned child first
    assert inner.end == 3 and outer.end == 3
    tracer.end(outer)               # idempotent
    assert len(tracer.completed) == 2


def test_end_of_foreign_span_raises():
    tracer = SpanTracer(_Clock())
    foreign = Span("t", "x", 0.0, 0)
    with pytest.raises(SimulationError):
        tracer.end(foreign)


def test_tracer_mirrors_into_trace():
    clock = _Clock()
    trace = Trace()
    tracer = SpanTracer(clock, trace=trace)
    span = tracer.begin("t", "lock")
    clock.now = 7
    tracer.end(span)
    assert trace.count("span_begin") == 1
    assert trace.count("span_end") == 1
    assert trace.first("span_begin").details["span"] == "lock"


def test_render_tree_indents_by_depth():
    clock = _Clock()
    tracer = SpanTracer(clock)
    outer = tracer.begin("t", "acquire")
    inner = tracer.begin("t", "request")
    clock.now = 4
    tracer.end(inner)
    tracer.end(outer)
    text = tracer.render_tree()
    lines = text.splitlines()
    assert lines[0] == "t:"
    assert lines[1].startswith("  acquire")
    assert lines[2].startswith("    request")


def test_wrap_is_identity_when_disabled():
    obs = Observability(enabled=False)

    def gen():
        yield 1

    raw = gen()
    assert obs.wrap("t", "x", raw) is raw
    assert obs.begin("t", "x") is None
    obs.end(None)                   # guarded no-op


def test_wrap_closes_span_on_exception():
    obs = Observability(enabled=True)

    def boom():
        yield 1
        raise RuntimeError("bang")

    wrapped = obs.wrap("t", "boom", boom())
    next(wrapped)
    with pytest.raises(RuntimeError):
        next(wrapped)
    spans = obs.tracer.spans_of("t", "boom")
    assert len(spans) == 1 and not spans[0].is_open


# -- kernel service calls become spans ----------------------------------------

def test_service_calls_produce_nested_spans():
    system = build_system("RTOS2")
    system.soc.obs.enable()
    kernel = system.kernel

    def body(ctx):
        yield from ctx.request("DSP")
        yield from ctx.use_peripheral("DSP", 100)
        yield from ctx.release_resource("DSP")
        address = yield from ctx.malloc(256)
        yield from ctx.free(address)

    kernel.create_task(body, "p1", 1, "PE1")
    kernel.run()
    tracer = system.soc.obs.tracer
    names = {span.name for span in tracer.spans_of("p1")}
    assert {"request", "use_peripheral", "release",
            "malloc", "free"} <= names
    # The detection run nests inside the request span.
    detects = tracer.spans_of("p1", "detect")
    requests = tracer.spans_of("p1", "request")
    assert detects and requests
    assert all(span.depth > requests[0].depth for span in detects)
    assert tracer.open_spans() == []


def test_deadlocked_task_leaves_open_span():
    system = build_system("RTOS2")
    system.soc.obs.enable()
    kernel = system.kernel

    def stuck(ctx):
        yield from ctx.request("DSP")   # granted
        yield from ctx.request("VI")    # p2 holds VI: pends forever
        yield from ctx.wait_grant("VI")

    def blocker(ctx):
        yield from ctx.request("VI")
        yield from ctx.request("DSP")   # p1 holds DSP: pends forever
        yield from ctx.wait_grant("DSP")

    kernel.create_task(stuck, "p1", 1, "PE1")
    kernel.create_task(blocker, "p2", 2, "PE2")
    kernel.run(until=200_000)
    open_names = {(span.actor, span.name)
                  for span in system.soc.obs.tracer.open_spans()}
    assert ("p1", "wait_grant") in open_names or \
        ("p2", "wait_grant") in open_names


def test_ipc_primitives_produce_spans():
    from repro.rtos.ipc import Mailbox

    system = build_system("RTOS5")
    system.soc.obs.enable()
    kernel = system.kernel
    mailbox = Mailbox(kernel, "m")
    received = {}

    def producer(ctx):
        yield from mailbox.post(ctx, "ping")

    def consumer(ctx):
        received["msg"] = yield from mailbox.pend(ctx)

    kernel.create_task(producer, "prod", 2, "PE1")
    kernel.create_task(consumer, "cons", 1, "PE2")
    kernel.run()
    assert received["msg"] == "ping"
    tracer = system.soc.obs.tracer
    assert tracer.spans_of("prod", "mbox.post")
    assert tracer.spans_of("cons", "mbox.pend")
