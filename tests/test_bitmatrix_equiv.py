"""Differential oracle: BitMatrix === StateMatrix, bit for bit.

The bitmask fast path (:mod:`repro.rag.bitmatrix`) is only admissible
because it is *indistinguishable* from the per-cell reference matrix:
same cells, same terminal on-sets, same reduction iteration/pass
counts, same residuals, same PDDA/DDU verdicts, same protocol errors.
This suite grinds both representations against each other over seeded
random states (seeds derived exactly the way campaign scenarios derive
theirs, seed root 42 — the CI determinism job's root), structured
states, degenerate edge cases and random mutation sequences.
"""

from __future__ import annotations

import random

import pytest

from repro.campaign.spec import derive_seed
from repro.deadlock.ddu import DDU
from repro.deadlock.pdda import pdda_detect, terminal_reduction
from repro.errors import ConfigurationError, ResourceProtocolError
from repro.rag.bitmatrix import (
    BACKENDS,
    FAST_BACKEND,
    NATIVE_BACKEND,
    REFERENCE_BACKEND,
    BitMatrix,
    NativeBitMatrix,
    as_backend_matrix,
    default_backend,
    matrix_class,
    matrix_from_rag,
    resolve_backend,
)
from repro.rag.generate import (
    chain_state,
    cycle_state,
    deadlock_free_state,
    empty_state,
    random_state,
    worst_case_state,
)
from repro.rag.matrix import StateMatrix

SEED_ROOT = 42
SIZES = [(1, 1), (1, 4), (4, 1), (2, 3), (5, 5), (8, 5), (5, 8),
         (16, 16), (33, 7)]


def _seed(tag: str) -> int:
    return derive_seed(SEED_ROOT, tag)


def _random_rags():
    for m, n in SIZES:
        for grant in (0.5, 0.9):
            tag = f"equiv/{m}x{n}/g{grant}"
            yield tag, random_state(
                m, n, grant_fraction=grant, request_fraction=0.4,
                rng=random.Random(_seed(tag)))


def _structured_rags():
    yield "cycle/6", cycle_state(6)
    yield "chain/9", chain_state(9)
    yield "worst/12x7", worst_case_state(12, 7)
    yield "free/10x10", deadlock_free_state(
        10, 10, rng=random.Random(_seed("free/10x10")))
    yield "empty/4x6", empty_state(4, 6)


def _all_rags():
    yield from _random_rags()
    yield from _structured_rags()


def _assert_same_cells(fast: BitMatrix, ref: StateMatrix) -> None:
    assert (fast.m, fast.n) == (ref.m, ref.n)
    for s in range(ref.m):
        for t in range(ref.n):
            assert fast.get(s, t) is ref.get(s, t), (s, t)


@pytest.mark.parametrize("tag,rag", list(_all_rags()),
                         ids=[tag for tag, _ in _all_rags()])
class TestStateAgreement:
    def test_cells_and_counts(self, tag, rag):
        fast = BitMatrix.from_rag(rag)
        ref = StateMatrix.from_rag(rag)
        _assert_same_cells(fast, ref)
        assert fast.edge_count == ref.edge_count
        assert fast.is_empty() == ref.is_empty()
        assert fast == ref and ref == fast
        assert fast.render() == ref.render()

    def test_equation_reductions(self, tag, rag):
        fast = BitMatrix.from_rag(rag)
        ref = StateMatrix.from_rag(rag)
        for s in range(ref.m):
            assert fast.row_bwo(s) == ref.row_bwo(s)
            assert fast.row_terminal(s) == ref.row_terminal(s)
            assert fast.row_connect(s) == ref.row_connect(s)
        for t in range(ref.n):
            assert fast.column_bwo(t) == ref.column_bwo(t)
            assert fast.column_terminal(t) == ref.column_terminal(t)
            assert fast.column_connect(t) == ref.column_connect(t)
        assert fast.terminal_rows() == ref.terminal_rows()
        assert fast.terminal_columns() == ref.terminal_columns()

    def test_terminal_reduction_counts(self, tag, rag):
        fast = terminal_reduction(rag, backend=FAST_BACKEND)
        ref = terminal_reduction(rag, backend=REFERENCE_BACKEND)
        assert isinstance(fast.matrix, BitMatrix)
        assert isinstance(ref.matrix, StateMatrix)
        assert fast.iterations == ref.iterations
        assert fast.passes == ref.passes
        assert fast.passes == fast.iterations + 1
        assert fast.complete == ref.complete
        assert fast.matrix == ref.matrix  # residuals cell-identical

    def test_pdda_verdicts(self, tag, rag):
        fast = pdda_detect(rag, backend=FAST_BACKEND)
        ref = pdda_detect(rag, backend=REFERENCE_BACKEND)
        assert fast.deadlock == ref.deadlock == rag.has_cycle()
        assert fast.iterations == ref.iterations
        assert fast.passes == ref.passes
        assert fast.software_cycles == ref.software_cycles
        assert fast.residual == ref.residual
        assert (sorted(fast.deadlocked_processes())
                == sorted(ref.deadlocked_processes()))
        assert (sorted(fast.deadlocked_resources())
                == sorted(ref.deadlocked_resources()))

    def test_ddu_backends_agree(self, tag, rag):
        results = {}
        for backend in BACKENDS:
            unit = DDU(rag.num_resources, rag.num_processes,
                       backend=backend)
            unit.load(rag)
            results[backend] = unit.detect()
        ref = results[REFERENCE_BACKEND]
        for backend in (FAST_BACKEND, NATIVE_BACKEND):
            got = results[backend]
            assert got.deadlock == ref.deadlock, backend
            assert got.iterations == ref.iterations, backend
            assert got.passes == ref.passes, backend
            assert got.cycles == ref.cycles, backend
            assert got.residual == ref.residual, backend


def test_one_by_one_cases():
    for rows in (["."], ["r"], ["g"]):
        fast = BitMatrix.from_rows(rows)
        ref = StateMatrix.from_rows(rows)
        assert fast == ref
        f = terminal_reduction(fast)
        r = terminal_reduction(ref, backend=REFERENCE_BACKEND)
        assert (f.iterations, f.passes, f.complete) \
            == (r.iterations, r.passes, r.complete)
        # A 1x1 state can never deadlock (no request+grant in one cell).
        assert f.complete


def test_all_grant_matrix():
    rows = ["g . .", ". g .", ". . g"]
    fast = BitMatrix.from_rows(rows)
    ref = StateMatrix.from_rows(rows)
    assert fast.terminal_rows() == ref.terminal_rows() == [0, 1, 2]
    f = terminal_reduction(fast)
    r = terminal_reduction(ref, backend=REFERENCE_BACKEND)
    assert (f.iterations, f.passes) == (r.iterations, r.passes) == (1, 2)
    assert f.complete and r.complete


def test_protocol_error_parity():
    fast = BitMatrix(2, 2)
    ref = StateMatrix(2, 2)
    for matrix in (fast, ref):
        matrix.set_grant(0, 0)
        matrix.set_request(1, 0)
    cases = [
        lambda mx: mx.set_request(0, 0),   # occupied cell
        lambda mx: mx.set_grant(0, 0),     # already GRANT
        lambda mx: mx.set_grant(0, 1),     # single-unit rule
        lambda mx: mx.set_request(1, 0),   # already REQUEST
    ]
    for case in cases:
        with pytest.raises(ResourceProtocolError) as fast_err:
            case(fast)
        with pytest.raises(ResourceProtocolError) as ref_err:
            case(ref)
        assert str(fast_err.value) == str(ref_err.value)


def test_single_unit_error_names_holding_column():
    matrix = StateMatrix(2, 3)
    matrix.set_grant(0, 2)
    with pytest.raises(ResourceProtocolError,
                       match=r"granted to column 2"):
        matrix.set_grant(0, 1)


def test_dimension_errors_match():
    for bad in ((0, 3), (3, 0)):
        with pytest.raises(ResourceProtocolError):
            BitMatrix(*bad)
        with pytest.raises(ResourceProtocolError):
            StateMatrix(*bad)


def test_random_operation_sequence_differential():
    """Apply the same random mutation stream to both; never diverge."""
    rng = random.Random(_seed("ops"))
    m, n = 6, 7
    fast = BitMatrix(m, n)
    ref = StateMatrix(m, n)
    for _ in range(600):
        s = rng.randrange(m)
        t = rng.randrange(n)
        op = rng.choice(("request", "grant", "clear", "clear_row",
                         "clear_column"))
        outcomes = []
        for matrix in (fast, ref):
            try:
                if op == "request":
                    matrix.set_request(s, t)
                elif op == "grant":
                    matrix.set_grant(s, t)
                elif op == "clear":
                    matrix.clear(s, t)
                elif op == "clear_row":
                    matrix.clear_row(s)
                else:
                    matrix.clear_column(t)
                outcomes.append("ok")
            except ResourceProtocolError as exc:
                outcomes.append(str(exc))
        # Same success/failure — and the same error message.
        assert outcomes[0] == outcomes[1], (op, s, t)
        assert fast == ref
        assert fast.edge_count == ref.edge_count
        assert fast.terminal_rows() == ref.terminal_rows()
        assert fast.terminal_columns() == ref.terminal_columns()


def test_mutation_then_reduce_agrees():
    rng = random.Random(_seed("mutate-reduce"))
    for _ in range(20):
        rag = random_state(9, 9, grant_fraction=rng.random(),
                           request_fraction=rng.random() * 0.5, rng=rng)
        fast = BitMatrix.from_rag(rag)
        ref = StateMatrix.from_rag(rag)
        f = terminal_reduction(fast)
        r = terminal_reduction(ref, backend=REFERENCE_BACKEND)
        assert (f.iterations, f.passes, f.complete) \
            == (r.iterations, r.passes, r.complete)
        assert f.matrix == r.matrix


def test_residual_rereduction_is_stable():
    """Reducing a residual again must be a 1-pass no-op on both."""
    rag = cycle_state(5)
    for backend in BACKENDS:
        first = terminal_reduction(rag, backend=backend)
        again = terminal_reduction(first.matrix, backend=backend)
        assert again.iterations == 0
        assert again.passes == 1
        assert again.matrix == first.matrix


def test_round_trips():
    rag = random_state(7, 6, rng=random.Random(_seed("roundtrip")))
    fast = BitMatrix.from_rag(rag)
    assert BitMatrix.from_rag(fast.to_rag()) == fast
    assert fast.to_state_matrix() == fast
    assert StateMatrix.from_matrix(fast) == fast
    assert BitMatrix.from_matrix(StateMatrix.from_rag(rag)) == fast
    clone = fast.copy()
    clone.clear_row(0)
    assert clone != fast or fast.row_bwo(0) == (0, 0)


def test_backend_knob(monkeypatch):
    monkeypatch.delenv("REPRO_MATRIX_BACKEND", raising=False)
    assert resolve_backend(None) == default_backend() == FAST_BACKEND
    assert resolve_backend(REFERENCE_BACKEND) == REFERENCE_BACKEND
    assert matrix_class(FAST_BACKEND) is BitMatrix
    assert matrix_class(REFERENCE_BACKEND) is StateMatrix
    assert matrix_class(NATIVE_BACKEND) is NativeBitMatrix
    assert issubclass(NativeBitMatrix, BitMatrix)
    with pytest.raises(ConfigurationError):
        resolve_backend("simd")


def test_backend_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_MATRIX_BACKEND", "reference")
    assert default_backend() == REFERENCE_BACKEND
    rag = cycle_state(3)
    assert isinstance(matrix_from_rag(rag), StateMatrix)
    assert isinstance(pdda_detect(rag).residual, StateMatrix)
    monkeypatch.setenv("REPRO_MATRIX_BACKEND", "turbo")
    with pytest.raises(ConfigurationError):
        default_backend()


def test_as_backend_matrix_always_fresh():
    rag = chain_state(4)
    fast = BitMatrix.from_rag(rag)
    ref = StateMatrix.from_rag(rag)
    for source in (rag, fast, ref):
        for backend in BACKENDS:
            out = as_backend_matrix(source, backend)
            assert isinstance(out, matrix_class(backend))
            assert out == fast
            assert out is not source
            out.clear_row(0)  # must not alias the source
    assert fast == ref == BitMatrix.from_rag(rag)


def test_smoke_campaign_states_agree_across_backends():
    """Every RAG the seed-root-42 smoke campaign generates agrees."""
    from repro.campaign.checkers import GENERATORS
    from repro.campaign.presets import builtin_campaign

    checked = 0
    for scenario in builtin_campaign("smoke").expand(SEED_ROOT):
        if not scenario.generator.startswith("rag."):
            continue
        rng = random.Random(scenario.seed)
        rag = GENERATORS[scenario.generator](scenario.params, rng)
        fast = pdda_detect(rag, backend=FAST_BACKEND)
        ref = pdda_detect(rag, backend=REFERENCE_BACKEND)
        assert (fast.deadlock, fast.iterations, fast.passes) \
            == (ref.deadlock, ref.iterations, ref.passes), \
            scenario.scenario_id
        assert fast.residual == ref.residual, scenario.scenario_id
        checked += 1
    assert checked >= 10
