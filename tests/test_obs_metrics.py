"""Tests for the metrics registry and its wiring into the stack."""

import pytest

from repro.errors import ConfigurationError
from repro.framework.builder import build_system
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_OBS,
    Observability,
)
from repro.sim.engine import Engine


# -- metric primitives ---------------------------------------------------------

def test_counter_monotonic():
    counter = Counter("c")
    counter.inc()
    counter.inc(2.5)
    assert counter.value == 3.5
    assert counter.updates == 2
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_gauge_tracks_extremes():
    gauge = Gauge("g")
    gauge.set(5)
    gauge.dec(7)
    gauge.inc(1)
    assert gauge.value == -1
    assert gauge.min_value == -2
    assert gauge.max_value == 5


def test_histogram_buckets_and_stats():
    hist = Histogram("h", bounds=(1, 10, 100))
    for value in (0.5, 1, 7, 99, 5000):
        hist.observe(value)
    assert hist.count == 5
    assert hist.counts == [2, 1, 1, 1]          # last bucket = overflow
    assert hist.total == 5107.5
    assert hist.min_value == 0.5
    assert hist.max_value == 5000
    assert hist.mean == pytest.approx(1021.5)
    assert hist.percentile(50) == 5.5           # interpolated inside (1, 10]
    assert hist.percentile(100) == 5000.0       # overflow reports the max
    with pytest.raises(ValueError):
        hist.percentile(0)


def test_histogram_percentile_interpolates_at_small_counts():
    # A lone sample must report as itself, not its bucket's upper bound.
    hist = Histogram("h", bounds=(1, 10, 100))
    hist.observe(7)
    assert hist.percentile(50) == 7.0
    assert hist.percentile(99) == 7.0
    # Two samples in the first bucket interpolate from the observed min.
    low = Histogram("l", bounds=(1, 10))
    low.observe(0.5)
    low.observe(1)
    assert low.percentile(50) == 0.75
    # Never below the observed minimum or above the observed maximum.
    assert low.percentile(1) >= 0.5
    assert low.percentile(100) <= 1.0


def test_registry_label_cardinality_cap():
    registry = MetricsRegistry(max_labels=2)
    a = registry.counter("rpc.calls", label="tenant-a")
    b = registry.counter("rpc.calls", label="tenant-b")
    assert a is registry.counter("rpc.calls", label="tenant-a")
    assert a is not b
    assert "rpc.calls[tenant-a]" in registry
    # The third distinct value hits the cap: shared overflow bucket.
    c = registry.counter("rpc.calls", label="tenant-c")
    d = registry.counter("rpc.calls", label="tenant-d")
    assert c is d
    assert c.name == "rpc.calls[other]"
    assert registry.get("metrics.dropped_labels").value == 2
    # Unlabeled metrics are untouched by the cap.
    assert registry.counter("rpc.calls").name == "rpc.calls"


def test_histogram_rejects_bad_bounds():
    with pytest.raises(ConfigurationError):
        Histogram("h", bounds=())
    with pytest.raises(ConfigurationError):
        Histogram("h", bounds=(1, 1, 2))
    with pytest.raises(ConfigurationError):
        Histogram("h", bounds=(3, 2))


def test_registry_get_or_create_and_type_clash():
    registry = MetricsRegistry()
    a = registry.counter("x", "first")
    b = registry.counter("x", "second")
    assert a is b
    assert "x" in registry and len(registry) == 1
    with pytest.raises(ConfigurationError):
        registry.gauge("x")
    with pytest.raises(KeyError):
        registry.get("missing")


def test_snapshot_delta_subtracts_counters_and_histograms():
    registry = MetricsRegistry()
    counter = registry.counter("c")
    hist = registry.histogram("h", bounds=(10, 100))
    gauge = registry.gauge("g")
    counter.inc(3)
    hist.observe(5)
    gauge.set(7)
    before = registry.snapshot(time=100)
    counter.inc(4)
    hist.observe(50)
    gauge.set(9)
    after = registry.snapshot(time=200)
    delta = after.delta(before)
    assert delta.counters["c"] == 4
    assert delta.histograms["h"].count == 1
    assert delta.histograms["h"].counts == (0, 1, 0)
    assert delta.gauges["g"] == 9          # levels keep the later value
    assert registry.total_updates == 6


# -- the zero-overhead-when-disabled contract ---------------------------------

def test_disabled_obs_registers_but_never_updates():
    system = build_system("RTOS2")
    obs = system.soc.obs
    assert not obs.enabled
    assert "bus.transactions" in obs.metrics

    def body(ctx):
        yield from ctx.request("DSP")
        yield from ctx.release_resource("DSP")

    system.kernel.create_task(body, "p1", 1, "PE1")
    system.kernel.run()
    assert obs.metrics.total_updates == 0
    assert obs.tracer.all_spans() == []


def test_null_obs_cannot_be_enabled():
    from repro.errors import SimulationError
    with pytest.raises(SimulationError):
        NULL_OBS.enable()


# -- component coverage (the acceptance list) ---------------------------------

def _run_enabled(config, body, *tasks):
    system = build_system(config)
    system.soc.obs.enable()
    for name, priority, pe in tasks:
        system.kernel.create_task(body, name, priority, pe)
    system.kernel.run()
    return system


def test_bus_transactions_and_stalls_counted():
    engine = Engine()
    obs = Observability(engine=engine, enabled=True)
    from repro.mpsoc.bus import SystemBus
    bus = SystemBus(engine, obs=obs)

    def master(name):
        yield from bus.transaction(name, words=4)

    engine.spawn(master("A"))
    engine.spawn(master("B"))     # same cycle: must stall behind A
    engine.run()
    assert obs.metrics.get("bus.transactions").value == 2
    assert obs.metrics.get("bus.busy_cycles").value > 0
    assert obs.metrics.get("bus.stalled_transactions").value == 1
    assert obs.metrics.get("bus.stall_cycles").value > 0


def test_software_lock_latency_histogram():
    system = build_system("RTOS5")
    system.soc.obs.enable()
    kernel = system.kernel

    def holder(ctx):
        yield from ctx.lock("L")
        yield from ctx.compute(500)
        yield from ctx.unlock("L")

    def waiter(ctx):
        yield from ctx.compute(10)
        yield from ctx.lock("L")
        yield from ctx.unlock("L")

    kernel.create_task(holder, "holder", 2, "PE1")
    kernel.create_task(waiter, "waiter", 1, "PE2")
    kernel.run()
    metrics = system.soc.obs.metrics
    assert metrics.get("lock.acquisitions").value == 2
    assert metrics.get("lock.contended").value == 1
    latency = metrics.get("lock.acquire_latency")
    assert latency.count == 2 and latency.mean > 0
    assert metrics.get("lock.acquire_delay").max_value > 0
    assert metrics.get("lock.hold_cycles").count == 2


def test_soclc_lock_metrics():
    system = build_system("RTOS6")
    system.lock_manager.register_lock("L", kind="long", ceiling=1)
    system.soc.obs.enable()
    kernel = system.kernel

    def holder(ctx):
        yield from ctx.lock("L")
        yield from ctx.compute(500)
        yield from ctx.unlock("L")

    def waiter(ctx):
        yield from ctx.compute(10)
        yield from ctx.lock("L")
        yield from ctx.unlock("L")

    kernel.create_task(holder, "holder", 2, "PE1")
    kernel.create_task(waiter, "waiter", 1, "PE2")
    kernel.run()
    metrics = system.soc.obs.metrics
    assert metrics.get("lock.acquisitions").value == 2
    assert metrics.get("lock.contended").value == 1
    assert metrics.get("lock.acquire_latency").count == 2
    assert metrics.get("lock.hold_cycles").count == 2


def test_ddu_iterations_histogram():
    def body(ctx):
        yield from ctx.request("DSP")
        yield from ctx.release_resource("DSP")

    system = _run_enabled("RTOS2", body, ("p1", 1, "PE1"))
    metrics = system.soc.obs.metrics
    assert metrics.get("ddu.invocations").value > 0
    assert metrics.get("ddu.iterations").count > 0
    assert metrics.get("deadlock.invocations").value > 0
    assert metrics.get("deadlock.algorithm_cycles").count > 0


def test_dau_decision_metrics():
    def body(ctx):
        yield from ctx.request("DSP")
        yield from ctx.release_resource("DSP")

    system = _run_enabled("RTOS4", body, ("p1", 1, "PE1"))
    metrics = system.soc.obs.metrics
    assert metrics.get("dau.decisions").value > 0
    assert metrics.get("dau.decision_cycles").count > 0
    # The embedded DDU reports through the same registry.
    ddu = system.resource_service.core.ddu
    assert metrics.get("ddu.invocations").value == ddu.invocations


def test_socdmmu_allocation_metrics():
    def body(ctx):
        handle = yield from ctx.malloc(100_000)
        yield from ctx.free(handle)

    system = _run_enabled("RTOS7", body, ("p1", 1, "PE1"))
    metrics = system.soc.obs.metrics
    assert metrics.get("socdmmu.mallocs").value == 1
    assert metrics.get("socdmmu.frees").value == 1
    assert metrics.get("socdmmu.alloc_blocks").count == 1
    in_use = metrics.get("socdmmu.in_use_bytes")
    assert in_use.max_value >= 100_000
    assert in_use.value == 0      # freed at the end


def test_software_heap_metrics():
    def body(ctx):
        address = yield from ctx.malloc(4096)
        yield from ctx.free(address)

    system = _run_enabled("RTOS5", body, ("p1", 1, "PE1"))
    metrics = system.soc.obs.metrics
    assert metrics.get("heap.mallocs").value == 1
    assert metrics.get("heap.frees").value == 1
    assert metrics.get("heap.walk_entries").count == 1
    assert metrics.get("heap.alloc_bytes").max_value >= 4096


def test_context_switches_and_dispatches_counted():
    def body(ctx):
        yield from ctx.compute(100)

    system = _run_enabled("RTOS5", body,
                          ("p1", 1, "PE1"), ("p2", 2, "PE1"))
    metrics = system.soc.obs.metrics
    assert metrics.get("kernel.context_switches").value >= 2
    assert metrics.get("sched.dispatches").value >= 2
    assert metrics.get("sched.ready_depth").count >= 2


def test_leak_counter_matches_kernel_leaks():
    def leaker(ctx):
        yield from ctx.request("DSP")

    system = _run_enabled("RTOS4", leaker, ("p1", 1, "PE1"))
    assert system.kernel.leaks == [("p1", ["DSP"])]
    assert system.soc.obs.metrics.get("kernel.leaks").value == 1
