"""Property-based tests (hypothesis) on the core invariants.

The key correctness claims exercised here:

* PDDA reports deadlock iff the RAG contains a cycle (the paper's
  proven iff, [29]) — against an independent DFS oracle;
* the DDU hardware model computes exactly what software PDDA computes
  (deadlock verdict, iterations, passes);
* the classic baselines agree with PDDA;
* the DDU never exceeds the O(min(m, n)) pass bound;
* terminal reduction is monotone (never adds edges) and idempotent;
* adding edges never makes a deadlocked state deadlock-free
  (monotonicity of deadlock under edge addition);
* the avoidance core never enters a deadlocked state, under arbitrary
  legal command sequences;
* the software heap never double-allocates, never leaks, and its free
  list always covers exactly the unallocated bytes;
* the block allocator conserves blocks.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.deadlock.daa import Action, SoftwareDAA
from repro.deadlock.ddu import DDU
from repro.deadlock.pdda import pdda_detect, terminal_reduction
from repro.rag.classic import graph_reduction_detect, holt_detect
from repro.rag.generate import random_state
from repro.rag.graph import RAG
from repro.rag.matrix import StateMatrix
from repro.socdmmu.allocator import BlockAllocator
from repro.errors import AllocationError

# -- strategies ---------------------------------------------------------------

dims = st.tuples(st.integers(2, 7), st.integers(2, 7))


@st.composite
def rag_states(draw):
    """A random legal RAG state with 2..7 resources and processes."""
    m, n = draw(dims)
    seed = draw(st.integers(0, 2**32 - 1))
    grant_fraction = draw(st.floats(0.0, 1.0))
    request_fraction = draw(st.floats(0.0, 0.6))
    return random_state(m, n, grant_fraction=grant_fraction,
                        request_fraction=request_fraction,
                        rng=random.Random(seed))


# -- detection equivalences ------------------------------------------------------

@given(rag_states())
@settings(max_examples=300, deadline=None)
def test_pdda_iff_cycle(state):
    assert pdda_detect(state).deadlock == state.has_cycle()


@given(rag_states())
@settings(max_examples=200, deadline=None)
def test_ddu_equals_software_pdda(state):
    ddu = DDU(state.num_resources, state.num_processes)
    ddu.load(state)
    hw = ddu.detect()
    sw = pdda_detect(state)
    assert hw.deadlock == sw.deadlock
    assert hw.iterations == sw.iterations
    assert hw.passes == sw.passes


@given(rag_states())
@settings(max_examples=150, deadline=None)
def test_classic_baselines_agree(state):
    expected = pdda_detect(state).deadlock
    assert holt_detect(state).deadlock == expected
    assert graph_reduction_detect(state).deadlock == expected


@given(rag_states())
@settings(max_examples=200, deadline=None)
def test_ddu_pass_bound(state):
    ddu = DDU(state.num_resources, state.num_processes)
    ddu.load(state)
    result = ddu.detect()
    # The proven O(min(m, n)) bound on evaluation passes, plus the
    # final no-terminal pass.
    assert result.passes <= ddu.iteration_bound + 1


# -- reduction properties -----------------------------------------------------------

@given(rag_states())
@settings(max_examples=150, deadline=None)
def test_reduction_monotone_and_idempotent(state):
    matrix = StateMatrix.from_rag(state)
    first = terminal_reduction(matrix)
    assert first.matrix.edge_count <= matrix.edge_count
    second = terminal_reduction(first.matrix)
    assert second.iterations == 0
    assert second.matrix == first.matrix


@given(rag_states())
@settings(max_examples=150, deadline=None)
def test_residual_edges_are_connect_edges(state):
    """Every surviving edge lies on a row and column that are both
    'connect' (carry a request AND a grant) — the structural signature
    of a cycle."""
    residual = terminal_reduction(state).matrix
    for s in range(residual.m):
        for t in range(residual.n):
            if residual.get(s, t).value:
                assert residual.row_connect(s)
                assert residual.column_connect(t)


@given(rag_states(), st.integers(0, 2**32 - 1))
@settings(max_examples=150, deadline=None)
def test_deadlock_monotone_under_edge_addition(state, seed):
    """Adding one legal edge never cures an existing deadlock."""
    before = pdda_detect(state).deadlock
    if not before:
        return
    rng = random.Random(seed)
    candidates = []
    for p in state.processes:
        for q in state.resources:
            if state.holder_of(q) != p and q not in state.requests_of(p):
                candidates.append(("request", p, q))
    for q in state.resources:
        if state.is_available(q):
            for p in state.processes:
                if q not in state.requests_of(p):
                    candidates.append(("grant", p, q))
    if not candidates:
        return
    kind, p, q = rng.choice(candidates)
    if kind == "request":
        state.add_request(p, q)
    else:
        state.grant(q, p)
    assert pdda_detect(state).deadlock


# -- avoidance safety ------------------------------------------------------------------

@st.composite
def command_scripts(draw):
    length = draw(st.integers(1, 40))
    return [(draw(st.integers(1, 4)), draw(st.integers(1, 4)),
             draw(st.booleans())) for _ in range(length)]


@given(command_scripts())
@settings(max_examples=200, deadline=None)
def test_avoidance_core_never_stays_deadlocked(script):
    """The central safety claim of Algorithm 3: with cooperative
    processes (Assumption 3 — any give-up demand is obeyed), the RAG is
    deadlock-free after every command's resolution completes.

    The transient where an R-dl-detected request pends while the owner
    is being asked to release (Table 8's t6-t7) *is* allowed to contain
    the cycle; obeying the demand must always break it.
    """
    processes = [f"p{i}" for i in range(1, 5)]
    resources = [f"q{i}" for i in range(1, 5)]
    core = SoftwareDAA(processes, resources,
                       {p: i for i, p in enumerate(processes, 1)})

    def obey(decision):
        # Honour give-up demands, which may themselves trigger hand-off
        # decisions carrying further demands.
        queue = list(decision.ask_release)
        hops = 0
        while queue:
            target, res = queue.pop(0)
            hops += 1
            assert hops < 50, "give-up demands never settled"
            if core.rag.holder_of(res) == target:
                follow_up = core.release(target, res)
                queue.extend(follow_up.ask_release)

    for p_index, q_index, prefer_release in script:
        process = f"p{p_index}"
        resource = f"q{q_index}"
        held = core.rag.held_by(process)
        if prefer_release and held:
            decision = core.release(process, held[0])
        elif (core.rag.holder_of(resource) != process
              and resource not in core.rag.requests_of(process)):
            decision = core.request(process, resource)
        else:
            continue
        obey(decision)
        assert not core.rag.has_cycle(), (
            "avoidance left a deadlocked state after demands were obeyed")


# -- allocator conservation --------------------------------------------------------------

@st.composite
def alloc_scripts(draw):
    length = draw(st.integers(1, 40))
    return [(draw(st.integers(1, 3)), draw(st.integers(1, 5)),
             draw(st.booleans())) for _ in range(length)]


@given(alloc_scripts())
@settings(max_examples=200, deadline=None)
def test_block_allocator_conserves_blocks(script):
    allocator = BlockAllocator(num_blocks=12, block_bytes=1024)
    for owner_index, blocks, prefer_free in script:
        owner = f"PE{owner_index}"
        if prefer_free and allocator.holdings(owner):
            mapping = allocator._mappings.get(owner, {})
            virtual = next(iter(mapping))
            allocator.deallocate(owner, virtual)
        else:
            try:
                allocator.allocate(owner, blocks)
            except AllocationError:
                pass
        total_owned = sum(len(allocator.holdings(f"PE{i}"))
                          for i in range(1, 4))
        assert total_owned + allocator.free_blocks == 12
        # No block is owned twice (holdings are disjoint by construction
        # of the owner table, but check the mapping side too).
        mapped = []
        for i in range(1, 4):
            mapped.extend(allocator._mappings.get(f"PE{i}", {}).values())
        assert len(mapped) == len(set(mapped)) == total_owned
