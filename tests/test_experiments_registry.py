"""Smoke coverage for every experiment id in the registry.

``tests/test_experiments.py`` asserts the *content* of the key tables;
this module guarantees the registry itself never rots: every id runs,
every result renders, and the ``--markdown`` report includes each
section.  A new experiment wired into :data:`EXPERIMENTS` is covered
here automatically.
"""

import pytest

from repro.experiments import __main__ as experiments_cli
from repro.experiments.registry import EXPERIMENTS, run_experiment


@pytest.mark.parametrize("experiment_id", sorted(EXPERIMENTS))
def test_every_experiment_runs_and_renders(experiment_id):
    result = run_experiment(experiment_id)
    rendered = result.render()
    assert isinstance(rendered, str)
    assert rendered.strip(), f"{experiment_id} rendered nothing"


def test_registry_descriptions_are_unique_and_nonempty():
    descriptions = [desc for desc, _runner in EXPERIMENTS.values()]
    assert all(desc.strip() for desc in descriptions)
    assert len(set(descriptions)) == len(descriptions)


def test_unknown_experiment_raises_with_listing():
    with pytest.raises(KeyError, match="no-such-experiment"):
        run_experiment("no-such-experiment")


def test_cli_list_mentions_every_id(capsys):
    assert experiments_cli.main(["--list"]) == 0
    out = capsys.readouterr().out
    for experiment_id in EXPERIMENTS:
        assert experiment_id in out


def test_cli_rejects_unknown_ids(capsys):
    assert experiments_cli.main(["definitely-not-real"]) == 2
    assert "definitely-not-real" in capsys.readouterr().err


def test_cli_markdown_report_has_all_sections(tmp_path, capsys):
    report = tmp_path / "report.md"
    assert experiments_cli.main(["--markdown", str(report)]) == 0
    capsys.readouterr()
    text = report.read_text()
    assert text.startswith("# Regenerated evaluation")
    for experiment_id, (description, _runner) in EXPERIMENTS.items():
        assert f"## {experiment_id}: {description}" in text


def test_cli_markdown_selection(tmp_path, capsys):
    report = tmp_path / "selection.md"
    assert experiments_cli.main(
        ["table5", "fig11", "--markdown", str(report)]) == 0
    capsys.readouterr()
    text = report.read_text()
    assert "## table5:" in text
    assert "## fig11:" in text
    assert "## table10:" not in text
