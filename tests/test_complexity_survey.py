"""Tests for the complexity-survey experiment."""

from repro.experiments import complexity_survey


def test_rows_cover_sizes():
    result = complexity_survey.run(sizes=(4, 8))
    assert [row.size for row in result.rows] == [4, 8]


def test_survey_orders_the_algorithms():
    result = complexity_survey.run()
    growth = result.growth_factors()
    # The Section 3.3 ordering: Leibfried's O(m^3) grows fastest,
    # then the O(mn^2) reduction, then Holt's O(mn); the DDU's
    # O(min(m,n)) grows slowest.
    assert growth["leibfried"] > growth["reduction"] > growth["holt"]
    assert growth["ddu"] < growth["holt"]


def test_ddu_iterations_track_chain_length():
    result = complexity_survey.run(sizes=(4, 16))
    first, last = result.rows
    assert last.ddu_iterations == 16      # chain of min(m, n)
    assert first.ddu_iterations == 4


def test_render_mentions_the_claim():
    text = complexity_survey.run(sizes=(4, 8)).render()
    assert "O(min(m, n))" in text
    assert "Leibfried" in text
