"""Tests for the deadlock-managed resource services (RTOS1-RTOS4)."""

import pytest

from repro.errors import ConfigurationError
from repro.framework.builder import build_system
from repro.rtos.resources import NotificationKind, make_resource_service


def _system(config):
    return build_system(config)


# -- detection services (RTOS1/RTOS2) ---------------------------------------

@pytest.mark.parametrize("config", ["RTOS1", "RTOS2"])
def test_grant_and_release_flow(config):
    system = _system(config)
    kernel = system.kernel
    outcomes = []

    def body(ctx):
        outcome = yield from ctx.request("IDCT")
        outcomes.append(outcome)
        yield from ctx.use_peripheral("IDCT", 100)
        yield from ctx.release_resource("IDCT")

    kernel.create_task(body, "p1", 1, "PE1")
    kernel.run()
    assert outcomes[0].granted
    assert system.resource_service.holder_of("IDCT") is None
    # Request with immediate grant = 2 detections; release = 1.
    assert system.resource_service.stats.invocations == 3


@pytest.mark.parametrize("config", ["RTOS1", "RTOS2"])
def test_pending_request_waits_for_handoff(config):
    system = _system(config)
    kernel = system.kernel
    log = []

    def first(ctx):
        yield from ctx.request("IDCT")
        yield from ctx.use_peripheral("IDCT", 2000)
        yield from ctx.release_resource("IDCT")

    def second(ctx):
        yield from ctx.compute(200)
        outcome = yield from ctx.request("IDCT")
        log.append(("outcome", outcome.pending))
        yield from ctx.wait_grant("IDCT")
        log.append(("granted", ctx.now))
        yield from ctx.release_resource("IDCT")

    kernel.create_task(first, "p1", 1, "PE1")
    kernel.create_task(second, "p2", 2, "PE2")
    kernel.run()
    assert ("outcome", True) in log
    granted_at = next(t for kind, t in log if kind == "granted")
    assert granted_at >= 2000


@pytest.mark.parametrize("config", ["RTOS1", "RTOS2"])
def test_detection_fires_on_cycle(config):
    system = _system(config)
    kernel = system.kernel

    def p1(ctx):
        yield from ctx.request("IDCT")
        yield from ctx.compute(500)
        yield from ctx.request("WI")       # held by p2 -> pending

    def p2(ctx):
        yield from ctx.request("WI")
        yield from ctx.compute(500)
        yield from ctx.request("IDCT")     # closes the cycle

    kernel.create_task(p1, "p1", 1, "PE1")
    kernel.create_task(p2, "p2", 2, "PE2")
    kernel.run()
    stats = system.resource_service.stats
    assert stats.deadlock_found_at is not None
    assert system.resource_service.deadlock_event.is_set


def test_detection_service_handoff_by_priority():
    system = _system("RTOS2")
    kernel = system.kernel
    order = []

    def holder(ctx):
        yield from ctx.request("IDCT")
        yield from ctx.compute(3000)
        yield from ctx.release_resource("IDCT")

    def make_waiter(name):
        def body(ctx):
            yield from ctx.compute(100)
            yield from ctx.request("IDCT")
            yield from ctx.wait_grant("IDCT")
            order.append(name)
            yield from ctx.release_resource("IDCT")
        return body

    kernel.create_task(holder, "p1", 1, "PE1")
    kernel.create_task(make_waiter("p3"), "p3", 3, "PE3")
    kernel.create_task(make_waiter("p2"), "p2", 2, "PE2")
    kernel.run()
    assert order == ["p2", "p3"]


# -- avoidance services (RTOS3/RTOS4) -----------------------------------------

@pytest.mark.parametrize("config", ["RTOS3", "RTOS4"])
def test_avoidance_giveup_notification_resolves_rdl(config):
    """The paper's R-dl triangle: p3 holds the IDCT and waits for the
    WI; p1 holds the WI and then requests the IDCT — R-dl.  p1 is the
    higher-priority requester, so the service asks p3 (the owner) to
    give the IDCT up; p3 releases and the IDCT is handed to p1."""
    system = _system(config)
    kernel = system.kernel
    notes = []
    order = []

    def owner(ctx):                      # p3, low priority
        yield from ctx.request("IDCT")
        yield from ctx.compute(300)
        yield from ctx.request("WI")     # held by p1 -> pending
        while True:
            note = yield from ctx.wait_notification()
            if note.kind is NotificationKind.GIVE_UP:
                notes.append(note)
                yield from ctx.release_resource(note.resource)
                order.append("p3-gave-up")
                break

    def rival(ctx):                      # p1, high priority
        yield from ctx.request("WI")
        yield from ctx.compute(600)
        outcome = yield from ctx.request("IDCT")   # triggers R-dl
        if not outcome.granted:
            yield from ctx.wait_grant("IDCT")
        order.append("p1-got-idct")
        yield from ctx.release_resource("IDCT")
        yield from ctx.release_resource("WI")

    kernel.create_task(owner, "p3", 3, "PE3")
    kernel.create_task(rival, "p1", 1, "PE1")
    kernel.run()
    assert notes and notes[0].kind is NotificationKind.GIVE_UP
    assert notes[0].resource == "IDCT"
    assert order[0] == "p3-gave-up"
    assert "p1-got-idct" in order
    service = system.resource_service
    assert service.core.rag.holder_of("IDCT") is None
    assert service.core.stats.rdl_events >= 1


@pytest.mark.parametrize("config", ["RTOS1", "RTOS2", "RTOS3", "RTOS4"])
def test_withdraw_cancels_pending_request(config):
    system = _system(config)
    kernel = system.kernel
    state = {}

    def holder(ctx):
        yield from ctx.request("IDCT")
        yield from ctx.compute(3_000)
        yield from ctx.release_resource("IDCT")

    def impatient(ctx):
        yield from ctx.compute(200)
        outcome = yield from ctx.request("IDCT")
        assert outcome.pending
        yield from ctx.withdraw_request("IDCT")
        state["withdrew_at"] = ctx.now
        yield from ctx.compute(100)

    kernel.create_task(holder, "p1", 1, "PE1")
    kernel.create_task(impatient, "p2", 2, "PE2")
    kernel.run()
    assert kernel.finished()
    service = system.resource_service
    # The withdrawn request must not receive the handoff.
    rag = getattr(service, "rag", None) or service.core.rag
    assert rag.requests_of("p2") == ()
    assert rag.is_available("IDCT")
    assert kernel.trace.count("request_withdrawn") == 1
    # No stale grant was ever delivered to the withdrawer.
    assert "IDCT" not in kernel.tasks["p2"].held_resources


def test_withdraw_is_idempotent():
    system = _system("RTOS4")
    kernel = system.kernel

    def holder(ctx):
        yield from ctx.request("IDCT")
        yield from ctx.compute(2_000)
        yield from ctx.release_resource("IDCT")

    def withdrawer(ctx):
        yield from ctx.compute(100)
        yield from ctx.request("IDCT")
        yield from ctx.withdraw_request("IDCT")
        yield from ctx.withdraw_request("IDCT")   # no-op, no error

    kernel.create_task(holder, "p1", 1, "PE1")
    kernel.create_task(withdrawer, "p2", 2, "PE2")
    kernel.run()
    assert kernel.finished()


def test_make_resource_service_rejects_unknown():
    system = _system("RTOS5")
    with pytest.raises(ConfigurationError):
        make_resource_service(system.kernel, "RTOS9", ["p1"], ["q1"],
                              {"p1": 1})


def test_hardware_flag_set_correctly():
    assert _system("RTOS2").resource_service.hardware
    assert not _system("RTOS1").resource_service.hardware
    assert _system("RTOS4").resource_service.hardware
    assert not _system("RTOS3").resource_service.hardware


def test_algorithm_cycles_tracked():
    system = _system("RTOS4")
    kernel = system.kernel

    def body(ctx):
        yield from ctx.request("DSP")
        yield from ctx.release_resource("DSP")

    kernel.create_task(body, "p1", 1, "PE1")
    kernel.run()
    stats = system.resource_service.stats
    assert stats.invocations == 2
    assert stats.mean_algorithm_cycles > 0
