"""Tests for the periodic executive and the response-time analysis."""

import pytest

from repro.errors import RTOSError
from repro.framework.builder import build_system
from repro.rtos.analysis import (
    AnalyzedTask,
    blocking_term,
    liu_layland_bound,
    response_time_analysis,
    utilization,
)
from repro.rtos.periodic import OverrunPolicy, PeriodicTask
from repro.rtos.watchdog import Watchdog


# -- periodic executive ---------------------------------------------------------

def _body(cycles):
    def body(ctx):
        yield from ctx.compute(cycles)
    return body


def test_periodic_releases_on_the_grid(kernel):
    task = PeriodicTask(kernel, "tick", _body(300), priority=1,
                        pe="PE1", period=1_000, activations=5)
    kernel.run()
    assert task.stats.activations == 5
    releases = [record.release for record in task.stats.records]
    assert releases == [0, 1_000, 2_000, 3_000, 4_000]
    assert task.stats.deadline_misses == 0
    assert task.stats.worst_response < 1_000


def test_periodic_offset_shifts_the_grid(kernel):
    task = PeriodicTask(kernel, "tick", _body(100), priority=1,
                        pe="PE1", period=500, activations=3, offset=250)
    kernel.run()
    assert task.stats.records[0].release == 250


def test_deadline_miss_counted_under_interference(kernel):
    # A low-priority periodic task squeezed by a heavy high-priority
    # one misses its tight deadline.
    PeriodicTask(kernel, "hog", _body(1_500), priority=1, pe="PE1",
                 period=2_000, activations=4)
    victim = PeriodicTask(kernel, "victim", _body(400), priority=2,
                          pe="PE1", period=2_000, deadline=700,
                          activations=4)
    kernel.run()
    assert victim.stats.deadline_misses >= 1


def test_overrun_skip_realigns(kernel):
    # Body longer than the period: SKIP drops missed releases.
    task = PeriodicTask(kernel, "slow", _body(1_700), priority=1,
                        pe="PE1", period=1_000, activations=6,
                        overrun_policy=OverrunPolicy.SKIP)
    kernel.run()
    assert task.stats.overruns >= 1
    # Releases stay on the period grid despite the overruns.
    for record in task.stats.records:
        assert record.release % 1_000 == 0


def test_overrun_catch_up_runs_back_to_back(kernel):
    task = PeriodicTask(kernel, "slow", _body(1_700), priority=1,
                        pe="PE1", period=1_000, activations=3,
                        overrun_policy=OverrunPolicy.CATCH_UP)
    kernel.run()
    assert task.stats.activations == 3
    assert task.stats.overruns >= 1


def test_periodic_with_watchdog_records_misses(kernel):
    watchdog = Watchdog(kernel)
    PeriodicTask(kernel, "late", _body(700), priority=1, pe="PE1",
                 period=1_000, deadline=500, activations=2,
                 watchdog=watchdog)
    kernel.run()
    assert watchdog.miss_count == 2


def test_periodic_validation(kernel):
    with pytest.raises(RTOSError):
        PeriodicTask(kernel, "bad", _body(1), 1, "PE1", period=0)
    with pytest.raises(RTOSError):
        PeriodicTask(kernel, "bad2", _body(1), 1, "PE1", period=10,
                     deadline=0)


# -- response-time analysis ---------------------------------------------------------

def _robot_taskset():
    """The Section 5.5 task set, in analysis form (cycles)."""
    cs = 2_600
    return [
        AnalyzedTask("task1", 1, wcet=8_600, period=26_000,
                     deadline=25_000, pe="PE1",
                     critical_sections={"pos": cs}),
        AnalyzedTask("task2", 2, wcet=5_600, period=26_000,
                     deadline=30_000, pe="PE2",
                     critical_sections={"pos": cs // 2}),
        AnalyzedTask("task3", 3, wcet=5_200, period=26_000, pe="PE2",
                     critical_sections={"pos": cs}),
        AnalyzedTask("task4", 4, wcet=5_900, period=26_000,
                     deadline=60_000, pe="PE3",
                     critical_sections={"pos": cs // 2,
                                        "rec": cs // 2}),
        AnalyzedTask("task5", 5, wcet=4_300, period=26_000, pe="PE4",
                     critical_sections={"rec": cs // 2}),
    ]


def test_utilization_and_bound():
    tasks = _robot_taskset()
    assert 0 < utilization(tasks, pe="PE2") < 1
    assert liu_layland_bound(1) == pytest.approx(1.0)
    assert liu_layland_bound(2) == pytest.approx(0.8284, abs=1e-3)
    with pytest.raises(RTOSError):
        liu_layland_bound(0)


def test_blocking_pi_sums_per_lock_ipcp_takes_max():
    tasks = _robot_taskset()
    task1 = tasks[0]
    # task1 uses only 'pos'; the longest lower-priority 'pos' CS is
    # task3's 2600.
    assert blocking_term(task1, tasks, "ipcp") == 2_600
    assert blocking_term(task1, tasks, "pi") == 2_600
    # task4 uses 'pos' and 'rec': PI can be hit once per lock.
    task4 = tasks[3]
    pi = blocking_term(task4, tasks, "pi")
    ipcp = blocking_term(task4, tasks, "ipcp")
    assert pi >= ipcp
    assert pi == 1_300       # task5's 'rec' CS; no lower 'pos' holder
    with pytest.raises(RTOSError):
        blocking_term(task1, tasks, "fifo")


def test_rta_declares_robot_set_schedulable():
    results = response_time_analysis(_robot_taskset(), protocol="ipcp",
                                     context_switch=180)
    by_name = {result.task: result for result in results}
    assert all(result.schedulable for result in results), by_name
    # The highest-priority task's response is just cost + blocking.
    task1 = by_name["task1"]
    assert task1.interference == 0
    assert task1.response_time == pytest.approx(8_600 + 360 + 2_600)


def test_rta_interference_from_same_pe_only():
    results = response_time_analysis(_robot_taskset())
    by_name = {result.task: result for result in results}
    # task3 shares PE2 with task2 and suffers its interference.
    assert by_name["task3"].interference > 0
    # task5 is alone on PE4: no interference.
    assert by_name["task5"].interference == 0


def test_rta_detects_overload():
    overload = [
        AnalyzedTask("a", 1, wcet=600, period=1_000, pe="PE1"),
        AnalyzedTask("b", 2, wcet=600, period=1_000, pe="PE1"),
    ]
    results = response_time_analysis(overload)
    assert not results[1].schedulable


def test_rta_validation():
    with pytest.raises(RTOSError):
        response_time_analysis([
            AnalyzedTask("x", 1, wcet=10, period=5)])
    with pytest.raises(RTOSError):
        response_time_analysis([
            AnalyzedTask("x", 1, wcet=1, period=5),
            AnalyzedTask("x", 2, wcet=1, period=5)])


def test_rta_predicts_simulated_periodic_behaviour():
    """Theory vs simulation: a two-task single-PE set — the simulated
    worst response must not exceed the analytic bound (plus scheduler
    quantum slack), and the analysis must call it schedulable."""
    taskset = [
        AnalyzedTask("high", 1, wcet=800, period=3_000, pe="PE1"),
        AnalyzedTask("low", 2, wcet=1_200, period=6_000, pe="PE1"),
    ]
    results = response_time_analysis(taskset, context_switch=180)
    bound = {result.task: result.response_time for result in results}
    assert all(result.schedulable for result in results)

    system = build_system("RTOS5", quantum=100)
    kernel = system.kernel
    high = PeriodicTask(kernel, "high", _body(800), priority=1,
                        pe="PE1", period=3_000, activations=6)
    low = PeriodicTask(kernel, "low", _body(1_200), priority=2,
                       pe="PE1", period=6_000, activations=3)
    kernel.run()
    slack = 2 * 100 + 2 * 180          # quantum + context switches
    assert high.stats.worst_response <= bound["high"] + slack
    assert low.stats.worst_response <= bound["low"] + slack
