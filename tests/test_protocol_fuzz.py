"""Seeded fuzzing of the wire protocol and the server accept loop.

Every mangled line a chaotic or hostile peer can produce must map to a
*stable* outcome: :func:`decode_line` / :func:`validate_request` either
succeed or raise :class:`ServiceOpError` with a code from
:data:`ERROR_CODES` (never a bare ``UnicodeDecodeError`` or
``KeyError``), and a garbage-spewing connection must never take down
another client's handler.

The generators are seeded ``random.Random`` instances, so a failure
reproduces byte-identically.
"""

import asyncio
import json
import random

import pytest

from repro.service import (
    DetectionService,
    ServiceClient,
    ServiceConfig,
)
from repro.service.protocol import (
    ERROR_CODES,
    MAX_LINE_BYTES,
    ServiceOpError,
    decode_line,
    encode_message,
    validate_request,
)


def _run(coro):
    return asyncio.run(coro)


_VALID = encode_message({"op": "claim", "tenant": "t0", "process": "p1",
                         "resource": "q1", "id": 7, "idem": "k1",
                         "deadline_ms": 250.0})


def _mangle(rng: random.Random, line: bytes) -> bytes:
    """One of the shapes chaos produces on a real wire."""
    choice = rng.randrange(5)
    if choice == 0:                      # truncate mid-JSON
        cut = rng.randrange(1, len(line))
        return line[:cut] + b"\n"
    if choice == 1:                      # corrupt a span with 0xFF
        start = rng.randrange(len(line) - 2)
        span = rng.randrange(1, min(8, len(line) - start))
        return line[:start] + b"\xff" * span + line[start + span:]
    if choice == 2:                      # swap two bytes
        data = bytearray(line)
        a = rng.randrange(len(data) - 1)
        b = rng.randrange(len(data) - 1)
        data[a], data[b] = data[b], data[a]
        return bytes(data)
    if choice == 3:                      # a JSON scalar, not an object
        scalar = rng.choice([b"42", b'"text"', b"null", b"true",
                             b"[1,2,3]", b"3.5"])
        return scalar + b"\n"
    return bytes(rng.randrange(256)      # pure noise
                 for _ in range(rng.randrange(1, 40))) + b"\n"


def test_decode_line_fuzz_never_leaks_raw_exceptions():
    rng = random.Random(20260808)
    outcomes = {"ok": 0, "refused": 0}
    for _trial in range(500):
        line = _mangle(rng, _VALID)
        try:
            message = decode_line(line)
        except ServiceOpError as exc:
            assert exc.code == "bad-request"
            assert exc.code in ERROR_CODES
            outcomes["refused"] += 1
        else:
            # A lucky mangle can still be valid JSON — fine, as long
            # as it decoded to a dict like the contract promises.
            assert isinstance(message, dict)
            outcomes["ok"] += 1
    # The generator must actually produce hostile input.
    assert outcomes["refused"] > 300


def test_decode_line_refuses_oversized_lines():
    with pytest.raises(ServiceOpError) as excinfo:
        decode_line(b"x" * (MAX_LINE_BYTES + 1))
    assert excinfo.value.code == "bad-request"


def test_validate_request_fuzz_never_leaks_raw_exceptions():
    rng = random.Random(4242)
    ops = [None, 5, True, "", "ping", "claim", "attach", "gamma-ray",
           ["claim"]]
    tenants = [None, "", "t0", 3, False, ["t"]]
    deadlines = [None, -1, 0, 0.0, "soon", True, 250.0, 1]
    idems = [None, "", "k1", 300 * "x", 7, b"k1"]
    accepted = 0
    for _trial in range(400):
        message = {"op": rng.choice(ops)}
        if rng.random() < 0.8:
            message["tenant"] = rng.choice(tenants)
        if rng.random() < 0.5:
            message["deadline_ms"] = rng.choice(deadlines)
        if rng.random() < 0.5:
            message["idem"] = rng.choice(idems)
        try:
            op = validate_request(message)
        except ServiceOpError as exc:
            assert exc.code in ERROR_CODES
        else:
            assert isinstance(op, str)
            accepted += 1
    assert accepted > 0                  # some drawn shapes are valid


def test_garbage_connection_cannot_break_a_healthy_client():
    """Client A spews seeded garbage; client B's session is untouched."""
    async def scenario():
        service = DetectionService(ServiceConfig(
            shards=2, use_processes=False, tick_interval=0.002))
        await service.start(host="127.0.0.1", port=0)
        rng = random.Random(7)
        garbage_reader, garbage_writer = await asyncio.open_connection(
            "127.0.0.1", service.tcp_port)
        healthy = await ServiceClient.connect_tcp(
            "127.0.0.1", service.tcp_port)
        try:
            await healthy.attach("t0", m=4, n=4)
            held = False
            for round_index in range(30):
                garbage_writer.write(_mangle(rng, _VALID))
                await garbage_writer.drain()
                if round_index % 3 == 0:
                    if held:
                        await healthy.release("t0", "p1", "q1")
                    else:
                        assert (await healthy.claim(
                            "t0", "p1", "q1"))["granted"]
                    held = not held
            # Every answer the garbage client got is a well-formed
            # refusal with a stable code.
            garbage_writer.write_eof()
            while True:
                try:
                    line = await asyncio.wait_for(
                        garbage_reader.readline(), 1.0)
                except asyncio.TimeoutError:
                    break
                if not line:
                    break
                response = json.loads(line)
                if response.get("ok") is False:
                    assert response["error"] in ERROR_CODES
            # The healthy session still works end to end.
            verdict = await healthy.detect("t0")
            assert verdict["deadlock"] is False
            stats = await healthy.stats()
            assert stats["tenants"] == 1
        finally:
            try:
                garbage_writer.close()
            except OSError:
                pass
            await healthy.close()
            await service.stop()
    _run(scenario())


def test_oversized_line_drops_only_the_offending_connection():
    async def scenario():
        service = DetectionService(ServiceConfig(
            shards=2, use_processes=False, tick_interval=0.002))
        await service.start(host="127.0.0.1", port=0)
        healthy = await ServiceClient.connect_tcp(
            "127.0.0.1", service.tcp_port)
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", service.tcp_port, limit=4 * MAX_LINE_BYTES)
        try:
            writer.write(b"{" * (MAX_LINE_BYTES + 10) + b"\n")
            await writer.drain()
            line = await asyncio.wait_for(reader.readline(), 5.0)
            response = json.loads(line)
            assert response["ok"] is False
            assert response["error"] == "bad-request"
            # The framing is gone, so the connection must be closed...
            assert await asyncio.wait_for(reader.read(), 5.0) == b""
            # ...but the other client is still being served.
            assert (await healthy.ping())["ok"] is True
        finally:
            try:
                writer.close()
            except OSError:
                pass
            await healthy.close()
            await service.stop()
    _run(scenario())
