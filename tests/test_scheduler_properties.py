"""Property-based tests on the scheduler and the software heap.

Random task sets and allocation scripts; the invariants checked are the
ones an RTOS certifies: one running task per PE, priority-consistent
dispatching, every task eventually finishes, and the heap's free list
exactly covers the unallocated bytes at all times.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.framework.builder import build_system
from repro.rtos.task import TaskState


@st.composite
def task_sets(draw):
    count = draw(st.integers(1, 6))
    tasks = []
    for index in range(count):
        tasks.append({
            "name": f"t{index}",
            "priority": draw(st.integers(1, 5)),
            "pe": f"PE{draw(st.integers(1, 2))}",
            "start": draw(st.integers(0, 2_000)),
            "segments": draw(st.lists(
                st.tuples(st.sampled_from(["compute", "sleep"]),
                          st.integers(50, 1_500)),
                min_size=1, max_size=4)),
        })
    return tasks


@given(task_sets())
@settings(max_examples=60, deadline=None)
def test_scheduler_invariants_hold_for_random_task_sets(spec):
    system = build_system("RTOS5")
    kernel = system.kernel
    violations = []

    def make(segments):
        def body(ctx):
            for kind, cycles in segments:
                if kind == "compute":
                    yield from ctx.compute(cycles)
                else:
                    yield from ctx.sleep(cycles)
        return body

    for item in spec:
        kernel.create_task(make(item["segments"]), item["name"],
                           item["priority"], item["pe"],
                           start_time=item["start"])

    # Audit the dispatch decisions: whenever a task is dispatched, no
    # strictly higher-priority task may be sitting READY on that PE.
    for scheduler in kernel.schedulers.values():
        original = scheduler.dispatch

        def make_audited(sched, orig):
            def audited_dispatch():
                task = orig()
                if task is not None:
                    better = [ready for ready in sched.ready
                              if ready.priority < task.priority]
                    if better:
                        violations.append((task.name,
                                           [b.name for b in better]))
                return task
            return audited_dispatch
        scheduler.dispatch = make_audited(scheduler, original)

    kernel.run()
    assert violations == []
    # Everyone finished, and nobody is left on a CPU or a queue.
    for task in kernel.tasks.values():
        assert task.state is TaskState.FINISHED
    for scheduler in kernel.schedulers.values():
        assert scheduler.running is None
        assert scheduler.ready == []


@st.composite
def heap_scripts(draw):
    length = draw(st.integers(1, 25))
    return [(draw(st.integers(16, 8_000)), draw(st.booleans()))
            for _ in range(length)]


@given(heap_scripts())
@settings(max_examples=60, deadline=None)
def test_heap_books_always_balance(script):
    system = build_system("RTOS5")
    kernel = system.kernel
    heap = system.heap
    total = heap.size_bytes

    def body(ctx):
        live = []
        for size, prefer_free in script:
            if prefer_free and live:
                yield from ctx.free(live.pop(0))
            else:
                try:
                    live.append((yield from ctx.malloc(size)))
                except Exception:
                    pass
            # Invariant: allocated + free covers the region exactly.
            assert heap.in_use_bytes + heap.free_bytes == total
            # Free-list entries are disjoint and sorted.
            previous_end = None
            for address, block in heap._free:
                if previous_end is not None:
                    assert address > previous_end
                previous_end = address + block
        for address in live:
            yield from ctx.free(address)

    kernel.create_task(body, "heap-driver", 1, "PE1")
    kernel.run()
    assert kernel.finished("heap-driver")
    assert heap.in_use_bytes == 0
    assert len(heap._free) == 1
