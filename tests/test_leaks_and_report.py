"""Tests for the kernel's resource-leak check and the experiment
report CLI."""

import pytest

from repro.errors import RTOSError
from repro.experiments.__main__ import main as experiments_main
from repro.framework.builder import build_system
from repro.mpsoc.soc import MPSoC
from repro.rtos.kernel import Kernel


def test_leak_recorded_on_finish():
    system = build_system("RTOS4")
    kernel = system.kernel

    def leaker(ctx):
        yield from ctx.request("DSP")
        # ...and never releases it.

    kernel.create_task(leaker, "p1", 1, "PE1")
    kernel.run()
    assert kernel.leaks == [("p1", ["DSP"])]
    assert kernel.trace.count("resource_leak") == 1


def test_strict_leak_check_raises():
    system = build_system("RTOS4")
    kernel = system.kernel
    kernel.strict_leak_check = True

    def leaker(ctx):
        yield from ctx.request("DSP")

    kernel.create_task(leaker, "p1", 1, "PE1")
    with pytest.raises(Exception):
        kernel.run()


def test_clean_task_leaves_no_leak():
    system = build_system("RTOS4")
    kernel = system.kernel

    def tidy(ctx):
        yield from ctx.request("DSP")
        yield from ctx.release_resource("DSP")

    kernel.create_task(tidy, "p1", 1, "PE1")
    kernel.run()
    assert kernel.leaks == []


def test_kernel_accepts_strict_flag():
    kernel = Kernel(MPSoC.base_system(), strict_leak_check=True)
    assert kernel.strict_leak_check


# -- the experiments CLI -------------------------------------------------------

def test_experiments_list(capsys):
    assert experiments_main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "table5" in out and "fig20" in out


def test_experiments_unknown_id(capsys):
    assert experiments_main(["tableX"]) == 2
    assert "unknown" in capsys.readouterr().err


def test_experiments_selection_stdout(capsys):
    assert experiments_main(["fig7"]) == 0
    out = capsys.readouterr().out
    assert "Top.v" in out


def test_experiments_markdown_report(tmp_path, capsys):
    report = tmp_path / "report.md"
    assert experiments_main(["fig7", "table1",
                             "--markdown", str(report)]) == 0
    text = report.read_text()
    assert text.startswith("# Regenerated evaluation")
    assert "## fig7" in text and "## table1" in text
    assert "```" in text
