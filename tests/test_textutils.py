"""Tests for the text-table renderer and the diagrams experiment."""

import math

from repro.experiments import diagrams, table3_configurations
from repro.textutils import (
    format_value,
    render_table,
    speedup_factor,
    speedup_percent,
)


def test_format_value_variants():
    assert format_value(None) == "-"
    assert format_value(12) == "12"
    assert format_value(1234567) == "1,234,567"
    assert format_value(3.14159) == "3.14"
    assert format_value(2000.0) == "2,000"
    assert format_value(float("nan")) == "-"
    assert format_value("text") == "text"


def test_render_table_alignment_and_title():
    text = render_table(["name", "value"],
                        [("alpha", 10), ("b", 2000)],
                        title="Demo")
    lines = text.splitlines()
    assert lines[0] == "Demo"
    assert lines[1] == "=" * len("Demo")
    assert "name" in lines[2] and "value" in lines[2]
    # All rows padded to equal width.
    assert len(set(len(line) for line in lines[2:])) <= 2


def test_speedup_helpers():
    assert speedup_percent(150, 100) == 50
    assert speedup_factor(300, 100) == 3
    assert math.isnan(speedup_factor(1, 0))


def test_diagrams_cover_the_block_figures():
    result = diagrams.run()
    text = result.render()
    for marker in ("Figure 1", "Figure 2/10", "Figure 8", "Figure 9",
                   "Figure 13", "Figure 14", "Figure 18", "Figure 19"):
        assert marker in text
    # Live-derived facts appear.
    assert "PE4" in text            # census from a built system
    assert "iteration bound" in text


def test_diagram_ddu_scales_with_size():
    small = diagrams.fig13_ddu(2, 2)
    large = diagrams.fig13_ddu(4, 5)
    assert "matrix cells: 4" in small
    assert "matrix cells: 20" in large


def test_table3_regeneration_matches_presets():
    result = table3_configurations.run()
    rows = {row.system: row for row in result.rows}
    assert len(rows) == 7
    assert "DAU" in rows["RTOS4"].built_component
    assert "DDU" in rows["RTOS2"].built_component
    assert "SoCLC" in rows["RTOS6"].built_component
    assert "SoCDMMU" in rows["RTOS7"].built_component
    assert "Table 3" in result.render()
