"""Tests for the SoCDMMU (allocator datapath + command front-end)."""

import pytest

from repro import calibration
from repro.errors import AllocationError, ConfigurationError, GenerationError
from repro.framework.builder import build_system
from repro.socdmmu.allocator import BlockAllocator
from repro.socdmmu.generator import generate_socdmmu


# -- BlockAllocator ------------------------------------------------------------

def test_allocate_and_translate():
    allocator = BlockAllocator(num_blocks=8, block_bytes=1024)
    virtuals = allocator.allocate("PE1", 3)
    assert len(virtuals) == 3
    assert allocator.free_blocks == 5
    for virtual in virtuals:
        physical = allocator.translate("PE1", virtual)
        assert allocator.owner_of(physical) == "PE1"


def test_allocation_is_all_or_nothing():
    allocator = BlockAllocator(num_blocks=4, block_bytes=1024)
    allocator.allocate("PE1", 3)
    with pytest.raises(AllocationError):
        allocator.allocate("PE2", 2)
    assert allocator.free_blocks == 1     # nothing leaked


def test_deallocate_returns_blocks():
    allocator = BlockAllocator(num_blocks=4, block_bytes=1024)
    virtuals = allocator.allocate("PE1", 2)
    allocator.deallocate("PE1", virtuals[0])
    assert allocator.free_blocks == 3
    with pytest.raises(AllocationError):
        allocator.translate("PE1", virtuals[0])


def test_deallocate_all():
    allocator = BlockAllocator(num_blocks=8, block_bytes=1024)
    allocator.allocate("PE1", 3)
    allocator.allocate("PE2", 2)
    assert allocator.deallocate_all("PE1") == 3
    assert allocator.free_blocks == 6
    assert allocator.holdings("PE1") == []
    assert len(allocator.holdings("PE2")) == 2


def test_blocks_for_rounds_up():
    allocator = BlockAllocator(num_blocks=8, block_bytes=1024)
    assert allocator.blocks_for(1) == 1
    assert allocator.blocks_for(1024) == 1
    assert allocator.blocks_for(1025) == 2
    with pytest.raises(AllocationError):
        allocator.blocks_for(0)


def test_allocator_validation():
    with pytest.raises(ConfigurationError):
        BlockAllocator(num_blocks=0)
    with pytest.raises(AllocationError):
        BlockAllocator(4, 1024).allocate("PE1", 0)
    with pytest.raises(AllocationError):
        BlockAllocator(4, 1024).owner_of(99)


# -- SoCDMMU front-end -------------------------------------------------------------

def _run_task(system, body):
    result = {}

    def task(ctx):
        result["value"] = yield from body(ctx)

    system.kernel.create_task(task, "bench", 1, "PE1")
    system.kernel.run()
    return result.get("value")


def test_dmmu_malloc_free_round_trip():
    system = build_system("RTOS7")

    def body(ctx):
        handle = yield from ctx.malloc(100 * 1024)
        yield from ctx.free(handle)
        return handle

    handle = _run_task(system, body)
    assert handle is not None
    heap = system.heap
    assert heap.in_use_bytes == 0
    assert heap.stats.malloc_calls == 1
    assert heap.stats.free_calls == 1


def test_dmmu_cost_is_deterministic_and_small():
    system = build_system("RTOS7")

    def body(ctx):
        t0 = ctx.now
        a = yield from ctx.malloc(64 * 1024)
        first = ctx.now - t0
        t1 = ctx.now
        b = yield from ctx.malloc(512 * 1024)     # 8x bigger
        second = ctx.now - t1
        yield from ctx.free(a)
        yield from ctx.free(b)
        return (first, second)

    first, second = _run_task(system, body)
    # Deterministic: cost independent of request size and heap state.
    assert first == second
    assert first < 100


def test_dmmu_cost_beats_software_heap():
    hw = build_system("RTOS7")
    sw = build_system("RTOS5")

    def body(ctx):
        handle = yield from ctx.malloc(128 * 1024)
        yield from ctx.free(handle)
        return None

    _run_task(hw, body)
    _run_task(sw, body)
    assert hw.heap.stats.mm_cycles < sw.heap.stats.mm_cycles / 5


def test_dmmu_free_of_unknown_handle_rejected():
    system = build_system("RTOS7")

    def body(ctx):
        yield from ctx.free(0xBAD)

    with pytest.raises(Exception):
        _run_task(system, body)


def test_dmmu_free_by_wrong_owner_rejected():
    system = build_system("RTOS7")
    kernel = system.kernel
    handles = []

    def owner(ctx):
        handles.append((yield from ctx.malloc(1024)))

    def thief(ctx):
        yield from ctx.sleep(500)
        yield from ctx.free(handles[0])

    kernel.create_task(owner, "owner", 1, "PE1")
    kernel.create_task(thief, "thief", 1, "PE2")
    with pytest.raises(Exception):
        kernel.run()


def test_dmmu_exhaustion():
    system = build_system("RTOS7")
    blocks = system.heap.allocator.num_blocks
    size = system.heap.allocator.block_bytes

    def body(ctx):
        yield from ctx.malloc(blocks * size)      # everything
        yield from ctx.malloc(1)                  # one more block

    with pytest.raises(Exception):
        _run_task(system, body)
    assert system.heap.stats.failed_allocations == 1


# -- the DX-Gt generator ---------------------------------------------------------

def test_generator_emits_configured_verilog():
    config = generate_socdmmu(num_blocks=128, block_bytes=32 * 1024,
                              num_pes=4)
    assert config.managed_bytes == 128 * 32 * 1024
    assert "N_BLOCKS   = 128" in config.verilog
    assert config.gates > 0


def test_generator_crossbar_adds_area():
    plain = generate_socdmmu(num_pes=4, with_crossbar=False)
    xbar = generate_socdmmu(num_pes=4, with_crossbar=True)
    assert xbar.gates > plain.gates
    assert "crossbar" in xbar.verilog


def test_generator_validation():
    with pytest.raises(GenerationError):
        generate_socdmmu(num_blocks=0)
    with pytest.raises(GenerationError):
        generate_socdmmu(block_bytes=3000)    # not a power of two
    with pytest.raises(GenerationError):
        generate_socdmmu(num_pes=0)
