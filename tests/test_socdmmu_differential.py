"""Differential check: a mid-torture SoCDMMU checkpoint restored in a
*fresh process* is byte-identical, and continuing the same op stream
from the checkpoint converges on the same final state as the process
that never stopped.

The op stream is derived from a seed, so parent and child re-derive
identical remaining work — the same discipline the campaign runner's
crash/resume machinery relies on.
"""

import json
import os
import random
import subprocess
import sys
from pathlib import Path

from repro.errors import AllocationError
from repro.socdmmu.allocator import BlockAllocator

REPO_ROOT = Path(__file__).resolve().parent.parent

ROOT_SEED = 42
NUM_BLOCKS = 24
TOTAL_OPS = 400
SPLIT_AT = 173
OWNERS = ("a", "b", "c", "d")


def apply_ops(allocator, seed, start, stop):
    """Apply ops ``[start, stop)`` of the seeded torture stream.

    The rng is re-seeded per op index so any process can replay any
    slice of the stream without threading rng state around.
    """
    for index in range(start, stop):
        rng = random.Random(f"{ROOT_SEED}|{seed}|{index}")
        owner = rng.choice(OWNERS)
        mapping = allocator._mappings.get(owner, {})
        roll = rng.random()
        try:
            if roll < 0.4 or not mapping:
                allocator.allocate(owner, rng.randint(1, 2))
            elif roll < 0.6:
                allocator.share(owner, rng.choice(sorted(mapping)),
                                rng.choice(OWNERS))
            elif roll < 0.8:
                allocator.write_fault(owner, rng.choice(sorted(mapping)))
            else:
                allocator.deallocate(owner, rng.choice(sorted(mapping)))
        except AllocationError:
            pass                             # pool full: legal refusal


_CHILD_SCRIPT = """
import json, sys
from repro.checkpoint.protocol import state_hash
from repro.socdmmu.allocator import BlockAllocator
from tests.test_socdmmu_differential import SPLIT_AT, TOTAL_OPS, apply_ops

request = json.load(sys.stdin)
allocator = BlockAllocator.from_payload(request["payload"])
restored_hash = state_hash(allocator.snapshot_payload())
apply_ops(allocator, request["seed"], SPLIT_AT, TOTAL_OPS)
json.dump({"restored_hash": restored_hash,
           "final_hash": state_hash(allocator.snapshot_payload())},
          sys.stdout)
"""


def _run_child(payload: dict, seed: int) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, (str(REPO_ROOT / "src"), str(REPO_ROOT),
                      env.get("PYTHONPATH"))))
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD_SCRIPT],
        input=json.dumps({"payload": payload, "seed": seed}),
        capture_output=True, text=True, env=env, cwd=REPO_ROOT, timeout=60)
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout)


def test_fresh_process_restore_is_byte_identical_and_converges():
    from repro.checkpoint.protocol import state_hash

    seed = 7
    allocator = BlockAllocator(NUM_BLOCKS, 1024)
    apply_ops(allocator, seed, 0, SPLIT_AT)
    checkpoint = allocator.snapshot_payload()
    mid_hash = state_hash(checkpoint)

    # The parent process keeps going without restoring.
    apply_ops(allocator, seed, SPLIT_AT, TOTAL_OPS)
    final_hash = state_hash(allocator.snapshot_payload())
    assert final_hash != mid_hash        # the tail actually did work

    child = _run_child(checkpoint, seed)
    assert child["restored_hash"] == mid_hash
    assert child["final_hash"] == final_hash


def test_full_unit_envelope_restores_in_a_fresh_process():
    """The SoCDMMU's versioned envelope (tables + CoW + ladder state)
    round-trips through a process boundary with the hash intact."""
    from repro.checkpoint.protocol import state_hash
    from repro.framework.builder import build_system

    system = build_system("RTOS7")
    heap = system.heap
    heap.enable_resilience()

    def body(ctx):
        parent = yield from heap.malloc(ctx, 3 * heap.allocator.block_bytes)
        fork = yield from heap.fork_handle(ctx, parent)
        yield from heap.write_fault(ctx, fork, 0)
        yield from heap.free(ctx, fork)

    system.kernel.create_task(body, "bench", 1, "PE1")
    system.kernel.run()
    envelope = heap.snapshot_state()

    script = """
import json, sys
from repro.framework.builder import build_system
from repro.socdmmu.dmmu import SoCDMMU

envelope = json.load(sys.stdin)
restored = SoCDMMU.restore_state(envelope, build_system("RTOS7").kernel)
json.dump({"hash": restored.snapshot_state()["state_hash"],
           "violations": restored.allocator.verify()}, sys.stdout)
"""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, (str(REPO_ROOT / "src"), env.get("PYTHONPATH"))))
    proc = subprocess.run(
        [sys.executable, "-c", script], input=json.dumps(envelope),
        capture_output=True, text=True, env=env, cwd=REPO_ROOT, timeout=60)
    assert proc.returncode == 0, proc.stderr
    reply = json.loads(proc.stdout)
    assert reply["hash"] == envelope["state_hash"]
    assert reply["violations"] == []
