"""Tests for the always-on flight recorder (repro.obs.flight)."""

import json

import pytest

from repro.campaign import CampaignRunner, CampaignSpec, ScenarioSpec
from repro.errors import SimulationError
from repro.obs import (
    NULL_OBS,
    FlightRecorder,
    Observability,
    blackbox_to_perfetto,
    events_to_perfetto,
    read_blackbox,
)


# -- the ring ------------------------------------------------------------------

def test_ring_keeps_only_the_last_capacity_events():
    flight = FlightRecorder(capacity=3)
    flight.enable()
    for index in range(10):
        flight.record("tick", actor="a", index=index)
    assert len(flight) == 3
    assert flight.recorded == 10
    assert [e["data"]["index"] for e in flight.events()] == [7, 8, 9]
    assert [e["data"]["index"] for e in flight.tail(2)] == [8, 9]


def test_capacity_must_be_positive():
    with pytest.raises(SimulationError):
        FlightRecorder(capacity=0)


def test_clock_stamps_events():
    times = iter([5.0, 9.0])
    flight = FlightRecorder(clock=lambda: next(times))
    flight.enable()
    flight.record("a")
    flight.record("b")
    assert [e["time"] for e in flight.events()] == [5.0, 9.0]


def test_null_obs_flight_cannot_be_enabled():
    with pytest.raises(SimulationError):
        NULL_OBS.flight.enable()


def test_observability_enable_enables_flight():
    obs = Observability(label="t", enabled=False)
    assert not obs.flight.enabled
    obs.enable()
    assert obs.flight.enabled
    obs.disable()
    assert not obs.flight.enabled


def test_render_tail_is_readable():
    flight = FlightRecorder()
    assert flight.render_tail() == "(flight recorder empty)"
    flight.enable()
    flight.record("fault_trip", actor="ddu.step", kind="stuck_cell")
    text = flight.render_tail()
    assert "fault_trip" in text and "ddu.step" in text
    assert "kind=stuck_cell" in text


# -- trip auto-dump ------------------------------------------------------------

def test_mark_autodumps_on_trip_kinds(tmp_path):
    target = tmp_path / "bb.json"
    flight = FlightRecorder()
    flight.enable()
    flight.autodump_to(target)
    flight.record("scenario_start", actor="s")   # record() never dumps
    assert not target.exists()
    flight.mark("scenario_end", actor="s")       # not a trip kind
    assert not target.exists()
    flight.mark("fault_trip", actor="ddu.step", kind="dead_unit")
    assert target.exists()
    document = json.loads(target.read_text())
    names = [e["name"] for e in document["traceEvents"]
             if e["ph"] == "i"]
    assert names == ["scenario_start", "scenario_end", "fault_trip"]


def test_resilience_events_are_trip_kinds(tmp_path):
    """Circuit transitions and retry storms arm the black box."""
    from repro.obs.flight import TRIP_KINDS
    assert {"circuit_open", "circuit_close",
            "request_retried"} <= TRIP_KINDS
    target = tmp_path / "bb.json"
    flight = FlightRecorder()
    flight.enable()
    flight.autodump_to(target)
    flight.mark("request_retried", actor="client", op="claim",
                attempt=1)
    assert target.exists()


def test_events_to_perfetto_shapes():
    document = events_to_perfetto([
        {"time": 10.0, "actor": "ddu", "kind": "fault_trip",
         "data": {"kind": "x"}},
        {"time": 12.0, "actor": "", "kind": "checkpoint_write",
         "data": {}},
    ])
    instants = [e for e in document["traceEvents"] if e["ph"] == "i"]
    assert len(instants) == 2
    assert instants[0]["ts"] == 10.0 and instants[0]["s"] == "t"
    threads = {e["args"]["name"] for e in document["traceEvents"]
               if e["ph"] == "M" and e["name"] == "thread_name"}
    assert threads == {"ddu", "(system)"}


# -- streaming sink + torn-line tolerance --------------------------------------

def test_sink_streams_and_reads_back(tmp_path):
    path = tmp_path / "shard0.jsonl"
    flight = FlightRecorder()
    flight.enable()
    flight.arm_sink(path)
    flight.record("scenario_start", actor="shard0", scenario_id="x/0")
    flight.record("scenario_end", actor="shard0", scenario_id="x/0")
    flight.close_sink()
    events = read_blackbox(path)
    assert [e["kind"] for e in events] == ["scenario_start",
                                           "scenario_end"]


def test_read_blackbox_drops_torn_final_line_only(tmp_path):
    path = tmp_path / "bb.jsonl"
    good = json.dumps({"time": 1, "actor": "a", "kind": "k", "data": {}})
    path.write_text(good + "\n" + good[: len(good) // 2])
    assert len(read_blackbox(path)) == 1
    # Corruption anywhere earlier is a real error.
    path.write_text(good[: len(good) // 2] + "\n" + good + "\n")
    with pytest.raises(SimulationError):
        read_blackbox(path)


def test_blackbox_to_perfetto(tmp_path):
    source = tmp_path / "bb.jsonl"
    flight = FlightRecorder()
    flight.enable()
    flight.arm_sink(source)
    flight.record("worker_lost", actor="shard1")
    flight.close_sink()
    out = tmp_path / "bb.json"
    blackbox_to_perfetto(source, out)
    document = json.loads(out.read_text())
    assert any(e.get("name") == "worker_lost"
               for e in document["traceEvents"])


# -- hook sites ----------------------------------------------------------------

def test_health_transition_lands_in_flight_recorder():
    from repro.faults.health import UnitHealth
    obs = Observability(label="t", enabled=True)
    health = UnitHealth("DDU", fail_threshold=2, obs=obs)
    health.anomaly("parity")
    health.anomaly("parity")
    kinds = [e["kind"] for e in obs.flight.events()]
    assert kinds.count("health_transition") == 2   # HEALTHY->SUSPECT->FAILED
    last = obs.flight.events()[-1]
    assert last["actor"] == "DDU"
    assert last["data"]["state"] == "failed"


def test_fault_trip_lands_in_flight_recorder():
    from repro.faults.injector import FaultInjector
    from repro.faults.plan import FaultPlan, FaultSpec
    obs = Observability(label="t", enabled=True)
    plan = FaultPlan(name="p", specs=(
        FaultSpec(site="ddu.hang", kind="hang", at=1),))
    injector = FaultInjector(plan, obs=obs)
    injector.fire("ddu.hang")
    injector.fire("ddu.hang")
    trips = [e for e in obs.flight.events() if e["kind"] == "fault_trip"]
    assert len(trips) == 1
    assert trips[0]["actor"] == "ddu.hang"
    assert trips[0]["data"]["kind"] == "hang"


def test_checkpoint_write_lands_in_flight_recorder(tmp_path):
    from repro.checkpoint.scenario import ScenarioCheckpoint
    obs = Observability(label="t", enabled=True)
    checkpoint = ScenarioCheckpoint(tmp_path, "s/00001", obs=obs)
    checkpoint.save({"step": 16})
    writes = [e for e in obs.flight.events()
              if e["kind"] == "checkpoint_write"]
    assert len(writes) == 1
    assert writes[0]["actor"] == "s/00001"


# -- campaign crash forensics --------------------------------------------------

def test_sigkilled_worker_leaves_readable_blackbox(tmp_path):
    """The acceptance case: a hard-killed worker's black box survives
    and covers the final events (the scenario it died inside)."""
    blackbox_dir = tmp_path / "blackbox"
    campaign = CampaignSpec(name="t", scenarios=(
        ScenarioSpec(name="ok", generator="rag.random",
                     checker="pdda-vs-oracle",
                     params={"m": 2, "n": 2}, repeats=2),
        ScenarioSpec(name="boom", generator="census",
                     checker="chaos.crash", params={"m": 2, "n": 2}),
    ))
    run = CampaignRunner(campaign, workers=1, retries=1, backoff=0.01,
                         blackbox_dir=str(blackbox_dir)).run()
    by_id = {r.scenario_id: r for r in run.results}
    assert by_id["boom/00000"].verdict == "crash"
    # The streamed JSONL survived the os._exit inside the worker.
    events = read_blackbox(blackbox_dir / "shard0.jsonl")
    kinds = [(e["kind"], e["data"].get("scenario_id")) for e in events]
    assert ("scenario_start", "boom/00000") in kinds
    # Every completed scenario has its start/end pair on record.
    assert ("scenario_end", "ok/00000") in kinds
    # The parent converted the dead shard's box into a Perfetto trace.
    converted = blackbox_dir / "shard0.blackbox.json"
    assert converted.exists()
    document = json.loads(converted.read_text())
    assert any(e.get("name") == "scenario_start"
               for e in document["traceEvents"])
    # ... and its own black box recorded the crash trip.
    parent = json.loads(
        (blackbox_dir / "campaign.blackbox.json").read_text())
    assert any(e.get("name") == "worker_crash"
               for e in parent["traceEvents"])
