"""Tests for Algorithm 3 (the deadlock avoidance core, software DAA)."""

import pytest

from repro.deadlock.daa import Action, DeadlockKind, SoftwareDAA
from repro.errors import ResourceProtocolError


def _core(livelock_threshold=3):
    return SoftwareDAA(["p1", "p2", "p3"], ["q1", "q2", "q3"],
                       {"p1": 1, "p2": 2, "p3": 3},
                       livelock_threshold=livelock_threshold)


def test_available_resource_granted_immediately():
    core = _core()
    decision = core.request("p1", "q1")
    assert decision.action is Action.GRANTED
    assert core.rag.holder_of("q1") == "p1"
    assert decision.detection_runs == 0


def test_busy_resource_without_deadlock_pends():
    core = _core()
    core.request("p1", "q1")
    decision = core.request("p2", "q1")
    assert decision.action is Action.PENDING
    assert decision.deadlock_kind is DeadlockKind.NONE
    assert "q1" in core.rag.requests_of("p2")
    assert decision.detection_runs == 1


def _setup_rdl(core):
    """p1 holds q1, p2 holds q2; p2 waits for q1.  p1 requesting q2
    closes the cycle -> R-dl."""
    core.request("p1", "q1")
    core.request("p2", "q2")
    core.request("p2", "q1")


def test_rdl_high_priority_requester_pends_and_owner_asked():
    core = _core()
    _setup_rdl(core)
    decision = core.request("p1", "q2")
    assert decision.action is Action.PENDING
    assert decision.deadlock_kind is DeadlockKind.REQUEST
    assert decision.ask_release == (("p2", "q2"),)
    # The pending edge stays: the avoidance plan is that p2 releases.
    assert "q2" in core.rag.requests_of("p1")


def test_rdl_low_priority_requester_told_to_give_up():
    core = _core()
    core.request("p3", "q3")
    core.request("p1", "q1")
    core.request("p1", "q3")        # p1 waits on p3
    decision = core.request("p3", "q1")   # would close the cycle
    assert decision.action is Action.GIVE_UP
    assert decision.deadlock_kind is DeadlockKind.REQUEST
    assert ("p3", "q3") in decision.ask_release
    # The request edge was rolled back.
    assert "q1" not in core.rag.requests_of("p3")


def test_release_with_no_waiters_frees_resource():
    core = _core()
    core.request("p1", "q1")
    decision = core.release("p1", "q1")
    assert decision.action is Action.RELEASED
    assert core.rag.is_available("q1")


def test_release_hands_off_to_highest_priority_waiter():
    core = _core()
    core.request("p3", "q1")
    core.request("p2", "q1")
    core.request("p1", "q1")
    decision = core.release("p3", "q1")
    assert decision.action is Action.HANDED_OFF
    assert decision.granted_to == "p1"
    assert decision.deadlock_kind is DeadlockKind.NONE


def test_gdl_grant_goes_to_lower_priority_process():
    """The Table 6 situation: granting to the best waiter would close a
    cycle, so the grant falls through to the lower-priority waiter."""
    core = _core()
    core.request("p1", "q2")          # q2 -> p1 (the contested resource)
    core.request("p3", "q2")          # p3 pends on q2
    core.request("p3", "q1")          # q1 -> p3  (p3's second resource)
    core.request("p2", "q2")          # p2 pends on q2
    core.request("p2", "q1")          # p2 pends on q1 too
    decision = core.release("p1", "q2")
    # Granting q2 to p2 closes p2-q1-p3-q2; p3 is safe.
    assert decision.granted_to == "p3"
    assert decision.deadlock_kind is DeadlockKind.GRANT
    assert decision.detection_runs == 2   # p2 tried, then p3


def test_livelock_threshold_escalates_to_owner():
    core = _core(livelock_threshold=2)
    core.request("p3", "q3")
    core.request("p1", "q1")
    core.request("p1", "q3")
    first = core.request("p3", "q1")
    assert first.action is Action.GIVE_UP
    # p3 retries the same request (still R-dl): threshold reached.
    second = core.request("p3", "q1")
    assert second.action is Action.PENDING
    assert second.livelock
    assert second.ask_release == (("p1", "q1"),)


def test_stats_accumulate():
    core = _core()
    core.request("p1", "q1")
    core.request("p2", "q1")
    core.release("p1", "q1")
    stats = core.stats
    assert stats.invocations == 3
    assert stats.total_cycles > 0
    assert stats.mean_cycles > 0
    assert len(stats.decisions) == 3


def test_software_cycles_include_detection_cost():
    core = _core()
    granted = core.request("p1", "q1")          # no detection
    pended = core.request("p2", "q1")           # one detection run
    assert pended.cycles > granted.cycles


def test_priorities_required_for_all_processes():
    with pytest.raises(ResourceProtocolError):
        SoftwareDAA(["p1", "p2"], ["q1"], {"p1": 1})


def test_bad_livelock_threshold_rejected():
    with pytest.raises(ResourceProtocolError):
        _core(livelock_threshold=0)
