"""Differential checkpoint tests: interrupted == uninterrupted.

Two scenarios from the acceptance criteria, both at root-42 seeds:

* **Table 5 workload**: replay the Jini application's grant/release
  event sequence through an obs-instrumented DDU; snapshot DDU + RAG at
  the midpoint, restore them in a *fresh process* (new interpreter, new
  metrics registry), finish the replay there, and assert verdicts, step
  counts, and the ``matrix.fastpath.*`` counters decompose exactly:
  uninterrupted totals == counters-at-snapshot + fresh-process deltas.

* **faults campaign scenario**: a ``crash_at_step`` worker that
  ``os._exit``s mid-scenario, is retried, restores from its
  mid-scenario checkpoint, and must produce the verdict/steps/cycles/
  detail of an uninterrupted run.  The crash only fires on a run with
  no checkpoint, so a passing retry *proves* the restore path ran — a
  from-scratch re-execution would crash again and exhaust retries.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.campaign import CampaignRunner, CampaignSpec, ScenarioSpec
from repro.apps.jini import run_jini_app
from repro.deadlock.ddu import DDU
from repro.framework.builder import build_system
from repro.obs import Observability
from repro.rag.graph import RAG
from repro.rag.matrix import StateMatrix

SRC = str(Path(__file__).resolve().parent.parent / "src")
SEED_ROOT = 42

FASTPATH_COUNTERS = ("matrix.fastpath.detections",
                     "matrix.fastpath.passes",
                     "matrix.fastpath.cleared_edges")

# -- Table 5 / Jini event-sequence replay --------------------------------------

def _capture_jini_events():
    """(actor, kind, resource) grant/release timeline of the Jini app."""
    system = build_system("RTOS2")
    run_jini_app("RTOS2", system=system)
    kinds = ("resource_granted", "resource_released")
    return [
        (rec.actor, rec.kind, rec.details["resource"])
        for rec in system.soc.trace.filter(
            predicate=lambda r: r.kind in kinds)]

def _census(events):
    processes = sorted({actor for actor, _, _ in events})
    resources = sorted({resource for _, _, resource in events})
    return processes, resources

def _apply_event(rag, actor, kind, resource):
    if kind == "resource_granted":
        rag.grant(resource, actor)
    else:
        rag.release(actor, resource)

def _replay(ddu, rag, events):
    """Apply events one at a time, detecting after each; verdict list."""
    verdicts = []
    for actor, kind, resource in events:
        _apply_event(rag, actor, kind, resource)
        ddu.load(StateMatrix.from_rag(rag))
        result = ddu.detect()
        verdicts.append([result.deadlock, result.iterations,
                         result.passes, result.cycles])
    return verdicts

def _counters(obs):
    return {name: obs.metrics.counter(name).value
            for name in FASTPATH_COUNTERS}

RESUME_SCRIPT = """\
import json, sys
from repro.deadlock.ddu import DDU
from repro.rag.graph import RAG
from repro.rag.matrix import StateMatrix
from repro.obs import Observability

payload = json.load(open(sys.argv[1]))
obs = Observability(label="resumed", enabled=True)
ddu = DDU.restore_state(payload["ddu"], obs=obs)
rag = RAG.restore_state(payload["rag"])
verdicts = []
for actor, kind, resource in payload["events"]:
    if kind == "resource_granted":
        rag.grant(resource, actor)
    else:
        rag.release(actor, resource)
    ddu.load(StateMatrix.from_rag(rag))
    result = ddu.detect()
    verdicts.append([result.deadlock, result.iterations,
                     result.passes, result.cycles])
counters = {name: obs.metrics.counter(name).value
            for name in payload["counter_names"]}
json.dump({"verdicts": verdicts, "counters": counters,
           "final_hash": ddu.snapshot_state()["state_hash"]},
          sys.stdout)
"""

class TestJiniMidpointRestore:
    def test_fresh_process_restore_matches_uninterrupted(self, tmp_path):
        events = _capture_jini_events()
        assert len(events) >= 6, "Jini replay produced too few events"
        processes, resources = _census(events)

        # Uninterrupted reference run.
        ref_obs = Observability(label="reference", enabled=True)
        ref_ddu = DDU(len(resources), len(processes), obs=ref_obs)
        ref_rag = RAG(processes, resources)
        ref_verdicts = _replay(ref_ddu, ref_rag, events)
        ref_counters = _counters(ref_obs)
        ref_hash = ref_ddu.snapshot_state()["state_hash"]

        # Interrupted run: stop at the midpoint and snapshot.
        midpoint = len(events) // 2
        part_obs = Observability(label="part1", enabled=True)
        part_ddu = DDU(len(resources), len(processes), obs=part_obs)
        part_rag = RAG(processes, resources)
        part1_verdicts = _replay(part_ddu, part_rag, events[:midpoint])
        counters_at_snapshot = _counters(part_obs)

        payload = tmp_path / "midpoint.json"
        payload.write_text(json.dumps({
            "ddu": part_ddu.snapshot_state(),
            "rag": part_rag.snapshot_state(),
            "events": events[midpoint:],
            "counter_names": list(FASTPATH_COUNTERS),
        }))
        script = tmp_path / "resume.py"
        script.write_text(RESUME_SCRIPT)
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        completed = subprocess.run(
            [sys.executable, str(script), str(payload)],
            env=env, capture_output=True, text=True, timeout=120)
        assert completed.returncode == 0, completed.stderr
        resumed = json.loads(completed.stdout)

        # Verdicts and step counts decompose exactly.
        assert part1_verdicts + resumed["verdicts"] == ref_verdicts
        assert len(part1_verdicts) + len(resumed["verdicts"]) == len(events)
        # Counters: fresh-process deltas start at zero, so snapshot-time
        # values + fresh deltas must equal the uninterrupted totals.
        for name in FASTPATH_COUNTERS:
            assert counters_at_snapshot[name] + \
                resumed["counters"][name] == ref_counters[name], name
        # And the final register file is bit-identical.
        assert resumed["final_hash"] == ref_hash

    def test_jini_event_capture_is_deterministic(self):
        assert _capture_jini_events() == _capture_jini_events()

# -- faults-campaign scenario: crash, retry, restore ---------------------------

def _fault_spec(crash: bool) -> CampaignSpec:
    params = {"m": 4, "n": 4, "model": "cycle-storm", "events": 40,
              "checkpoint_every": 8}
    if crash:
        params["crash_at_step"] = 20
    return CampaignSpec(name="ckdiff", scenarios=(
        ScenarioSpec(name="faults", generator="census",
                     checker="faults.detection-verdicts", params=params),))

def _outcome(record):
    return {key: record[key]
            for key in ("verdict", "ok", "steps", "cycles", "detail")}

def _by_id(run, scenario_id):
    return next(r.to_record() for r in run.results
                if r.scenario_id == scenario_id)

class TestFaultScenarioCrashRestore:
    def test_crashed_scenario_restores_to_identical_outcome(self, tmp_path):
        clean = CampaignRunner(_fault_spec(crash=False),
                               seed_root=SEED_ROOT, workers=1).run()
        crashed = CampaignRunner(
            _fault_spec(crash=True), seed_root=SEED_ROOT, workers=1,
            retries=2, backoff=0.0,
            checkpoint_dir=str(tmp_path / "checkpoints")).run()
        clean_record = _by_id(clean, "faults/00000")
        crashed_record = _by_id(crashed, "faults/00000")
        # The worker really died and was retried...
        assert crashed_record["attempts"] == 2
        # ...and the retry restored mid-scenario state: verdict, step
        # count, cycle count and detail text all match the clean run.
        assert _outcome(crashed_record) == _outcome(clean_record)
        assert clean_record["verdict"] == "pass"

    def test_crash_without_checkpoint_dir_exhausts_retries(self):
        # Without a checkpoint directory the retry restarts from
        # scratch, crashes again at the same step, and the scenario is
        # reported as a crash — the checkpoint is what breaks the loop.
        run = CampaignRunner(_fault_spec(crash=True),
                             seed_root=SEED_ROOT, workers=1,
                             retries=2, backoff=0.0).run()
        record = _by_id(run, "faults/00000")
        assert record["verdict"] == "crash"
        assert not record["ok"]
