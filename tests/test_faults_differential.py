"""Differential oracle: degraded mode === hardware mode, verdict for verdict.

Graceful degradation (RTOS2 -> RTOS1, RTOS4 -> RTOS3) is only admissible
because the software fallback is *indistinguishable* from the healthy
hardware path in everything the RTOS acts on: detection verdicts and
avoidance decision streams.  This suite pins a force-failed-over
:class:`ResilientDetector`/:class:`ResilientAvoider` against the healthy
hardware path over the same seeded states and op streams the bitmatrix
equivalence suite uses (seed root 42 — the CI determinism job's root).
"""

from __future__ import annotations

import random

import pytest

from repro.campaign.spec import derive_seed
from repro.deadlock.dau import DAU
from repro.deadlock.ddu import DDU
from repro.deadlock.pdda import pdda_detect
from repro.faults import ResiliencePolicy, ResilientAvoider, ResilientDetector
from repro.rag.generate import random_state

SEED_ROOT = 42
SIZES = [(1, 1), (1, 4), (4, 1), (2, 3), (5, 5), (8, 5), (5, 8),
         (16, 16), (33, 7)]

#: No scrubbing: a forced-failed-over wrapper must stay in software mode
#: for the whole differential run instead of re-qualifying the unit.
PINNED = dict(sample_every=1, fail_threshold=2, recover_after=2,
              scrub_after=10 ** 9)


def _seed(tag: str) -> int:
    return derive_seed(SEED_ROOT, tag)


def _random_rags():
    for m, n in SIZES:
        for grant in (0.5, 0.9):
            tag = f"faults-diff/{m}x{n}/g{grant}"
            yield tag, random_state(
                m, n, grant_fraction=grant, request_fraction=0.4,
                rng=random.Random(_seed(tag)))


@pytest.mark.parametrize("tag,rag", list(_random_rags()),
                         ids=[tag for tag, _ in _random_rags()])
def test_detection_fallback_matches_hardware(tag, rag):
    m, n = rag.num_resources, rag.num_processes
    hardware = ResilientDetector(DDU(m, n), ResiliencePolicy(**PINNED))
    fallback = ResilientDetector(DDU(m, n), ResiliencePolicy(**PINNED))
    fallback.force_failover("differential")
    assert fallback.mode == "software"
    hw = hardware.detect(rag)
    sw = fallback.detect(rag)
    assert hw.hardware and not sw.hardware
    assert hw.deadlock == sw.deadlock == pdda_detect(rag).deadlock
    assert fallback.mode == "software"    # no silent fail-back


def test_detection_fallback_matches_over_mutation_stream():
    from repro.campaign.checkers import _mutate_rag
    from repro.rag.graph import RAG
    rng = random.Random(_seed("faults-diff/stream"))
    processes = tuple(f"p{t + 1}" for t in range(6))
    resources = tuple(f"q{s + 1}" for s in range(5))
    rag = RAG(processes, resources)
    hardware = ResilientDetector(DDU(5, 6), ResiliencePolicy(**PINNED))
    fallback = ResilientDetector(DDU(5, 6), ResiliencePolicy(**PINNED))
    fallback.force_failover("differential")
    for _ in range(120):
        _mutate_rag(rag, rng)
        hw = hardware.detect(rag)
        sw = fallback.detect(rag)
        assert hw.deadlock == sw.deadlock == pdda_detect(rag).deadlock
    assert hardware.mode == "hardware"
    assert fallback.mode == "software"


def _decision_key(decision):
    return (decision.action, decision.granted_to, decision.resource,
            decision.livelock, tuple(sorted(decision.ask_release)))


@pytest.mark.parametrize("m,n", [(2, 3), (4, 4), (5, 8), (8, 5)])
def test_avoidance_fallback_matches_hardware(m, n):
    """The same op stream through the DAU and through the RTOS3 twin
    produces the same decision stream and the same RAG evolution."""
    rng = random.Random(_seed(f"faults-diff/avoid/{m}x{n}"))
    processes = tuple(f"p{t + 1}" for t in range(n))
    resources = tuple(f"q{s + 1}" for s in range(m))
    priorities = {p: i + 1 for i, p in enumerate(processes)}
    hardware = ResilientAvoider(DAU(processes, resources, priorities),
                                ResiliencePolicy(**PINNED))
    fallback = ResilientAvoider(DAU(processes, resources, priorities),
                                ResiliencePolicy(**PINNED))
    fallback.force_failover("differential")
    assert fallback.mode == "software"
    for step in range(100):
        rag = hardware.active_core.rag
        ops = []
        for p in processes:
            held = set(rag.held_by(p))
            pending = set(rag.requests_of(p))
            ops.extend(("request", p, q) for q in resources
                       if q not in held and q not in pending)
            ops.extend(("release", p, q) for q in sorted(held))
        if not ops:
            break
        op, process, resource = rng.choice(ops)
        hw = hardware.decide("PE1", op, process, resource)
        sw = fallback.decide("PE1", op, process, resource)
        assert hw.hardware and not sw.hardware
        assert _decision_key(hw.decision) == _decision_key(sw.decision), \
            (step, op, process, resource)
        assert hardware.active_core.rag == fallback.active_core.rag, step
    assert hardware.mode == "hardware"
    assert fallback.mode == "software"
