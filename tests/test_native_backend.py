"""The native reduction kernel === the pure-Python sweep, bit for bit.

``REPRO_MATRIX_BACKEND=native`` routes whole-matrix reductions through
:mod:`repro.rag.native` — numba when importable, else a C kernel
compiled at first use with the system compiler.  Either way (and when
*neither* loads), every verdict, count and residual must match
:meth:`BitMatrix.reduce` exactly; this suite grinds that over seeded
random states (root 42), multi-word widths, and the degraded-path
combinations of the env knobs.
"""

from __future__ import annotations

import random

import pytest

from repro.deadlock.pdda import pdda_detect
from repro.rag import native
from repro.rag.bitmatrix import (
    NATIVE_BACKEND,
    BitMatrix,
    NativeBitMatrix,
)
from repro.rag.generate import (
    chain_state,
    cycle_state,
    deadlock_free_state,
    random_state,
    worst_case_state,
)

SEED_ROOT = 42

needs_kernel = pytest.mark.skipif(
    not native.available(),
    reason="no native kernel (numba missing and no C compiler)")


def _cases():
    rng = random.Random(SEED_ROOT)
    for m, n in [(1, 1), (4, 7), (16, 16), (33, 7), (64, 64),
                 (65, 65), (100, 40), (128, 128)]:
        yield random_state(m, n, grant_fraction=0.7,
                           request_fraction=0.4,
                           rng=random.Random(rng.randrange(2 ** 31)))
    yield cycle_state(9)
    yield chain_state(17)
    yield worst_case_state(70, 70)
    yield deadlock_free_state(12, 12, rng=random.Random(7))


@needs_kernel
def test_native_reduce_matches_python():
    for rag in _cases():
        python = BitMatrix.from_rag(rag)
        compiled = NativeBitMatrix.from_rag(rag)
        expected = python.reduce()
        got = compiled.reduce()
        assert got == expected, (rag.num_resources, rag.num_processes)
        assert compiled == python, "residual planes diverged"
        assert compiled.edge_count == python.edge_count


@needs_kernel
def test_native_backend_through_pdda():
    """The backend knob end-to-end: pdda_detect(backend='native')."""
    for rag in (cycle_state(6), chain_state(9),
                random_state(65, 65, seed=SEED_ROOT)):
        fast = pdda_detect(rag)
        compiled = pdda_detect(rag, backend=NATIVE_BACKEND)
        assert isinstance(compiled.residual, NativeBitMatrix)
        assert compiled.deadlock == fast.deadlock == rag.has_cycle()
        assert compiled.iterations == fast.iterations
        assert compiled.passes == fast.passes
        assert compiled.software_cycles == fast.software_cycles
        assert compiled.residual == fast.residual


@needs_kernel
def test_native_random_op_stream_differential():
    """Mutate twins in lockstep, reduce both every few steps."""
    from repro.rag.matrix import CellState

    side = 70  # two words per column
    rng = random.Random(SEED_ROOT * 101)
    python = BitMatrix(side, side)
    compiled = NativeBitMatrix(side, side)
    for step in range(200):
        s, t = rng.randrange(side), rng.randrange(side)
        for matrix in (python, compiled):
            cell = matrix.get(s, t)
            if cell is CellState.EMPTY:
                if matrix.row_bwo(s)[1] == 0:
                    matrix.set_grant(s, t)
                else:
                    matrix.set_request(s, t)
            else:
                matrix.clear(s, t)
        if step % 25 == 24:
            a = python.copy()
            b = compiled.copy()
            assert type(b) is NativeBitMatrix
            assert a.reduce() == b.reduce()
            assert a == b


def test_copy_preserves_native_type():
    matrix = NativeBitMatrix.from_rag(cycle_state(4))
    clone = matrix.copy()
    assert type(clone) is NativeBitMatrix
    assert clone == matrix
    clone.clear_row(0)
    assert clone != matrix  # no aliasing


def test_disabled_kernel_degrades_gracefully(monkeypatch):
    """With the kernel vetoed, NativeBitMatrix is just BitMatrix —
    same answers, no errors, no import-time dependency."""
    monkeypatch.setenv(native.ENV_DISABLE, "1")
    native.reset()
    try:
        assert not native.available()
        assert native.impl_name() is None
        rag = cycle_state(5)
        python = BitMatrix.from_rag(rag)
        degraded = NativeBitMatrix.from_rag(rag)
        assert degraded.reduce() == python.reduce()
        assert degraded == python
    finally:
        monkeypatch.delenv(native.ENV_DISABLE)
        native.reset()


def test_forced_unavailable_impl_degrades(monkeypatch):
    """Forcing numba on a host without it must mean 'unavailable',
    never a crash or a silent switch to the other impl."""
    try:
        import numba  # noqa: F401
        pytest.skip("numba installed; the forced impl would load")
    except ImportError:
        pass
    monkeypatch.setenv(native.ENV_IMPL, "numba")
    native.reset()
    try:
        assert native.impl_name() is None
        matrix = NativeBitMatrix.from_rag(chain_state(6))
        oracle = BitMatrix.from_rag(chain_state(6))
        assert matrix.reduce() == oracle.reduce()
    finally:
        monkeypatch.delenv(native.ENV_IMPL)
        native.reset()


@needs_kernel
def test_impl_name_is_reported():
    assert native.impl_name() in ("numba", "cext")
