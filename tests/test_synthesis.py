"""Tests for the Table 1/2 synthesis models."""

import pytest

from repro import calibration
from repro.deadlock.synthesis import (
    DAU_SYNTHESIS,
    DDU_PUBLISHED,
    DDU_SYNTHESIS_TABLE,
    dau_synthesis,
    ddu_synthesis,
    step_bound,
    worst_case_iterations,
)
from repro.errors import ConfigurationError


def test_published_points_reproduced_exactly():
    for (p, r), (lines, area) in DDU_PUBLISHED.items():
        estimate = ddu_synthesis(p, r)
        assert estimate.lines_of_verilog == lines
        assert estimate.area_nand2 == area
        assert estimate.published


def test_table_1_worst_iterations():
    expected = {(2, 3): 2, (5, 5): 6, (7, 7): 10, (10, 10): 16,
                (50, 50): 96}
    for (p, r), worst in expected.items():
        assert ddu_synthesis(p, r).worst_iterations == worst


def test_step_bound_is_one_more_than_table_iterations():
    # The tech-report bound 2*min-3 counts the final check pass too.
    for (p, r) in ((5, 5), (7, 7), (10, 10), (50, 50)):
        assert step_bound(p, r) == worst_case_iterations(p, r) + 1


def test_interpolated_sizes_are_monotone():
    small = ddu_synthesis(4, 4)
    large = ddu_synthesis(20, 20)
    assert not small.published and not large.published
    assert large.area_nand2 > small.area_nand2
    assert large.lines_of_verilog > small.lines_of_verilog


def test_model_residuals_are_small():
    # The cell-census fit stays within ~60 gates of every anchor.
    for row in DDU_SYNTHESIS_TABLE:
        assert abs(row.model_residual) < 60


def test_degenerate_sizes():
    assert worst_case_iterations(1, 5) == 1
    with pytest.raises(ConfigurationError):
        worst_case_iterations(0, 5)
    with pytest.raises(ConfigurationError):
        ddu_synthesis(0, 3)


def test_dau_synthesis_matches_table_2():
    synthesis = dau_synthesis()
    assert synthesis.ddu_lines == 203
    assert synthesis.ddu_area == 364
    assert synthesis.other_lines == 344
    assert synthesis.other_area == 1472
    assert synthesis.total_lines == 547
    assert synthesis.total_area == 1836
    assert synthesis.worst_avoidance_steps == 38
    assert synthesis.worst_detection_iterations == 6


def test_dau_area_fraction_is_about_005_percent():
    fraction = DAU_SYNTHESIS.area_fraction_of_mpsoc
    assert 0.00003 < fraction < 0.00006      # ~.005% as a fraction
    assert DAU_SYNTHESIS.mpsoc_gates == calibration.MPSOC_TOTAL_GATES


def test_dau_scales_with_census():
    small = dau_synthesis(3, 3)
    large = dau_synthesis(10, 10)
    assert large.total_area > small.total_area
    assert large.worst_avoidance_steps > small.worst_avoidance_steps
