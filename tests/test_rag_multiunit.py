"""Tests for the multi-unit resource extension."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.deadlock.pdda import pdda_detect
from repro.errors import ResourceProtocolError
from repro.rag.generate import random_state
from repro.rag.multiunit import MultiUnitSystem


def _two_dma():
    return MultiUnitSystem(["p1", "p2", "p3"], {"DMA": 2, "SPM": 1})


def test_bookkeeping_and_availability():
    system = _two_dma()
    system.request("p1", "DMA", 1)
    system.grant("p1", "DMA", 1)
    assert system.available("DMA") == 1
    assert system.allocation_of("p1", "DMA") == 1
    system.release("p1", "DMA", 1)
    assert system.available("DMA") == 2


def test_protocol_violations_rejected():
    system = _two_dma()
    with pytest.raises(ResourceProtocolError):
        system.grant("p1", "DMA")                 # no request outstanding
    with pytest.raises(ResourceProtocolError):
        system.release("p1", "DMA")               # holds nothing
    with pytest.raises(ResourceProtocolError):
        system.request("p1", "DMA", 3)            # exceeds total
    with pytest.raises(ResourceProtocolError):
        system.request("p1", "GPU")
    with pytest.raises(ResourceProtocolError):
        MultiUnitSystem(["p"], {"X": 0})


def test_grant_limited_by_availability():
    system = _two_dma()
    system.request("p1", "DMA", 2)
    system.grant("p1", "DMA", 2)
    system.request("p2", "DMA", 1)
    with pytest.raises(ResourceProtocolError):
        system.grant("p2", "DMA", 1)


def test_withdraw_cancels_request():
    system = _two_dma()
    system.request("p1", "SPM")
    system.withdraw("p1", "SPM")
    assert system.outstanding_request("p1", "SPM") == 0


def test_cycle_with_spare_units_is_not_deadlock():
    """The key multi-unit subtlety: a wait-for cycle through a class
    with a spare unit is NOT a deadlock."""
    system = MultiUnitSystem(["p1", "p2"], {"A": 2, "B": 1})
    system.request("p1", "A"); system.grant("p1", "A")
    system.request("p2", "B"); system.grant("p2", "B")
    system.request("p1", "B")     # p1 waits on p2
    system.request("p2", "A")     # p2 waits on... the spare A unit!
    result = system.detect()
    assert not result.deadlock
    assert result.reduction_order[0] == "p2"


def test_true_multiunit_deadlock():
    system = MultiUnitSystem(["p1", "p2"], {"A": 2, "B": 1})
    system.request("p1", "A"); system.grant("p1", "A")
    system.request("p2", "A"); system.grant("p2", "A")   # A exhausted
    system.request("p1", "B"); system.grant("p1", "B")   # B exhausted
    system.request("p2", "B")     # p2 waits on p1
    system.request("p1", "A")     # p1 waits on more A
    result = system.detect()
    assert result.deadlock
    assert result.deadlocked_processes == ("p1", "p2")


def test_idle_processes_never_reported():
    system = _two_dma()
    assert system.detect().deadlock is False
    assert system.detect().deadlocked_processes == ()


def test_to_rag_requires_single_unit():
    with pytest.raises(ResourceProtocolError):
        _two_dma().to_rag()


@given(st.integers(0, 2**32 - 1), st.integers(2, 5), st.integers(2, 5))
@settings(max_examples=150, deadline=None)
def test_single_unit_projection_agrees_with_pdda(seed, m, n):
    """On single-unit classes the counting detection and PDDA agree."""
    state = random_state(m, n, rng=random.Random(seed))
    system = MultiUnitSystem(state.processes,
                             {q: 1 for q in state.resources})
    for q, p in state.grant_edges():
        system.request(p, q)
        system.grant(p, q)
    for p, q in state.request_edges():
        system.request(p, q)
    counting = system.detect()
    matrix_based = pdda_detect(state)
    assert counting.deadlock == matrix_based.deadlock
    assert system.to_rag() == state
