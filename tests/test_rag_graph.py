"""Tests for the RAG protocol rules and cycle oracle."""

import pytest

from repro.errors import ResourceProtocolError
from repro.rag.graph import RAG


def _simple_rag():
    return RAG(["p1", "p2", "p3"], ["q1", "q2", "q3"])


def test_nodes_fixed_at_construction():
    rag = _simple_rag()
    assert rag.processes == ("p1", "p2", "p3")
    assert rag.resources == ("q1", "q2", "q3")
    assert rag.num_processes == 3
    assert rag.num_resources == 3


def test_duplicate_names_rejected():
    with pytest.raises(ResourceProtocolError):
        RAG(["p1", "p1"], ["q1"])
    with pytest.raises(ResourceProtocolError):
        RAG(["p1"], ["q1", "q1"])
    with pytest.raises(ResourceProtocolError):
        RAG(["x"], ["x"])


def test_grant_and_holder():
    rag = _simple_rag()
    assert rag.is_available("q1")
    rag.grant("q1", "p1")
    assert rag.holder_of("q1") == "p1"
    assert rag.held_by("p1") == ("q1",)
    assert not rag.is_available("q1")


def test_single_unit_rule():
    rag = _simple_rag()
    rag.grant("q1", "p1")
    with pytest.raises(ResourceProtocolError):
        rag.grant("q1", "p2")


def test_request_held_resource_rejected():
    rag = _simple_rag()
    rag.grant("q1", "p1")
    with pytest.raises(ResourceProtocolError):
        rag.add_request("p1", "q1")


def test_double_request_rejected():
    rag = _simple_rag()
    rag.add_request("p1", "q1")
    with pytest.raises(ResourceProtocolError):
        rag.add_request("p1", "q1")


def test_grant_consumes_matching_request():
    rag = _simple_rag()
    rag.add_request("p1", "q1")
    rag.grant("q1", "p1")
    assert rag.requests_of("p1") == ()
    assert rag.holder_of("q1") == "p1"


def test_only_holder_may_release():
    rag = _simple_rag()
    rag.grant("q1", "p1")
    with pytest.raises(ResourceProtocolError):
        rag.release("p2", "q1")
    rag.release("p1", "q1")
    assert rag.is_available("q1")


def test_waiters_and_requests():
    rag = _simple_rag()
    rag.grant("q1", "p1")
    rag.add_request("p2", "q1")
    rag.add_request("p3", "q1")
    assert rag.waiters_for("q1") == ("p2", "p3")
    assert rag.requests_of("p2") == ("q1",)


def test_edge_iteration_and_count():
    rag = _simple_rag()
    rag.grant("q1", "p1")
    rag.add_request("p2", "q1")
    rag.add_request("p1", "q2")
    assert set(rag.grant_edges()) == {("q1", "p1")}
    assert set(rag.request_edges()) == {("p2", "q1"), ("p1", "q2")}
    assert rag.edge_count == 3
    assert not rag.is_empty()


def test_copy_is_independent():
    rag = _simple_rag()
    rag.grant("q1", "p1")
    clone = rag.copy()
    clone.release("p1", "q1")
    assert rag.holder_of("q1") == "p1"
    assert clone.is_available("q1")


def test_equality():
    a = _simple_rag()
    b = _simple_rag()
    assert a == b
    a.grant("q1", "p1")
    assert a != b


def test_has_cycle_detects_two_process_cycle():
    rag = _simple_rag()
    rag.grant("q1", "p1")
    rag.grant("q2", "p2")
    rag.add_request("p1", "q2")
    rag.add_request("p2", "q1")
    assert rag.has_cycle()


def test_no_cycle_in_chain():
    rag = _simple_rag()
    rag.grant("q1", "p1")
    rag.grant("q2", "p2")
    rag.add_request("p1", "q2")
    assert not rag.has_cycle()


def test_unknown_node_errors():
    rag = _simple_rag()
    with pytest.raises(ResourceProtocolError):
        rag.grant("q9", "p1")
    with pytest.raises(ResourceProtocolError):
        rag.add_request("p9", "q1")
    with pytest.raises(ResourceProtocolError):
        rag.successors("mystery")
