"""Tests for the cross-run perf trend tracker (repro.obs.trend)."""

import json

import pytest

from repro.campaign.__main__ import main as campaign_main
from repro.errors import ConfigurationError
from repro.obs.trend import (
    append_history,
    check_trends,
    collect_bench_entries,
    load_history,
    metric_direction,
    profile_entries,
)


def _history(tmp_path, runs):
    """Write a history of {metric: value} dicts; returns its records."""
    path = tmp_path / "BENCH_HISTORY.jsonl"
    for index, entries in enumerate(runs):
        append_history(path, entries, run_id=f"run{index}",
                       timestamp=float(index))
    return load_history(path)


# -- direction registry --------------------------------------------------------

def test_metric_directions():
    assert metric_direction("BENCH_x.speedup") == "higher"
    assert metric_direction("BENCH_x.overhead_fraction") == "lower"
    assert metric_direction("BENCH_x.guard_cost_ns") == "lower"
    assert metric_direction("BENCH_x.wall_seconds") == "lower"
    assert metric_direction("profile.t5.total_cycles") == "lower"
    # Resilience metrics: a creeping retry rate or chaos recovery cost
    # means the wire (or the retry loop) regressed.
    assert metric_direction("BENCH_service.chaos_retry_rate") == "lower"
    assert metric_direction("BENCH_service.chaos_wall_seconds") == "lower"
    # Configuration values never gate.
    assert metric_direction("BENCH_x.bound") is None
    assert metric_direction("BENCH_x.min_speedup") is None
    assert metric_direction("BENCH_x.iterations") is None
    assert metric_direction("BENCH_x.resilient_overhead_bound") is None
    assert metric_direction("BENCH_x.retry_count") is None


# -- ingest --------------------------------------------------------------------

def test_collect_bench_entries(tmp_path):
    (tmp_path / "BENCH_a.json").write_text(
        json.dumps({"speedup": 3.5, "bound": 2.0, "note": "text"}))
    (tmp_path / "BENCH_b.json").write_text(
        json.dumps({"overhead_fraction": 0.01}))
    (tmp_path / "BENCH_HISTORY.jsonl").write_text("not json\n")
    entries = collect_bench_entries(tmp_path)
    assert entries == {"BENCH_a.speedup": 3.5, "BENCH_a.bound": 2.0,
                       "BENCH_b.overhead_fraction": 0.01}


def test_collect_rejects_corrupt_bench_file(tmp_path):
    (tmp_path / "BENCH_bad.json").write_text("{")
    with pytest.raises(ConfigurationError):
        collect_bench_entries(tmp_path)


def test_profile_entries():
    from repro.obs import ProfileReport
    profile = ProfileReport(label="table 5", total_cycles=100,
                            wall_seconds=0.25)
    entries = profile_entries([profile])
    assert entries == {"profile.table_5.total_cycles": 100.0,
                       "profile.table_5.wall_seconds": 0.25}


def test_history_tolerates_torn_final_line(tmp_path):
    path = tmp_path / "h.jsonl"
    append_history(path, {"a.speedup": 1.0}, timestamp=0.0)
    with open(path, "a") as handle:
        handle.write('{"run": "torn", "entr')
    assert len(load_history(path)) == 1
    assert load_history(tmp_path / "missing.jsonl") == []


# -- the gate ------------------------------------------------------------------

def test_flags_injected_2x_slowdown(tmp_path):
    history = _history(tmp_path, [
        {"BENCH_x.wall_seconds": 1.0, "BENCH_x.speedup": 4.0},
        {"BENCH_x.wall_seconds": 1.1, "BENCH_x.speedup": 3.9},
        {"BENCH_x.wall_seconds": 0.9, "BENCH_x.speedup": 4.1},
        {"BENCH_x.wall_seconds": 2.0, "BENCH_x.speedup": 1.9},  # 2x hit
    ])
    report = check_trends(history, window=5, tolerance=0.75)
    assert report.has_regressions
    regressed = {row[0] for row in report.regressions}
    assert regressed == {"BENCH_x.wall_seconds", "BENCH_x.speedup"}
    text = report.render()
    assert "REGRESSION" in text and "BENCH_x.wall_seconds" in text


def test_passes_on_unchanged_rerun(tmp_path):
    history = _history(tmp_path, [
        {"BENCH_x.wall_seconds": 1.0, "BENCH_x.speedup": 4.0},
        {"BENCH_x.wall_seconds": 1.0, "BENCH_x.speedup": 4.0},
        {"BENCH_x.wall_seconds": 1.0, "BENCH_x.speedup": 4.0},
    ])
    report = check_trends(history)
    assert not report.has_regressions
    assert len(report.steady) == 2


def test_improvements_do_not_gate(tmp_path):
    history = _history(tmp_path, [
        {"BENCH_x.wall_seconds": 2.0},
        {"BENCH_x.wall_seconds": 2.0},
        {"BENCH_x.wall_seconds": 0.5},    # 4x faster
    ])
    report = check_trends(history)
    assert not report.has_regressions
    assert [row[0] for row in report.improvements] == \
        ["BENCH_x.wall_seconds"]


def test_single_run_and_new_metrics_never_gate(tmp_path):
    assert not check_trends(_history(
        tmp_path, [{"BENCH_x.wall_seconds": 1.0}])).has_regressions
    history = _history(tmp_path / "b", [
        {"BENCH_x.wall_seconds": 1.0},
        {"BENCH_y.wall_seconds": 99.0},    # no baseline for y
    ])
    report = check_trends(history)
    assert not report.has_regressions
    assert report.unbaselined == ["BENCH_y.wall_seconds"]


def test_rolling_window_forgets_ancient_baseline(tmp_path):
    # Five recent slow runs re-baseline an old fast one away.
    history = _history(tmp_path, [{"BENCH_x.wall_seconds": 0.1}]
                       + [{"BENCH_x.wall_seconds": 1.0}] * 6)
    report = check_trends(history, window=5)
    assert not report.has_regressions


# -- the CLI verb --------------------------------------------------------------

def test_trend_cli_appends_and_gates(tmp_path, capsys):
    bench = tmp_path / "bench"
    bench.mkdir()
    history = tmp_path / "BENCH_HISTORY.jsonl"
    (bench / "BENCH_x.json").write_text(
        json.dumps({"wall_seconds": 1.0, "speedup": 4.0}))
    args = ["trend", "--bench-dir", str(bench),
            "--history", str(history)]
    assert campaign_main(args) == 0           # first run: no baseline
    assert campaign_main(args) == 0           # unchanged rerun passes
    (bench / "BENCH_x.json").write_text(
        json.dumps({"wall_seconds": 2.0, "speedup": 4.0}))
    assert campaign_main(args) == 1           # injected 2x slowdown
    out = capsys.readouterr().out
    assert "REGRESSION" in out
    assert len(load_history(history)) == 3
    # --check-only re-gates the existing history without appending.
    assert campaign_main(args + ["--check-only"]) == 1
    assert len(load_history(history)) == 3


def test_trend_cli_errors_without_bench_files(tmp_path):
    assert campaign_main(["trend", "--bench-dir", str(tmp_path),
                          "--history",
                          str(tmp_path / "h.jsonl")]) == 2
