"""Smoke tests on the public import surface."""

import importlib

import pytest

import repro


def test_version():
    assert repro.__version__ == "1.0.0"


def test_top_level_all_resolves():
    for name in repro.__all__:
        assert hasattr(repro, name), name


@pytest.mark.parametrize("module", [
    "repro.sim", "repro.rag", "repro.deadlock", "repro.mpsoc",
    "repro.rtos", "repro.soclc", "repro.socdmmu", "repro.framework",
    "repro.apps", "repro.experiments", "repro.obs",
])
def test_subpackage_all_resolves(module):
    package = importlib.import_module(module)
    for name in getattr(package, "__all__", []):
        assert hasattr(package, name), f"{module}.{name}"


@pytest.mark.parametrize("preset", [f"RTOS{i}" for i in range(1, 8)])
def test_every_preset_builds_and_runs_empty(preset):
    system = repro.build_system(preset)
    assert system.run() == 0          # no tasks: time stays at zero
    assert system.top_verilog.startswith("// Top.v")


def test_public_docstrings_exist():
    # Every public package and top-level class carries a docstring.
    for name in repro.__all__:
        obj = getattr(repro, name)
        if isinstance(obj, type) or callable(obj):
            assert obj.__doc__, f"{name} lacks a docstring"


@pytest.mark.parametrize("module", [
    "repro.sim", "repro.rag", "repro.deadlock", "repro.mpsoc",
    "repro.rtos", "repro.soclc", "repro.socdmmu", "repro.framework",
    "repro.apps", "repro.obs",
])
def test_every_exported_item_is_documented(module):
    package = importlib.import_module(module)
    for name in getattr(package, "__all__", []):
        obj = getattr(package, name)
        if isinstance(obj, type) or callable(obj):
            assert obj.__doc__, f"{module}.{name} lacks a docstring"
