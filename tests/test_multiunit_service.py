"""Integration tests: pooled resources through the kernel service."""

import pytest

from repro.deadlock.multiunit_avoidance import MultiUnitAvoider
from repro.framework.builder import build_system
from repro.rtos.resources import MultiUnitResourceService, NotificationKind


def _pooled_system(pools=None, priorities=None):
    system = build_system("RTOS5")
    pools = pools or {"DMA": 2, "SPM": 1}
    priorities = priorities or {"p1": 1, "p2": 2, "p3": 3}
    avoider = MultiUnitAvoider(list(priorities), pools, priorities)
    service = MultiUnitResourceService(system.kernel, avoider)
    system.kernel.attach_resource_service(service)
    return system, service


def test_pool_grant_and_release_through_tasks():
    system, service = _pooled_system()
    kernel = system.kernel
    log = []

    def body(ctx):
        outcome = yield from ctx.request("DMA", units=2)
        log.append(("granted", outcome.granted, ctx.now))
        yield from ctx.compute(500)
        yield from ctx.release_resource("DMA")
        log.append(("released", ctx.now))

    kernel.create_task(body, "p1", 1, "PE1")
    kernel.run()
    assert log[0][1] is True
    assert service.core.system.available("DMA") == 2
    assert service.stats.invocations == 2


def test_pool_handoff_wakes_waiter_when_fully_granted():
    system, service = _pooled_system()
    kernel = system.kernel
    got = []

    def hog(ctx):
        yield from ctx.request("DMA", units=2)
        yield from ctx.compute(2_000)
        yield from ctx.release_resource("DMA")

    def waiter(ctx):
        yield from ctx.sleep(200)
        outcome = yield from ctx.request("DMA", units=2)
        if not outcome.granted:
            yield from ctx.wait_grant("DMA")
        got.append(ctx.now)
        yield from ctx.release_resource("DMA")

    kernel.create_task(hog, "p1", 1, "PE1")
    kernel.create_task(waiter, "p2", 2, "PE2")
    kernel.run()
    assert got and got[0] >= 2_000
    assert service.core.system.available("DMA") == 2


def test_pool_deadlock_resolved_by_giveup_notification():
    system, service = _pooled_system()
    kernel = system.kernel
    order = []

    def p1(ctx):
        yield from ctx.request("DMA", units=2)
        yield from ctx.compute(600)
        outcome = yield from ctx.request("SPM")
        if not outcome.granted:
            yield from ctx.wait_grant("SPM")
        order.append("p1-complete")
        yield from ctx.release_resource("SPM")
        yield from ctx.release_resource("DMA")

    def p2(ctx):
        yield from ctx.request("SPM")
        yield from ctx.compute(300)
        outcome = yield from ctx.request("DMA")
        if outcome.must_give_up:
            for _target, resource in outcome.decision.ask_release:
                yield from ctx.release_resource(resource)
            order.append("p2-gave-up")
        elif not outcome.granted:
            while True:
                note = yield from ctx.wait_notification()
                if note.kind is NotificationKind.GIVE_UP:
                    yield from ctx.release_resource(note.resource)
                    order.append("p2-gave-up")
                    break

    kernel.create_task(p1, "p1", 1, "PE1")
    kernel.create_task(p2, "p2", 2, "PE2")
    kernel.run()
    assert "p2-gave-up" in order
    assert "p1-complete" in order
    assert not service.core.system.detect().deadlock


def test_single_unit_service_rejects_units_argument():
    system = build_system("RTOS4")
    kernel = system.kernel

    def body(ctx):
        yield from ctx.request("DSP", units=2)

    kernel.create_task(body, "p1", 1, "PE1")
    with pytest.raises(Exception):
        kernel.run()


def test_holder_of_not_defined_for_pools():
    _system, service = _pooled_system()
    with pytest.raises(NotImplementedError):
        service.holder_of("DMA")
