"""Tests for the VCD trace export."""

import pytest

from repro.errors import SimulationError
from repro.framework.builder import build_system
from repro.sim.trace import Trace
from repro.sim.vcd import _identifier, trace_to_vcd, write_vcd


def test_identifier_uniqueness():
    idents = {_identifier(i) for i in range(500)}
    assert len(idents) == 500
    assert all(" " not in ident for ident in idents)


def _sample_trace():
    trace = Trace()
    trace.record(0, "t1", "run_start")
    trace.record(100, "t1", "run_end")
    trace.record(100, "t2", "run_start")
    trace.record(150, "t2", "block_start")
    trace.record(220, "t2", "block_end")
    return trace


def test_vcd_structure():
    vcd = trace_to_vcd(_sample_trace())
    assert "$timescale 10ns $end" in vcd
    assert "$var wire 1" in vcd and "t1_run" in vcd and "t2_blocked" in vcd
    assert "$enddefinitions $end" in vcd
    assert "$dumpvars" in vcd
    # Timestamps appear in order, merged per instant.
    body = vcd.split("$end\n")[-1]
    times = [line for line in body.splitlines()
             if line.startswith("#")]
    assert times == ["#0", "#100", "#150", "#220"]
    assert vcd.count("#100") == 1       # t1 end and t2 start share it


def test_vcd_actor_filter():
    vcd = trace_to_vcd(_sample_trace(), actors=["t1"])
    assert "t1_run" in vcd and "t2_run" not in vcd


def test_vcd_empty_trace_rejected():
    with pytest.raises(SimulationError):
        trace_to_vcd(Trace())


def test_write_vcd_roundtrip(tmp_path):
    path = tmp_path / "trace.vcd"
    written = write_vcd(_sample_trace(), str(path))
    assert written == str(path)
    assert path.read_text().startswith("$date")


def test_vcd_from_real_simulation(tmp_path):
    system = build_system("RTOS5")
    kernel = system.kernel
    kernel.create_task(lambda ctx: ctx.compute(500), "a", 1, "PE1")
    kernel.create_task(lambda ctx: ctx.sleep(300), "b", 2, "PE2")
    kernel.run()
    vcd = trace_to_vcd(system.soc.trace, actors=["a", "b"])
    assert "a_run" in vcd and "b_blocked" in vcd
    # The sleeper's block edge pair both appear.
    assert vcd.count("1" + _identifier(3)) >= 1   # b_blocked rise
