"""Tests for the DMA controller and the runtime hierarchical bus."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.mpsoc.bus import BusTiming, SystemBus
from repro.mpsoc.dma import DMAController
from repro.mpsoc.hierbus import HierarchicalBus
from repro.mpsoc.interrupt import InterruptController
from repro.sim.engine import Engine


# -- DMA ----------------------------------------------------------------------

def _dma(num_channels=2):
    engine = Engine()
    bus = SystemBus(engine)
    intc = InterruptController(engine)
    return engine, bus, DMAController(engine, bus, interrupts=intc,
                                      num_channels=num_channels)


def test_dma_transfer_completes_and_costs_bus_time():
    engine, bus, dma = _dma()

    def pe():
        transfer = dma.start("PE1", source=0, destination=0x1000,
                             words=32)
        result = yield from dma.wait(transfer)
        return result

    handle = engine.spawn(pe())
    engine.run()
    transfer = handle.result
    assert transfer.done
    # 32 words = 4 chunks x (read burst + write burst) = 8 bursts of
    # 10 cycles each + 12 setup.
    assert transfer.completed_at == 12 + 8 * 10
    assert bus.total_transactions == 8


def test_dma_completion_interrupt():
    engine, _bus, dma = _dma()
    fired = []

    def watcher():
        payload = yield from dma.interrupts.wait_irq("irq.DMA")
        fired.append(payload)

    engine.spawn(watcher())
    dma.start("PE1", 0, 0x100, words=8)
    engine.run()
    assert fired and fired[0].owner == "PE1"


def test_dma_channels_run_concurrently_but_share_the_bus():
    engine, bus, dma = _dma(num_channels=2)
    dma.start("PE1", 0, 0x100, words=8)
    dma.start("PE2", 0, 0x200, words=8)
    engine.run()
    # Four bursts serialized on one bus: 12 setup + 4 * 10.
    assert engine.now == 12 + 40
    assert all(t.done for t in dma.transfers)


def test_dma_exhausted_channels_raise():
    _engine, _bus, dma = _dma(num_channels=1)
    dma.start("PE1", 0, 0x100, words=800)
    with pytest.raises(SimulationError):
        dma.start("PE2", 0, 0x200, words=8)


def test_dma_wait_on_finished_transfer_returns_immediately():
    engine, _bus, dma = _dma()
    transfer = dma.start("PE1", 0, 0x100, words=8)
    engine.run()

    def pe():
        result = yield from dma.wait(transfer)
        return result

    handle = engine.spawn(pe())
    engine.run()
    assert handle.result.done


def test_dma_validation():
    engine = Engine()
    bus = SystemBus(engine)
    with pytest.raises(ConfigurationError):
        DMAController(engine, bus, num_channels=0)
    _engine, _bus, dma = _dma()
    with pytest.raises(ConfigurationError):
        dma.start("PE1", 0, 0x100, words=0)


# -- hierarchical bus -----------------------------------------------------------

def test_local_traffic_does_not_contend_across_subsystems():
    engine = Engine()
    hier = HierarchicalBus(engine, num_subsystems=2)
    finish = {}

    def master(subsystem, name):
        def proc():
            for _ in range(5):
                yield from hier.local_transaction(subsystem, name)
            finish[name] = engine.now
        return proc()

    engine.spawn(master(0, "A"))
    engine.spawn(master(1, "B"))
    engine.run()
    # Both finish at 15 cycles (5 x 3): perfectly parallel locals.
    assert finish == {"A": 15, "B": 15}


def test_global_traffic_pays_bridge_and_contends():
    engine = Engine()
    hier = HierarchicalBus(engine, num_subsystems=2, bridge_cycles=2)
    finish = {}

    def master(subsystem, name):
        def proc():
            yield from hier.global_transaction(subsystem, name, words=1)
            finish[name] = engine.now
        return proc()

    engine.spawn(master(0, "A"))
    engine.spawn(master(1, "B"))
    engine.run()
    # Each pays local (3) + bridge (2) + global (3); the two global
    # phases serialize, so the loser finishes 3 cycles later.
    assert min(finish.values()) == 8
    assert max(finish.values()) == 11
    assert hier.global_bus.total_transactions == 2
    assert hier.bridges[0].stats.forwarded == 1


def test_custom_timings_respected():
    engine = Engine()
    hier = HierarchicalBus(
        engine, num_subsystems=1,
        local_timing=BusTiming(first_word_cycles=1, burst_word_cycles=1),
        global_timing=BusTiming(first_word_cycles=5, burst_word_cycles=2),
        bridge_cycles=0)

    def master():
        yield from hier.global_transaction(0, "A", words=3)

    engine.spawn(master())
    engine.run()
    # local 1 + bridge 0 + global (5 + 2*2) = 10
    assert engine.now == 10


def test_hierbus_validation():
    engine = Engine()
    with pytest.raises(ConfigurationError):
        HierarchicalBus(engine, num_subsystems=0)
    hier = HierarchicalBus(engine)
    with pytest.raises(ConfigurationError):
        hier.subsystem(7)
