"""Tests for the DAU hardware model (command/status registers, FSM)."""

import pytest

from repro import calibration
from repro.deadlock.dau import DAU
from repro.deadlock.daa import Action, SoftwareDAA
from repro.errors import ResourceProtocolError


def _dau(**kwargs):
    return DAU(["p1", "p2", "p3"], ["q1", "q2", "q3"],
               {"p1": 1, "p2": 2, "p3": 3}, **kwargs)


def test_embedded_ddu_sized_to_census():
    dau = _dau()
    assert dau.ddu.m == 3 and dau.ddu.n == 3


def test_write_command_publishes_status():
    dau = _dau()
    dau.write_command("PE1", "request", "p1", "q1")
    status = dau.read_status("p1")
    assert status.done and not status.busy
    assert status.successful
    assert status.which_resource == "q1"
    assert not status.pending and not status.give_up


def test_pending_status_fields():
    dau = _dau()
    dau.write_command("PE1", "request", "p1", "q1")
    dau.write_command("PE2", "request", "p2", "q1")
    status = dau.read_status("p2")
    assert status.pending and not status.successful
    assert not status.r_dl


def test_rdl_status_flags_and_ask_release():
    dau = _dau()
    dau.write_command("PE1", "request", "p1", "q1")
    dau.write_command("PE2", "request", "p2", "q2")
    dau.write_command("PE2", "request", "p2", "q1")
    decision = dau.write_command("PE1", "request", "p1", "q2")
    status = dau.read_status("p1")
    assert status.r_dl
    assert status.pending
    assert status.ask_release == (("p2", "q2"),)
    assert decision.deadlock_kind.value == "R-dl"


def test_gdl_status_on_release():
    dau = _dau()
    dau.write_command("PE1", "request", "p1", "q2")
    dau.write_command("PE3", "request", "p3", "q2")
    dau.write_command("PE3", "request", "p3", "q1")
    dau.write_command("PE2", "request", "p2", "q2")
    dau.write_command("PE2", "request", "p2", "q1")
    decision = dau.write_command("PE1", "release", "p1", "q2")
    assert decision.granted_to == "p3"
    status = dau.read_status("p1")
    assert status.g_dl
    assert status.which_process == "p3"


def test_unknown_command_rejected():
    dau = _dau()
    with pytest.raises(ResourceProtocolError):
        dau.write_command("PE1", "allocate", "p1", "q1")
    with pytest.raises(ResourceProtocolError):
        dau.write_command("PE1", "request", "p9", "q1")
    with pytest.raises(ResourceProtocolError):
        dau.read_status("p9")


def test_hardware_latency_is_fsm_plus_ddu_passes():
    dau = _dau()
    granted = dau.request("p1", "q1")
    assert granted.cycles == calibration.DAU_FSM_CYCLES
    pended = dau.request("p2", "q1")
    assert pended.cycles == (calibration.DAU_FSM_CYCLES
                             + pended.detection_passes
                             * calibration.DDU_CYCLES_PER_ITERATION)


def test_hardware_is_orders_of_magnitude_faster_than_software():
    script = [("request", "p1", "q1"), ("request", "p2", "q2"),
              ("request", "p2", "q1"), ("request", "p1", "q2"),
              ("release", "p2", "q2"), ("release", "p1", "q1")]

    def drive(core):
        for op, process, resource in script:
            if op == "request":
                core.request(process, resource)
            else:
                if core.rag.holder_of(resource) == process:
                    core.release(process, resource)
        return core.stats.mean_cycles

    hw = drive(_dau())
    sw = drive(SoftwareDAA(["p1", "p2", "p3"], ["q1", "q2", "q3"],
                           {"p1": 1, "p2": 2, "p3": 3}))
    assert sw / hw > 100


def test_worst_case_steps_matches_table_2():
    dau = DAU([f"p{i}" for i in range(1, 6)],
              [f"q{i}" for i in range(1, 6)],
              {f"p{i}": i for i in range(1, 6)})
    assert dau.worst_case_steps == 38


def test_decisions_agree_with_software_core():
    """The DAU and the software DAA implement the same Algorithm 3 —
    drive both with the same script and compare every decision."""
    script = [("request", "p1", "q1"), ("request", "p2", "q2"),
              ("request", "p3", "q3"), ("request", "p2", "q3"),
              ("request", "p3", "q1"), ("request", "p1", "q2"),
              ("release", "p2", "q2"), ("release", "p1", "q1"),
              ("release", "p1", "q2")]
    hw = _dau()
    sw = SoftwareDAA(["p1", "p2", "p3"], ["q1", "q2", "q3"],
                     {"p1": 1, "p2": 2, "p3": 3})
    for op, process, resource in script:
        if op == "request":
            hw_decision = hw.request(process, resource)
            sw_decision = sw.request(process, resource)
        else:
            if hw.rag.holder_of(resource) != process:
                continue
            hw_decision = hw.release(process, resource)
            sw_decision = sw.release(process, resource)
        assert hw_decision.action == sw_decision.action
        assert hw_decision.granted_to == sw_decision.granted_to
        assert hw_decision.deadlock_kind == sw_decision.deadlock_kind
        assert hw_decision.ask_release == sw_decision.ask_release
    assert hw.rag == sw.rag
