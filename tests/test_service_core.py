"""Unit tests for the service's transport-free layers.

Covers the wire protocol helpers, the :class:`Tenant` state machine
(grant policy, deterministic promotion, protocol violations, checkpoint
round-trips) and the :class:`ShardCore` command loop — in particular
*tick-consistent detection*: every detect in a batch is answered from
one batched reduction that reflects all mutations accepted earlier in
the same batch.
"""

import pytest

from repro.errors import ServiceError
from repro.service.protocol import (
    ADMIN_OPS,
    ERROR_CODES,
    TENANT_OPS,
    ServiceOpError,
    decode_line,
    encode_message,
    error_response,
    ok_response,
    validate_request,
)
from repro.service.shard import ShardCore
from repro.service.tenant import Tenant


# ---------------------------------------------------------------------------
# protocol


def test_encode_decode_round_trip():
    message = {"op": "claim", "tenant": "t", "id": 7,
               "process": "p1", "resource": "q1"}
    assert decode_line(encode_message(message)) == message


def test_encode_is_one_line():
    line = encode_message({"op": "ping", "note": "a\nb"})
    assert line.endswith(b"\n")
    assert line.count(b"\n") == 1


def test_decode_rejects_bad_json():
    with pytest.raises(ServiceOpError) as excinfo:
        decode_line(b"{nope\n")
    assert excinfo.value.code == "bad-request"


def test_decode_rejects_non_object():
    with pytest.raises(ServiceOpError):
        decode_line(b"[1, 2]\n")


def test_validate_unknown_op():
    with pytest.raises(ServiceOpError) as excinfo:
        validate_request({"op": "frobnicate"})
    assert excinfo.value.code == "bad-request"


def test_validate_tenant_ops_need_tenant():
    for op in sorted(TENANT_OPS):
        with pytest.raises(ServiceOpError):
            validate_request({"op": op})
    for op in sorted(ADMIN_OPS):
        assert validate_request({"op": op}) == op


def test_responses_echo_id():
    request = {"op": "detect", "tenant": "t", "id": "abc"}
    assert ok_response(request, deadlock=False)["id"] == "abc"
    assert error_response(request, "backpressure")["id"] == "abc"
    assert "id" not in ok_response({"op": "ping"})


def test_error_codes_are_validated():
    with pytest.raises(ServiceError):
        error_response(None, "no-such-code")
    with pytest.raises(ServiceError):
        ServiceOpError("no-such-code")
    assert "backpressure" in ERROR_CODES


# ---------------------------------------------------------------------------
# tenant


def _claim(tenant, process, resource):
    return tenant.claim({"process": process, "resource": resource})


def _release(tenant, process, resource):
    return tenant.release({"process": process, "resource": resource})


def test_tenant_attach_dims():
    tenant = Tenant.from_attach("t", {"m": 3, "n": 5})
    assert (tenant.matrix.m, tenant.matrix.n) == (3, 5)
    assert tenant.op_seq == 0


def test_tenant_attach_rejects_oversize():
    from repro.service.tenant import MAX_TENANT_SIDE
    with pytest.raises(ServiceOpError) as excinfo:
        Tenant.from_attach("t", {"m": MAX_TENANT_SIDE + 1, "n": 4})
    assert excinfo.value.code == "bad-request"


def test_tenant_attach_accepts_multiword_dims():
    """65..512-wide tenants are admissible now — the multi-word plane
    packs them; only absurd sizes are rejected."""
    tenant = Tenant.from_attach("t", {"m": 65, "n": 128})
    assert (tenant.matrix.m, tenant.matrix.n) == (65, 128)


def test_tenant_attach_seeded_is_deterministic():
    a = Tenant.from_attach("a", {"seed": 11, "m": 8, "n": 8})
    b = Tenant.from_attach("b", {"seed": 11, "m": 8, "n": 8})
    state_a = a.matrix.snapshot_state()["state_hash"]
    state_b = b.matrix.snapshot_state()["state_hash"]
    assert state_a == state_b


def test_tenant_attach_rows():
    tenant = Tenant.from_attach("t", {"rows": ["g r", ". .", "r g"]})
    assert (tenant.matrix.m, tenant.matrix.n) == (3, 2)


def test_claim_grants_free_resource():
    tenant = Tenant.from_attach("t", {"m": 2, "n": 2})
    reply = _claim(tenant, "p1", "q1")
    assert reply == {"granted": True, "blocked": False, "op_seq": 1}


def test_claim_blocks_on_held_resource():
    tenant = Tenant.from_attach("t", {"m": 2, "n": 2})
    _claim(tenant, "p1", "q1")
    reply = _claim(tenant, "p2", "q1")
    assert reply["granted"] is False and reply["blocked"] is True
    assert tenant.blocked == 1


def test_double_claim_is_protocol_violation():
    tenant = Tenant.from_attach("t", {"m": 2, "n": 2})
    _claim(tenant, "p1", "q1")
    with pytest.raises(ServiceOpError) as excinfo:
        _claim(tenant, "p1", "q1")
    assert excinfo.value.code == "protocol-violation"


def test_release_promotes_lowest_index_waiter():
    tenant = Tenant.from_attach("t", {"m": 1, "n": 4})
    _claim(tenant, "p3", "q1")
    _claim(tenant, "p4", "q1")
    _claim(tenant, "p2", "q1")
    reply = _release(tenant, "p3", "q1")
    assert reply["promoted"] == "p2"      # lowest index, not FIFO
    reply = _release(tenant, "p2", "q1")
    assert reply["promoted"] == "p4"


def test_release_without_grant_is_violation():
    tenant = Tenant.from_attach("t", {"m": 2, "n": 2})
    with pytest.raises(ServiceOpError) as excinfo:
        _release(tenant, "p1", "q1")
    assert excinfo.value.code == "protocol-violation"


def test_unknown_names_rejected():
    tenant = Tenant.from_attach("t", {"m": 2, "n": 2})
    with pytest.raises(ServiceOpError):
        _claim(tenant, "nope", "q1")
    with pytest.raises(ServiceOpError):
        _claim(tenant, "p1", "nope")


def test_tenant_snapshot_round_trip():
    tenant = Tenant.from_attach("t", {"seed": 5, "m": 8, "n": 8})
    _release(tenant, *_first_grant(tenant))
    envelope = tenant.snapshot_state()
    twin = Tenant.restore_state(envelope)
    assert twin.tenant_id == "t"
    assert twin.op_seq == tenant.op_seq
    assert twin.snapshot_state()["state_hash"] == envelope["state_hash"]


def _first_grant(tenant):
    matrix = tenant.matrix
    for s in range(matrix.m):
        grants = matrix._row_g[s]
        if grants:
            t = (grants & -grants).bit_length() - 1
            return matrix.process_names[t], matrix.resource_names[s]
    raise AssertionError("seeded tenant has no grant")


# ---------------------------------------------------------------------------
# shard core


def _attach_op(tenant_id, **spec):
    return {"op": "attach", "tenant": tenant_id, **spec}


def test_shard_batch_applies_in_order_then_detects():
    core = ShardCore(0)
    tenant = Tenant.from_attach("t", {"m": 2, "n": 2})
    core.restore_tenant(tenant.snapshot_state())
    ops = [
        {"op": "claim", "tenant": "t", "process": "p1", "resource": "q1"},
        {"op": "claim", "tenant": "t", "process": "p2", "resource": "q2"},
        {"op": "detect", "tenant": "t"},
        {"op": "claim", "tenant": "t", "process": "p1", "resource": "q2"},
        {"op": "claim", "tenant": "t", "process": "p2", "resource": "q1"},
        {"op": "detect", "tenant": "t"},
    ]
    kind, replies = core.handle("batch", ops)
    assert kind == "results"
    assert replies[0]["granted"] and replies[1]["granted"]
    # Tick-consistent: BOTH detects see the full batch's mutations —
    # the cycle closed by ops 3-4 — and echo the final op_seq.
    assert replies[2]["deadlock"] is True
    assert replies[5]["deadlock"] is True
    assert replies[2]["op_seq"] == replies[5]["op_seq"] == 4
    assert core.detect_batches == 1


def test_shard_batch_one_reduction_for_many_tenants():
    core = ShardCore(0)
    ops = []
    for i in range(6):
        tenant = Tenant.from_attach(f"t{i}", {"seed": 100 + i,
                                              "m": 8, "n": 8})
        core.restore_tenant(tenant.snapshot_state())
        ops.append({"op": "detect", "tenant": f"t{i}"})
    kind, replies = core.handle("batch", ops)
    assert kind == "results"
    assert core.detect_batches == 1
    assert all(reply["batched"] == 6 for reply in replies)


def test_shard_batch_per_op_errors_do_not_poison_batch():
    core = ShardCore(0)
    tenant = Tenant.from_attach("t", {"m": 2, "n": 2})
    core.restore_tenant(tenant.snapshot_state())
    ops = [
        {"op": "claim", "tenant": "ghost", "process": "p1",
         "resource": "q1"},
        {"op": "claim", "tenant": "t", "process": "p1", "resource": "q1"},
        {"op": "release", "tenant": "t", "process": "p2",
         "resource": "q1"},
        {"op": "detect", "tenant": "t"},
    ]
    kind, replies = core.handle("batch", ops)
    assert kind == "results"
    assert replies[0]["error"] == "unknown-tenant"
    assert replies[1]["granted"] is True
    assert replies[2]["error"] == "protocol-violation"
    assert replies[3]["ok"] is True and replies[3]["op_seq"] == 1


def test_shard_detect_matches_per_tenant_reduce():
    from repro.rag.bitmatrix import BitMatrix
    from repro.rag.generate import random_state, resolve_rng
    core = ShardCore(0)
    expected = {}
    ops = []
    for i in range(8):
        rag = random_state(10, 10, rng=resolve_rng(seed=500 + i))
        matrix = BitMatrix.from_rag(rag)
        tenant = Tenant(f"t{i}", matrix.copy())
        core.restore_tenant(tenant.snapshot_state())
        solo = matrix.copy()
        iterations, passes = solo.reduce()
        expected[f"t{i}"] = (not solo.is_empty(), iterations, passes)
        ops.append({"op": "detect", "tenant": f"t{i}"})
    _kind, replies = core.handle("batch", ops)
    for op, reply in zip(ops, replies):
        deadlock, iterations, passes = expected[op["tenant"]]
        assert reply["deadlock"] == deadlock
        assert reply["iterations"] == iterations
        assert reply["passes"] == passes


def test_shard_snapshot_restore_drop():
    core = ShardCore(0)
    tenant = Tenant.from_attach("t", {"seed": 9, "m": 6, "n": 6})
    envelope = tenant.snapshot_state()
    kind, reply = core.handle("restore", envelope)
    assert kind == "ok" and reply["state_hash"] == envelope["state_hash"]
    kind, snap = core.handle("snapshot", "t")
    assert kind == "snapshot"
    assert snap["state_hash"] == envelope["state_hash"]
    kind, reply = core.handle("drop", "t")
    assert kind == "ok" and reply["tenants"] == 0
    kind, detail = core.handle("snapshot", "t")
    assert kind == "error" and "not on shard" in detail


def test_shard_unknown_command_is_error_reply():
    core = ShardCore(3)
    kind, detail = core.handle("explode", None)
    assert kind == "error"
    assert "explode" in detail


# ---------------------------------------------------------------------------
# incremental tick reduction


def _detect(core, tenant_id):
    _kind, replies = core.handle("batch",
                                 [{"op": "detect", "tenant": tenant_id}])
    return replies[0]


def test_shard_clean_detect_skips_reduction():
    """A tenant that has not mutated since its last verdict is
    answered from the cache — no new reduction, same payload."""
    core = ShardCore(0)
    tenant = Tenant.from_attach("t", {"seed": 3, "m": 8, "n": 8})
    core.restore_tenant(tenant.snapshot_state())
    first = _detect(core, "t")
    assert core.detect_batches == 1
    again = _detect(core, "t")
    assert core.detect_batches == 1, "clean detect must not re-reduce"
    assert core.detects_skipped == 1
    for key in ("deadlock", "iterations", "passes",
                "deadlocked_processes", "op_seq", "batched"):
        assert again[key] == first[key]


def test_shard_mutation_dirties_the_verdict():
    core = ShardCore(0)
    tenant = Tenant.from_attach("t", {"m": 2, "n": 2})
    core.restore_tenant(tenant.snapshot_state())
    assert _detect(core, "t")["deadlock"] is False
    assert core.detect_batches == 1
    # Close a 2-cycle; the cached verdict must be abandoned.
    ops = [
        {"op": "claim", "tenant": "t", "process": "p1", "resource": "q1"},
        {"op": "claim", "tenant": "t", "process": "p2", "resource": "q2"},
        {"op": "claim", "tenant": "t", "process": "p1", "resource": "q2"},
        {"op": "claim", "tenant": "t", "process": "p2", "resource": "q1"},
    ]
    core.handle("batch", ops)
    reply = _detect(core, "t")
    assert reply["deadlock"] is True
    assert reply["op_seq"] == 4
    assert core.detect_batches == 2
    assert core.dirty_reduced == 2


def test_shard_only_dirty_tenants_reduced():
    """Of 4 tenants, mutate 1: the next all-tenant detect tick reduces
    only that one and serves the other 3 from cache."""
    core = ShardCore(0)
    for i in range(4):
        tenant = Tenant.from_attach(f"t{i}", {"m": 8, "n": 8})
        core.restore_tenant(tenant.snapshot_state())
    detect_all = [{"op": "detect", "tenant": f"t{i}"} for i in range(4)]
    core.handle("batch", detect_all)
    assert core.dirty_reduced == 4
    core.handle("batch", [{"op": "claim", "tenant": "t2",
                           "process": "p1", "resource": "q1"}])
    _kind, replies = core.handle("batch", detect_all)
    assert core.dirty_reduced == 5          # only t2 re-entered
    assert core.detects_skipped == 3
    assert replies[2]["op_seq"] == 1
    # Every reply is still correct against a solo reduction.
    for i, reply in enumerate(replies):
        solo = core.tenants[f"t{i}"].matrix.copy()
        iterations, passes = solo.reduce()
        assert (reply["deadlock"], reply["iterations"],
                reply["passes"]) == (not solo.is_empty(), iterations,
                                     passes)


def test_shard_restore_invalidates_cache_and_slot():
    """Migration/crash-recovery replaces the Tenant object; the stale
    verdict and plane slot must never answer for the twin."""
    core = ShardCore(0)
    tenant = Tenant.from_attach("t", {"m": 2, "n": 2})
    core.restore_tenant(tenant.snapshot_state())
    _detect(core, "t")
    # Build a deadlocked twin out-of-band and restore over the top.
    twin = Tenant.from_attach("t", {"m": 2, "n": 2})
    for process, resource in (("p1", "q1"), ("p2", "q2"),
                              ("p1", "q2"), ("p2", "q1")):
        twin.claim({"process": process, "resource": resource})
    core.restore_tenant(twin.snapshot_state())
    reply = _detect(core, "t")
    assert reply["deadlock"] is True
    assert reply["op_seq"] == 4


def test_shard_detach_frees_plane_slot():
    core = ShardCore(0)
    tenant = Tenant.from_attach("t", {"seed": 1, "m": 8, "n": 8})
    core.restore_tenant(tenant.snapshot_state())
    _detect(core, "t")
    core.handle("batch", [{"op": "detach", "tenant": "t"}])
    assert "t" not in core.tenants
    kind, reply = core.handle("ping", None)
    assert kind == "ok" and reply["tenants"] == 0
    # Reattach and detect again: a fresh pack, not a stale slot.
    fresh = Tenant.from_attach("t", {"m": 2, "n": 2})
    core.restore_tenant(fresh.snapshot_state())
    assert _detect(core, "t")["deadlock"] is False


def test_shard_ping_reports_reduction_tallies():
    core = ShardCore(2)
    tenant = Tenant.from_attach("t", {"seed": 2, "m": 8, "n": 8})
    core.restore_tenant(tenant.snapshot_state())
    _detect(core, "t")
    _detect(core, "t")
    kind, reply = core.handle("ping", None)
    assert kind == "ok"
    assert reply["detect_batches"] == 1
    assert reply["dirty_tenants"] == 1
    assert reply["skipped_detects"] == 1
    from repro.rag.batch import HAS_NUMPY
    assert reply["repacks"] == (1 if HAS_NUMPY else 0)
    assert reply["unpacked_fallbacks"] == (0 if HAS_NUMPY else 2)


def test_shard_obs_counters_attribute_the_win():
    from repro.obs import Observability
    obs = Observability(label="shard-test")
    core = ShardCore(0, obs=obs)
    for i in range(3):
        tenant = Tenant.from_attach(f"t{i}", {"seed": 60 + i,
                                              "m": 8, "n": 8})
        core.restore_tenant(tenant.snapshot_state())
    detect_all = [{"op": "detect", "tenant": f"t{i}"} for i in range(3)]
    core.handle("batch", detect_all)
    core.handle("batch", detect_all)
    metrics = obs.metrics
    assert metrics.counter("matrix.batch.dirty_tenants", "").value == 3
    assert metrics.counter("matrix.batch.skipped", "").value == 3
    from repro.rag.batch import HAS_NUMPY
    if HAS_NUMPY:
        assert metrics.counter("matrix.batch.repacks", "").value == 3


def test_shard_vectorized_false_still_incremental():
    """Forcing the sequential plane keeps the caching semantics."""
    core = ShardCore(0, vectorized=False)
    tenant = Tenant.from_attach("t", {"seed": 8, "m": 8, "n": 8})
    core.restore_tenant(tenant.snapshot_state())
    first = _detect(core, "t")
    again = _detect(core, "t")
    assert core.detect_batches == 1
    assert again["iterations"] == first["iterations"]
    solo = core.tenants["t"].matrix.copy()
    iterations, passes = solo.reduce()
    assert (first["iterations"], first["passes"]) == (iterations, passes)
