"""Tests for the exhaustive small-state verification."""

from repro.experiments.exhaustive_bound import (
    enumerate_states,
    _row_configurations,
    run,
)


def test_row_configuration_count():
    # n cells: grant in one of n positions x 2^(n-1) request patterns
    # + no-grant x 2^n patterns.
    assert len(_row_configurations(2)) == 2 * 2 + 4          # 8
    assert len(_row_configurations(3)) == 3 * 4 + 8          # 20


def test_enumeration_count_and_legality():
    states = list(enumerate_states(2, 2))
    assert len(states) == 64                                  # 8^2
    for matrix in states:
        # Single-grant rule holds per row.
        for s in range(2):
            grants = sum(1 for t in range(2)
                         if matrix.get(s, t).name == "GRANT")
            assert grants <= 1
        # Every state is a legal RAG.
        matrix.to_rag()


def test_exhaustive_run_is_clean():
    result = run(sizes=((2, 2), (2, 3)))
    for row in result.rows:
        assert row.oracle_disagreements == 0
        assert row.structural_disagreements == 0
        assert row.max_iterations <= row.bound


def test_true_worst_cases_match_table_1():
    result = run(sizes=((2, 3), (3, 3)))
    worst = {(row.m, row.n): row.max_iterations for row in result.rows}
    # Table 1's "2" for the 2x3 unit is the true exhaustive worst case.
    assert worst[(2, 3)] == 2
    assert worst[(3, 3)] == 3


def test_render_reports_zero_mismatches():
    text = run(sizes=((2, 2),)).render()
    assert "0 mismatches" in text or "oracle mismatches" in text
