"""Tests for software locks (PI), semaphores and spin-locks."""

import pytest

from repro import calibration
from repro.errors import RTOSError
from repro.rtos.sync import Semaphore, Spinlock


def test_uncontended_lock_costs_latency(kernel, base_system):
    times = {}

    def body(ctx):
        start = ctx.now
        yield from ctx.lock("L")
        times["latency"] = ctx.now - start
        yield from ctx.unlock("L")

    kernel.create_task(body, "t", 1, "PE1")
    kernel.run()
    assert times["latency"] >= calibration.SW_LOCK_LATENCY_CYCLES
    stats = base_system.lock_manager.stats
    assert stats.acquisitions == 1
    assert stats.contended_acquisitions == 0
    assert stats.mean_latency == calibration.SW_LOCK_LATENCY_CYCLES


def test_contended_lock_blocks_and_hands_off(kernel, base_system):
    order = []

    def holder(ctx):
        yield from ctx.lock("L")
        yield from ctx.compute(5000)
        yield from ctx.unlock("L")
        order.append(("holder-unlocked", ctx.now))

    def waiter(ctx):
        yield from ctx.compute(100)
        yield from ctx.lock("L")
        order.append(("waiter-locked", ctx.now))
        yield from ctx.unlock("L")

    kernel.create_task(holder, "holder", 2, "PE1")
    kernel.create_task(waiter, "waiter", 1, "PE2")
    kernel.run()
    assert order[0][0] == "holder-unlocked"
    assert order[1][0] == "waiter-locked"
    stats = base_system.lock_manager.stats
    assert stats.contended_acquisitions == 1
    assert stats.mean_delay > 0


def test_priority_inheritance_boosts_holder(kernel, base_system):
    observed = {}

    def holder(ctx):
        yield from ctx.lock("L")
        yield from ctx.compute(4000)
        observed["in_cs"] = ctx.task.priority
        yield from ctx.unlock("L")
        observed["after"] = ctx.task.priority

    def contender(ctx):
        yield from ctx.compute(200)
        yield from ctx.lock("L")
        yield from ctx.unlock("L")

    kernel.create_task(holder, "holder", 5, "PE1")
    kernel.create_task(contender, "contender", 1, "PE2")
    kernel.run()
    assert observed["in_cs"] == 1      # inherited
    assert observed["after"] == 5      # restored


def test_handoff_is_priority_ordered(kernel):
    order = []

    def holder(ctx):
        yield from ctx.lock("L")
        yield from ctx.compute(8000)
        yield from ctx.unlock("L")

    def make_waiter(name):
        def body(ctx):
            yield from ctx.compute(100)
            yield from ctx.lock("L")
            order.append(name)
            yield from ctx.unlock("L")
        return body

    kernel.create_task(holder, "holder", 4, "PE1")
    kernel.create_task(make_waiter("low"), "low", 3, "PE2")
    kernel.create_task(make_waiter("high"), "high", 1, "PE3")
    kernel.run()
    assert order == ["high", "low"]


def test_unlock_without_holding_is_error(kernel):
    def body(ctx):
        yield from ctx.unlock("L")

    kernel.create_task(body, "t", 1, "PE1")
    with pytest.raises(Exception):
        kernel.run()


def test_semaphore_signal_then_wait(kernel):
    sem = Semaphore(kernel, "s", initial=1)
    log = []

    def body(ctx):
        yield from sem.wait(ctx)
        log.append("through")

    kernel.create_task(body, "t", 1, "PE1")
    kernel.run()
    assert log == ["through"]
    assert sem.count == 0


def test_semaphore_blocks_until_signalled(kernel):
    log = []
    sem = Semaphore(kernel, "s")

    def consumer(ctx):
        yield from sem.wait(ctx)
        log.append(("consumed", ctx.now))

    def producer(ctx):
        yield from ctx.compute(2000)
        yield from sem.signal(ctx)

    kernel.create_task(consumer, "consumer", 1, "PE1")
    kernel.create_task(producer, "producer", 1, "PE2")
    kernel.run()
    assert log and log[0][1] >= 2000


def test_semaphore_wakes_highest_priority_first(kernel):
    sem = Semaphore(kernel, "s")
    order = []

    def make_waiter(name):
        def body(ctx):
            yield from sem.wait(ctx)
            order.append(name)
        return body

    def producer(ctx):
        yield from ctx.compute(500)
        yield from sem.signal(ctx)
        yield from sem.signal(ctx)

    kernel.create_task(make_waiter("low"), "low", 5, "PE1")
    kernel.create_task(make_waiter("high"), "high", 1, "PE2")
    kernel.create_task(producer, "producer", 2, "PE3")
    kernel.run()
    assert order == ["high", "low"]


def test_semaphore_negative_initial_rejected(kernel):
    with pytest.raises(RTOSError):
        Semaphore(kernel, "s", initial=-1)


def test_spinlock_mutual_exclusion(kernel):
    spin = Spinlock(kernel, "sl")
    overlaps = []
    holding = {"who": None}

    def make(name):
        def body(ctx):
            yield from ctx.compute(10)
            yield from spin.acquire(ctx)
            if holding["who"] is not None:
                overlaps.append((holding["who"], name))
            holding["who"] = name
            yield from ctx.compute(300)
            holding["who"] = None
            yield from spin.release(ctx)
        return body

    kernel.create_task(make("a"), "a", 1, "PE1")
    kernel.create_task(make("b"), "b", 1, "PE2")
    kernel.run()
    assert overlaps == []
    assert spin.spin_polls >= 2


def test_spinlock_release_by_non_holder_is_error(kernel):
    spin = Spinlock(kernel, "sl")

    def body(ctx):
        yield from spin.release(ctx)

    kernel.create_task(body, "t", 1, "PE1")
    with pytest.raises(Exception):
        kernel.run()


def test_short_cs_mutual_exclusion(kernel, base_system):
    manager = base_system.lock_manager
    trace = []

    def make(name):
        def body(ctx):
            yield from manager.short_lock(ctx)
            trace.append(("enter", name, ctx.now))
            yield from ctx.compute(50)
            trace.append(("leave", name, ctx.now))
            yield from manager.short_unlock(ctx)
        return body

    kernel.create_task(make("a"), "a", 1, "PE1")
    kernel.create_task(make("b"), "b", 1, "PE2")
    kernel.run()
    # Critical sections must not interleave.
    sections = [entry for entry in trace]
    assert sections[0][0] == "enter" and sections[1][0] == "leave"
    assert sections[1][1] == sections[0][1]
