"""Tests for mailboxes, message queues and event flags."""

import pytest

from repro.errors import RTOSError
from repro.rtos.ipc import EventFlags, Mailbox, MessageQueue


def test_mailbox_post_then_pend(kernel):
    box = Mailbox(kernel, "m")
    got = []

    def producer(ctx):
        yield from box.post(ctx, {"frame": 1})

    def consumer(ctx):
        yield from ctx.sleep(100)
        message = yield from box.pend(ctx)
        got.append(message)

    kernel.create_task(producer, "producer", 1, "PE1")
    kernel.create_task(consumer, "consumer", 1, "PE2")
    kernel.run()
    assert got == [{"frame": 1}]
    assert box.peek() is None


def test_mailbox_pend_blocks_until_post(kernel):
    box = Mailbox(kernel, "m")
    got = []

    def consumer(ctx):
        message = yield from box.pend(ctx)
        got.append((ctx.now, message))

    def producer(ctx):
        yield from ctx.compute(1500)
        yield from box.post(ctx, "late")

    kernel.create_task(consumer, "consumer", 1, "PE1")
    kernel.create_task(producer, "producer", 1, "PE2")
    kernel.run()
    assert got[0][0] >= 1500 and got[0][1] == "late"


def test_mailbox_full_blocks_second_post(kernel):
    box = Mailbox(kernel, "m")
    order = []

    def producer(ctx):
        yield from box.post(ctx, 1)
        order.append(("posted-1", ctx.now))
        yield from box.post(ctx, 2)
        order.append(("posted-2", ctx.now))

    def consumer(ctx):
        yield from ctx.sleep(2000)
        first = yield from box.pend(ctx)
        second = yield from box.pend(ctx)
        order.append(("got", first, second))

    kernel.create_task(producer, "producer", 1, "PE1")
    kernel.create_task(consumer, "consumer", 1, "PE2")
    kernel.run()
    assert ("got", 1, 2) in order
    posted_2 = next(entry for entry in order if entry[0] == "posted-2")
    assert posted_2[1] >= 2000


def test_queue_fifo_order(kernel):
    queue = MessageQueue(kernel, "q", capacity=4)
    got = []

    def producer(ctx):
        for i in range(3):
            yield from queue.send(ctx, i)

    def consumer(ctx):
        yield from ctx.sleep(500)
        for _ in range(3):
            item = yield from queue.receive(ctx)
            got.append(item)

    kernel.create_task(producer, "producer", 1, "PE1")
    kernel.create_task(consumer, "consumer", 1, "PE2")
    kernel.run()
    assert got == [0, 1, 2]


def test_queue_send_blocks_when_full(kernel):
    queue = MessageQueue(kernel, "q", capacity=1)
    timeline = []

    def producer(ctx):
        yield from queue.send(ctx, "a")
        yield from queue.send(ctx, "b")
        timeline.append(("sent-b", ctx.now))

    def consumer(ctx):
        yield from ctx.sleep(3000)
        yield from queue.receive(ctx)
        yield from queue.receive(ctx)

    kernel.create_task(producer, "producer", 1, "PE1")
    kernel.create_task(consumer, "consumer", 1, "PE2")
    kernel.run()
    assert timeline[0][1] >= 3000


def test_queue_receive_blocks_when_empty(kernel):
    queue = MessageQueue(kernel, "q")
    got = []

    def consumer(ctx):
        item = yield from queue.receive(ctx)
        got.append((ctx.now, item))

    def producer(ctx):
        yield from ctx.compute(800)
        yield from queue.send(ctx, "x")

    kernel.create_task(consumer, "consumer", 1, "PE1")
    kernel.create_task(producer, "producer", 1, "PE2")
    kernel.run()
    assert got[0][0] >= 800


def test_queue_capacity_validation(kernel):
    with pytest.raises(RTOSError):
        MessageQueue(kernel, "q", capacity=0)


def test_event_flags_wait_any(kernel):
    flags = EventFlags(kernel, "f")
    got = []

    def waiter(ctx):
        value = yield from flags.wait(ctx, 0b0110)
        got.append((ctx.now, value))

    def setter(ctx):
        yield from ctx.compute(400)
        yield from flags.set(ctx, 0b0010)

    kernel.create_task(waiter, "waiter", 1, "PE1")
    kernel.create_task(setter, "setter", 1, "PE2")
    kernel.run()
    assert got and got[0][1] & 0b0010


def test_event_flags_wait_all(kernel):
    flags = EventFlags(kernel, "f")
    got = []

    def waiter(ctx):
        yield from flags.wait(ctx, 0b011, wait_all=True)
        got.append(ctx.now)

    def setter(ctx):
        yield from ctx.compute(200)
        yield from flags.set(ctx, 0b001)
        yield from ctx.compute(200)
        yield from flags.set(ctx, 0b010)

    kernel.create_task(waiter, "waiter", 1, "PE1")
    kernel.create_task(setter, "setter", 1, "PE2")
    kernel.run()
    # Woke only after the second set.
    assert got and got[0] >= 400


def test_event_flags_already_satisfied(kernel):
    flags = EventFlags(kernel, "f")
    got = []

    def body(ctx):
        yield from flags.set(ctx, 0b1)
        value = yield from flags.wait(ctx, 0b1)
        got.append(value)
        yield from flags.clear(ctx, 0b1)

    kernel.create_task(body, "t", 1, "PE1")
    kernel.run()
    assert got == [1]
    assert flags.flags == 0


def test_event_flags_validation(kernel):
    flags = EventFlags(kernel, "f")

    def body(ctx):
        yield from flags.wait(ctx, 0)

    kernel.create_task(body, "t", 1, "PE1")
    with pytest.raises(Exception):
        kernel.run()
