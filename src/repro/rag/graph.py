"""The Resource Allocation Graph with the paper's protocol rules.

Processes and resources are identified by strings (``"p1"``, ``"q2"``).
The graph stores *request edges* (process -> resource) and *grant edges*
(resource -> process) and enforces the single-unit resource model of
Section 3.2:

* a resource is granted to at most one process at a time;
* a process never requests a resource it already holds;
* only the holder may release a resource (Assumption 2).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from repro.errors import ResourceProtocolError


class RAG:
    """A mutable resource-allocation graph over fixed node sets.

    The node sets are fixed at construction (Assumption 1: a fixed number
    of resources; we also fix processes, as the DDU/DAU hardware does —
    matrix dimensions are synthesis-time parameters).
    """

    def __init__(self, processes: Iterable[str], resources: Iterable[str]) -> None:
        self._processes: list[str] = list(processes)
        self._resources: list[str] = list(resources)
        if len(set(self._processes)) != len(self._processes):
            raise ResourceProtocolError("duplicate process names")
        if len(set(self._resources)) != len(self._resources):
            raise ResourceProtocolError("duplicate resource names")
        overlap = set(self._processes) & set(self._resources)
        if overlap:
            raise ResourceProtocolError(
                f"names used for both process and resource: {sorted(overlap)}")
        self._proc_index = {p: i for i, p in enumerate(self._processes)}
        self._res_index = {q: i for i, q in enumerate(self._resources)}
        # request edges: process -> set of resources it is waiting for
        self._requests: dict[str, set[str]] = {p: set() for p in self._processes}
        # grant edges: resource -> holding process (single unit)
        self._holder: dict[str, Optional[str]] = {q: None for q in self._resources}

    # -- node accessors -----------------------------------------------------

    @property
    def processes(self) -> tuple[str, ...]:
        return tuple(self._processes)

    @property
    def resources(self) -> tuple[str, ...]:
        return tuple(self._resources)

    @property
    def num_processes(self) -> int:
        return len(self._processes)

    @property
    def num_resources(self) -> int:
        return len(self._resources)

    def process_index(self, process: str) -> int:
        self._check_process(process)
        return self._proc_index[process]

    def resource_index(self, resource: str) -> int:
        self._check_resource(resource)
        return self._res_index[resource]

    # -- edge queries --------------------------------------------------------

    def holder_of(self, resource: str) -> Optional[str]:
        """Process currently granted ``resource``, or None if available."""
        self._check_resource(resource)
        return self._holder[resource]

    def is_available(self, resource: str) -> bool:
        return self.holder_of(resource) is None

    def held_by(self, process: str) -> tuple[str, ...]:
        """Resources currently granted to ``process``."""
        self._check_process(process)
        return tuple(q for q in self._resources if self._holder[q] == process)

    def requests_of(self, process: str) -> tuple[str, ...]:
        """Resources ``process`` is currently waiting for."""
        self._check_process(process)
        return tuple(q for q in self._resources
                     if q in self._requests[process])

    def waiters_for(self, resource: str) -> tuple[str, ...]:
        """Processes with an outstanding request edge to ``resource``."""
        self._check_resource(resource)
        return tuple(p for p in self._processes
                     if resource in self._requests[p])

    def request_edges(self) -> Iterator[tuple[str, str]]:
        """All (process, resource) request edges in canonical order."""
        for p in self._processes:
            for q in self._resources:
                if q in self._requests[p]:
                    yield (p, q)

    def grant_edges(self) -> Iterator[tuple[str, str]]:
        """All (resource, process) grant edges in canonical order."""
        for q in self._resources:
            holder = self._holder[q]
            if holder is not None:
                yield (q, holder)

    @property
    def edge_count(self) -> int:
        requests = sum(len(reqs) for reqs in self._requests.values())
        grants = sum(1 for h in self._holder.values() if h is not None)
        return requests + grants

    def is_empty(self) -> bool:
        return self.edge_count == 0

    # -- edge mutation --------------------------------------------------------

    def add_request(self, process: str, resource: str) -> None:
        """Record that ``process`` is waiting for ``resource``."""
        self._check_process(process)
        self._check_resource(resource)
        if self._holder[resource] == process:
            raise ResourceProtocolError(
                f"{process} requested {resource} which it already holds")
        if resource in self._requests[process]:
            raise ResourceProtocolError(
                f"{process} already has a pending request for {resource}")
        self._requests[process].add(resource)

    def remove_request(self, process: str, resource: str) -> None:
        self._check_process(process)
        self._check_resource(resource)
        try:
            self._requests[process].remove(resource)
        except KeyError:
            raise ResourceProtocolError(
                f"{process} has no pending request for {resource}") from None

    def grant(self, resource: str, process: str) -> None:
        """Grant ``resource`` to ``process``, consuming a matching request.

        If the process had a pending request edge for the resource it is
        converted into the grant edge (the paper's pending-request ->
        grant transition); an immediate grant without a recorded request
        is also legal (request satisfied in the same event).
        """
        self._check_process(process)
        self._check_resource(resource)
        current = self._holder[resource]
        if current is not None:
            raise ResourceProtocolError(
                f"cannot grant {resource} to {process}: held by {current}")
        self._requests[process].discard(resource)
        self._holder[resource] = process

    def release(self, process: str, resource: str) -> None:
        """Release a held resource (Assumption 2: only the holder may)."""
        self._check_process(process)
        self._check_resource(resource)
        if self._holder[resource] != process:
            raise ResourceProtocolError(
                f"{process} released {resource} held by "
                f"{self._holder[resource]}")
        self._holder[resource] = None

    # -- graph-level operations ------------------------------------------------

    def copy(self) -> "RAG":
        clone = RAG(self._processes, self._resources)
        for p, reqs in self._requests.items():
            clone._requests[p] = set(reqs)
        clone._holder = dict(self._holder)
        return clone

    # -- checkpoint protocol -----------------------------------------------------

    SNAPSHOT_KIND = "rag.graph"

    def snapshot_state(self) -> dict:
        """Versioned, hashed snapshot (see :mod:`repro.checkpoint`)."""
        from repro.checkpoint.protocol import snapshot_envelope
        return snapshot_envelope(self.SNAPSHOT_KIND, {
            "processes": list(self._processes),
            "resources": list(self._resources),
            "grants": [[q, p] for q, p in self.grant_edges()],
            "requests": [[p, q] for p, q in self.request_edges()],
        })

    @classmethod
    def restore_state(cls, envelope: dict) -> "RAG":
        """Rebuild a RAG by replaying the snapshot through the protocol."""
        from repro.checkpoint.protocol import open_envelope
        state = open_envelope(envelope, kind=cls.SNAPSHOT_KIND)
        rag = cls(state["processes"], state["resources"])
        for q, p in state["grants"]:
            rag.grant(q, p)
        for p, q in state["requests"]:
            rag.add_request(p, q)
        return rag

    def successors(self, node: str) -> tuple[str, ...]:
        """Directed successors: p -> requested q; q -> holder p."""
        if node in self._proc_index:
            return self.requests_of(node)
        if node in self._res_index:
            holder = self._holder[node]
            return (holder,) if holder is not None else ()
        raise ResourceProtocolError(f"unknown node {node!r}")

    def has_cycle(self) -> bool:
        """Reference cycle check by iterative DFS (used as test oracle)."""
        WHITE, GREY, BLACK = 0, 1, 2
        color = {node: WHITE
                 for node in list(self._processes) + list(self._resources)}
        for start in color:
            if color[start] != WHITE:
                continue
            stack: list[tuple[str, Iterator[str]]] = [
                (start, iter(self.successors(start)))]
            color[start] = GREY
            while stack:
                node, successors = stack[-1]
                advanced = False
                for nxt in successors:
                    if color[nxt] == GREY:
                        return True
                    if color[nxt] == WHITE:
                        color[nxt] = GREY
                        stack.append((nxt, iter(self.successors(nxt))))
                        advanced = True
                        break
                if not advanced:
                    color[node] = BLACK
                    stack.pop()
        return False

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RAG):
            return NotImplemented
        return (self._processes == other._processes
                and self._resources == other._resources
                and self._requests == other._requests
                and self._holder == other._holder)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        grants = ", ".join(f"{q}->{p}" for q, p in self.grant_edges())
        reqs = ", ".join(f"{p}->{q}" for p, q in self.request_edges())
        return f"<RAG grants=[{grants}] requests=[{reqs}]>"

    # -- validation -----------------------------------------------------------

    def _check_process(self, process: str) -> None:
        if process not in self._proc_index:
            raise ResourceProtocolError(f"unknown process {process!r}")

    def _check_resource(self, resource: str) -> None:
        if resource not in self._res_index:
            raise ResourceProtocolError(f"unknown resource {resource!r}")
