"""State-matrix encoding of a RAG (Definition 6, Section 4.2.2).

Rows are resources ``q_s`` (s = 1..m), columns are processes ``p_t``
(t = 1..n).  Each cell is one of three states encoded as the 2-bit pair
``(alpha_r, alpha_g)`` the DDU hardware uses:

* ``10`` — request edge ``r`` (process t waits for resource s);
* ``01`` — grant edge ``g`` (resource s granted to process t);
* ``00`` — no edge.

The matrix also exposes the row/column logic reductions of Equations
3-6 (bit-wise OR, XOR terminal flags, AND connect flags) so the DDU
model can execute exactly the hardware's per-iteration computation.
"""

from __future__ import annotations

import enum
from typing import Iterable, Optional

from repro.errors import ResourceProtocolError
from repro.rag.graph import RAG


class CellState(enum.IntEnum):
    """Ternary cell value with the hardware's 2-bit encoding."""

    EMPTY = 0b00
    GRANT = 0b01
    REQUEST = 0b10

    @property
    def r_bit(self) -> int:
        return (self.value >> 1) & 1

    @property
    def g_bit(self) -> int:
        return self.value & 1

    def symbol(self) -> str:
        return {CellState.EMPTY: ".",
                CellState.GRANT: "g",
                CellState.REQUEST: "r"}[self]


#: Both matrix backends accept each other's snapshots: the payload is
#: representation-independent (names + text rows), only the envelope
#: ``kind`` differs — so converting between backends preserves
#: ``state_hash``.
MATRIX_SNAPSHOT_KINDS = ("rag.matrix", "rag.bitmatrix")


def matrix_snapshot_state(matrix, kind: str) -> dict:
    """Shared snapshot payload for any class speaking the cell protocol."""
    from repro.checkpoint.protocol import snapshot_envelope
    rows = [" ".join(matrix.get(s, t).symbol() for t in range(matrix.n))
            for s in range(matrix.m)]
    return snapshot_envelope(kind, {
        "resource_names": list(matrix.resource_names),
        "process_names": list(matrix.process_names),
        "rows": rows,
    })


def open_matrix_envelope(envelope: dict) -> dict:
    """Validate a matrix envelope of either backend kind."""
    from repro.checkpoint.protocol import envelope_kind, open_envelope
    from repro.errors import CheckpointError
    kind = envelope_kind(envelope)
    if kind not in MATRIX_SNAPSHOT_KINDS:
        raise CheckpointError(
            f"expected a matrix snapshot, got kind {kind!r}")
    state = open_envelope(envelope)
    if len(state["resource_names"]) != len(state["rows"]):
        raise CheckpointError("matrix snapshot: resource_names length != m")
    return state


class StateMatrix:
    """An m x n matrix of :class:`CellState` cells.

    ``m`` is the number of resources (rows), ``n`` the number of
    processes (columns) — matching the paper's ``M_ij`` layout.
    """

    SNAPSHOT_KIND = "rag.matrix"

    def __init__(self, num_resources: int, num_processes: int,
                 resource_names: Optional[Iterable[str]] = None,
                 process_names: Optional[Iterable[str]] = None) -> None:
        if num_resources < 1 or num_processes < 1:
            raise ResourceProtocolError(
                "matrix dimensions must be at least 1x1")
        self.m = num_resources
        self.n = num_processes
        self.resource_names = (list(resource_names) if resource_names
                               else [f"q{s + 1}" for s in range(self.m)])
        self.process_names = (list(process_names) if process_names
                              else [f"p{t + 1}" for t in range(self.n)])
        if len(self.resource_names) != self.m:
            raise ResourceProtocolError("resource_names length != m")
        if len(self.process_names) != self.n:
            raise ResourceProtocolError("process_names length != n")
        self._cells: list[list[CellState]] = [
            [CellState.EMPTY] * self.n for _ in range(self.m)]
        #: Non-empty cells, maintained incrementally by every mutator so
        #: ``is_empty()`` — consulted once per reduction pass — is O(1).
        self._edge_count = 0
        #: Per-row grant columns (normally 0 or 1 entries; text-loaded
        #: degenerate states may hold more), so ``set_grant`` enforces
        #: the single-unit rule without an O(n) row scan.
        self._grant_cols: list[set[int]] = [set() for _ in range(self.m)]

    # -- constructors ----------------------------------------------------------

    @classmethod
    def from_rag(cls, rag: RAG) -> "StateMatrix":
        """Map a RAG to its state matrix (lines 2-6 of Algorithm 2)."""
        matrix = cls(rag.num_resources, rag.num_processes,
                     resource_names=rag.resources,
                     process_names=rag.processes)
        for p, q in rag.request_edges():
            matrix.set_request(rag.resource_index(q), rag.process_index(p))
        for q, p in rag.grant_edges():
            matrix.set_grant(rag.resource_index(q), rag.process_index(p))
        return matrix

    @classmethod
    def from_rows(cls, rows: Iterable[str]) -> "StateMatrix":
        """Build from compact text rows, e.g. ``["g r .", "r g ."]``.

        Cell tokens: ``g`` grant, ``r`` request, ``.``/``0`` empty.
        """
        parsed: list[list[CellState]] = []
        for row in rows:
            tokens = row.split()
            cells = []
            for token in tokens:
                if token == "g":
                    cells.append(CellState.GRANT)
                elif token == "r":
                    cells.append(CellState.REQUEST)
                elif token in (".", "0"):
                    cells.append(CellState.EMPTY)
                else:
                    raise ResourceProtocolError(f"bad cell token {token!r}")
            parsed.append(cells)
        if not parsed:
            raise ResourceProtocolError("no rows given")
        return cls.from_cells(parsed)

    @classmethod
    def from_cells(cls, cells: Iterable[Iterable[CellState]]) -> "StateMatrix":
        """Build from an m x n grid of :class:`CellState` values."""
        parsed = [list(row) for row in cells]
        if not parsed:
            raise ResourceProtocolError("no rows given")
        widths = {len(row) for row in parsed}
        if len(widths) != 1:
            raise ResourceProtocolError("ragged rows")
        matrix = cls(len(parsed), widths.pop())
        matrix._install_cells(parsed)
        return matrix

    @classmethod
    def from_matrix(cls, other: "StateMatrix") -> "StateMatrix":
        """Convert from anything speaking the cell protocol (e.g. a
        :class:`~repro.rag.bitmatrix.BitMatrix`)."""
        matrix = cls(other.m, other.n,
                     resource_names=other.resource_names,
                     process_names=other.process_names)
        matrix._install_cells([[other.get(s, t) for t in range(other.n)]
                               for s in range(other.m)])
        return matrix

    def _install_cells(self, cells: list[list[CellState]]) -> None:
        """Adopt a cell grid wholesale, rebuilding the derived caches."""
        self._cells = cells
        self._edge_count = sum(1 for row in cells for cell in row
                               if cell is not CellState.EMPTY)
        self._grant_cols = [
            {t for t, cell in enumerate(row) if cell is CellState.GRANT}
            for row in cells]

    def to_rag(self) -> RAG:
        """Inverse mapping back to a RAG (single-grant rule enforced)."""
        rag = RAG(self.process_names, self.resource_names)
        for s in range(self.m):
            for t in range(self.n):
                cell = self._cells[s][t]
                if cell is CellState.REQUEST:
                    rag.add_request(self.process_names[t],
                                    self.resource_names[s])
                elif cell is CellState.GRANT:
                    rag.grant(self.resource_names[s], self.process_names[t])
        return rag

    def copy(self) -> "StateMatrix":
        clone = StateMatrix(self.m, self.n,
                            resource_names=self.resource_names,
                            process_names=self.process_names)
        clone._cells = [list(row) for row in self._cells]
        clone._edge_count = self._edge_count
        clone._grant_cols = [set(cols) for cols in self._grant_cols]
        return clone

    # -- checkpoint protocol -----------------------------------------------------

    def snapshot_state(self) -> dict:
        """Versioned, hashed snapshot (see :mod:`repro.checkpoint`)."""
        return matrix_snapshot_state(self, self.SNAPSHOT_KIND)

    @classmethod
    def restore_state(cls, envelope: dict) -> "StateMatrix":
        """Rebuild from a matrix snapshot of either backend kind."""
        state = open_matrix_envelope(envelope)
        matrix = cls.from_rows(state["rows"])
        matrix.resource_names = list(state["resource_names"])
        matrix.process_names = list(state["process_names"])
        if len(matrix.process_names) != matrix.n:
            from repro.errors import CheckpointError
            raise CheckpointError(
                "matrix snapshot: process_names length != n")
        return matrix

    # -- cell access -------------------------------------------------------------

    def get(self, s: int, t: int) -> CellState:
        return self._cells[s][t]

    def set_request(self, s: int, t: int) -> None:
        if self._cells[s][t] is not CellState.EMPTY:
            raise ResourceProtocolError(
                f"cell ({s},{t}) already {self._cells[s][t].name}")
        self._cells[s][t] = CellState.REQUEST
        self._edge_count += 1

    def set_grant(self, s: int, t: int) -> None:
        grants = self._grant_cols[s]
        if t in grants:
            raise ResourceProtocolError(f"cell ({s},{t}) already GRANT")
        if grants:
            raise ResourceProtocolError(
                f"resource row {s} already granted to column {min(grants)} "
                "(single-unit rule)")
        if self._cells[s][t] is CellState.EMPTY:
            self._edge_count += 1
        # A pending request may be promoted to a grant in place.
        self._cells[s][t] = CellState.GRANT
        grants.add(t)

    def clear(self, s: int, t: int) -> None:
        if self._cells[s][t] is not CellState.EMPTY:
            self._edge_count -= 1
            self._grant_cols[s].discard(t)
        self._cells[s][t] = CellState.EMPTY

    def row(self, s: int) -> tuple[CellState, ...]:
        return tuple(self._cells[s])

    def column(self, t: int) -> tuple[CellState, ...]:
        return tuple(self._cells[s][t] for s in range(self.m))

    @property
    def edge_count(self) -> int:
        return self._edge_count

    def is_empty(self) -> bool:
        return self._edge_count == 0

    # -- hardware reductions (Equations 3-6) ---------------------------------------

    def row_bwo(self, s: int) -> tuple[int, int]:
        """Bit-wise OR across row ``s``: (r_or, g_or)  (Equation 3)."""
        r_or = g_or = 0
        for cell in self._cells[s]:
            r_or |= cell.r_bit
            g_or |= cell.g_bit
        return r_or, g_or

    def column_bwo(self, t: int) -> tuple[int, int]:
        """Bit-wise OR down column ``t``: (r_or, g_or)  (Equation 3)."""
        r_or = g_or = 0
        for s in range(self.m):
            cell = self._cells[s][t]
            r_or |= cell.r_bit
            g_or |= cell.g_bit
        return r_or, g_or

    def row_terminal(self, s: int) -> bool:
        """Terminal flag tau for row ``s`` (Equation 4 / Definition 7)."""
        r_or, g_or = self.row_bwo(s)
        return bool(r_or ^ g_or)

    def column_terminal(self, t: int) -> bool:
        """Terminal flag tau for column ``t`` (Equation 4 / Definition 8)."""
        r_or, g_or = self.column_bwo(t)
        return bool(r_or ^ g_or)

    def row_connect(self, s: int) -> bool:
        """Connect flag phi for row ``s`` (Equation 6)."""
        r_or, g_or = self.row_bwo(s)
        return bool(r_or & g_or)

    def column_connect(self, t: int) -> bool:
        """Connect flag phi for column ``t`` (Equation 6)."""
        r_or, g_or = self.column_bwo(t)
        return bool(r_or & g_or)

    def terminal_rows(self) -> list[int]:
        """On-set of terminal rows, the function T_r (Definition 9)."""
        return [s for s in range(self.m)
                if self.row_terminal(s) and self._row_nonempty(s)]

    def terminal_columns(self) -> list[int]:
        """On-set of terminal columns, the function T_c (Definition 10)."""
        return [t for t in range(self.n)
                if self.column_terminal(t) and self._column_nonempty(t)]

    def clear_row(self, s: int) -> None:
        row = self._cells[s]
        for t in range(self.n):
            if row[t] is not CellState.EMPTY:
                self._edge_count -= 1
                row[t] = CellState.EMPTY
        self._grant_cols[s].clear()

    def clear_column(self, t: int) -> None:
        for s in range(self.m):
            if self._cells[s][t] is not CellState.EMPTY:
                self._edge_count -= 1
                self._grant_cols[s].discard(t)
                self._cells[s][t] = CellState.EMPTY

    def _row_nonempty(self, s: int) -> bool:
        return any(cell is not CellState.EMPTY for cell in self._cells[s])

    def _column_nonempty(self, t: int) -> bool:
        return any(self._cells[s][t] is not CellState.EMPTY
                   for s in range(self.m))

    # -- comparisons / rendering -----------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StateMatrix):
            return NotImplemented
        return (self.m, self.n) == (other.m, other.n) \
            and self._cells == other._cells

    def render(self) -> str:
        """Figure 11-style text rendering with node labels."""
        col_width = max([len(p) for p in self.process_names] + [1])
        header = " " * 6 + " ".join(
            p.rjust(col_width) for p in self.process_names)
        lines = [header]
        for s in range(self.m):
            cells = " ".join(self._cells[s][t].symbol().rjust(col_width)
                             for t in range(self.n))
            lines.append(f"{self.resource_names[s]:<6s}{cells}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<StateMatrix {self.m}x{self.n} edges={self.edge_count}>"
