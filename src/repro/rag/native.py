"""Optional native reduction kernel behind ``REPRO_MATRIX_BACKEND=native``.

The pure-Python :meth:`BitMatrix.reduce` already collapses one
Algorithm-1 pass to O(m + n) big-int mask tests, but each test still
pays interpreter dispatch.  This module provides the same sweep as a
compiled kernel over packed ``uint64`` word planes (the
:mod:`repro.rag.batch` layout for a single matrix), selected at import
time from whatever the host actually has:

1. **numba** — an ``@njit`` kernel, when numba is importable (CI
   installs it in the native-backend job);
2. **cext** — a ~60-line C kernel compiled once with the system C
   compiler (``cc``/``gcc``/``$CC``), cached under a source-hash
   filename and loaded via :mod:`ctypes`;
3. **nothing** — :func:`available` returns False and
   :class:`~repro.rag.bitmatrix.NativeBitMatrix` silently degrades to
   the pure-Python kernel, bit-identical by the differential suites.

Environment knobs:

* ``REPRO_NATIVE_DISABLE=1`` — never load a native kernel;
* ``REPRO_NATIVE_IMPL=numba|cext`` — force one implementation (fail to
  "unavailable" rather than falling through to the other);
* ``REPRO_NATIVE_CACHE=<dir>`` — where the compiled ``.so`` cache
  lives (default: ``$TMPDIR/repro-native``).

This module deliberately imports nothing from :mod:`repro.rag` — the
kernel works on plain word arrays, so there is no import cycle with
:mod:`repro.rag.bitmatrix`.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import threading
from pathlib import Path
from typing import Optional

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None

ENV_DISABLE = "REPRO_NATIVE_DISABLE"
ENV_IMPL = "REPRO_NATIVE_IMPL"
ENV_CACHE = "REPRO_NATIVE_CACHE"

_IMPL_NAMES = ("numba", "cext")

# The Algorithm-1 sweep over one matrix's packed word planes.  Row s
# spans words [s*wn, (s+1)*wn); column t spans [t*wm, (t+1)*wm).
# Terminal flags are computed for every row/column against the
# pre-clear snapshot, then all flagged spans clear at once — exactly
# the BitMatrix.reduce contract, including the counted final
# no-terminal pass.
_C_SOURCE = r"""
#include <stdint.h>

void repro_reduce(uint64_t *row_r, uint64_t *row_g,
                  uint64_t *col_r, uint64_t *col_g,
                  int64_t m, int64_t n, int64_t wn, int64_t wm,
                  uint8_t *term_rows, uint8_t *term_cols,
                  uint64_t *row_clear, uint64_t *col_clear,
                  int64_t *out)
{
    int64_t iterations = 0, passes = 0;
    for (;;) {
        passes += 1;
        int any_term = 0;
        for (int64_t s = 0; s < m; s++) {
            uint64_t r = 0, g = 0;
            for (int64_t j = 0; j < wn; j++) {
                r |= row_r[s * wn + j];
                g |= row_g[s * wn + j];
            }
            uint8_t flag = (r == 0) != (g == 0);
            term_rows[s] = flag;
            any_term |= flag;
        }
        for (int64_t t = 0; t < n; t++) {
            uint64_t r = 0, g = 0;
            for (int64_t j = 0; j < wm; j++) {
                r |= col_r[t * wm + j];
                g |= col_g[t * wm + j];
            }
            uint8_t flag = (r == 0) != (g == 0);
            term_cols[t] = flag;
            any_term |= flag;
        }
        if (!any_term)
            break;
        iterations += 1;
        for (int64_t j = 0; j < wm; j++) row_clear[j] = 0;
        for (int64_t j = 0; j < wn; j++) col_clear[j] = 0;
        for (int64_t s = 0; s < m; s++)
            if (term_rows[s])
                row_clear[s >> 6] |= (uint64_t)1 << (s & 63);
        for (int64_t t = 0; t < n; t++)
            if (term_cols[t])
                col_clear[t >> 6] |= (uint64_t)1 << (t & 63);
        for (int64_t s = 0; s < m; s++) {
            if (term_rows[s]) {
                for (int64_t j = 0; j < wn; j++) {
                    row_r[s * wn + j] = 0;
                    row_g[s * wn + j] = 0;
                }
            } else {
                for (int64_t j = 0; j < wn; j++) {
                    row_r[s * wn + j] &= ~col_clear[j];
                    row_g[s * wn + j] &= ~col_clear[j];
                }
            }
        }
        for (int64_t t = 0; t < n; t++) {
            if (term_cols[t]) {
                for (int64_t j = 0; j < wm; j++) {
                    col_r[t * wm + j] = 0;
                    col_g[t * wm + j] = 0;
                }
            } else {
                for (int64_t j = 0; j < wm; j++) {
                    col_r[t * wm + j] &= ~row_clear[j];
                    col_g[t * wm + j] &= ~row_clear[j];
                }
            }
        }
    }
    out[0] = iterations;
    out[1] = passes;
}
"""

_lock = threading.Lock()
_loaded = False
_impl: Optional[str] = None
_kernel = None          # callable(row_r, row_g, col_r, col_g) -> (it, p)


# -- implementation builders --------------------------------------------

def _build_numba():
    """An @njit kernel mirroring the C sweep, or None."""
    if _np is None:
        return None
    try:
        import numba
    except ImportError:
        return None
    np = _np

    @numba.njit(cache=False)
    def _sweep(row_r, row_g, col_r, col_g,
               term_rows, term_cols, row_clear, col_clear):
        m, wn = row_r.shape
        n, wm = col_r.shape
        one = np.uint64(1)
        zero = np.uint64(0)
        iterations = 0
        passes = 0
        while True:
            passes += 1
            any_term = False
            for s in range(m):
                r = zero
                g = zero
                for j in range(wn):
                    r |= row_r[s, j]
                    g |= row_g[s, j]
                flag = (r == zero) != (g == zero)
                term_rows[s] = 1 if flag else 0
                any_term = any_term or flag
            for t in range(n):
                r = zero
                g = zero
                for j in range(wm):
                    r |= col_r[t, j]
                    g |= col_g[t, j]
                flag = (r == zero) != (g == zero)
                term_cols[t] = 1 if flag else 0
                any_term = any_term or flag
            if not any_term:
                break
            iterations += 1
            for j in range(wm):
                row_clear[j] = zero
            for j in range(wn):
                col_clear[j] = zero
            for s in range(m):
                if term_rows[s]:
                    row_clear[s >> 6] |= one << np.uint64(s & 63)
            for t in range(n):
                if term_cols[t]:
                    col_clear[t >> 6] |= one << np.uint64(t & 63)
            for s in range(m):
                if term_rows[s]:
                    for j in range(wn):
                        row_r[s, j] = zero
                        row_g[s, j] = zero
                else:
                    for j in range(wn):
                        row_r[s, j] &= ~col_clear[j]
                        row_g[s, j] &= ~col_clear[j]
            for t in range(n):
                if term_cols[t]:
                    for j in range(wm):
                        col_r[t, j] = zero
                        col_g[t, j] = zero
                else:
                    for j in range(wm):
                        col_r[t, j] &= ~row_clear[j]
                        col_g[t, j] &= ~row_clear[j]
        return iterations, passes

    def kernel(row_r, row_g, col_r, col_g):
        m, wn = row_r.shape
        n, wm = col_r.shape
        term_rows = np.zeros(m, dtype=np.uint8)
        term_cols = np.zeros(n, dtype=np.uint8)
        row_clear = np.zeros(wm, dtype=np.uint64)
        col_clear = np.zeros(wn, dtype=np.uint64)
        return _sweep(row_r, row_g, col_r, col_g,
                      term_rows, term_cols, row_clear, col_clear)

    try:
        # Force a compile now so a broken numba install surfaces as
        # "unavailable" instead of an exception on the hot path.
        probe = np.zeros((1, 1), dtype=np.uint64)
        kernel(probe.copy(), probe.copy(), probe.copy(), probe.copy())
    except Exception:
        return None
    return kernel


def _build_cext():
    """Compile-and-load the C kernel via ctypes, or None."""
    if _np is None:
        return None
    compiler = (shutil.which(os.environ.get("CC", ""))
                or shutil.which("cc") or shutil.which("gcc"))
    if compiler is None:
        return None
    np = _np
    digest = hashlib.sha256(_C_SOURCE.encode("utf-8")).hexdigest()[:16]
    cache_dir = Path(os.environ.get(ENV_CACHE)
                     or Path(tempfile.gettempdir()) / "repro-native")
    so_path = cache_dir / f"repro_reduce_{digest}.so"
    try:
        if not so_path.exists():
            cache_dir.mkdir(parents=True, exist_ok=True)
            source = cache_dir / f"repro_reduce_{digest}.c"
            source.write_text(_C_SOURCE, encoding="utf-8")
            # Compile to a pid-suffixed temp name, then atomically
            # rename: concurrent processes race benignly.
            scratch = cache_dir / f".repro_reduce_{digest}.{os.getpid()}.so"
            subprocess.run(
                [compiler, "-O2", "-shared", "-fPIC",
                 "-o", str(scratch), str(source)],
                check=True, capture_output=True)
            os.replace(scratch, so_path)
        lib = ctypes.CDLL(str(so_path))
    except (OSError, subprocess.CalledProcessError):
        return None
    fn = lib.repro_reduce
    u64p = ctypes.POINTER(ctypes.c_uint64)
    u8p = ctypes.POINTER(ctypes.c_uint8)
    i64p = ctypes.POINTER(ctypes.c_int64)
    fn.argtypes = [u64p, u64p, u64p, u64p,
                   ctypes.c_int64, ctypes.c_int64,
                   ctypes.c_int64, ctypes.c_int64,
                   u8p, u8p, u64p, u64p, i64p]
    fn.restype = None

    def kernel(row_r, row_g, col_r, col_g):
        m, wn = row_r.shape
        n, wm = col_r.shape
        term_rows = np.zeros(m, dtype=np.uint8)
        term_cols = np.zeros(n, dtype=np.uint8)
        row_clear = np.zeros(wm, dtype=np.uint64)
        col_clear = np.zeros(wn, dtype=np.uint64)
        out = np.zeros(2, dtype=np.int64)
        fn(row_r.ctypes.data_as(u64p), row_g.ctypes.data_as(u64p),
           col_r.ctypes.data_as(u64p), col_g.ctypes.data_as(u64p),
           m, n, wn, wm,
           term_rows.ctypes.data_as(u8p), term_cols.ctypes.data_as(u8p),
           row_clear.ctypes.data_as(u64p),
           col_clear.ctypes.data_as(u64p),
           out.ctypes.data_as(i64p))
        return int(out[0]), int(out[1])

    return kernel


_BUILDERS = {"numba": _build_numba, "cext": _build_cext}


def _load() -> None:
    global _loaded, _impl, _kernel
    if _loaded:
        return
    with _lock:
        if _loaded:
            return
        impl, kernel = None, None
        if os.environ.get(ENV_DISABLE, "") not in ("1", "true", "yes"):
            forced = os.environ.get(ENV_IMPL, "").strip().lower()
            order = (forced,) if forced in _IMPL_NAMES else _IMPL_NAMES
            for name in order:
                kernel = _BUILDERS[name]()
                if kernel is not None:
                    impl = name
                    break
        _impl, _kernel = impl, kernel
        _loaded = True


def reset() -> None:
    """Forget the loaded kernel; the next call re-reads the env knobs."""
    global _loaded, _impl, _kernel
    with _lock:
        _loaded = False
        _impl = None
        _kernel = None


def available() -> bool:
    """True when a compiled kernel is loaded (numba or cext)."""
    _load()
    return _kernel is not None


def impl_name() -> Optional[str]:
    """``"numba"``, ``"cext"``, or None when no kernel loaded."""
    _load()
    return _impl


def reduce_words(row_r, row_g, col_r, col_g) -> tuple[int, int]:
    """Run the kernel over C-contiguous uint64 word planes, in place.

    ``row_r``/``row_g`` are ``(m, wn)``, ``col_r``/``col_g`` are
    ``(n, wm)``.  Returns ``(iterations, passes)``.
    """
    _load()
    if _kernel is None:
        raise RuntimeError("no native kernel available "
                           "(check native.available() first)")
    return _kernel(row_r, row_g, col_r, col_g)


_WORD_MASK = (1 << 64) - 1


def reduce_matrix(matrix) -> tuple[int, int]:
    """Reduce one BitMatrix-shaped object with the native kernel.

    Marshals the Python-int planes into word arrays, runs the kernel,
    writes the reduced planes back, and recomputes the edge count —
    the caller sees exactly a :meth:`BitMatrix.reduce`.
    """
    np = _np
    m, n = matrix.m, matrix.n
    wn = max(1, (n + 63) >> 6)
    wm = max(1, (m + 63) >> 6)
    row_r = np.zeros((m, wn), dtype=np.uint64)
    row_g = np.zeros((m, wn), dtype=np.uint64)
    col_r = np.zeros((n, wm), dtype=np.uint64)
    col_g = np.zeros((n, wm), dtype=np.uint64)
    for j in range(wn):
        shift = j * 64
        row_r[:, j] = [(v >> shift) & _WORD_MASK for v in matrix._row_r]
        row_g[:, j] = [(v >> shift) & _WORD_MASK for v in matrix._row_g]
    for j in range(wm):
        shift = j * 64
        col_r[:, j] = [(v >> shift) & _WORD_MASK for v in matrix._col_r]
        col_g[:, j] = [(v >> shift) & _WORD_MASK for v in matrix._col_g]
    iterations, passes = reduce_words(row_r, row_g, col_r, col_g)
    edges = 0
    for s in range(m):
        r_word = 0
        g_word = 0
        for j in range(wn - 1, -1, -1):
            r_word = (r_word << 64) | int(row_r[s, j])
            g_word = (g_word << 64) | int(row_g[s, j])
        matrix._row_r[s] = r_word
        matrix._row_g[s] = g_word
        edges += r_word.bit_count() + g_word.bit_count()
    for t in range(n):
        r_word = 0
        g_word = 0
        for j in range(wm - 1, -1, -1):
            r_word = (r_word << 64) | int(col_r[t, j])
            g_word = (g_word << 64) | int(col_g[t, j])
        matrix._col_r[t] = r_word
        matrix._col_g[t] = g_word
    matrix._edges = edges
    return iterations, passes
