"""Multi-unit resource systems (the paper's future-MPSoC direction).

The DDU/DAU operate on the single-unit model (one grant edge per
resource).  The paper's motivation — "future chips may have five to
twenty (or more) processors and ten to a hundred resources" — also
covers resource *classes* with multiple interchangeable units (DMA
channels, scratchpad banks), where a cycle in the RAG is necessary but
no longer sufficient for deadlock.  This module provides the classic
counting-model machinery for that case:

* :class:`MultiUnitSystem` — allocation/request bookkeeping with
  protocol enforcement;
* :meth:`MultiUnitSystem.detect` — Coffman-style detection by graph
  reduction: repeatedly mark processes whose outstanding requests fit
  in the available units, release their allocations, and report
  whatever cannot be marked as deadlocked;
* :meth:`MultiUnitSystem.to_rag` — projection to the single-unit RAG
  when every class has one unit, which must (and, property-tested,
  does) agree with PDDA.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.errors import ResourceProtocolError
from repro.rag.graph import RAG


@dataclass(frozen=True)
class MultiUnitDetection:
    """Outcome of one detection run."""

    deadlock: bool
    deadlocked_processes: tuple
    reduction_order: tuple        # processes marked finishable, in order
    operations: int


class MultiUnitSystem:
    """Counting-model resource allocation state."""

    def __init__(self, processes: Iterable[str],
                 resources: Mapping[str, int]) -> None:
        self._processes = tuple(processes)
        if len(set(self._processes)) != len(self._processes):
            raise ResourceProtocolError("duplicate process names")
        self._total: dict = {}
        for name, units in resources.items():
            if units < 1:
                raise ResourceProtocolError(
                    f"resource {name!r} must have at least one unit")
            self._total[name] = units
        self._allocation: dict = {
            p: {q: 0 for q in self._total} for p in self._processes}
        self._requests: dict = {
            p: {q: 0 for q in self._total} for p in self._processes}
        #: Free units per class, maintained on every grant/release so
        #: :meth:`available` (queried inside detection's inner loop)
        #: never re-sums the allocation table.
        self._available: dict = dict(self._total)

    # -- accessors ------------------------------------------------------------

    @property
    def processes(self) -> tuple:
        return self._processes

    @property
    def resources(self) -> tuple:
        return tuple(self._total)

    def total_units(self, resource: str) -> int:
        self._check_resource(resource)
        return self._total[resource]

    def available(self, resource: str) -> int:
        self._check_resource(resource)
        return self._available[resource]

    def allocation_of(self, process: str, resource: str) -> int:
        self._check(process, resource)
        return self._allocation[process][resource]

    def outstanding_request(self, process: str, resource: str) -> int:
        self._check(process, resource)
        return self._requests[process][resource]

    # -- protocol -----------------------------------------------------------------

    def request(self, process: str, resource: str, units: int = 1) -> None:
        """Record an outstanding request for ``units`` more units."""
        self._check(process, resource)
        if units < 1:
            raise ResourceProtocolError("units must be positive")
        wanted = (self._allocation[process][resource]
                  + self._requests[process][resource] + units)
        if wanted > self._total[resource]:
            raise ResourceProtocolError(
                f"{process} would hold+want {wanted} of {resource} "
                f"({self._total[resource]} exist)")
        self._requests[process][resource] += units

    def grant(self, process: str, resource: str, units: int = 1) -> None:
        """Satisfy part of an outstanding request."""
        self._check(process, resource)
        if units < 1:
            raise ResourceProtocolError("units must be positive")
        if units > self._requests[process][resource]:
            raise ResourceProtocolError(
                f"{process} has no outstanding request for {units} "
                f"unit(s) of {resource}")
        if units > self.available(resource):
            raise ResourceProtocolError(
                f"only {self.available(resource)} unit(s) of "
                f"{resource} available")
        self._requests[process][resource] -= units
        self._allocation[process][resource] += units
        self._available[resource] -= units

    def release(self, process: str, resource: str, units: int = 1) -> None:
        self._check(process, resource)
        if units < 1:
            raise ResourceProtocolError("units must be positive")
        if units > self._allocation[process][resource]:
            raise ResourceProtocolError(
                f"{process} holds only "
                f"{self._allocation[process][resource]} of {resource}")
        self._allocation[process][resource] -= units
        self._available[resource] += units

    def withdraw(self, process: str, resource: str, units: int = 1) -> None:
        """Cancel part of an outstanding request."""
        self._check(process, resource)
        if units > self._requests[process][resource]:
            raise ResourceProtocolError(
                f"{process} has no such outstanding request")
        self._requests[process][resource] -= units

    # -- detection -----------------------------------------------------------------

    def detect(self) -> MultiUnitDetection:
        """Coffman-style detection on the current (expedient) state.

        A process is *unblocked* when every outstanding request fits in
        the currently available units; unblocked processes are assumed
        to finish and release.  Anything left waiting is deadlocked.
        """
        work = dict(self._available)
        finished: list = []
        remaining = set(self._processes)
        operations = 0
        progress = True
        while progress and remaining:
            progress = False
            for process in sorted(remaining):
                operations += 1
                requests = self._requests[process]
                operations += len(self._total)
                if all(requests[q] <= work[q] for q in self._total):
                    for q in self._total:
                        work[q] += self._allocation[process][q]
                    finished.append(process)
                    remaining.discard(process)
                    progress = True
        deadlocked = tuple(sorted(
            p for p in remaining
            if any(self._requests[p][q] > 0 for q in self._total)))
        return MultiUnitDetection(
            deadlock=bool(deadlocked),
            deadlocked_processes=deadlocked,
            reduction_order=tuple(finished),
            operations=operations)

    def copy(self) -> "MultiUnitSystem":
        clone = MultiUnitSystem(self._processes, self._total)
        for p in self._processes:
            clone._allocation[p] = dict(self._allocation[p])
            clone._requests[p] = dict(self._requests[p])
        clone._available = dict(self._available)
        return clone

    # -- checkpoint protocol -------------------------------------------------------

    SNAPSHOT_KIND = "rag.multiunit"

    def snapshot_state(self) -> dict:
        """Versioned, hashed snapshot (see :mod:`repro.checkpoint`)."""
        from repro.checkpoint.protocol import snapshot_envelope
        return snapshot_envelope(self.SNAPSHOT_KIND, {
            "processes": list(self._processes),
            "resources": [[q, units] for q, units in self._total.items()],
            "allocation": [[p, q, self._allocation[p][q]]
                           for p in self._processes for q in self._total
                           if self._allocation[p][q]],
            "requests": [[p, q, self._requests[p][q]]
                         for p in self._processes for q in self._total
                         if self._requests[p][q]],
        })

    @classmethod
    def restore_state(cls, envelope: dict) -> "MultiUnitSystem":
        """Rebuild by replaying the snapshot through the protocol."""
        from repro.checkpoint.protocol import open_envelope
        state = open_envelope(envelope, kind=cls.SNAPSHOT_KIND)
        system = cls(state["processes"], dict(map(tuple, state["resources"])))
        for p, q, units in state["allocation"]:
            system.request(p, q, units)
            system.grant(p, q, units)
        for p, q, units in state["requests"]:
            system.request(p, q, units)
        return system

    # -- projection to the single-unit model --------------------------------------------

    def to_rag(self) -> RAG:
        """Project to a RAG; requires every class to have one unit."""
        multi = [q for q, units in self._total.items() if units != 1]
        if multi:
            raise ResourceProtocolError(
                f"not single-unit: {sorted(multi)}")
        rag = RAG(self._processes, self._total)
        for process in self._processes:
            for resource in self._total:
                if self._allocation[process][resource]:
                    rag.grant(resource, process)
                if self._requests[process][resource]:
                    rag.add_request(process, resource)
        return rag

    # -- validation ---------------------------------------------------------------------

    def _check(self, process: str, resource: str) -> None:
        if process not in self._allocation:
            raise ResourceProtocolError(f"unknown process {process!r}")
        self._check_resource(resource)

    def _check_resource(self, resource: str) -> None:
        if resource not in self._total:
            raise ResourceProtocolError(f"unknown resource {resource!r}")
