"""Serialization of RAG states and matrices.

System states travel between tools (the framework's exploration sweeps,
trace dumps, regression fixtures), so both representations round-trip
through plain dictionaries (JSON-safe) and compact text.
"""

from __future__ import annotations

import json
from typing import Union

from repro.errors import ResourceProtocolError
from repro.rag.graph import RAG
from repro.rag.matrix import CellState, StateMatrix


def rag_to_dict(rag: RAG) -> dict:
    """JSON-safe snapshot of a RAG state."""
    return {
        "processes": list(rag.processes),
        "resources": list(rag.resources),
        "grants": [[q, p] for q, p in rag.grant_edges()],
        "requests": [[p, q] for p, q in rag.request_edges()],
    }


def rag_from_dict(data: dict) -> RAG:
    """Rebuild a RAG from :func:`rag_to_dict` output (validated)."""
    try:
        rag = RAG(data["processes"], data["resources"])
        for q, p in data["grants"]:
            rag.grant(q, p)
        for p, q in data["requests"]:
            rag.add_request(p, q)
    except KeyError as missing:
        raise ResourceProtocolError(
            f"missing field {missing} in RAG snapshot") from None
    return rag


def rag_to_json(rag: RAG, indent: int = None) -> str:
    """Serialize a RAG state to a JSON document."""
    return json.dumps(rag_to_dict(rag), indent=indent, sort_keys=True)


def rag_from_json(text: str) -> RAG:
    """Rebuild a RAG state from :func:`rag_to_json` output."""
    return rag_from_dict(json.loads(text))


_SYMBOLS = {CellState.EMPTY: ".", CellState.GRANT: "g",
            CellState.REQUEST: "r"}


def matrix_to_rows(matrix: StateMatrix) -> list:
    """Compact text rows accepted by :meth:`StateMatrix.from_rows`."""
    return [" ".join(_SYMBOLS[matrix.get(s, t)] for t in range(matrix.n))
            for s in range(matrix.m)]


def matrix_to_dict(matrix: StateMatrix) -> dict:
    return {
        "resource_names": list(matrix.resource_names),
        "process_names": list(matrix.process_names),
        "rows": matrix_to_rows(matrix),
    }


def matrix_from_dict(data: dict) -> StateMatrix:
    try:
        matrix = StateMatrix.from_rows(data["rows"])
        names_r = data.get("resource_names")
        names_p = data.get("process_names")
    except KeyError as missing:
        raise ResourceProtocolError(
            f"missing field {missing} in matrix snapshot") from None
    if names_r is not None:
        if len(names_r) != matrix.m:
            raise ResourceProtocolError("resource_names length mismatch")
        matrix.resource_names = list(names_r)
    if names_p is not None:
        if len(names_p) != matrix.n:
            raise ResourceProtocolError("process_names length mismatch")
        matrix.process_names = list(names_p)
    return matrix


def snapshot(state: Union[RAG, StateMatrix]) -> dict:
    """Uniform snapshot entry point for either representation."""
    if isinstance(state, RAG):
        return {"kind": "rag", **rag_to_dict(state)}
    if isinstance(state, StateMatrix):
        return {"kind": "matrix", **matrix_to_dict(state)}
    raise ResourceProtocolError(f"cannot snapshot {type(state).__name__}")


def restore(data: dict) -> Union[RAG, StateMatrix]:
    """Inverse of :func:`snapshot`: rebuild either representation."""
    kind = data.get("kind")
    if kind == "rag":
        return rag_from_dict(data)
    if kind == "matrix":
        return matrix_from_dict(data)
    raise ResourceProtocolError(f"unknown snapshot kind {kind!r}")
