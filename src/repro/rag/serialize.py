"""Serialization of RAG states and matrices.

System states travel between tools (the framework's exploration sweeps,
trace dumps, regression fixtures), so both representations round-trip
through plain dictionaries (JSON-safe) and compact text.
"""

from __future__ import annotations

import json
from typing import Union

from repro.errors import ResourceProtocolError
from repro.rag.bitmatrix import AnyStateMatrix, BitMatrix
from repro.rag.graph import RAG
from repro.rag.matrix import CellState, StateMatrix
from repro.rag.multiunit import MultiUnitSystem


def rag_to_dict(rag: RAG) -> dict:
    """JSON-safe snapshot of a RAG state."""
    return {
        "processes": list(rag.processes),
        "resources": list(rag.resources),
        "grants": [[q, p] for q, p in rag.grant_edges()],
        "requests": [[p, q] for p, q in rag.request_edges()],
    }


def rag_from_dict(data: dict) -> RAG:
    """Rebuild a RAG from :func:`rag_to_dict` output (validated)."""
    try:
        rag = RAG(data["processes"], data["resources"])
        for q, p in data["grants"]:
            rag.grant(q, p)
        for p, q in data["requests"]:
            rag.add_request(p, q)
    except KeyError as missing:
        raise ResourceProtocolError(
            f"missing field {missing} in RAG snapshot") from None
    return rag


def rag_to_json(rag: RAG, indent: int = None) -> str:
    """Serialize a RAG state to a JSON document."""
    return json.dumps(rag_to_dict(rag), indent=indent, sort_keys=True)


def rag_from_json(text: str) -> RAG:
    """Rebuild a RAG state from :func:`rag_to_json` output."""
    return rag_from_dict(json.loads(text))


_SYMBOLS = {CellState.EMPTY: ".", CellState.GRANT: "g",
            CellState.REQUEST: "r"}


def matrix_to_rows(matrix: AnyStateMatrix) -> list:
    """Compact text rows accepted by :meth:`StateMatrix.from_rows`."""
    return [" ".join(_SYMBOLS[matrix.get(s, t)] for t in range(matrix.n))
            for s in range(matrix.m)]


def matrix_to_dict(matrix: AnyStateMatrix) -> dict:
    return {
        "resource_names": list(matrix.resource_names),
        "process_names": list(matrix.process_names),
        "rows": matrix_to_rows(matrix),
    }


def matrix_from_dict(data: dict) -> StateMatrix:
    try:
        matrix = StateMatrix.from_rows(data["rows"])
        names_r = data.get("resource_names")
        names_p = data.get("process_names")
    except KeyError as missing:
        raise ResourceProtocolError(
            f"missing field {missing} in matrix snapshot") from None
    if names_r is not None:
        if len(names_r) != matrix.m:
            raise ResourceProtocolError("resource_names length mismatch")
        matrix.resource_names = list(names_r)
    if names_p is not None:
        if len(names_p) != matrix.n:
            raise ResourceProtocolError("process_names length mismatch")
        matrix.process_names = list(names_p)
    return matrix


def multiunit_to_dict(system: MultiUnitSystem) -> dict:
    """JSON-safe snapshot of a multi-unit allocation state."""
    allocation = [[p, q, system.allocation_of(p, q)]
                  for p in system.processes for q in system.resources
                  if system.allocation_of(p, q)]
    requests = [[p, q, system.outstanding_request(p, q)]
                for p in system.processes for q in system.resources
                if system.outstanding_request(p, q)]
    return {
        "processes": list(system.processes),
        "resources": [[q, system.total_units(q)] for q in system.resources],
        "allocation": allocation,
        "requests": requests,
    }


def multiunit_from_dict(data: dict) -> MultiUnitSystem:
    """Rebuild a multi-unit state by replaying through the protocol."""
    try:
        system = MultiUnitSystem(
            data["processes"], dict(map(tuple, data["resources"])))
        for p, q, units in data["allocation"]:
            system.request(p, q, units)
            system.grant(p, q, units)
        for p, q, units in data["requests"]:
            system.request(p, q, units)
    except KeyError as missing:
        raise ResourceProtocolError(
            f"missing field {missing} in multiunit snapshot") from None
    return system


AnyRagState = Union[RAG, StateMatrix, BitMatrix, MultiUnitSystem]


def snapshot(state: AnyRagState) -> dict:
    """Uniform snapshot entry point for any RAG-layer representation."""
    if isinstance(state, RAG):
        return {"kind": "rag", **rag_to_dict(state)}
    if isinstance(state, StateMatrix):
        return {"kind": "matrix", **matrix_to_dict(state)}
    if isinstance(state, BitMatrix):
        return {"kind": "bitmatrix", **matrix_to_dict(state)}
    if isinstance(state, MultiUnitSystem):
        return {"kind": "multiunit", **multiunit_to_dict(state)}
    raise ResourceProtocolError(f"cannot snapshot {type(state).__name__}")


def restore(data: dict) -> AnyRagState:
    """Inverse of :func:`snapshot`: rebuild any representation."""
    kind = data.get("kind")
    if kind == "rag":
        return rag_from_dict(data)
    if kind == "matrix":
        return matrix_from_dict(data)
    if kind == "bitmatrix":
        return BitMatrix.from_matrix(matrix_from_dict(data))
    if kind == "multiunit":
        return multiunit_from_dict(data)
    raise ResourceProtocolError(f"unknown snapshot kind {kind!r}")
