"""Resource Allocation Graph (RAG) substrate.

The paper's deadlock machinery operates on RAGs with *single-unit,
single-grant* resources: a resource is granted to at most one process at
a time (Section 3.2).  This package provides:

* :class:`~repro.rag.graph.RAG` — the graph itself, with protocol
  enforcement (Assumptions 1-3 of the paper);
* :class:`~repro.rag.matrix.StateMatrix` — the m x n matrix encoding of
  Definition 6 with the 2-bit cell encoding of Section 4.2.2;
* :class:`~repro.rag.bitmatrix.BitMatrix` — the same matrix stored as
  per-row/per-column integer bitmasks (the word-parallel fast path the
  reduction kernels run on; ``REPRO_MATRIX_BACKEND`` selects);
* :mod:`repro.rag.classic` — prior-work baselines (Holt-style cycle
  detection, graph reduction, Leibfried's adjacency-matrix method,
  Banker's algorithm);
* :mod:`repro.rag.generate` — random and structured state generators for
  tests and benchmarks.
"""

from repro.rag.graph import RAG
from repro.rag.matrix import CellState, StateMatrix
from repro.rag.bitmatrix import (
    BACKEND_ENV_VAR,
    BACKENDS,
    FAST_BACKEND,
    NATIVE_BACKEND,
    REFERENCE_BACKEND,
    BitMatrix,
    NativeBitMatrix,
    as_backend_matrix,
    default_backend,
    matrix_class,
    matrix_from_rag,
    resolve_backend,
)
from repro.rag.batch import (
    HAS_NUMPY,
    PLANE_WORD_BITS,
    BatchPlane,
    PlaneAccumulator,
    PythonBatchPlane,
    batch_plane,
    batched_reduce,
    plane_words,
)
from repro.rag.classic import (
    BankersAvoider,
    graph_reduction_detect,
    holt_detect,
    leibfried_detect,
)
from repro.rag.generate import (
    DEFAULT_SEED,
    chain_state,
    cycle_state,
    deadlock_free_state,
    random_multiunit_state,
    random_state,
    resolve_rng,
    worst_case_state,
)
from repro.rag.multiunit import MultiUnitDetection, MultiUnitSystem
from repro.rag.serialize import (
    rag_from_dict,
    rag_from_json,
    rag_to_dict,
    rag_to_json,
    restore,
    snapshot,
)

__all__ = [
    "RAG",
    "StateMatrix",
    "BitMatrix",
    "CellState",
    "BACKENDS",
    "BACKEND_ENV_VAR",
    "FAST_BACKEND",
    "NATIVE_BACKEND",
    "REFERENCE_BACKEND",
    "NativeBitMatrix",
    "as_backend_matrix",
    "default_backend",
    "matrix_class",
    "matrix_from_rag",
    "resolve_backend",
    "HAS_NUMPY",
    "PLANE_WORD_BITS",
    "plane_words",
    "BatchPlane",
    "PlaneAccumulator",
    "PythonBatchPlane",
    "batch_plane",
    "batched_reduce",
    "holt_detect",
    "graph_reduction_detect",
    "leibfried_detect",
    "BankersAvoider",
    "DEFAULT_SEED",
    "resolve_rng",
    "random_state",
    "random_multiunit_state",
    "cycle_state",
    "chain_state",
    "deadlock_free_state",
    "worst_case_state",
    "MultiUnitSystem",
    "MultiUnitDetection",
    "rag_to_dict",
    "rag_from_dict",
    "rag_to_json",
    "rag_from_json",
    "snapshot",
    "restore",
]
