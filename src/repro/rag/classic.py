"""Prior-work baseline algorithms (Section 3.3).

These are the comparators the paper cites:

* :func:`holt_detect` — Holt-style O(m*n) cycle/knot detection by
  depth-first search over the RAG [21];
* :func:`graph_reduction_detect` — Shoshani/Coffman-style detection by
  repeatedly reducing unblocked processes [20];
* :func:`leibfried_detect` — Leibfried's adjacency-matrix method using
  boolean matrix powers, O(k^3) per multiplication [22];
* :class:`BankersAvoider` — Dijkstra's Banker's algorithm [24], the
  traditional avoidance baseline that needs a-priori maximum claims
  (the requirement the paper's DAA removes).

Each detector also returns an operation count so benchmarks can compare
algorithmic work against PDDA.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.errors import ResourceProtocolError
from repro.rag.graph import RAG


@dataclass(frozen=True)
class BaselineResult:
    """Outcome of a baseline detector."""

    deadlock: bool
    operations: int


def holt_detect(rag: RAG) -> BaselineResult:
    """Cycle detection by iterative DFS (Holt [21]).

    For the single-unit resource model a cycle in the RAG is necessary
    and sufficient for deadlock, so this is an exact oracle.  The
    operation count tallies visited edges.
    """
    WHITE, GREY, BLACK = 0, 1, 2
    color = {node: WHITE
             for node in list(rag.processes) + list(rag.resources)}
    operations = 0
    for start in color:
        if color[start] != WHITE:
            continue
        stack = [(start, list(rag.successors(start)), 0)]
        color[start] = GREY
        while stack:
            node, succ, idx = stack.pop()
            advanced = False
            while idx < len(succ):
                nxt = succ[idx]
                idx += 1
                operations += 1
                if color[nxt] == GREY:
                    return BaselineResult(True, operations)
                if color[nxt] == WHITE:
                    color[nxt] = GREY
                    stack.append((node, succ, idx))
                    stack.append((nxt, list(rag.successors(nxt)), 0))
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
    return BaselineResult(False, operations)


def graph_reduction_detect(rag: RAG) -> BaselineResult:
    """Detection by graph reduction (Shoshani and Coffman [20]).

    Repeatedly pick a process that is not blocked (every resource it
    requests is available) and remove it, releasing its resources.  If
    all processes can be removed the state is deadlock-free.  Worst case
    O(m * n^2) process scans, matching the 1970 algorithm's complexity.
    """
    work = rag.copy()
    remaining = set(work.processes)
    operations = 0
    progress = True
    while progress:
        progress = False
        for p in sorted(remaining):
            operations += 1
            requests = work.requests_of(p)
            operations += len(requests)
            if all(work.is_available(q) for q in requests):
                for q in requests:
                    work.remove_request(p, q)
                for q in work.held_by(p):
                    work.release(p, q)
                    operations += 1
                remaining.discard(p)
                progress = True
        if not remaining:
            break
    deadlock = any(work.requests_of(p) for p in remaining)
    return BaselineResult(deadlock, operations)


def leibfried_detect(rag: RAG) -> BaselineResult:
    """Adjacency-matrix detection via boolean matrix powers [22].

    Build the (m+n) x (m+n) adjacency matrix A of the RAG and compute
    A, A^2, ..., A^(m+n); a non-zero diagonal entry in any power means a
    cycle.  Each boolean multiply is O(k^3), hence the O(m^3) run-time
    complexity the paper quotes.
    """
    nodes = list(rag.processes) + list(rag.resources)
    index = {node: i for i, node in enumerate(nodes)}
    k = len(nodes)
    adjacency = [[False] * k for _ in range(k)]
    for p, q in rag.request_edges():
        adjacency[index[p]][index[q]] = True
    for q, p in rag.grant_edges():
        adjacency[index[q]][index[p]] = True

    operations = 0
    power = [row[:] for row in adjacency]
    for _step in range(k):
        if any(power[i][i] for i in range(k)):
            return BaselineResult(True, operations)
        nxt = [[False] * k for _ in range(k)]
        for i in range(k):
            row = power[i]
            for j in range(k):
                acc = False
                adj_col = adjacency
                for x in range(k):
                    operations += 1
                    if row[x] and adj_col[x][j]:
                        acc = True
                        break
                nxt[i][j] = acc
        power = nxt
    deadlock = any(power[i][i] for i in range(k))
    return BaselineResult(deadlock, operations)


class BankersAvoider:
    """Dijkstra's Banker's algorithm for multi-unit resources [24].

    The traditional avoidance baseline: every process must declare its
    maximum claim per resource class up front; a request is granted only
    if the resulting state is *safe* (some completion order exists).

    This is the comparator for the paper's point that classic avoidance
    needs a-priori maximum claims (disadvantage (iii) of Section 3.3.3),
    which the DAA/DAU approach removes.
    """

    def __init__(self, total: Mapping[str, int],
                 claims: Mapping[str, Mapping[str, int]]) -> None:
        self.resources = sorted(total)
        self.total = dict(total)
        self.processes = sorted(claims)
        self.claims = {p: dict(c) for p, c in claims.items()}
        for p, claim in self.claims.items():
            for q, amount in claim.items():
                if q not in self.total:
                    raise ResourceProtocolError(
                        f"claim on unknown resource {q!r}")
                if amount > self.total[q]:
                    raise ResourceProtocolError(
                        f"{p} claims {amount} of {q}, only "
                        f"{self.total[q]} exist")
        self.allocation: dict[str, dict[str, int]] = {
            p: {q: 0 for q in self.resources} for p in self.processes}

    # -- state helpers -----------------------------------------------------

    def available(self) -> dict[str, int]:
        avail = dict(self.total)
        for alloc in self.allocation.values():
            for q, amount in alloc.items():
                avail[q] -= amount
        return avail

    def need(self, process: str) -> dict[str, int]:
        claim = self.claims[process]
        alloc = self.allocation[process]
        return {q: claim.get(q, 0) - alloc.get(q, 0) for q in self.resources}

    def is_safe(self) -> bool:
        """Safety check: can all processes finish in some order?"""
        work = self.available()
        unfinished = set(self.processes)
        progress = True
        while progress and unfinished:
            progress = False
            for p in sorted(unfinished):
                need = self.need(p)
                if all(need[q] <= work[q] for q in self.resources):
                    for q in self.resources:
                        work[q] += self.allocation[p][q]
                    unfinished.discard(p)
                    progress = True
        return not unfinished

    # -- the avoidance decision ------------------------------------------------

    def request(self, process: str, resource: str, amount: int = 1) -> bool:
        """Grant iff within claim, within availability, and safe."""
        if process not in self.allocation:
            raise ResourceProtocolError(f"unknown process {process!r}")
        if resource not in self.total:
            raise ResourceProtocolError(f"unknown resource {resource!r}")
        if amount <= 0:
            raise ResourceProtocolError("amount must be positive")
        if self.need(process).get(resource, 0) < amount:
            raise ResourceProtocolError(
                f"{process} exceeded its declared claim on {resource}")
        if self.available()[resource] < amount:
            return False
        self.allocation[process][resource] += amount
        if self.is_safe():
            return True
        self.allocation[process][resource] -= amount
        return False

    def release(self, process: str, resource: str, amount: int = 1) -> None:
        if self.allocation[process][resource] < amount:
            raise ResourceProtocolError(
                f"{process} released more {resource} than it holds")
        self.allocation[process][resource] -= amount


def classic_detectors() -> Sequence[tuple[str, object]]:
    """(name, callable) pairs for the detection baselines."""
    return (("holt", holt_detect),
            ("graph_reduction", graph_reduction_detect),
            ("leibfried", leibfried_detect))
