"""Random and structured RAG state generators for tests and benchmarks.

All generators return :class:`~repro.rag.graph.RAG` instances obeying
the single-unit protocol, so every produced state is reachable by some
legal request/grant sequence.

Seeding contract
----------------

Every randomized generator takes both ``rng`` and ``seed``:

* pass ``rng`` (a :class:`random.Random`) to share one stream across
  several calls — the caller owns reproducibility;
* pass ``seed`` to get a private ``random.Random(seed)`` for that call;
* pass neither and the generator still behaves deterministically, using
  :data:`DEFAULT_SEED` — no code path ever constructs an unseeded
  ``random.Random()``, so two processes (or two campaign shards) that
  make the same calls always see the same states.

``rng`` wins when both are given.  The structured generators
(:func:`cycle_state`, :func:`chain_state`, :func:`worst_case_state`) and
the Verilog emitters in :mod:`repro.deadlock.generator` are pure
functions of their arguments and need no seed at all.
"""

from __future__ import annotations

import random
from typing import Mapping, Optional

from repro.errors import ConfigurationError
from repro.rag.graph import RAG
from repro.rag.multiunit import MultiUnitSystem

#: The seed used when a randomized generator is called with neither
#: ``rng`` nor ``seed`` (the paper's publication year).  Deterministic
#: by design: an ambient unseeded ``random.Random()`` would make
#: campaign replays impossible.
DEFAULT_SEED = 2003


def resolve_rng(rng: Optional[random.Random] = None,
                seed: Optional[int] = None) -> random.Random:
    """The module's seeding contract as a helper: rng > seed > default."""
    if rng is not None:
        return rng
    return random.Random(DEFAULT_SEED if seed is None else seed)


def _names(m: int, n: int) -> tuple[list[str], list[str]]:
    if m < 1 or n < 1:
        raise ConfigurationError("need at least one resource and process")
    return ([f"p{t + 1}" for t in range(n)], [f"q{s + 1}" for s in range(m)])


def empty_state(num_resources: int, num_processes: int) -> RAG:
    """A RAG with no edges."""
    processes, resources = _names(num_resources, num_processes)
    return RAG(processes, resources)


def random_state(num_resources: int, num_processes: int,
                 grant_fraction: float = 0.6,
                 request_fraction: float = 0.3,
                 rng: Optional[random.Random] = None,
                 seed: Optional[int] = None) -> RAG:
    """A random legal state.

    ``grant_fraction`` of resources get a random holder;
    ``request_fraction`` of the remaining (process, resource) pairs get a
    request edge.  Both deadlocked and deadlock-free states occur.
    Seeding follows the module contract (``rng`` > ``seed`` > default).
    """
    rng = resolve_rng(rng, seed)
    rag = empty_state(num_resources, num_processes)
    for q in rag.resources:
        if rng.random() < grant_fraction:
            rag.grant(q, rng.choice(rag.processes))
    for p in rag.processes:
        for q in rag.resources:
            if rag.holder_of(q) == p:
                continue
            if rng.random() < request_fraction:
                rag.add_request(p, q)
    return rag


def cycle_state(length: int) -> RAG:
    """A minimal deadlocked state: a cycle through ``length`` processes.

    p1 holds q1 and requests q2; p2 holds q2 and requests q3; ...;
    p_length holds q_length and requests q1.
    """
    if length < 2:
        raise ConfigurationError("a deadlock cycle needs at least 2 processes")
    rag = empty_state(length, length)
    for i in range(length):
        holder = rag.processes[i]
        held = rag.resources[i]
        wanted = rag.resources[(i + 1) % length]
        rag.grant(held, holder)
    for i in range(length):
        rag.add_request(rag.processes[i], rag.resources[(i + 1) % length])
    return rag


def chain_state(length: int) -> RAG:
    """A deadlock-free blocking chain (the cycle minus its closing edge).

    Every process but the last is blocked, yet the state is reducible —
    the worst case for reduction-based detectors, because only one
    terminal node is exposed per iteration.
    """
    if length < 2:
        raise ConfigurationError("a chain needs at least 2 processes")
    rag = empty_state(length, length)
    for i in range(length):
        rag.grant(rag.resources[i], rag.processes[i])
    for i in range(length - 1):
        rag.add_request(rag.processes[i], rag.resources[i + 1])
    return rag


def worst_case_state(num_resources: int, num_processes: int) -> RAG:
    """The longest reducible chain that fits in an m x n matrix.

    Exercises the DDU's worst-case iteration count (Table 1's
    "worst case # iterations" column is derived from states like this).
    """
    k = min(num_resources, num_processes)
    rag = empty_state(num_resources, num_processes)
    for i in range(k):
        rag.grant(rag.resources[i], rag.processes[i])
    for i in range(k - 1):
        rag.add_request(rag.processes[i], rag.resources[i + 1])
    return rag


def random_multiunit_state(num_resources: int, num_processes: int,
                           max_units: int = 1,
                           units: Optional[Mapping[str, int]] = None,
                           grant_fraction: float = 0.6,
                           request_fraction: float = 0.3,
                           rng: Optional[random.Random] = None,
                           seed: Optional[int] = None
                           ) -> MultiUnitSystem:
    """A random legal counting-model state (multi-unit protocol).

    Every state is built through the request→grant protocol, so it is
    reachable by a legal sequence.  ``units`` fixes the unit count per
    resource class explicitly; otherwise each class gets a random count
    in ``1..max_units``.  With ``max_units=1`` (the default) the state
    projects onto the single-unit RAG via
    :meth:`~repro.rag.multiunit.MultiUnitSystem.to_rag`, which is what
    the campaign's multiunit-vs-projection checker exercises.  Seeding
    follows the module contract (``rng`` > ``seed`` > default).
    """
    rng = resolve_rng(rng, seed)
    processes, resources = _names(num_resources, num_processes)
    if units is None:
        if max_units < 1:
            raise ConfigurationError("max_units must be at least 1")
        totals: dict[str, int] = {q: rng.randint(1, max_units)
                                  for q in resources}
    else:
        totals = {q: int(units[q]) for q in resources}
    system = MultiUnitSystem(processes, totals)
    for q in resources:
        while system.available(q) > 0 and rng.random() < grant_fraction:
            p = rng.choice(processes)
            headroom = min(system.available(q),
                           totals[q] - system.allocation_of(p, q)
                           - system.outstanding_request(p, q))
            if headroom < 1:
                break
            take = rng.randint(1, headroom)
            system.request(p, q, take)
            system.grant(p, q, take)
    for p in processes:
        for q in resources:
            headroom = (totals[q] - system.allocation_of(p, q)
                        - system.outstanding_request(p, q))
            if headroom > 0 and rng.random() < request_fraction:
                system.request(p, q, rng.randint(1, headroom))
    return system


def deadlock_free_state(num_resources: int, num_processes: int,
                        rng: Optional[random.Random] = None,
                        seed: Optional[int] = None) -> RAG:
    """A random state guaranteed deadlock-free.

    Grants and requests are only added "downhill" in a fixed global
    ordering of resources (each process requests only resources ordered
    after everything it holds), which makes cycles impossible — the
    classic resource-ordering prevention argument.  Seeding follows the
    module contract (``rng`` > ``seed`` > default).
    """
    rng = resolve_rng(rng, seed)
    rag = empty_state(num_resources, num_processes)
    highest_held: dict[str, int] = {}
    order = list(range(num_resources))
    for s in order:
        q = rag.resources[s]
        if rng.random() < 0.6:
            p = rng.choice(rag.processes)
            if highest_held.get(p, -1) < s:
                rag.grant(q, p)
                highest_held[p] = s
    for p in rag.processes:
        floor = highest_held.get(p, -1)
        for s in range(floor + 1, num_resources):
            q = rag.resources[s]
            if rag.holder_of(q) == p:
                continue
            if rng.random() < 0.3:
                rag.add_request(p, q)
    return rag
