"""Bit-packed state matrix: the DDU's wide-OR lattice as Python ints.

:class:`~repro.rag.matrix.StateMatrix` models Definition 6 one cell
object at a time, which makes every Equation 3-6 reduction an O(m*n)
Python loop.  The hardware evaluates those reductions *in parallel*
each cycle — an m-wide / n-wide OR tree per row and column — and the
closest software analogue is a word-parallel bitset: store each row's
request plane and grant plane as one n-bit integer, keep the column
transposes as m-bit integers, and the hardware reductions collapse to
mask tests:

* row/column bit-wise OR (Equation 3) — ``mask != 0``;
* terminal flag tau (Equation 4)      — ``bool(r) ^ bool(g)``;
* connect flag phi (Equation 6)       — ``bool(r) and bool(g)``;
* clearing a terminal row/column (Definition 12) — zero two words and
  patch the transposes of the set bits.

The edge count is maintained incrementally from ``int.bit_count()``
deltas, so ``is_empty()`` — consulted once per reduction pass — never
rescans the plane.  A full terminal-reduction pass costs O(m + n)
instead of O(m*n), which is what lets the campaign presets and scaling
surveys run 64x64-128x128 matrices.

:class:`BitMatrix` speaks the full :class:`StateMatrix` protocol
(constructors, cell access, Equations 3-6, rendering, equality against
either representation), so every consumer — PDDA, the DDU/DAU models,
serialization, the experiments — can hold either type.  The *backend
knob* at the bottom picks which one the hot paths build:
``"bitmask"`` (the default), ``"reference"``, or ``"native"``; set
``REPRO_MATRIX_BACKEND=reference`` to force the cell-object oracle
process-wide, or ``REPRO_MATRIX_BACKEND=native`` to run whole-matrix
reductions through the compiled kernel in :mod:`repro.rag.native`
(graceful degradation to the pure-Python sweep when no kernel loads).
"""

from __future__ import annotations

import os
from typing import Iterable, Optional, Union

from repro.errors import ConfigurationError, ResourceProtocolError
from repro.rag.graph import RAG
from repro.rag.matrix import (
    CellState,
    StateMatrix,
    matrix_snapshot_state,
    open_matrix_envelope,
)

#: The word-parallel integer-bitmask backend (the fast path).
FAST_BACKEND = "bitmask"
#: The per-cell :class:`StateMatrix` oracle.
REFERENCE_BACKEND = "reference"
#: The bitmask backend with compiled whole-matrix reductions
#: (:class:`NativeBitMatrix`; falls back to pure Python per matrix).
NATIVE_BACKEND = "native"
BACKENDS = (FAST_BACKEND, REFERENCE_BACKEND, NATIVE_BACKEND)
#: Environment escape hatch: ``REPRO_MATRIX_BACKEND=reference``.
BACKEND_ENV_VAR = "REPRO_MATRIX_BACKEND"


class BitMatrix:
    """An m x n state matrix stored as per-row/per-column bit vectors.

    ``m`` is the number of resources (rows), ``n`` the number of
    processes (columns) — the paper's ``M_ij`` layout, identical to
    :class:`StateMatrix`.  Cell ``(s, t)`` is a request edge iff bit
    ``t`` of ``_row_r[s]`` is set, a grant edge iff bit ``t`` of
    ``_row_g[s]`` is set; the planes are disjoint by construction.
    """

    def __init__(self, num_resources: int, num_processes: int,
                 resource_names: Optional[Iterable[str]] = None,
                 process_names: Optional[Iterable[str]] = None) -> None:
        if num_resources < 1 or num_processes < 1:
            raise ResourceProtocolError(
                "matrix dimensions must be at least 1x1")
        self.m = num_resources
        self.n = num_processes
        self.resource_names = (list(resource_names) if resource_names
                               else [f"q{s + 1}" for s in range(self.m)])
        self.process_names = (list(process_names) if process_names
                              else [f"p{t + 1}" for t in range(self.n)])
        if len(self.resource_names) != self.m:
            raise ResourceProtocolError("resource_names length != m")
        if len(self.process_names) != self.n:
            raise ResourceProtocolError("process_names length != n")
        self._row_r: list[int] = [0] * self.m
        self._row_g: list[int] = [0] * self.m
        self._col_r: list[int] = [0] * self.n
        self._col_g: list[int] = [0] * self.n
        self._edges = 0

    # -- constructors ----------------------------------------------------------

    @classmethod
    def from_rag(cls, rag: RAG) -> "BitMatrix":
        """Map a RAG to its state matrix (lines 2-6 of Algorithm 2)."""
        matrix = cls(rag.num_resources, rag.num_processes,
                     resource_names=rag.resources,
                     process_names=rag.processes)
        for p, q in rag.request_edges():
            matrix.set_request(rag.resource_index(q), rag.process_index(p))
        for q, p in rag.grant_edges():
            matrix.set_grant(rag.resource_index(q), rag.process_index(p))
        return matrix

    @classmethod
    def from_rows(cls, rows: Iterable[str]) -> "BitMatrix":
        """Build from compact text rows, e.g. ``["g r .", "r g ."]``."""
        return cls.from_matrix(StateMatrix.from_rows(rows))

    @classmethod
    def from_matrix(cls, other: "AnyStateMatrix") -> "BitMatrix":
        """Convert from anything speaking the cell protocol.

        Writes the bit planes directly (no protocol checks), so even
        degenerate states representable by :meth:`StateMatrix.from_rows`
        convert faithfully.
        """
        matrix = cls(other.m, other.n,
                     resource_names=other.resource_names,
                     process_names=other.process_names)
        for s in range(other.m):
            sbit = 1 << s
            for t in range(other.n):
                cell = other.get(s, t)
                if cell is CellState.REQUEST:
                    matrix._row_r[s] |= 1 << t
                    matrix._col_r[t] |= sbit
                    matrix._edges += 1
                elif cell is CellState.GRANT:
                    matrix._row_g[s] |= 1 << t
                    matrix._col_g[t] |= sbit
                    matrix._edges += 1
        return matrix

    def to_rag(self) -> RAG:
        """Inverse mapping back to a RAG (single-grant rule enforced)."""
        rag = RAG(self.process_names, self.resource_names)
        for s in range(self.m):
            requests = self._row_r[s]
            while requests:
                low = requests & -requests
                t = low.bit_length() - 1
                rag.add_request(self.process_names[t],
                                self.resource_names[s])
                requests ^= low
            grants = self._row_g[s]
            while grants:
                low = grants & -grants
                t = low.bit_length() - 1
                rag.grant(self.resource_names[s], self.process_names[t])
                grants ^= low
        return rag

    def to_state_matrix(self) -> StateMatrix:
        """Convert to the per-cell reference representation."""
        return StateMatrix.from_matrix(self)

    def copy(self) -> "BitMatrix":
        clone = type(self)(self.m, self.n,
                           resource_names=self.resource_names,
                           process_names=self.process_names)
        clone._row_r = list(self._row_r)
        clone._row_g = list(self._row_g)
        clone._col_r = list(self._col_r)
        clone._col_g = list(self._col_g)
        clone._edges = self._edges
        return clone

    # -- checkpoint protocol -----------------------------------------------------

    SNAPSHOT_KIND = "rag.bitmatrix"

    def snapshot_state(self) -> dict:
        """Versioned, hashed snapshot.

        The payload is identical to the :class:`StateMatrix` payload for
        the same state — ``state_hash`` is representation-independent,
        so BitMatrix <-> StateMatrix conversions are hash-preserving.
        """
        return matrix_snapshot_state(self, self.SNAPSHOT_KIND)

    @classmethod
    def restore_state(cls, envelope: dict) -> "BitMatrix":
        """Rebuild from a matrix snapshot of either backend kind."""
        state = open_matrix_envelope(envelope)
        matrix = cls.from_rows(state["rows"])
        matrix.resource_names = list(state["resource_names"])
        matrix.process_names = list(state["process_names"])
        if len(matrix.process_names) != matrix.n:
            from repro.errors import CheckpointError
            raise CheckpointError(
                "matrix snapshot: process_names length != n")
        return matrix

    # -- cell access -------------------------------------------------------------

    def _span(self, index: int, size: int, axis: str) -> int:
        if index < 0:
            index += size
        if not 0 <= index < size:
            raise IndexError(f"{axis} index out of range")
        return index

    def get(self, s: int, t: int) -> CellState:
        s = self._span(s, self.m, "row")
        t = self._span(t, self.n, "column")
        bit = 1 << t
        if self._row_r[s] & bit:
            return CellState.REQUEST
        if self._row_g[s] & bit:
            return CellState.GRANT
        return CellState.EMPTY

    def set_request(self, s: int, t: int) -> None:
        s = self._span(s, self.m, "row")
        t = self._span(t, self.n, "column")
        existing = self.get(s, t)
        if existing is not CellState.EMPTY:
            raise ResourceProtocolError(
                f"cell ({s},{t}) already {existing.name}")
        self._row_r[s] |= 1 << t
        self._col_r[t] |= 1 << s
        self._edges += 1

    def set_grant(self, s: int, t: int) -> None:
        s = self._span(s, self.m, "row")
        t = self._span(t, self.n, "column")
        bit = 1 << t
        grants = self._row_g[s]
        if grants & bit:
            raise ResourceProtocolError(f"cell ({s},{t}) already GRANT")
        if grants:
            holder = (grants & -grants).bit_length() - 1
            raise ResourceProtocolError(
                f"resource row {s} already granted to column {holder} "
                "(single-unit rule)")
        if self._row_r[s] & bit:
            # A pending request may be promoted to a grant in place.
            self._row_r[s] &= ~bit
            self._col_r[t] &= ~(1 << s)
        else:
            self._edges += 1
        self._row_g[s] |= bit
        self._col_g[t] |= 1 << s

    def clear(self, s: int, t: int) -> None:
        s = self._span(s, self.m, "row")
        t = self._span(t, self.n, "column")
        bit = 1 << t
        sbit = 1 << s
        if (self._row_r[s] | self._row_g[s]) & bit:
            self._edges -= 1
        self._row_r[s] &= ~bit
        self._row_g[s] &= ~bit
        self._col_r[t] &= ~sbit
        self._col_g[t] &= ~sbit

    def row(self, s: int) -> tuple[CellState, ...]:
        return tuple(self.get(s, t) for t in range(self.n))

    def column(self, t: int) -> tuple[CellState, ...]:
        return tuple(self.get(s, t) for s in range(self.m))

    @property
    def edge_count(self) -> int:
        return self._edges

    def is_empty(self) -> bool:
        return self._edges == 0

    # -- hardware reductions (Equations 3-6) ---------------------------------------

    def row_bwo(self, s: int) -> tuple[int, int]:
        """Bit-wise OR across row ``s``: (r_or, g_or)  (Equation 3)."""
        return (1 if self._row_r[s] else 0, 1 if self._row_g[s] else 0)

    def column_bwo(self, t: int) -> tuple[int, int]:
        """Bit-wise OR down column ``t``: (r_or, g_or)  (Equation 3)."""
        return (1 if self._col_r[t] else 0, 1 if self._col_g[t] else 0)

    def row_terminal(self, s: int) -> bool:
        """Terminal flag tau for row ``s`` (Equation 4 / Definition 7)."""
        return (self._row_r[s] == 0) != (self._row_g[s] == 0)

    def column_terminal(self, t: int) -> bool:
        """Terminal flag tau for column ``t`` (Equation 4 / Definition 8)."""
        return (self._col_r[t] == 0) != (self._col_g[t] == 0)

    def row_connect(self, s: int) -> bool:
        """Connect flag phi for row ``s`` (Equation 6)."""
        return bool(self._row_r[s]) and bool(self._row_g[s])

    def column_connect(self, t: int) -> bool:
        """Connect flag phi for column ``t`` (Equation 6)."""
        return bool(self._col_r[t]) and bool(self._col_g[t])

    def terminal_rows(self) -> list[int]:
        """On-set of terminal rows, the function T_r (Definition 9)."""
        row_r, row_g = self._row_r, self._row_g
        return [s for s in range(self.m)
                if (row_r[s] == 0) != (row_g[s] == 0)]

    def terminal_columns(self) -> list[int]:
        """On-set of terminal columns, the function T_c (Definition 10)."""
        col_r, col_g = self._col_r, self._col_g
        return [t for t in range(self.n)
                if (col_r[t] == 0) != (col_g[t] == 0)]

    def clear_row(self, s: int) -> None:
        bits = self._row_r[s] | self._row_g[s]
        self._edges -= bits.bit_count()
        keep = ~(1 << s)
        col_r, col_g = self._col_r, self._col_g
        while bits:
            low = bits & -bits
            t = low.bit_length() - 1
            col_r[t] &= keep
            col_g[t] &= keep
            bits ^= low
        self._row_r[s] = 0
        self._row_g[s] = 0

    def clear_column(self, t: int) -> None:
        bits = self._col_r[t] | self._col_g[t]
        self._edges -= bits.bit_count()
        keep = ~(1 << t)
        row_r, row_g = self._row_r, self._row_g
        while bits:
            low = bits & -bits
            s = low.bit_length() - 1
            row_r[s] &= keep
            row_g[s] &= keep
            bits ^= low
        self._col_r[t] = 0
        self._col_g[t] = 0

    # -- whole-matrix reduction (Algorithm 1 on the fast path) ---------------------

    def reduce(self) -> tuple[int, int]:
        """Run the terminal reduction sequence in place (Algorithm 1).

        Returns ``(iterations, passes)`` with the exact semantics of
        :func:`repro.deadlock.pdda.terminal_reduction`: both terminal
        on-sets are computed against the same pre-clear snapshot, every
        flagged row/column is cleared at once, and the final pass that
        finds no terminal edges is counted.  Each pass costs O(m + n)
        mask tests plus O(edges cleared) transpose patches.
        """
        iterations = 0
        passes = 0
        while True:
            passes += 1
            term_rows = self.terminal_rows()
            term_cols = self.terminal_columns()
            if not term_rows and not term_cols:
                break
            for s in term_rows:
                self.clear_row(s)
            for t in term_cols:
                self.clear_column(t)
            iterations += 1
        return iterations, passes

    # -- comparisons / rendering -----------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, BitMatrix):
            return ((self.m, self.n) == (other.m, other.n)
                    and self._row_r == other._row_r
                    and self._row_g == other._row_g)
        if isinstance(other, StateMatrix):
            if (self.m, self.n) != (other.m, other.n):
                return False
            return all(self.get(s, t) is other.get(s, t)
                       for s in range(self.m) for t in range(self.n))
        return NotImplemented

    def render(self) -> str:
        """Figure 11-style text rendering, identical to StateMatrix."""
        col_width = max([len(p) for p in self.process_names] + [1])
        header = " " * 6 + " ".join(
            p.rjust(col_width) for p in self.process_names)
        lines = [header]
        for s in range(self.m):
            cells = " ".join(self.get(s, t).symbol().rjust(col_width)
                             for t in range(self.n))
            lines.append(f"{self.resource_names[s]:<6s}{cells}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<BitMatrix {self.m}x{self.n} edges={self._edges}>"


class NativeBitMatrix(BitMatrix):
    """A :class:`BitMatrix` whose Algorithm-1 sweep runs compiled code.

    Selected by ``REPRO_MATRIX_BACKEND=native``.  Everything except
    :meth:`reduce` is inherited: cell mutation stays on the Python-int
    planes, and only the whole-matrix reduction — the hot loop PDDA and
    the DDU model spend their time in — drops into the kernel from
    :mod:`repro.rag.native` (numba when importable, else a
    ctypes-loaded C kernel).  When no kernel can be loaded the
    reduction silently degrades to the inherited pure-Python sweep:
    same bits, same ``(iterations, passes)``, held identical by
    ``tests/test_native_backend.py`` and the ``pdda-backends-agree``
    campaign checker.
    """

    def reduce(self) -> tuple[int, int]:
        from repro.rag import native
        if not native.available():
            return super().reduce()
        return native.reduce_matrix(self)


#: Either state-matrix representation; both speak the same protocol.
AnyStateMatrix = Union[StateMatrix, BitMatrix]


# -- backend knob -----------------------------------------------------------------

def default_backend() -> str:
    """The process default: ``REPRO_MATRIX_BACKEND`` or the fast path."""
    value = os.environ.get(BACKEND_ENV_VAR, "").strip().lower()
    if not value:
        return FAST_BACKEND
    if value not in BACKENDS:
        raise ConfigurationError(
            f"{BACKEND_ENV_VAR}={value!r} is not one of {sorted(BACKENDS)}")
    return value


def resolve_backend(backend: Optional[str] = None) -> str:
    """Normalize a ``backend=`` argument (None -> process default)."""
    if backend is None:
        return default_backend()
    if backend not in BACKENDS:
        raise ConfigurationError(
            f"unknown matrix backend {backend!r}; "
            f"available: {sorted(BACKENDS)}")
    return backend


def matrix_class(backend: Optional[str] = None):
    """The matrix type the given backend builds."""
    resolved = resolve_backend(backend)
    if resolved == FAST_BACKEND:
        return BitMatrix
    if resolved == NATIVE_BACKEND:
        return NativeBitMatrix
    return StateMatrix


def matrix_from_rag(rag: RAG, backend: Optional[str] = None) -> AnyStateMatrix:
    """Build the backend's matrix straight from a RAG."""
    return matrix_class(backend).from_rag(rag)


def as_backend_matrix(source: Union[RAG, AnyStateMatrix],
                      backend: Optional[str] = None) -> AnyStateMatrix:
    """A fresh, safely-mutable matrix of the backend's type.

    RAGs are mapped, same-type matrices are copied, and cross-type
    matrices are converted — callers always own the result.
    """
    cls = matrix_class(backend)
    if isinstance(source, RAG):
        return cls.from_rag(source)
    if type(source) is cls:
        return source.copy()
    return cls.from_matrix(source)
