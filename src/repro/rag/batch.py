"""Batched terminal reduction: many tenant matrices per vector op.

:class:`~repro.rag.bitmatrix.BitMatrix` collapses one Algorithm-1 pass
to O(m + n) Python-int mask tests.  A multi-tenant service (see
:mod:`repro.service`) holds *thousands* of small matrices and wants one
verdict per tenant per tick — running the per-tenant kernel N times
re-pays the interpreter dispatch cost N times per pass.

:class:`BatchPlane` packs N tenant matrices into four shared NumPy
``uint64`` planes — ``row_r[N, M]`` / ``row_g[N, M]`` hold each
tenant's per-row request/grant words, ``col_r[N, T]`` / ``col_g[N, T]``
the column transposes — so a single sweep of vectorized mask ops runs
one Algorithm-1 pass for *every* tenant at once:

* terminal flags (Equation 4)   — ``(plane == 0) ^ (other == 0)``
  elementwise over the whole batch;
* clearing terminal rows/cols (Definition 12) — zero the flagged words
  and mask the flagged bits out of the transposes with one
  ``&= ~mask`` broadcast per plane.

Tenants converge at different pass counts, so per-tenant ``iterations``
/ ``passes`` counters advance under an ``active`` mask with exactly the
semantics of :meth:`BitMatrix.reduce`: both terminal on-sets are taken
against the same pre-clear snapshot, and the final no-terminal pass is
counted.  ``tests/test_batch_differential.py`` holds the batched plane
bit-identical to the per-tenant kernel over randomized ensembles.

Tenant matrices may have *different* shapes: every tenant is packed
into the ensemble's (max m, max n) envelope, and the padding is inert —
an all-empty row or column has both planes zero, so its terminal flag
(an XOR) is never raised and no pass ever touches it.

When NumPy is unavailable the same API is served by
:class:`PythonBatchPlane`, which simply runs the per-tenant kernel in a
loop — slower, but bit-identical by construction; the service and the
benchmarks gate on :data:`HAS_NUMPY`.

Word width caps the packing at 64 rows x 64 columns per tenant — the
"dense ensembles of small RAGs" regime the batched reducer exists for.
Larger tenants fall back to the per-tenant kernel via
:func:`batch_plane`.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import ConfigurationError
from repro.rag.bitmatrix import AnyStateMatrix, BitMatrix
from repro.rag.graph import RAG

try:  # NumPy is optional: the service degrades to the Python plane.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None

#: True when the vectorized NumPy plane is available in this process.
HAS_NUMPY = _np is not None

#: Widest tenant matrix one uint64 word per row/column can pack.
MAX_PACKED_SIDE = 64


def _dims(source) -> tuple[int, int]:
    if isinstance(source, RAG):
        return source.num_resources, source.num_processes
    return source.m, source.n


def _as_bitmatrix(source) -> BitMatrix:
    if isinstance(source, BitMatrix):
        return source
    if isinstance(source, RAG):
        return BitMatrix.from_rag(source)
    return BitMatrix.from_matrix(source)


class PythonBatchPlane:
    """The batched API served by the per-tenant kernel in a loop.

    The fallback for NumPy-less processes and for tenants wider than
    :data:`MAX_PACKED_SIDE`; bit-identical to :class:`BatchPlane` by
    construction (it *is* the per-tenant kernel).
    """

    vectorized = False

    def __init__(self, matrices: Sequence[AnyStateMatrix]) -> None:
        if not matrices:
            raise ConfigurationError("batch plane needs at least 1 tenant")
        self._matrices = [_as_bitmatrix(m).copy() for m in matrices]

    @property
    def count(self) -> int:
        return len(self._matrices)

    def reduce_all(self) -> list[tuple[int, int]]:
        """Per-tenant ``(iterations, passes)``, semantics of
        :meth:`BitMatrix.reduce`."""
        return [matrix.reduce() for matrix in self._matrices]

    def residual(self, index: int) -> BitMatrix:
        return self._matrices[index].copy()

    def residuals(self) -> list[BitMatrix]:
        return [matrix.copy() for matrix in self._matrices]

    def deadlocked(self) -> list[bool]:
        """Per-tenant verdict: surviving edges mean deadlock."""
        return [not matrix.is_empty() for matrix in self._matrices]


class BatchPlane:
    """N tenant matrices packed into shared uint64 planes."""

    vectorized = True

    def __init__(self, matrices: Sequence[AnyStateMatrix]) -> None:
        if _np is None:
            raise ConfigurationError(
                "BatchPlane needs numpy; use PythonBatchPlane "
                "(or batch_plane(), which picks automatically)")
        if not matrices:
            raise ConfigurationError("batch plane needs at least 1 tenant")
        sources = [_as_bitmatrix(m) for m in matrices]
        for matrix in sources:
            if matrix.m > MAX_PACKED_SIDE or matrix.n > MAX_PACKED_SIDE:
                raise ConfigurationError(
                    f"tenant matrix {matrix.m}x{matrix.n} exceeds the "
                    f"{MAX_PACKED_SIDE}x{MAX_PACKED_SIDE} packing limit")
        self._sources = sources
        count = len(sources)
        self._m = max(matrix.m for matrix in sources)
        self._n = max(matrix.n for matrix in sources)
        shape_rows = (count, self._m)
        shape_cols = (count, self._n)
        self._row_r = _np.zeros(shape_rows, dtype=_np.uint64)
        self._row_g = _np.zeros(shape_rows, dtype=_np.uint64)
        self._col_r = _np.zeros(shape_cols, dtype=_np.uint64)
        self._col_g = _np.zeros(shape_cols, dtype=_np.uint64)
        for i, matrix in enumerate(sources):
            for s in range(matrix.m):
                self._row_r[i, s] = matrix._row_r[s]
                self._row_g[i, s] = matrix._row_g[s]
            for t in range(matrix.n):
                self._col_r[i, t] = matrix._col_r[t]
                self._col_g[i, t] = matrix._col_g[t]
        self._row_bits = _np.uint64(1) << _np.arange(self._m,
                                                     dtype=_np.uint64)
        self._col_bits = _np.uint64(1) << _np.arange(self._n,
                                                     dtype=_np.uint64)

    @property
    def count(self) -> int:
        return len(self._sources)

    def reduce_all(self) -> list[tuple[int, int]]:
        """One vectorized Algorithm-1 sweep over every tenant.

        Returns per-tenant ``(iterations, passes)`` with the exact
        semantics of :meth:`BitMatrix.reduce`: terminal on-sets are
        computed against the pre-clear snapshot each pass, and the
        final pass that finds no terminals is counted.
        """
        np = _np
        row_r, row_g = self._row_r, self._row_g
        col_r, col_g = self._col_r, self._col_g
        count = self.count
        iterations = np.zeros(count, dtype=np.int64)
        passes = np.zeros(count, dtype=np.int64)
        active = np.ones(count, dtype=bool)
        while True:
            # Equation 4 for every row/column of every tenant at once;
            # an all-empty (padding) row has both planes zero and XORs
            # to False, so it never reads as terminal.
            term_rows = (row_r == 0) ^ (row_g == 0)
            term_cols = (col_r == 0) ^ (col_g == 0)
            any_term = term_rows.any(axis=1) | term_cols.any(axis=1)
            passes += active
            iterations += active & any_term
            active &= any_term
            if not active.any():
                break
            # Definition 12, batch-wide: zero every terminal row/column
            # word and strip its bit from the transposed plane.  A cell
            # in both a terminal row and a terminal column is cleared
            # by either path — same outcome as the sequential kernel.
            row_clear = np.bitwise_or.reduce(
                np.where(term_rows, self._row_bits, np.uint64(0)), axis=1)
            col_clear = np.bitwise_or.reduce(
                np.where(term_cols, self._col_bits, np.uint64(0)), axis=1)
            row_r[term_rows] = 0
            row_g[term_rows] = 0
            row_r &= ~col_clear[:, None]
            row_g &= ~col_clear[:, None]
            col_r[term_cols] = 0
            col_g[term_cols] = 0
            col_r &= ~row_clear[:, None]
            col_g &= ~row_clear[:, None]
        return [(int(iterations[i]), int(passes[i]))
                for i in range(count)]

    def residual(self, index: int) -> BitMatrix:
        """Tenant ``index``'s current plane as a standalone BitMatrix."""
        source = self._sources[index]
        matrix = BitMatrix(source.m, source.n,
                           resource_names=source.resource_names,
                           process_names=source.process_names)
        edges = 0
        for s in range(source.m):
            r_word = int(self._row_r[index, s])
            g_word = int(self._row_g[index, s])
            matrix._row_r[s] = r_word
            matrix._row_g[s] = g_word
            edges += r_word.bit_count() + g_word.bit_count()
        for t in range(source.n):
            matrix._col_r[t] = int(self._col_r[index, t])
            matrix._col_g[t] = int(self._col_g[index, t])
        matrix._edges = edges
        return matrix

    def residuals(self) -> list[BitMatrix]:
        return [self.residual(i) for i in range(self.count)]

    def deadlocked(self) -> list[bool]:
        """Per-tenant verdict: surviving edges mean deadlock."""
        survived = ((self._row_r | self._row_g) != 0).any(axis=1)
        return [bool(survived[i]) for i in range(self.count)]


def batch_plane(matrices: Sequence[AnyStateMatrix],
                vectorized: Optional[bool] = None):
    """The right plane for an ensemble: vectorized when it can be.

    ``vectorized=None`` (the default) picks :class:`BatchPlane` when
    NumPy is importable and every tenant fits the 64x64 packing limit,
    else :class:`PythonBatchPlane`.  Forcing ``vectorized=True`` raises
    :class:`~repro.errors.ConfigurationError` when either condition
    fails.
    """
    if vectorized is None:
        fits = all(_dims(m)[0] <= MAX_PACKED_SIDE
                   and _dims(m)[1] <= MAX_PACKED_SIDE for m in matrices)
        vectorized = HAS_NUMPY and fits and bool(matrices)
    return BatchPlane(matrices) if vectorized \
        else PythonBatchPlane(matrices)


def batched_reduce(matrices: Sequence[AnyStateMatrix],
                   vectorized: Optional[bool] = None
                   ) -> list[tuple[bool, int, int, BitMatrix]]:
    """Reduce an ensemble; per-tenant ``(deadlock, iterations, passes,
    residual)`` — the batch analogue of running
    :func:`repro.deadlock.pdda.terminal_reduction` per tenant."""
    plane = batch_plane(matrices, vectorized=vectorized)
    counts = plane.reduce_all()
    verdicts = plane.deadlocked()
    residuals = plane.residuals()
    return [(verdicts[i], counts[i][0], counts[i][1], residuals[i])
            for i in range(plane.count)]
