"""Batched terminal reduction: many tenant matrices per vector op.

:class:`~repro.rag.bitmatrix.BitMatrix` collapses one Algorithm-1 pass
to O(m + n) Python-int mask tests.  A multi-tenant service (see
:mod:`repro.service`) holds *thousands* of small matrices and wants one
verdict per tenant per tick — running the per-tenant kernel N times
re-pays the interpreter dispatch cost N times per pass.

:class:`BatchPlane` packs N tenant matrices into four shared NumPy
``uint64`` planes — ``row_r[N, M, Wn]`` / ``row_g[N, M, Wn]`` hold each
tenant's per-row request/grant words, ``col_r[N, T, Wm]`` /
``col_g[N, T, Wm]`` the column transposes — so a single sweep of
vectorized mask ops runs one Algorithm-1 pass for *every* tenant at
once:

* terminal flags (Equation 4)   — ``(plane == 0).all() ^
  (other == 0).all()`` across each row's word span, elementwise over
  the whole batch;
* clearing terminal rows/cols (Definition 12) — zero the flagged word
  spans and mask the flagged bits out of the transposes with one
  ``&= ~mask`` broadcast per plane.

Each side packs into ``ceil(side / 64)`` words (``Wn`` words per row,
``Wm`` per column), so there is **no upper limit** on tenant width —
128x128 and larger instances ride the same vectorized kernel as 8x8
ones, just with a wider word span.  ``Wn``/``Wm`` are 1 for the dense
small-tenant regime, so the extra axis costs nothing there.

Tenants converge at different pass counts, so per-tenant ``iterations``
/ ``passes`` counters advance under an ``active`` mask with exactly the
semantics of :meth:`BitMatrix.reduce`: both terminal on-sets are taken
against the same pre-clear snapshot, and the final no-terminal pass is
counted.  ``tests/test_batch_differential.py`` holds the batched plane
bit-identical to the per-tenant kernel over randomized ensembles,
including 65x65 / 100x100 / 128x128 multi-word cases.

Tenant matrices may have *different* shapes: every tenant is packed
into the ensemble's (max m, max n) envelope, and the padding is inert —
an all-empty row or column has both planes zero, so its terminal flag
(an XOR) is never raised and no pass ever touches it.

When NumPy is unavailable the same API is served by
:class:`PythonBatchPlane`, which simply runs the per-tenant kernel in a
loop — slower, but bit-identical by construction; :func:`batch_plane`
signals that degradation through the ``matrix.batch.unpacked_fallbacks``
counter and a flight-recorder event when given an observability hub.

:class:`PlaneAccumulator` is the *persistent* variant the service tick
path uses: tenants are packed once into long-lived planes, each
accepted mutation refreshes just the touched row/column word spans in
place, and each tick reduces only the dirty tenants on a scratch copy —
see :mod:`repro.service.shard`.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import ConfigurationError
from repro.rag.bitmatrix import AnyStateMatrix, BitMatrix
from repro.rag.graph import RAG

try:  # NumPy is optional: the service degrades to the Python plane.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None

#: True when the vectorized NumPy plane is available in this process.
HAS_NUMPY = _np is not None

#: Bits per plane word; a side of ``n`` packs into ``ceil(n / 64)`` words.
PLANE_WORD_BITS = 64

_WORD_MASK = (1 << PLANE_WORD_BITS) - 1


def plane_words(side: int) -> int:
    """uint64 words needed to pack a ``side``-bit row/column (>= 1)."""
    return max(1, (side + PLANE_WORD_BITS - 1) // PLANE_WORD_BITS)


def _dims(source) -> tuple[int, int]:
    if isinstance(source, RAG):
        return source.num_resources, source.num_processes
    return source.m, source.n


def _as_bitmatrix(source) -> BitMatrix:
    if isinstance(source, BitMatrix):
        return source
    if isinstance(source, RAG):
        return BitMatrix.from_rag(source)
    return BitMatrix.from_matrix(source)


# -- word marshalling ---------------------------------------------------

def _write_words(plane, index: int, value: int, words: int) -> None:
    """Spread one Python-int bit vector over ``words`` uint64 words."""
    for j in range(words):
        plane[index, j] = value & _WORD_MASK
        value >>= PLANE_WORD_BITS


def _read_words(span) -> int:
    """Recombine a word span back into one Python-int bit vector."""
    value = 0
    for j in range(span.shape[0] - 1, -1, -1):
        value = (value << PLANE_WORD_BITS) | int(span[j])
    return value


def _pack_vectors(plane_r, plane_g, index: int, values_r, values_g,
                  count: int, words: int) -> None:
    """Pack per-row (or per-column) int vectors into slot ``index``.

    Bulk list-to-array assignment per word column: one NumPy conversion
    per word instead of one scalar store per row.
    """
    if words == 1:
        plane_r[index, :count, 0] = values_r
        plane_g[index, :count, 0] = values_g
        return
    for j in range(words):
        shift = j * PLANE_WORD_BITS
        plane_r[index, :count, j] = [(v >> shift) & _WORD_MASK
                                     for v in values_r]
        plane_g[index, :count, j] = [(v >> shift) & _WORD_MASK
                                     for v in values_g]


def _bit_table(count: int, words: int):
    """(count, words) table: row ``i`` holds only bit ``i`` of its word."""
    table = _np.zeros((count, words), dtype=_np.uint64)
    for i in range(count):
        table[i, i >> 6] = 1 << (i & 63)
    return table


def _reduce_plane_arrays(row_r, row_g, col_r, col_g, row_bits, col_bits):
    """The vectorized Algorithm-1 sweep over packed word planes.

    Mutates the four planes in place; returns per-tenant
    ``(iterations, passes)`` int64 arrays with the exact semantics of
    :meth:`BitMatrix.reduce`: terminal on-sets are computed against the
    pre-clear snapshot each pass, and the final no-terminal pass is
    counted.
    """
    np = _np
    count = row_r.shape[0]
    iterations = np.zeros(count, dtype=np.int64)
    passes = np.zeros(count, dtype=np.int64)
    active = np.ones(count, dtype=bool)
    while True:
        # Equation 4 for every row/column of every tenant at once; an
        # all-empty (padding) row has both word spans zero and XORs to
        # False, so it never reads as terminal.
        term_rows = (row_r == 0).all(axis=2) ^ (row_g == 0).all(axis=2)
        term_cols = (col_r == 0).all(axis=2) ^ (col_g == 0).all(axis=2)
        any_term = term_rows.any(axis=1) | term_cols.any(axis=1)
        passes += active
        iterations += active & any_term
        active &= any_term
        if not active.any():
            break
        # Definition 12, batch-wide: zero every terminal row/column
        # word span and strip its bit from the transposed plane.  A
        # cell in both a terminal row and a terminal column is cleared
        # by either path — same outcome as the sequential kernel.
        row_clear = np.bitwise_or.reduce(
            np.where(term_rows[:, :, None], row_bits[None, :, :],
                     np.uint64(0)), axis=1)
        col_clear = np.bitwise_or.reduce(
            np.where(term_cols[:, :, None], col_bits[None, :, :],
                     np.uint64(0)), axis=1)
        row_r[term_rows] = 0
        row_g[term_rows] = 0
        row_r &= ~col_clear[:, None, :]
        row_g &= ~col_clear[:, None, :]
        col_r[term_cols] = 0
        col_g[term_cols] = 0
        col_r &= ~row_clear[:, None, :]
        col_g &= ~row_clear[:, None, :]
    return iterations, passes


class PythonBatchPlane:
    """The batched API served by the per-tenant kernel in a loop.

    The fallback for NumPy-less processes; bit-identical to
    :class:`BatchPlane` by construction (it *is* the per-tenant
    kernel), with no width limit either.
    """

    vectorized = False

    def __init__(self, matrices: Sequence[AnyStateMatrix]) -> None:
        if not matrices:
            raise ConfigurationError("batch plane needs at least 1 tenant")
        self._matrices = [_as_bitmatrix(m).copy() for m in matrices]

    @property
    def count(self) -> int:
        return len(self._matrices)

    def reduce_all(self) -> list[tuple[int, int]]:
        """Per-tenant ``(iterations, passes)``, semantics of
        :meth:`BitMatrix.reduce`."""
        return [matrix.reduce() for matrix in self._matrices]

    def residual(self, index: int) -> BitMatrix:
        return self._matrices[index].copy()

    def residuals(self) -> list[BitMatrix]:
        return [matrix.copy() for matrix in self._matrices]

    def deadlocked(self) -> list[bool]:
        """Per-tenant verdict: surviving edges mean deadlock."""
        return [not matrix.is_empty() for matrix in self._matrices]


class BatchPlane:
    """N tenant matrices packed into shared multi-word uint64 planes."""

    vectorized = True

    def __init__(self, matrices: Sequence[AnyStateMatrix]) -> None:
        if _np is None:
            raise ConfigurationError(
                "BatchPlane needs numpy; use PythonBatchPlane "
                "(or batch_plane(), which picks automatically)")
        if not matrices:
            raise ConfigurationError("batch plane needs at least 1 tenant")
        sources = [_as_bitmatrix(m) for m in matrices]
        self._sources = sources
        count = len(sources)
        self._m = max(matrix.m for matrix in sources)
        self._n = max(matrix.n for matrix in sources)
        self._wn = plane_words(self._n)
        self._wm = plane_words(self._m)
        shape_rows = (count, self._m, self._wn)
        shape_cols = (count, self._n, self._wm)
        self._row_r = _np.zeros(shape_rows, dtype=_np.uint64)
        self._row_g = _np.zeros(shape_rows, dtype=_np.uint64)
        self._col_r = _np.zeros(shape_cols, dtype=_np.uint64)
        self._col_g = _np.zeros(shape_cols, dtype=_np.uint64)
        for i, matrix in enumerate(sources):
            _pack_vectors(self._row_r, self._row_g, i,
                          matrix._row_r, matrix._row_g, matrix.m,
                          self._wn)
            _pack_vectors(self._col_r, self._col_g, i,
                          matrix._col_r, matrix._col_g, matrix.n,
                          self._wm)
        self._row_bits = _bit_table(self._m, self._wm)
        self._col_bits = _bit_table(self._n, self._wn)

    @property
    def count(self) -> int:
        return len(self._sources)

    @property
    def words_per_row(self) -> int:
        """uint64 words spanning one packed row (``ceil(n_max / 64)``)."""
        return self._wn

    @property
    def words_per_column(self) -> int:
        """uint64 words spanning one packed column (``ceil(m_max / 64)``)."""
        return self._wm

    def reduce_all(self) -> list[tuple[int, int]]:
        """One vectorized Algorithm-1 sweep over every tenant."""
        iterations, passes = _reduce_plane_arrays(
            self._row_r, self._row_g, self._col_r, self._col_g,
            self._row_bits, self._col_bits)
        return [(int(iterations[i]), int(passes[i]))
                for i in range(self.count)]

    def residual(self, index: int) -> BitMatrix:
        """Tenant ``index``'s current plane as a standalone BitMatrix."""
        source = self._sources[index]
        matrix = BitMatrix(source.m, source.n,
                           resource_names=source.resource_names,
                           process_names=source.process_names)
        edges = 0
        for s in range(source.m):
            r_word = _read_words(self._row_r[index, s])
            g_word = _read_words(self._row_g[index, s])
            matrix._row_r[s] = r_word
            matrix._row_g[s] = g_word
            edges += r_word.bit_count() + g_word.bit_count()
        for t in range(source.n):
            matrix._col_r[t] = _read_words(self._col_r[index, t])
            matrix._col_g[t] = _read_words(self._col_g[index, t])
        matrix._edges = edges
        return matrix

    def residuals(self) -> list[BitMatrix]:
        return [self.residual(i) for i in range(self.count)]

    def deadlocked(self) -> list[bool]:
        """Per-tenant verdict: surviving edges mean deadlock."""
        survived = ((self._row_r | self._row_g) != 0).any(axis=(1, 2))
        return [bool(survived[i]) for i in range(self.count)]


class PlaneReduction:
    """One :meth:`PlaneAccumulator.reduce` result over scratch planes.

    Positions index the ``slots`` sequence the reduction was asked for,
    not accumulator slots.
    """

    __slots__ = ("_row_r", "_row_g", "_col_r", "_col_g",
                 "_iterations", "_passes")

    def __init__(self, row_r, row_g, col_r, col_g,
                 iterations, passes) -> None:
        self._row_r = row_r
        self._row_g = row_g
        self._col_r = col_r
        self._col_g = col_g
        self._iterations = iterations
        self._passes = passes

    @property
    def count(self) -> int:
        return self._row_r.shape[0]

    def counts(self, position: int) -> tuple[int, int]:
        return (int(self._iterations[position]),
                int(self._passes[position]))

    def deadlocked(self, position: int) -> bool:
        span = self._row_r[position] | self._row_g[position]
        return bool((span != 0).any())

    def residual(self, position: int, like: BitMatrix) -> BitMatrix:
        """The reduced plane as a BitMatrix shaped/named after ``like``."""
        matrix = BitMatrix(like.m, like.n,
                           resource_names=like.resource_names,
                           process_names=like.process_names)
        edges = 0
        for s in range(like.m):
            r_word = _read_words(self._row_r[position, s])
            g_word = _read_words(self._row_g[position, s])
            matrix._row_r[s] = r_word
            matrix._row_g[s] = g_word
            edges += r_word.bit_count() + g_word.bit_count()
        for t in range(like.n):
            matrix._col_r[t] = _read_words(self._col_r[position, t])
            matrix._col_g[t] = _read_words(self._col_g[position, t])
        matrix._edges = edges
        return matrix


class PlaneAccumulator:
    """Long-lived packed planes with in-place row/column refresh.

    The per-plane :class:`BatchPlane` repacks every tenant on every
    construction; a service shard instead packs each tenant **once**
    into a slot here, refreshes just the mutated row/column word spans
    after each accepted operation (:meth:`update`), and reduces only
    the tenants whose verdict cache went stale (:meth:`reduce`) — the
    reduction copies the requested slots to scratch, so the persistent
    planes are never consumed.

    Slot geometry grows on demand (capacity doubling, envelope
    widening); ``repacks`` counts full tenant packs and ``grows``
    counts geometry reallocations, both surfaced as
    ``matrix.batch.*`` observability counters by the shard.
    """

    def __init__(self) -> None:
        if _np is None:
            raise ConfigurationError(
                "PlaneAccumulator needs numpy; use batch_plane() per "
                "tick instead")
        self._capacity = 0
        self._m = 0
        self._n = 0
        self._wn = 1
        self._wm = 1
        self._row_r = None
        self._row_g = None
        self._col_r = None
        self._col_g = None
        self._row_bits = None
        self._col_bits = None
        self._free: list[int] = []
        self._used = 0
        #: Full tenant packs (initial adds and re-adds after restore).
        self.repacks = 0
        #: Geometry reallocations (capacity or envelope growth).
        self.grows = 0

    @property
    def slots_in_use(self) -> int:
        return self._used - len(self._free)

    @property
    def words_per_row(self) -> int:
        return self._wn

    @property
    def words_per_column(self) -> int:
        return self._wm

    # -- geometry ------------------------------------------------------

    def _ensure_geometry(self, m: int, n: int, slots: int) -> None:
        new_m = max(self._m, m)
        new_n = max(self._n, n)
        new_cap = max(self._capacity, 4)
        while new_cap < slots:
            new_cap *= 2
        if (new_m, new_n, new_cap) == (self._m, self._n, self._capacity):
            return
        wn = plane_words(new_n)
        wm = plane_words(new_m)

        def regrow(old, shape):
            fresh = _np.zeros(shape, dtype=_np.uint64)
            if old is not None:
                fresh[:old.shape[0], :old.shape[1], :old.shape[2]] = old
            return fresh

        if self._row_r is not None:
            self.grows += 1
        self._row_r = regrow(self._row_r, (new_cap, new_m, wn))
        self._row_g = regrow(self._row_g, (new_cap, new_m, wn))
        self._col_r = regrow(self._col_r, (new_cap, new_n, wm))
        self._col_g = regrow(self._col_g, (new_cap, new_n, wm))
        self._capacity = new_cap
        self._m, self._n = new_m, new_n
        self._wn, self._wm = wn, wm
        self._row_bits = _bit_table(new_m, wm)
        self._col_bits = _bit_table(new_n, wn)

    # -- slot lifecycle ------------------------------------------------

    def add(self, matrix: BitMatrix) -> int:
        """Pack one tenant into a fresh (or recycled, zeroed) slot."""
        need = self._used + (0 if self._free else 1)
        self._ensure_geometry(matrix.m, matrix.n, need)
        if self._free:
            slot = self._free.pop()
        else:
            slot = self._used
            self._used += 1
        _pack_vectors(self._row_r, self._row_g, slot,
                      matrix._row_r, matrix._row_g, matrix.m, self._wn)
        _pack_vectors(self._col_r, self._col_g, slot,
                      matrix._col_r, matrix._col_g, matrix.n, self._wm)
        self.repacks += 1
        return slot

    def update(self, slot: int, matrix: BitMatrix, s: int, t: int) -> None:
        """Refresh the word spans a mutation at cell ``(s, t)`` touched.

        One claim/release changes row ``s`` and column ``t`` only, so
        only those four spans are rewritten — no full repack.
        """
        _write_words(self._row_r[slot], s, matrix._row_r[s], self._wn)
        _write_words(self._row_g[slot], s, matrix._row_g[s], self._wn)
        _write_words(self._col_r[slot], t, matrix._col_r[t], self._wm)
        _write_words(self._col_g[slot], t, matrix._col_g[t], self._wm)

    def remove(self, slot: int) -> None:
        """Zero and recycle one slot (tenant detached or replaced)."""
        self._row_r[slot] = 0
        self._row_g[slot] = 0
        self._col_r[slot] = 0
        self._col_g[slot] = 0
        self._free.append(slot)

    # -- reduction -----------------------------------------------------

    def reduce(self, slots: Sequence[int]) -> PlaneReduction:
        """Reduce the given slots on a scratch copy of their planes."""
        if not len(slots):
            raise ConfigurationError("accumulator reduce needs >= 1 slot")
        index = _np.asarray(list(slots), dtype=_np.intp)
        row_r = self._row_r[index]
        row_g = self._row_g[index]
        col_r = self._col_r[index]
        col_g = self._col_g[index]
        iterations, passes = _reduce_plane_arrays(
            row_r, row_g, col_r, col_g, self._row_bits, self._col_bits)
        return PlaneReduction(row_r, row_g, col_r, col_g,
                              iterations, passes)


def batch_plane(matrices: Sequence[AnyStateMatrix],
                vectorized: Optional[bool] = None, obs=None):
    """The right plane for an ensemble: vectorized when it can be.

    ``vectorized=None`` (the default) picks :class:`BatchPlane`
    whenever NumPy is importable — there is no width limit anymore —
    else :class:`PythonBatchPlane`.  That silent degradation is now
    observable: pass an :class:`~repro.obs.Observability` hub as
    ``obs`` and every automatic fallback increments the
    ``matrix.batch.unpacked_fallbacks`` counter and records a
    ``batch_unpacked_fallback`` flight event.  Forcing
    ``vectorized=True`` without NumPy raises
    :class:`~repro.errors.ConfigurationError`; forcing
    ``vectorized=False`` is a deliberate choice and emits no signal.
    """
    if vectorized is None:
        vectorized = HAS_NUMPY and bool(matrices)
        if not vectorized and matrices and obs is not None:
            obs.metrics.counter(
                "matrix.batch.unpacked_fallbacks",
                "ensembles served by the sequential per-tenant kernel",
            ).inc()
            if obs.flight.enabled:
                obs.flight.record("batch_unpacked_fallback",
                                  actor="batch", tenants=len(matrices))
    return BatchPlane(matrices) if vectorized \
        else PythonBatchPlane(matrices)


def batched_reduce(matrices: Sequence[AnyStateMatrix],
                   vectorized: Optional[bool] = None
                   ) -> list[tuple[bool, int, int, BitMatrix]]:
    """Reduce an ensemble; per-tenant ``(deadlock, iterations, passes,
    residual)`` — the batch analogue of running
    :func:`repro.deadlock.pdda.terminal_reduction` per tenant."""
    plane = batch_plane(matrices, vectorized=vectorized)
    counts = plane.reduce_all()
    verdicts = plane.deadlocked()
    residuals = plane.residuals()
    return [(verdicts[i], counts[i][0], counts[i][1], residuals[i])
            for i in range(plane.count)]
