"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause while
still distinguishing configuration mistakes from runtime protocol
violations.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """A system/unit configuration is invalid (bad sizes, widths, names)."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class BusError(ReproError):
    """A bus transaction completed with an error response.

    Raised by the bus models when a fault plan injects a transaction
    error (see :mod:`repro.faults`); resilient masters retry, everyone
    else propagates it as a hardware failure.
    """


class DeadlockError(ReproError):
    """A deadlock-protocol violation (not the detection of a deadlock)."""


class ResourceProtocolError(ReproError):
    """A resource request/grant/release violated the protocol.

    Examples: releasing a resource the process does not hold (violates
    Assumption 2 of the paper), double-granting a resource, or a request
    from an unknown process.
    """


class AllocationError(ReproError):
    """Dynamic memory allocation failed (out of blocks / heap)."""


class RTOSError(ReproError):
    """An RTOS service was used incorrectly (bad task state, bad id)."""


class GenerationError(ReproError):
    """HDL/architecture generation failed (unknown component, bad size)."""


class CheckpointError(ReproError):
    """A snapshot could not be taken, validated, or restored.

    Raised when a unit is not quiescent at snapshot time (live
    simulation coroutines cannot be serialised), when an envelope's
    ``state_hash`` does not match its payload (torn or corrupted
    snapshot file), or when a snapshot's schema version is newer than
    this library understands.
    """


class ServiceError(ReproError):
    """The deadlock-detection service hit a protocol or capacity fault.

    Raised by :mod:`repro.service` for malformed wire messages, unknown
    tenants, admission rejections, backpressure, and shard losses that
    cannot be recovered transparently.
    """
