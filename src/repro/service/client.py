"""A small asyncio client for the detection service.

:class:`ServiceClient` speaks the newline-delimited JSON protocol over
TCP or a Unix socket, pipelines requests (every request carries an
``id``; a background reader task matches responses back to futures),
and wraps the common operations as coroutines.  Responses come back as
plain dicts; ``raise_errors=True`` (the default) turns ``ok: false``
responses into :class:`~repro.service.protocol.ServiceOpError` so call
sites read naturally::

    client = await ServiceClient.connect_tcp("127.0.0.1", port)
    await client.attach("t0", seed=7, m=16, n=16)
    reply = await client.claim("t0", "P0", "R3")
    verdict = await client.detect("t0")
    await client.close()

The client also keeps a per-op round-trip latency list (seconds) in
:attr:`rtt` — the example and the benchmark read it.
"""

from __future__ import annotations

import asyncio
from typing import Any, Optional

from repro.errors import ServiceError
from repro.service.protocol import (
    ServiceOpError,
    decode_line,
    encode_message,
)


class ServiceClient:
    """One pipelined connection to a :class:`DetectionService`."""

    def __init__(self, reader: "asyncio.StreamReader",
                 writer: "asyncio.StreamWriter",
                 raise_errors: bool = True) -> None:
        self._reader = reader
        self._writer = writer
        self._raise_errors = raise_errors
        self._next_id = 0
        self._pending: dict[int, "asyncio.Future"] = {}
        #: Round-trip seconds per op name, e.g. ``rtt["claim"]``.
        self.rtt: dict[str, list] = {}
        self._reader_task = asyncio.create_task(self._read_loop())

    @classmethod
    async def connect_tcp(cls, host: str, port: int,
                          raise_errors: bool = True) -> "ServiceClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer, raise_errors=raise_errors)

    @classmethod
    async def connect_unix(cls, path: str,
                           raise_errors: bool = True) -> "ServiceClient":
        reader, writer = await asyncio.open_unix_connection(path)
        return cls(reader, writer, raise_errors=raise_errors)

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                response = decode_line(line)
                future = self._pending.pop(response.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(response)
        except (ConnectionResetError, BrokenPipeError, ServiceError,
                asyncio.CancelledError):
            pass
        finally:
            lost = ServiceError("connection to service lost")
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(lost)
            self._pending.clear()

    async def request(self, op: str, **fields: Any) -> dict:
        """Send one request; await its matched response."""
        if self._reader_task.done():
            raise ServiceError("connection to service lost")
        self._next_id += 1
        request_id = self._next_id
        message = {"op": op, "id": request_id, **fields}
        future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        loop = asyncio.get_running_loop()
        started = loop.time()
        self._writer.write(encode_message(message))
        await self._writer.drain()
        response = await future
        self.rtt.setdefault(op, []).append(loop.time() - started)
        if self._raise_errors and not response.get("ok"):
            raise ServiceOpError(response.get("error", "internal"),
                                 response.get("detail", ""))
        return response

    # -- tenant ops ----------------------------------------------------

    async def attach(self, tenant: str, **spec: Any) -> dict:
        return await self.request("attach", tenant=tenant, **spec)

    async def claim(self, tenant: str, process: str,
                    resource: str) -> dict:
        return await self.request("claim", tenant=tenant,
                                  process=process, resource=resource)

    async def release(self, tenant: str, process: str,
                      resource: str) -> dict:
        return await self.request("release", tenant=tenant,
                                  process=process, resource=resource)

    async def detect(self, tenant: str) -> dict:
        return await self.request("detect", tenant=tenant)

    async def detach(self, tenant: str) -> dict:
        return await self.request("detach", tenant=tenant)

    # -- admin ops -----------------------------------------------------

    async def ping(self) -> dict:
        return await self.request("ping")

    async def stats(self) -> dict:
        return await self.request("stats")

    async def shards(self) -> dict:
        return await self.request("shards")

    async def migrate(self, tenant: str, shard: int) -> dict:
        return await self.request("migrate", tenant=tenant, shard=shard)

    async def rebalance(self) -> dict:
        return await self.request("rebalance")

    async def shutdown(self) -> dict:
        return await self.request("shutdown")

    # -- lifecycle -----------------------------------------------------

    async def close(self) -> None:
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass

    async def __aenter__(self) -> "ServiceClient":
        return self

    async def __aexit__(self, *_exc: Any) -> None:
        await self.close()
