"""A small asyncio client for the detection service.

:class:`ServiceClient` speaks the newline-delimited JSON protocol over
TCP or a Unix socket, pipelines requests (every request carries an
``id``; a background reader task matches responses back to futures),
and wraps the common operations as coroutines.  Responses come back as
plain dicts; ``raise_errors=True`` (the default) turns ``ok: false``
responses into :class:`~repro.service.protocol.ServiceOpError` so call
sites read naturally::

    client = await ServiceClient.connect_tcp("127.0.0.1", port)
    await client.attach("t0", seed=7, m=16, n=16)
    reply = await client.claim("t0", "P0", "R3")
    verdict = await client.detect("t0")
    await client.close()

The client also keeps a per-op round-trip latency list (seconds) in
:attr:`rtt` — the example and the benchmark read it.

:class:`ResilientServiceClient` wraps the same surface with the
machinery a chaotic wire demands (see ``docs/service.md``): per-request
deadlines, bounded retries under exponential backoff with full jitter
(seeded — a chaos run replays byte-identically), automatic reconnect
(every pipelined request retries onto the new connection, which *is*
the replay), idempotency keys on mutations so a retried claim/release
applies exactly once, and a :class:`~repro.faults.health.UnitHealth`
circuit breaker that fails fast while the wire is down.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass
from typing import Any, Awaitable, Callable, Optional

from repro.errors import ServiceError
from repro.faults.health import HealthState, UnitHealth
from repro.obs import NULL_OBS, Observability
from repro.service.protocol import (
    TENANT_OPS,
    ServiceOpError,
    decode_line,
    encode_message,
)

#: ``asyncio.timeout`` (3.11+) or ``None`` — the context manager skips
#: the per-request wrapper Task that ``wait_for`` costs.
_ASYNCIO_TIMEOUT = getattr(asyncio, "timeout", None)


class ServiceClient:
    """One pipelined connection to a :class:`DetectionService`."""

    def __init__(self, reader: "asyncio.StreamReader",
                 writer: "asyncio.StreamWriter",
                 raise_errors: bool = True,
                 obs: Optional[Observability] = None) -> None:
        self._reader = reader
        self._writer = writer
        self._raise_errors = raise_errors
        self._next_id = 0
        self._pending: dict[int, "asyncio.Future"] = {}
        #: Round-trip seconds per op name, e.g. ``rtt["claim"]``.
        self.rtt: dict[str, list] = {}
        self.obs = obs if obs is not None else NULL_OBS
        self._c_decode_errors = self.obs.metrics.counter(
            "service.client.decode_errors",
            "undecodable response lines skipped by the reader loop")
        self._reader_task = asyncio.create_task(self._read_loop())

    @classmethod
    async def connect_tcp(cls, host: str, port: int,
                          raise_errors: bool = True,
                          obs: Optional[Observability] = None,
                          ) -> "ServiceClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer, raise_errors=raise_errors, obs=obs)

    @classmethod
    async def connect_unix(cls, path: str,
                           raise_errors: bool = True,
                           obs: Optional[Observability] = None,
                           ) -> "ServiceClient":
        reader, writer = await asyncio.open_unix_connection(path)
        return cls(reader, writer, raise_errors=raise_errors, obs=obs)

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                try:
                    response = decode_line(line)
                except ServiceOpError:
                    # A mangled response line (chaos, or a buggy proxy)
                    # must not kill the reader for the other pipelined
                    # requests — count it and keep reading.  The
                    # request it answered times out and is retried.
                    if self.obs.enabled:
                        self._c_decode_errors.inc()
                    continue
                future = self._pending.pop(response.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(response)
        except (ConnectionResetError, BrokenPipeError, ServiceError,
                asyncio.CancelledError):
            pass
        finally:
            lost = ServiceError("connection to service lost")
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(lost)
            self._pending.clear()

    async def request(self, op: str, **fields: Any) -> dict:
        """Send one request; await its matched response."""
        if self._reader_task.done():
            raise ServiceError("connection to service lost")
        self._next_id += 1
        request_id = self._next_id
        message = {"op": op, "id": request_id, **fields}
        future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        loop = asyncio.get_running_loop()
        started = loop.time()
        try:
            self._writer.write(encode_message(message))
            await self._writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError) as exc:
            # The send failed: pop our entry and fail the future so the
            # reader loop can never resolve a dead id later.
            self._pending.pop(request_id, None)
            if not future.done():
                future.set_exception(ServiceError(
                    f"send failed: {exc}"))
            raise ServiceError(
                f"connection to service lost: {exc}") from exc
        response = await future
        self.rtt.setdefault(op, []).append(loop.time() - started)
        if self._raise_errors and not response.get("ok"):
            raise ServiceOpError(response.get("error", "internal"),
                                 response.get("detail", ""))
        return response

    # -- tenant ops ----------------------------------------------------

    async def attach(self, tenant: str, **spec: Any) -> dict:
        return await self.request("attach", tenant=tenant, **spec)

    async def claim(self, tenant: str, process: str,
                    resource: str) -> dict:
        return await self.request("claim", tenant=tenant,
                                  process=process, resource=resource)

    async def release(self, tenant: str, process: str,
                      resource: str) -> dict:
        return await self.request("release", tenant=tenant,
                                  process=process, resource=resource)

    async def detect(self, tenant: str) -> dict:
        return await self.request("detect", tenant=tenant)

    async def detach(self, tenant: str) -> dict:
        return await self.request("detach", tenant=tenant)

    # -- admin ops -----------------------------------------------------

    async def ping(self) -> dict:
        return await self.request("ping")

    async def stats(self) -> dict:
        return await self.request("stats")

    async def shards(self) -> dict:
        return await self.request("shards")

    async def migrate(self, tenant: str, shard: int) -> dict:
        return await self.request("migrate", tenant=tenant, shard=shard)

    async def rebalance(self) -> dict:
        return await self.request("rebalance")

    async def shutdown(self) -> dict:
        return await self.request("shutdown")

    # -- lifecycle -----------------------------------------------------

    async def close(self) -> None:
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass

    async def __aenter__(self) -> "ServiceClient":
        return self

    async def __aexit__(self, *_exc: Any) -> None:
        await self.close()


#: Wire error codes a client may retry: the op either never reached a
#: shard (``backpressure``, ``deadline-exceeded``, shed *before*
#: dispatch) or its fate is knowable via the idempotency key
#: (``shard-lost``).  Everything else is a definitive answer.
RETRYABLE_CODES = frozenset((
    "backpressure", "deadline-exceeded", "shard-lost",
))

#: Ops whose retries must carry an idempotency key (attach dedups at
#: the front end, claim/release in the tenant window).
IDEMPOTENT_OPS = frozenset(("attach", "claim", "release"))


class CircuitOpenError(ServiceError):
    """Failing fast: the circuit breaker is open (wire presumed down)."""


@dataclass(frozen=True)
class RetryPolicy:
    """Knobs for :class:`ResilientServiceClient` (all bounded)."""

    #: Server-side budget stamped on every tenant op (protocol v2
    #: ``deadline_ms``); the server sheds rather than serve stale.
    deadline_ms: float = 2000.0
    #: Client-side cap on one attempt's round trip.
    request_timeout_s: float = 5.0
    #: Attempts per request (1 = no retry).
    max_attempts: int = 8
    #: Full-jitter backoff: sleep ``uniform(0, min(cap, base * 2**k))``.
    backoff_base_s: float = 0.02
    backoff_cap_s: float = 0.5
    #: Circuit breaker: consecutive transport anomalies before the
    #: circuit opens, clean answers before it fully closes, and how
    #: long an open circuit fails fast before probing (half-open).
    fail_threshold: int = 3
    recover_after: int = 2
    cooldown_s: float = 0.25


class ResilientServiceClient:
    """A :class:`ServiceClient` that survives a hostile wire.

    Wraps a connection *factory* rather than a connection: when the
    transport fails (reset, timeout, torn response) the live client is
    dropped and the next attempt reconnects.  Every in-flight pipelined
    request independently retries onto the new connection — that is the
    pipelined-request replay, and it is safe because retried mutations
    carry idempotency keys the server dedups (exactly-once).

    The circuit breaker is a :class:`~repro.faults.health.UnitHealth`
    FSM: ``fail_threshold`` consecutive transport anomalies open the
    circuit (FAILED — requests fail fast with
    :class:`CircuitOpenError`), ``cooldown_s`` later the next request
    probes it half-open (RECOVERING), and ``recover_after`` clean
    answers close it again.  Transitions land in the flight recorder
    (``circuit_open`` / ``circuit_close``), retries as
    ``request_retried`` trips.

    Determinism: jitter comes from a seeded :class:`random.Random`, so
    a chaos campaign scenario replays its sleep schedule exactly.
    """

    def __init__(self, factory: Callable[[], Awaitable[ServiceClient]],
                 policy: Optional[RetryPolicy] = None,
                 seed: int = 0, tag: str = "client",
                 obs: Optional[Observability] = None) -> None:
        self._factory = factory
        self.policy = policy or RetryPolicy()
        self.tag = tag
        self.obs = obs if obs is not None else NULL_OBS
        self._rng = random.Random(seed)
        self._client: Optional[ServiceClient] = None
        self._connect_lock = asyncio.Lock()
        self._connects = 0
        self._seq = 0
        self._cooldown_until = 0.0
        self.health = UnitHealth(
            tag, clock=time.monotonic,
            fail_threshold=self.policy.fail_threshold,
            recover_after=self.policy.recover_after, obs=self.obs)
        #: Total round-trip seconds per op (includes retries/backoff).
        self.rtt: dict[str, list] = {}
        metrics = self.obs.metrics
        self._c_retries = metrics.counter(
            "service.client.retries", "request attempts after the first")
        self._c_reconnects = metrics.counter(
            "service.client.reconnects", "connections after the first")
        self._c_circuit_open = metrics.counter(
            "service.client.circuit_open", "circuit-breaker opens")
        self._c_deduped = metrics.counter(
            "service.client.deduped",
            "responses served from the server's idempotency window")

    @classmethod
    def tcp(cls, host: str, port: int,
            **kwargs: Any) -> "ResilientServiceClient":
        async def factory() -> ServiceClient:
            return await ServiceClient.connect_tcp(
                host, port, obs=kwargs.get("obs"))
        return cls(factory, **kwargs)

    @classmethod
    def unix(cls, path: str, **kwargs: Any) -> "ResilientServiceClient":
        async def factory() -> ServiceClient:
            return await ServiceClient.connect_unix(
                path, obs=kwargs.get("obs"))
        return cls(factory, **kwargs)

    @property
    def connects(self) -> int:
        """Connections made so far (anything past 1 is a reconnect)."""
        return self._connects

    # -- connection management -----------------------------------------

    async def _ensure_connected(self) -> ServiceClient:
        client = self._client
        if client is not None and not client._reader_task.done():
            return client
        async with self._connect_lock:
            client = self._client
            if client is not None and not client._reader_task.done():
                return client            # a sibling already reconnected
            if client is not None:
                self._client = None
                await client.close()
            client = await self._factory()
            self._client = client
            self._connects += 1
            if self._connects > 1:
                self._c_reconnects.inc()
            return client

    async def _drop(self, client: Optional[ServiceClient]) -> None:
        """Discard a client the caller saw fail (if still current)."""
        if client is not None and client is self._client:
            self._client = None
            await client.close()

    # -- circuit breaker -----------------------------------------------

    def _check_circuit(self) -> None:
        if not self.health.failed:
            return
        if time.monotonic() < self._cooldown_until:
            raise CircuitOpenError(
                f"circuit open for {self.tag!r}; fails fast until "
                "cooldown elapses")
        self.health.begin_recovery("cooldown elapsed")   # half-open

    def _anomaly(self, reason: str) -> None:
        was_failed = self.health.failed
        self.health.anomaly(reason)
        if self.health.failed:
            self._cooldown_until = (time.monotonic()
                                    + self.policy.cooldown_s)
            if not was_failed:
                self._c_circuit_open.inc()
                if self.obs.flight.enabled:
                    self.obs.flight.mark("circuit_open", actor=self.tag,
                                         reason=reason)

    def _clean(self, reason: str) -> None:
        was_closed = self.health.state is HealthState.HEALTHY
        self.health.clean(reason)
        if (not was_closed
                and self.health.state is HealthState.HEALTHY
                and self.obs.flight.enabled):
            self.obs.flight.mark("circuit_close", actor=self.tag,
                                 reason=reason)

    # -- the retry loop ------------------------------------------------

    async def request(self, op: str, **fields: Any) -> dict:
        """One logical request, retried to completion or exhaustion."""
        policy = self.policy
        if op in TENANT_OPS and "deadline_ms" not in fields:
            fields["deadline_ms"] = policy.deadline_ms
        if op in IDEMPOTENT_OPS and "idem" not in fields:
            self._seq += 1
            fields["idem"] = f"{self.tag}:{self._seq}"
        loop = asyncio.get_running_loop()
        started = loop.time()
        last_error: Optional[Exception] = None
        for attempt in range(policy.max_attempts):
            if attempt:
                self._c_retries.inc()
                if self.obs.flight.enabled:
                    self.obs.flight.mark(
                        "request_retried", actor=self.tag, op=op,
                        attempt=attempt, error=str(last_error)[:80])
                await asyncio.sleep(self._rng.uniform(
                    0.0, min(policy.backoff_cap_s,
                             policy.backoff_base_s * (2 ** attempt))))
            try:
                self._check_circuit()
            except CircuitOpenError as exc:
                # Open circuit: don't touch the wire — burn this
                # attempt waiting out the cooldown (the next iteration's
                # backoff sleep).  The request fails fast only once the
                # attempt budget is spent.
                last_error = exc
                continue
            # Hot path: reuse the live connection without awaiting the
            # lock-guarded slow path (an extra coroutine per request).
            client = self._client
            try:
                if client is None or client._reader_task.done():
                    client = await self._ensure_connected()
                if _ASYNCIO_TIMEOUT is not None:
                    # 3.11+: a timeout context, no wrapper Task per
                    # request — the difference between ~6% and ~2%
                    # overhead on a fault-free wire.
                    async with _ASYNCIO_TIMEOUT(
                            policy.request_timeout_s):
                        response = await client.request(op, **fields)
                else:
                    response = await asyncio.wait_for(
                        client.request(op, **fields),
                        policy.request_timeout_s)
            except ServiceOpError as exc:
                # The server answered: the wire is healthy.
                self._clean("server answered")
                if exc.code not in RETRYABLE_CODES:
                    raise
                last_error = exc
            except (ServiceError, asyncio.TimeoutError,
                    ConnectionResetError, BrokenPipeError,
                    OSError) as exc:
                # Transport-level loss: reconnect on the next attempt.
                await self._drop(client)
                self._anomaly(f"{op}: {type(exc).__name__}")
                last_error = exc
            else:
                if self.health.state is not HealthState.HEALTHY:
                    self._clean("response")
                if response.get("deduped"):
                    self._c_deduped.inc()
                self.rtt.setdefault(op, []).append(loop.time() - started)
                return response
        raise ServiceError(
            f"{op} failed after {policy.max_attempts} attempts: "
            f"{last_error}") from last_error

    # -- tenant ops ----------------------------------------------------

    async def attach(self, tenant: str, **spec: Any) -> dict:
        return await self.request("attach", tenant=tenant, **spec)

    async def claim(self, tenant: str, process: str,
                    resource: str) -> dict:
        return await self.request("claim", tenant=tenant,
                                  process=process, resource=resource)

    async def release(self, tenant: str, process: str,
                      resource: str) -> dict:
        return await self.request("release", tenant=tenant,
                                  process=process, resource=resource)

    async def detect(self, tenant: str) -> dict:
        return await self.request("detect", tenant=tenant)

    async def detach(self, tenant: str) -> dict:
        return await self.request("detach", tenant=tenant)

    # -- admin ops -----------------------------------------------------

    async def ping(self) -> dict:
        return await self.request("ping")

    async def stats(self) -> dict:
        return await self.request("stats")

    async def shards(self) -> dict:
        return await self.request("shards")

    # -- lifecycle -----------------------------------------------------

    async def close(self) -> None:
        client, self._client = self._client, None
        if client is not None:
            await client.close()

    async def __aenter__(self) -> "ResilientServiceClient":
        return self

    async def __aexit__(self, *_exc: Any) -> None:
        await self.close()
