"""repro.service — multi-tenant async deadlock-detection service.

The paper's DDU serves one kernel; this package serves *populations*:
an asyncio front end multiplexes thousands of tenants — each a
(tasks x resources) RAG instance — over a pool of worker shards, and
each tick's ``detect`` requests are answered by **one** batched
Algorithm-1 reduction (:mod:`repro.rag.batch`) instead of N sequential
per-tenant passes.  See ``docs/service.md`` for the wire protocol,
batching-tick semantics, backpressure, and live migration.

Layering:

* :mod:`repro.service.protocol` — newline-delimited JSON wire format,
  stable error codes;
* :mod:`repro.service.tenant` — per-tenant matrix + deterministic
  claim/release policy + checkpoint envelopes;
* :mod:`repro.service.shard` — the worker state machine (in-process or
  behind a ``multiprocessing`` pipe);
* :mod:`repro.service.server` — admission control, tick batching,
  journal-backed crash recovery, live migration;
* :mod:`repro.service.client` — a pipelined asyncio client, plus the
  retrying/reconnecting :class:`ResilientServiceClient`;
* :mod:`repro.service.chaos` — a deterministic fault-injecting wire
  proxy (:class:`ChaosTransport`) driven by replayable
  :class:`NetFaultPlan`\\ s.

``python -m repro.service`` starts a server.
"""

from repro.service.protocol import (
    ADMIN_OPS,
    ERROR_CODES,
    MAX_LINE_BYTES,
    MUTATING_OPS,
    PROTOCOL_VERSION,
    TENANT_OPS,
    ServiceOpError,
    decode_line,
    encode_message,
    error_response,
    ok_response,
    validate_request,
)
from repro.service.tenant import (
    IDEM_WINDOW,
    MAX_TENANT_SIDE,
    SNAPSHOT_KIND,
    Tenant,
)
from repro.service.shard import ShardCore, shard_main
from repro.service.server import DetectionService, ServiceConfig, ShardHandle
from repro.service.client import (
    CircuitOpenError,
    IDEMPOTENT_OPS,
    RETRYABLE_CODES,
    ResilientServiceClient,
    RetryPolicy,
    ServiceClient,
)
from repro.service.chaos import (
    NET_FAULT_KINDS,
    ChaosTransport,
    NetFaultPlan,
    NetFaultSpec,
)

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_LINE_BYTES",
    "TENANT_OPS",
    "ADMIN_OPS",
    "MUTATING_OPS",
    "ERROR_CODES",
    "ServiceOpError",
    "encode_message",
    "decode_line",
    "validate_request",
    "ok_response",
    "error_response",
    "Tenant",
    "MAX_TENANT_SIDE",
    "SNAPSHOT_KIND",
    "IDEM_WINDOW",
    "ShardCore",
    "shard_main",
    "DetectionService",
    "ServiceConfig",
    "ShardHandle",
    "ServiceClient",
    "ResilientServiceClient",
    "RetryPolicy",
    "CircuitOpenError",
    "RETRYABLE_CODES",
    "IDEMPOTENT_OPS",
    "ChaosTransport",
    "NetFaultPlan",
    "NetFaultSpec",
    "NET_FAULT_KINDS",
]
