"""Wire-level chaos: a deterministic fault-injecting NDJSON proxy.

:class:`ChaosTransport` sits between a client and any TCP/Unix service
endpoint and misbehaves *on schedule*: a :class:`NetFaultPlan` is the
wire-side sibling of :class:`repro.faults.plan.FaultPlan` — a named,
JSON-round-trippable bundle of :class:`NetFaultSpec`\\ s that hashes
canonically (:meth:`NetFaultPlan.plan_hash`), so a chaos campaign
scenario can be replayed from its plan alone.

Time is counted in **visits**, exactly like the hardware fault plans:
one visit is one wire line observed per connection per direction
(``c2s`` = client-to-server requests, ``s2c`` = responses).  A spec is
active for visits ``at <= v < at + duration``, or periodically every
``every`` visits from ``at`` — periodic resets are how a scenario
injects repeated connection loss without livelocking a reconnecting
client (each incarnation makes progress before the next cut).

The eight fault kinds (:data:`NET_FAULT_KINDS`):

===========  ==========================================================
kind         effect on the visited line
===========  ==========================================================
delay        hold the line for ``delay_s`` (default 0.05) seconds
drop         swallow the line entirely
duplicate    forward the line twice
reorder      hold the line; emit it *after* the next line
truncate     forward only a prefix — a torn line, framing preserved
corrupt      overwrite a span with ``0xFF`` (never decodable, so the
             receiver can *never* mistake it for a real answer)
reset        abort the TCP connection (both halves)
slow_loris   half-write: a few bytes, a stall, then the rest
===========  ==========================================================

``corrupt`` deliberately writes invalid UTF-8 rather than flipping
random bits: a bit-flip could, with tiny probability, yield valid JSON
that matches a pending request id — a *forged* response the oracle
could never distinguish from a wrong answer.  Guaranteed-undecodable
garbage keeps the chaos layer falsifiable: any decodable line that
reaches a peer really was sent by the other peer.

Randomness (truncate points, corrupt spans) comes from a per-connection
:class:`random.Random` seeded from ``(plan seed, connection index,
direction)``, so a scenario's byte stream is reproducible.

Everything observable lands in ``service.chaos.*`` metrics and
``net_fault`` flight events.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
from dataclasses import dataclass, field
from random import Random
from typing import Any, Mapping, Optional

from repro.errors import ConfigurationError, ServiceError
from repro.obs import NULL_OBS, Observability
from repro.service.protocol import MAX_LINE_BYTES

#: The eight wire fault kinds.
NET_FAULT_KINDS = ("delay", "drop", "duplicate", "reorder", "truncate",
                   "corrupt", "reset", "slow_loris")

#: Spec ``direction`` values (``both`` matches either pump).
DIRECTIONS = ("c2s", "s2c", "both")


@dataclass(frozen=True)
class NetFaultSpec:
    """One scheduled wire fault on one traffic direction."""

    kind: str
    #: ``c2s`` (requests), ``s2c`` (responses) or ``both``.
    direction: str = "both"
    #: First active visit (0-based, per connection per direction).
    at: int = 0
    #: Consecutive active visits per activation.
    duration: int = 1
    #: Periodic re-activation every N visits from ``at`` (None = once).
    every: Optional[int] = None
    #: Kind knobs: ``delay_s`` / ``pause_s`` (seconds), ``span``
    #: (corrupt bytes), ``keep`` (truncate prefix bytes).
    params: Mapping[str, Any] = field(default_factory=dict)

    def validate(self) -> None:
        if self.kind not in NET_FAULT_KINDS:
            raise ConfigurationError(
                f"unknown net fault kind {self.kind!r}; known: "
                f"{list(NET_FAULT_KINDS)}")
        if self.direction not in DIRECTIONS:
            raise ConfigurationError(
                f"direction must be one of {DIRECTIONS}, "
                f"not {self.direction!r}")
        if self.at < 0:
            raise ConfigurationError(f"{self.kind}: at must be >= 0")
        if self.duration < 1:
            raise ConfigurationError(
                f"{self.kind}: duration must be >= 1")
        if self.every is not None and self.every < 1:
            raise ConfigurationError(
                f"{self.kind}: every must be >= 1")

    def matches(self, direction: str) -> bool:
        return self.direction == "both" or self.direction == direction

    def active_at(self, visit: int) -> bool:
        if visit < self.at:
            return False
        offset = visit - self.at
        if self.every is not None:
            offset %= self.every
        return offset < self.duration

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "direction": self.direction,
            "at": self.at,
            "duration": self.duration,
            "every": self.every,
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "NetFaultSpec":
        try:
            spec = cls(kind=data["kind"],
                       direction=data.get("direction", "both"),
                       at=int(data.get("at", 0)),
                       duration=int(data.get("duration", 1)),
                       every=(int(data["every"])
                              if data.get("every") is not None else None),
                       params=dict(data.get("params", {})))
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"malformed net fault spec: {exc}") from exc
        spec.validate()
        return spec


@dataclass(frozen=True)
class NetFaultPlan:
    """A named, seeded, ordered bundle of wire fault specs."""

    name: str
    specs: tuple = ()
    #: Root seed for the per-connection RNGs (truncate/corrupt points).
    seed: int = 0

    def validate(self) -> None:
        if not self.name:
            raise ConfigurationError("net fault plan needs a name")
        for spec in self.specs:
            spec.validate()

    def kinds(self) -> tuple[str, ...]:
        return tuple(sorted({spec.kind for spec in self.specs}))

    def to_dict(self) -> dict:
        return {"name": self.name, "seed": self.seed,
                "specs": [spec.to_dict() for spec in self.specs]}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "NetFaultPlan":
        try:
            plan = cls(name=data["name"],
                       seed=int(data.get("seed", 0)),
                       specs=tuple(NetFaultSpec.from_dict(item)
                                   for item in data.get("specs", ())))
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"malformed net fault plan: {exc}") from exc
        plan.validate()
        return plan

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "NetFaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"net fault plan is not JSON: {exc}") from exc
        return cls.from_dict(data)

    def plan_hash(self) -> str:
        """sha256 fingerprint of the canonical JSON form."""
        canonical = json.dumps(self.to_dict(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _derive_rng(seed: int, connection: int, direction: str) -> Random:
    """Stable per-(connection, direction) RNG from the plan seed."""
    digest = hashlib.sha256(
        f"{seed}:{connection}:{direction}".encode("utf-8")).digest()
    return Random(int.from_bytes(digest[:8], "big"))


class _Abort(Exception):
    """Internal: a reset fault fired; tear the connection down."""


class ChaosTransport:
    """A line-framed chaos proxy in front of one service endpoint.

    Listens on TCP, forwards to a TCP or Unix endpoint, and applies the
    plan's faults per line.  Start/stop::

        proxy = ChaosTransport(plan, target_port=service.tcp_port)
        await proxy.start()
        client = await ServiceClient.connect_tcp("127.0.0.1",
                                                 proxy.listen_port)
        ...
        await proxy.stop()
    """

    def __init__(self, plan: NetFaultPlan,
                 target_host: str = "127.0.0.1",
                 target_port: Optional[int] = None,
                 target_unix: Optional[str] = None,
                 obs: Optional[Observability] = None) -> None:
        plan.validate()
        if (target_port is None) == (target_unix is None):
            raise ServiceError(
                "chaos proxy needs exactly one of target_port / "
                "target_unix")
        self.plan = plan
        self.target_host = target_host
        self.target_port = target_port
        self.target_unix = target_unix
        self.obs = obs if obs is not None else NULL_OBS
        self._server = None
        self._connections = 0
        self._tasks: set = set()
        #: Faults applied, per kind (also mirrored into metrics).
        self.fired: dict[str, int] = {kind: 0 for kind in NET_FAULT_KINDS}
        metrics = self.obs.metrics
        self._c_connections = metrics.counter(
            "service.chaos.connections", "connections proxied")
        self._c_lines = metrics.counter(
            "service.chaos.lines", "wire lines forwarded")
        self._c_kind = {
            kind: metrics.counter(
                f"service.chaos.{kind}", f"{kind} faults applied")
            for kind in NET_FAULT_KINDS}

    # -- lifecycle -----------------------------------------------------

    async def start(self, host: str = "127.0.0.1",
                    port: int = 0) -> None:
        if self._server is not None:
            raise ServiceError("chaos proxy already started")
        self._server = await asyncio.start_server(
            self._handle, host=host, port=port, limit=MAX_LINE_BYTES)

    @property
    def listen_port(self) -> Optional[int]:
        if self._server is None:
            return None
        for sock in self._server.sockets:
            name = sock.getsockname()
            if isinstance(name, tuple):
                return name[1]
        return None

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._tasks):
            task.cancel()
        for task in list(self._tasks):
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._tasks.clear()

    # -- proxying ------------------------------------------------------

    async def _handle(self, client_reader, client_writer) -> None:
        connection = self._connections
        self._connections += 1
        if self.obs.enabled:
            self._c_connections.inc()
        try:
            if self.target_unix is not None:
                upstream = await asyncio.open_unix_connection(
                    self.target_unix, limit=MAX_LINE_BYTES)
            else:
                upstream = await asyncio.open_connection(
                    self.target_host, self.target_port,
                    limit=MAX_LINE_BYTES)
        except OSError:
            client_writer.close()
            return
        server_reader, server_writer = upstream
        pumps = [
            asyncio.create_task(self._pump(
                client_reader, server_writer, "c2s", connection)),
            asyncio.create_task(self._pump(
                server_reader, client_writer, "s2c", connection)),
        ]
        for task in pumps:
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)
        try:
            # Wait for BOTH pumps: each closes its own writer on exit,
            # which EOFs the peer and ends the other pump — so a clean
            # client close still lets in-flight responses (and a held
            # reordered line) drain instead of being cancelled mid-wire.
            await asyncio.wait(pumps, return_when=asyncio.ALL_COMPLETED)
        finally:
            for task in pumps:
                task.cancel()
            for writer in (client_writer, server_writer):
                try:
                    writer.close()
                except (ConnectionResetError, BrokenPipeError, OSError):
                    pass

    def _fired(self, kind: str, direction: str, connection: int,
               visit: int) -> None:
        self.fired[kind] += 1
        if self.obs.enabled:
            self._c_kind[kind].inc()
        if self.obs.flight.enabled:
            self.obs.flight.mark(
                "net_fault", actor="chaos", fault=kind,
                direction=direction, connection=connection, visit=visit)

    async def _pump(self, reader, writer, direction: str,
                    connection: int) -> None:
        rng = _derive_rng(self.plan.seed, connection, direction)
        visit = 0
        held: Optional[bytes] = None
        aborted = False
        specs = [spec for spec in self.plan.specs
                 if spec.matches(direction)]
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, ConnectionResetError, OSError):
                    raise _Abort() from None
                if not line:
                    break
                active = [spec for spec in specs
                          if spec.active_at(visit)]
                this_visit = visit
                visit += 1
                emit = [line]
                slow: Optional[float] = None
                for spec in active:
                    kind = spec.kind
                    if kind == "delay":
                        self._fired(kind, direction, connection,
                                    this_visit)
                        await asyncio.sleep(float(
                            spec.params.get("delay_s", 0.05)))
                    elif kind == "drop":
                        self._fired(kind, direction, connection,
                                    this_visit)
                        emit = []
                    elif kind == "duplicate":
                        self._fired(kind, direction, connection,
                                    this_visit)
                        emit = [chunk for chunk in emit
                                for _ in range(2)]
                    elif kind == "reorder" and held is None and emit:
                        self._fired(kind, direction, connection,
                                    this_visit)
                        held = emit.pop(0)
                    elif kind == "truncate":
                        self._fired(kind, direction, connection,
                                    this_visit)
                        emit = [self._truncate(chunk, spec, rng)
                                for chunk in emit]
                    elif kind == "corrupt":
                        self._fired(kind, direction, connection,
                                    this_visit)
                        emit = [self._corrupt(chunk, spec, rng)
                                for chunk in emit]
                    elif kind == "reset":
                        self._fired(kind, direction, connection,
                                    this_visit)
                        raise _Abort()
                    elif kind == "slow_loris":
                        self._fired(kind, direction, connection,
                                    this_visit)
                        slow = float(spec.params.get("pause_s", 0.05))
                if held is not None and emit:
                    # The reordered line rides out *behind* this one.
                    emit.append(held)
                    held = None
                for chunk in emit:
                    if self.obs.enabled:
                        self._c_lines.inc()
                    if slow is not None:
                        split = max(1, len(chunk) // 2)
                        writer.write(chunk[:split])
                        await writer.drain()
                        await asyncio.sleep(slow)
                        writer.write(chunk[split:])
                    else:
                        writer.write(chunk)
                    await writer.drain()
        except (_Abort, asyncio.CancelledError,
                ConnectionResetError, BrokenPipeError, OSError):
            held = None                  # torn down, nothing to flush
            aborted = True
        finally:
            if held is not None:
                # EOF with a reordered line still held: flush it so a
                # reorder at the stream tail never becomes a drop.
                try:
                    writer.write(held)
                    await writer.drain()
                except (ConnectionResetError, BrokenPipeError, OSError):
                    pass
            # Graceful EOF half-closes so in-flight replies on the
            # other pump still drain; an abort tears the socket down.
            try:
                if not aborted and writer.can_write_eof():
                    writer.write_eof()
                else:
                    writer.close()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    @staticmethod
    def _truncate(line: bytes, spec: NetFaultSpec, rng: Random) -> bytes:
        """A torn line: a strict prefix, framing newline preserved."""
        body = line.rstrip(b"\n")
        if len(body) < 2:
            return line
        keep = spec.params.get("keep")
        cut = (min(int(keep), len(body) - 1) if keep is not None
               else rng.randrange(1, len(body)))
        return body[:cut] + b"\n"

    @staticmethod
    def _corrupt(line: bytes, spec: NetFaultSpec, rng: Random) -> bytes:
        """Overwrite a span with 0xFF: guaranteed undecodable, so the
        receiver can never mistake it for a forged-but-valid answer."""
        body = bytearray(line.rstrip(b"\n"))
        if not body:
            return line
        span = min(int(spec.params.get("span", 4)), len(body))
        start = rng.randrange(0, len(body) - span + 1)
        body[start:start + span] = b"\xff" * span
        return bytes(body) + b"\n"

    async def __aenter__(self) -> "ChaosTransport":
        await self.start()
        return self

    async def __aexit__(self, *_exc: Any) -> None:
        await self.stop()
