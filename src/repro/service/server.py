"""The asyncio front end: multiplex tenants over a pool of shards.

:class:`DetectionService` accepts newline-delimited JSON connections
(TCP and/or Unix socket), applies admission control and bounded-queue
backpressure, and coalesces accepted tenant operations into *ticks*:
every ``tick_interval`` seconds the queue is drained, grouped by shard,
and shipped as one ``batch`` command per shard, whose detects are
answered by a single batched :class:`~repro.rag.batch.BatchPlane`
reduction (see :mod:`repro.service.shard`).

Shards run either in-process (tests, campaign scenarios) or as
``multiprocessing`` worker processes (the deployment the soak
SIGKILLs).  The front end is the durability domain:

* it builds every tenant itself on ``attach`` (seeded through the
  ``resolve_rng`` contract) and keeps the attach-time snapshot
  envelope;
* every *acked* mutation is journaled per tenant, and the snapshot is
  refreshed from the shard every ``snapshot_every`` mutations (the
  journal truncates at the refresh point);
* when a shard dies — EOF on its pipe, a send failure, or a hung batch
  past ``shard_timeout`` — its tenants are restored on surviving
  shards from snapshot + journal replay, and the batch that was
  in flight is re-dispatched, so clients see latency, never a wrong
  verdict;
* live migration (``migrate`` / ``rebalance``) quiesces one tenant,
  moves its snapshot between shards, verifies ``state_hash`` equality
  after restore, and releases the held operations — digest-equivalent
  by construction.

Everything observable lands in ``service.*`` metrics on the hub, and
admission rejections, migrations and rebalances are flight-recorder
trips (see :data:`repro.obs.flight.TRIP_KINDS`).
"""

from __future__ import annotations

import asyncio
import multiprocessing
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Optional

from repro.errors import ServiceError
from repro.obs import Observability
from repro.service.protocol import (
    ADMIN_OPS,
    MAX_LINE_BYTES,
    MUTATING_OPS,
    PROTOCOL_VERSION,
    ServiceOpError,
    decode_line,
    encode_message,
    error_response,
    ok_response,
    validate_request,
)
from repro.service.shard import ShardCore, shard_main
from repro.service.tenant import Tenant


@dataclass
class ServiceConfig:
    """Knobs for one service instance (all bounded, all observable)."""

    #: Worker shards in the pool.
    shards: int = 2
    #: True: shards are multiprocessing workers (SIGKILL-able);
    #: False: in-process cores (tests, campaign scenarios).
    use_processes: bool = False
    #: Seconds between queue drains; one drain = one batch per shard.
    tick_interval: float = 0.002
    #: Admission control: the tenant table's hard cap.
    max_tenants: int = 4096
    #: Bounded queue: total queued + in-flight operations.
    max_pending: int = 4096
    #: Bounded queue: per-tenant outstanding operations.
    max_pending_per_tenant: int = 128
    #: Acked mutations between snapshot refreshes (journal truncation).
    snapshot_every: int = 64
    #: A batch unanswered this long marks the shard dead.
    shard_timeout: float = 30.0
    #: ``stop()`` waits this long for dispatched ops to settle before
    #: closing connections (was a hard-coded 2.0s).
    drain_timeout: float = 2.0
    #: Forwarded to :func:`repro.rag.batch.batch_plane` (None = auto).
    vectorized: Optional[bool] = None


class _ShardLost(ServiceError):
    """Internal: the shard died before answering (recovery re-routes)."""


class _QueuedOp:
    """One accepted tenant operation waiting for its tick."""

    __slots__ = ("message", "future", "enqueued")

    def __init__(self, message: dict, future: "asyncio.Future",
                 enqueued: float) -> None:
        self.message = message
        self.future = future
        self.enqueued = enqueued


class _TenantRecord:
    """Front-end bookkeeping for one tenant."""

    __slots__ = ("tenant_id", "shard_id", "snapshot", "journal",
                 "outstanding", "inflight", "migrating", "held",
                 "attach_idem", "attach_response")

    def __init__(self, tenant_id: str, shard_id: int,
                 snapshot: dict) -> None:
        self.tenant_id = tenant_id
        self.shard_id = shard_id
        #: Last known-good envelope (attach-time, then refreshed).
        self.snapshot = snapshot
        #: Acked mutations since the snapshot (crash-replay source).
        self.journal: list = []
        #: Queued + dispatched, not yet answered (backpressure).
        self.outstanding = 0
        #: Dispatched to a shard, not yet answered (migration gate).
        self.inflight = 0
        self.migrating = False
        #: Ops parked while a migration is in progress.
        self.held: list = []
        #: The ``idem`` key the creating attach carried (if any), plus
        #: the recorded response payload once it was acked — a retried
        #: attach with the same key replays the answer instead of
        #: hitting ``duplicate-tenant``.
        self.attach_idem: Optional[str] = None
        self.attach_response: Optional[dict] = None


class ShardHandle:
    """One shard: either an in-process core or a worker process."""

    def __init__(self, service: "DetectionService", shard_id: int) -> None:
        self.service = service
        self.shard_id = shard_id
        self.alive = True
        self.core: Optional[ShardCore] = None
        self.process = None
        self.conn = None
        #: FIFO of (command, future, context) awaiting a reply.
        self._pending: deque = deque()
        self._oldest_sent: Optional[float] = None

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid if self.process is not None else None

    def start(self) -> None:
        config = self.service.config
        if config.use_processes:
            ctx = multiprocessing.get_context()
            parent_conn, child_conn = ctx.Pipe()
            self.process = ctx.Process(
                target=shard_main,
                args=(child_conn, self.shard_id, config.vectorized),
                daemon=True, name=f"repro-service-shard-{self.shard_id}")
            self.process.start()
            child_conn.close()
            self.conn = parent_conn
            asyncio.get_running_loop().add_reader(
                self.conn.fileno(), self._on_readable)
        else:
            self.core = ShardCore(self.shard_id,
                                  vectorized=config.vectorized,
                                  obs=self.service.obs)

    def tenant_count(self) -> int:
        return sum(1 for record in self.service.tenants.values()
                   if record.shard_id == self.shard_id)

    # -- request/reply -------------------------------------------------

    def request(self, command: str, payload: Any,
                context: Any = None) -> "asyncio.Future":
        """Send one command; the future resolves to (kind, reply)."""
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        if not self.alive:
            future.set_exception(_ShardLost(
                f"shard {self.shard_id} is down"))
            return future
        if self.core is not None:
            future.set_result(self.core.handle(command, payload))
            return future
        self._pending.append((command, future, context))
        if self._oldest_sent is None:
            self._oldest_sent = time.monotonic()
        try:
            self.conn.send((command, payload))
        except (BrokenPipeError, OSError):
            self.mark_dead()
        return future

    def _on_readable(self) -> None:
        try:
            while self.conn.poll():
                kind, reply = self.conn.recv()
                if self._pending:
                    _command, future, _context = self._pending.popleft()
                    if not future.done():
                        future.set_result((kind, reply))
                self._oldest_sent = (time.monotonic() if self._pending
                                     else None)
        except (EOFError, OSError):
            self.mark_dead()

    def check_hang(self) -> None:
        """Declare the shard dead when a batch is long unanswered."""
        if (self.alive and self._oldest_sent is not None
                and time.monotonic() - self._oldest_sent
                > self.service.config.shard_timeout):
            self.crash()

    # -- death ---------------------------------------------------------

    def crash(self) -> None:
        """Hard-stop the shard (tests and hang handling); triggers
        the same recovery path as an external SIGKILL."""
        if self.process is not None and self.process.is_alive():
            self.process.kill()
        if self.core is not None and self.alive:
            self.core = None
            self.mark_dead()

    def mark_dead(self) -> None:
        if not self.alive:
            return
        self.alive = False
        self.core = None
        if self.conn is not None:
            try:
                asyncio.get_running_loop().remove_reader(
                    self.conn.fileno())
            except (ValueError, OSError, RuntimeError):
                pass
            try:
                self.conn.close()
            except OSError:
                pass
        undelivered = list(self._pending)
        self._pending.clear()
        self._oldest_sent = None
        for _command, future, _context in undelivered:
            if not future.done():
                future.set_exception(_ShardLost(
                    f"shard {self.shard_id} died"))
        self.service._on_shard_dead(self, undelivered)

    def stop(self) -> None:
        """Orderly shutdown (no recovery)."""
        self.alive = False
        if self.conn is not None:
            try:
                asyncio.get_running_loop().remove_reader(
                    self.conn.fileno())
            except (ValueError, OSError, RuntimeError):
                pass
            try:
                self.conn.send(("stop", None))
            except (BrokenPipeError, OSError):
                pass
            try:
                self.conn.close()
            except OSError:
                pass
        if self.process is not None:
            self.process.join(timeout=2.0)
            if self.process.is_alive():
                self.process.kill()
                self.process.join(timeout=2.0)


class DetectionService:
    """The multi-tenant deadlock-detection service."""

    def __init__(self, config: Optional[ServiceConfig] = None,
                 obs: Optional[Observability] = None) -> None:
        self.config = config or ServiceConfig()
        if self.config.shards < 1:
            raise ServiceError("service needs at least one shard")
        self.obs = obs if obs is not None else Observability(
            label="service", enabled=True)
        self.tenants: dict[str, _TenantRecord] = {}
        self.shards: list[ShardHandle] = []
        self._queue: list = []          # _QueuedOp, arrival order
        self._connections: set = set()  # live client writers (drain)
        self._queued_ops = 0
        self._tick_task = None
        self._servers: list = []
        self._draining = False
        self._started = False
        metrics = self.obs.metrics
        self._c_requests = metrics.counter(
            "service.requests", "tenant operations accepted")
        self._c_granted = metrics.counter(
            "service.granted", "claims granted immediately")
        self._c_blocked = metrics.counter(
            "service.blocked", "claims queued behind a holder")
        self._c_detects = metrics.counter(
            "service.detects", "detect verdicts served")
        self._c_deadlocks = metrics.counter(
            "service.deadlocks", "detect verdicts that found deadlock")
        self._c_errors = metrics.counter(
            "service.errors", "operations answered with an error")
        self._c_admission = metrics.counter(
            "service.admission_rejected", "attaches refused at capacity")
        self._c_backpressure = metrics.counter(
            "service.backpressure_rejected",
            "operations refused by the bounded queue")
        self._c_batches = metrics.counter(
            "service.batches", "shard batches shipped")
        self._c_migrations = metrics.counter(
            "service.migrations", "live tenant migrations completed")
        self._c_crashes = metrics.counter(
            "service.shard_crashes", "shards lost and recovered")
        self._c_rebalanced = metrics.counter(
            "service.rebalanced_tenants",
            "tenants restored after a shard loss")
        self._c_replayed = metrics.counter(
            "service.journal_replayed",
            "journaled mutations replayed during recovery")
        self._c_deduped = metrics.counter(
            "service.deduped",
            "retried mutations answered from the idempotency window")
        self._c_deadline = metrics.counter(
            "service.deadline_exceeded",
            "operations shed before dispatch (deadline_ms expired)")
        self._g_tenants = metrics.gauge(
            "service.tenants", "live tenants")
        self._g_pending = metrics.gauge(
            "service.pending", "queued + in-flight operations")
        self._g_shards = metrics.gauge(
            "service.shards_alive", "shards alive")
        self._h_batch = metrics.histogram(
            "service.batch_size", "operations per shard batch")
        self._h_grant = metrics.histogram(
            "service.grant_latency_us",
            "claim accept-to-answer latency (us)")
        self._h_verdict = metrics.histogram(
            "service.verdict_latency_us",
            "detect accept-to-answer latency (us)")

    # -- lifecycle -----------------------------------------------------

    async def start(self, host: Optional[str] = None,
                    port: Optional[int] = None,
                    unix_path: Optional[str] = None) -> None:
        """Spin up shards, listeners, and the tick loop."""
        if self._started:
            raise ServiceError("service already started")
        self._started = True
        for shard_id in range(self.config.shards):
            handle = ShardHandle(self, shard_id)
            handle.start()
            self.shards.append(handle)
        self._g_shards.set(len(self.shards))
        if host is not None:
            self._servers.append(await asyncio.start_server(
                self._handle_connection, host=host, port=port or 0,
                limit=MAX_LINE_BYTES))
        if unix_path is not None:
            self._servers.append(await asyncio.start_unix_server(
                self._handle_connection, path=unix_path,
                limit=MAX_LINE_BYTES))
        self._tick_task = asyncio.create_task(self._tick_loop())

    @property
    def tcp_port(self) -> Optional[int]:
        for server in self._servers:
            for sock in server.sockets:
                name = sock.getsockname()
                if isinstance(name, tuple):
                    return name[1]
        return None

    async def stop(self) -> None:
        """Drain: refuse new work, flush the queue, stop shards."""
        self._draining = True
        if self._tick_task is not None:
            # One final drain so already-accepted ops are answered.
            self._run_tick()
            self._tick_task.cancel()
            try:
                await self._tick_task
            except asyncio.CancelledError:
                pass
        deadline = time.monotonic() + self.config.drain_timeout
        while (any(record.inflight for record in self.tenants.values())
               and time.monotonic() < deadline):
            await asyncio.sleep(0.005)
        for server in self._servers:
            server.close()
            await server.wait_closed()
        self._servers.clear()
        for queued in self._queue:
            if not queued.future.done():
                queued.future.set_result(error_response(
                    queued.message, "shutting-down"))
        self._queue.clear()
        # Graceful connection drain: every accepted op has been settled
        # (answered or refused ``shutting-down``) by now, so give each
        # live connection a moment to flush its response lines, then
        # close — clients see complete answers, never a mid-line cut.
        for writer in list(self._connections):
            try:
                await asyncio.wait_for(writer.drain(),
                                       self.config.drain_timeout)
            except (ConnectionResetError, BrokenPipeError, OSError,
                    asyncio.TimeoutError):
                pass
            try:
                writer.close()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
        self._connections.clear()
        for handle in self.shards:
            handle.stop()

    # -- connection handling -------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        lock = asyncio.Lock()
        tasks: set = set()
        self._connections.add(writer)
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    # Oversized line: the stream limit fired and the
                    # framing is lost — refuse and drop the connection
                    # (other clients' handlers are unaffected).
                    await self._write(writer, lock, error_response(
                        None, "bad-request",
                        f"line exceeds {MAX_LINE_BYTES} bytes"))
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    message = decode_line(line)
                    op = validate_request(message)
                except ServiceOpError as exc:
                    await self._write(writer, lock, error_response(
                        None, exc.code, exc.detail))
                    continue
                if op in ADMIN_OPS:
                    response = await self._admin(op, message)
                    await self._write(writer, lock, response)
                    if op == "shutdown":
                        break
                    continue
                future = self.submit(message)
                task = asyncio.create_task(
                    self._reply_when_done(writer, lock, future))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._connections.discard(writer)
            for task in tasks:
                task.cancel()
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _reply_when_done(self, writer, lock, future) -> None:
        try:
            response = await future
        except asyncio.CancelledError:
            return
        try:
            await self._write(writer, lock, response)
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass

    async def _write(self, writer, lock, response: dict) -> None:
        async with lock:
            writer.write(encode_message(response))
            await writer.drain()

    # -- admission / submission ----------------------------------------

    def submit(self, message: dict) -> "asyncio.Future":
        """Queue one validated tenant op; resolves to its response."""
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        op = message["op"]
        tenant_id = message["tenant"]
        if self._draining:
            future.set_result(error_response(message, "shutting-down"))
            return future
        record = self.tenants.get(tenant_id)
        if op == "attach":
            return self._submit_attach(message, future)
        if record is None:
            self._c_errors.inc()
            future.set_result(error_response(
                message, "unknown-tenant",
                f"tenant {tenant_id!r} is not attached"))
            return future
        if (self._queued_ops >= self.config.max_pending
                or record.outstanding
                >= self.config.max_pending_per_tenant):
            self._c_backpressure.inc()
            future.set_result(error_response(
                message, "backpressure",
                "bounded queue full; back off and retry"))
            return future
        queued = _QueuedOp(message, future, time.monotonic())
        record.outstanding += 1
        self._queued_ops += 1
        self._g_pending.set(self._queued_ops)
        self._c_requests.inc()
        if record.migrating:
            record.held.append(queued)
        else:
            self._queue.append(queued)
        return future

    def _submit_attach(self, message: dict,
                       future: "asyncio.Future") -> "asyncio.Future":
        tenant_id = message["tenant"]
        existing = self.tenants.get(tenant_id)
        if existing is not None:
            idem = message.get("idem")
            if idem is not None and idem == existing.attach_idem:
                # A retried attach whose first try's ack was lost on
                # the wire: replay the recorded answer — or, if the
                # original is still in flight, ask for a later retry.
                if existing.attach_response is not None:
                    self._c_deduped.inc()
                    future.set_result(ok_response(
                        message, deduped=True,
                        **existing.attach_response))
                else:
                    self._c_backpressure.inc()
                    future.set_result(error_response(
                        message, "backpressure",
                        "attach still in flight; retry"))
                return future
            self._c_errors.inc()
            future.set_result(error_response(
                message, "duplicate-tenant",
                f"tenant {tenant_id!r} is already attached"))
            return future
        if len(self.tenants) >= self.config.max_tenants:
            self._c_admission.inc()
            if self.obs.flight.enabled:
                self.obs.flight.mark(
                    "tenant_admission_rejected", actor="service",
                    tenant=tenant_id, tenants=len(self.tenants),
                    max_tenants=self.config.max_tenants)
            future.set_result(error_response(
                message, "admission-rejected",
                f"tenant table full ({self.config.max_tenants})"))
            return future
        try:
            tenant = Tenant.from_attach(tenant_id, message)
        except ServiceOpError as exc:
            self._c_errors.inc()
            future.set_result(error_response(message, exc.code,
                                             exc.detail))
            return future
        handle = self._least_loaded_shard()
        if handle is None:
            future.set_result(error_response(
                message, "internal", "no shard alive"))
            return future
        envelope = tenant.snapshot_state()
        record = _TenantRecord(tenant_id, handle.shard_id, envelope)
        record.attach_idem = message.get("idem")
        self.tenants[tenant_id] = record
        self._g_tenants.set(len(self.tenants))
        self._c_requests.inc()
        record.outstanding += 1
        self._queued_ops += 1
        queued = _QueuedOp(message, future, time.monotonic())
        self._queue.append(queued)
        return future

    def _least_loaded_shard(self) -> Optional[ShardHandle]:
        alive = [handle for handle in self.shards if handle.alive]
        if not alive:
            return None
        return min(alive, key=lambda handle: (handle.tenant_count(),
                                              handle.shard_id))

    # -- the tick loop -------------------------------------------------

    async def _tick_loop(self) -> None:
        while True:
            await asyncio.sleep(self.config.tick_interval)
            for handle in self.shards:
                handle.check_hang()
            if self._queue:
                self._run_tick()

    def _run_tick(self) -> None:
        """Drain the queue into one command stream per shard."""
        queue, self._queue = self._queue, []
        streams: dict[int, list] = {}
        now = time.monotonic()
        for queued in queue:
            deadline_ms = queued.message.get("deadline_ms")
            if (deadline_ms is not None
                    and now - queued.enqueued > deadline_ms / 1000.0):
                # Shed *before* dispatch only: a shed mutation was
                # definitely never applied, so the client may retry it
                # with the same idempotency key at no risk.
                self._shed(queued)
                continue
            record = self.tenants.get(queued.message["tenant"])
            if record is None:
                # Detached (or dropped by a failed attach) in between.
                self._settle(queued, error_response(
                    queued.message, "unknown-tenant"))
                continue
            stream = streams.setdefault(record.shard_id, [])
            if queued.message["op"] == "attach":
                stream.append(("restore", record.snapshot, [queued]))
            else:
                if stream and stream[-1][0] == "batch":
                    stream[-1][2].append(queued)
                else:
                    stream.append(("batch", None, [queued]))
                record.inflight += 1
        for shard_id, stream in streams.items():
            handle = self._shard(shard_id)
            for command, payload, batch in stream:
                if command == "batch":
                    ops = [queued.message for queued in batch]
                    self._c_batches.inc()
                    self._h_batch.observe(len(ops))
                    future = handle.request("batch", ops, context=batch)
                    asyncio.ensure_future(
                        self._finish_batch(batch, future))
                else:
                    future = handle.request(command, payload,
                                            context=batch)
                    asyncio.ensure_future(
                        self._finish_attach(batch[0], future))

    def _shard(self, shard_id: int) -> ShardHandle:
        return self.shards[shard_id]

    def _shed(self, queued: _QueuedOp) -> None:
        """Answer ``deadline-exceeded`` for an op that sat out its
        budget in the queue (never dispatched)."""
        message = queued.message
        self._c_deadline.inc()
        self._c_errors.inc()
        if message["op"] == "attach":
            # The tenant record was provisionally created at submit
            # time; drop it exactly like a failed attach would.
            record = self.tenants.get(message["tenant"])
            if record is not None and record.attach_response is None:
                self.tenants.pop(record.tenant_id, None)
                self._g_tenants.set(len(self.tenants))
        self._settle(queued, error_response(
            message, "deadline-exceeded",
            f"not dispatched within {message.get('deadline_ms')}ms"))

    async def _finish_attach(self, queued: _QueuedOp, future) -> None:
        record = self.tenants.get(queued.message["tenant"])
        try:
            kind, reply = await future
        except _ShardLost:
            # Recovery re-restores from the snapshot; the attach op is
            # requeued by _on_shard_dead, nothing to do here.
            return
        if kind != "ok":
            if record is not None:
                self.tenants.pop(record.tenant_id, None)
                self._g_tenants.set(len(self.tenants))
            self._c_errors.inc()
            self._settle(queued, error_response(
                queued.message, "internal", str(reply)))
            return
        matrix_state = record.snapshot["state"]["matrix"]["state"]
        payload = {"attached": True,
                   "m": len(matrix_state["resource_names"]),
                   "n": len(matrix_state["process_names"]),
                   "shard": record.shard_id,
                   "state_hash": record.snapshot["state_hash"]}
        if record.attach_idem is not None:
            record.attach_response = dict(payload)
        self._settle(queued, ok_response(queued.message, **payload))

    async def _finish_batch(self, batch: list, future) -> None:
        try:
            kind, replies = await future
        except _ShardLost:
            return                     # recovery requeues the batch
        if kind != "results":
            for queued in batch:
                self._c_errors.inc()
                self._settle(queued, error_response(
                    queued.message, "internal", str(replies)))
            return
        refresh: set = set()
        for queued, response in zip(batch, replies):
            message = queued.message
            record = self.tenants.get(message["tenant"])
            if record is not None:
                record.inflight = max(0, record.inflight - 1)
            if response.get("ok"):
                op = message["op"]
                if (op in MUTATING_OPS and record is not None
                        and response.get("deduped")):
                    # Replayed from the idempotency window: nothing was
                    # applied, so journaling it again would double-apply
                    # on crash replay.  (Defense in depth — the tenant
                    # dedups journal replay too, since journaled
                    # messages carry their ``idem`` keys.)
                    self._c_deduped.inc()
                elif op in MUTATING_OPS and record is not None:
                    record.journal.append(message)
                    if (len(record.journal)
                            >= self.config.snapshot_every):
                        refresh.add(record.tenant_id)
                    if op == "claim":
                        if response.get("granted"):
                            self._c_granted.inc()
                        else:
                            self._c_blocked.inc()
                        self._h_grant.observe(
                            (time.monotonic() - queued.enqueued) * 1e6)
                elif op == "detect":
                    self._c_detects.inc()
                    if response.get("deadlock"):
                        self._c_deadlocks.inc()
                    self._h_verdict.observe(
                        (time.monotonic() - queued.enqueued) * 1e6)
                elif op == "detach" and record is not None:
                    self.tenants.pop(record.tenant_id, None)
                    self._g_tenants.set(len(self.tenants))
            else:
                self._c_errors.inc()
            self._settle(queued, response)
        for tenant_id in refresh:
            asyncio.ensure_future(self._refresh_snapshot(tenant_id))

    def _settle(self, queued: _QueuedOp, response: dict) -> None:
        record = self.tenants.get(queued.message["tenant"])
        if record is not None:
            record.outstanding = max(0, record.outstanding - 1)
        self._queued_ops = max(0, self._queued_ops - 1)
        self._g_pending.set(self._queued_ops)
        if not queued.future.done():
            queued.future.set_result(response)

    async def _refresh_snapshot(self, tenant_id: str) -> None:
        record = self.tenants.get(tenant_id)
        if record is None or record.migrating:
            return
        handle = self._shard(record.shard_id)
        journal_mark = len(record.journal)
        try:
            kind, envelope = await handle.request("snapshot", tenant_id)
        except _ShardLost:
            return
        if kind != "snapshot":
            return                     # keep the older snapshot
        record.snapshot = envelope
        del record.journal[:journal_mark]

    # -- shard loss recovery -------------------------------------------

    def _on_shard_dead(self, handle: ShardHandle,
                       undelivered: list) -> None:
        self._c_crashes.inc()
        self._g_shards.set(sum(1 for h in self.shards if h.alive))
        moved = [record for record in self.tenants.values()
                 if record.shard_id == handle.shard_id]
        if self.obs.flight.enabled:
            self.obs.flight.mark(
                "shard_rebalance", actor="service",
                shard=handle.shard_id, tenants=len(moved))
        # Re-queue the operations that died with the shard, in order,
        # ahead of everything queued since.
        requeue: list = []
        for _command, _future, context in undelivered:
            if context:
                requeue.extend(context)
        for record in moved:
            record.inflight = 0
            target = self._least_loaded_shard()
            if target is None:
                for queued in requeue:
                    self._settle(queued, error_response(
                        queued.message, "shard-lost",
                        "no shard alive to recover onto"))
                return
            record.shard_id = target.shard_id
            self._c_rebalanced.inc()
            target.request("restore", record.snapshot)
            if record.journal:
                replay = [dict(op) for op in record.journal]
                self._c_replayed.inc(len(replay))
                target.request("batch", replay)
        self._queue[:0] = requeue

    # -- migration -----------------------------------------------------

    async def migrate(self, tenant_id: str, target_shard: int) -> dict:
        """Move one tenant live; digest-equivalent before and after."""
        record = self.tenants.get(tenant_id)
        if record is None:
            raise ServiceOpError("unknown-tenant",
                                 f"tenant {tenant_id!r} is not attached")
        if not (0 <= target_shard < len(self.shards)):
            raise ServiceOpError("bad-request",
                                 f"no shard {target_shard}")
        target = self._shard(target_shard)
        if not target.alive:
            raise ServiceOpError("shard-lost",
                                 f"shard {target_shard} is down")
        if record.shard_id == target_shard:
            # Already there — e.g. a retried migrate whose first reply
            # was lost in flight.  Still answer with the live digest so
            # the caller can verify state regardless of which attempt
            # actually moved the tenant.
            while record.inflight:
                await asyncio.sleep(self.config.tick_interval)
            kind, envelope = await target.request("snapshot", tenant_id)
            if kind != "snapshot":
                raise ServiceOpError("internal",
                                     f"snapshot failed: {envelope}")
            return {"tenant": tenant_id, "shard": target_shard,
                    "moved": False,
                    "state_hash": envelope["state_hash"]}
        if record.migrating:
            raise ServiceOpError("bad-request",
                                 f"tenant {tenant_id!r} is already "
                                 "migrating")
        record.migrating = True
        try:
            # Quiesce: park queued ops, wait out dispatched ones.
            still_queued = [queued for queued in self._queue
                            if queued.message["tenant"] == tenant_id]
            if still_queued:
                self._queue = [queued for queued in self._queue
                               if queued.message["tenant"] != tenant_id]
                record.held.extend(still_queued)
            while record.inflight:
                await asyncio.sleep(self.config.tick_interval)
            source = self._shard(record.shard_id)
            kind, envelope = await source.request("snapshot", tenant_id)
            if kind != "snapshot":
                raise ServiceOpError("internal",
                                     f"snapshot failed: {envelope}")
            kind, reply = await target.request("restore", envelope)
            if kind != "ok":
                raise ServiceOpError("internal",
                                     f"restore failed: {reply}")
            if reply["state_hash"] != envelope["state_hash"]:
                raise ServiceOpError(
                    "internal",
                    "migration digest mismatch: "
                    f"{reply['state_hash'][:12]} != "
                    f"{envelope['state_hash'][:12]}")
            await source.request("drop", tenant_id)
            record.snapshot = envelope
            record.journal = []
            source_shard = record.shard_id
            record.shard_id = target_shard
            self._c_migrations.inc()
            if self.obs.flight.enabled:
                self.obs.flight.mark(
                    "tenant_migration", actor="service",
                    tenant=tenant_id, source=source_shard,
                    target=target_shard,
                    state_hash=envelope["state_hash"][:12])
            return {"tenant": tenant_id, "shard": target_shard,
                    "moved": True,
                    "state_hash": envelope["state_hash"]}
        except _ShardLost as exc:
            raise ServiceOpError("shard-lost", str(exc)) from exc
        finally:
            record.migrating = False
            if record.held:
                self._queue.extend(record.held)
                record.held = []

    async def rebalance(self) -> dict:
        """Even tenant counts across live shards via live migrations."""
        moves = 0
        while True:
            alive = [handle for handle in self.shards if handle.alive]
            if len(alive) < 2:
                break
            counts = sorted(alive, key=lambda h: h.tenant_count())
            emptiest, fullest = counts[0], counts[-1]
            if fullest.tenant_count() - emptiest.tenant_count() <= 1:
                break
            tenant_id = next(
                record.tenant_id for record in self.tenants.values()
                if record.shard_id == fullest.shard_id
                and not record.migrating)
            await self.migrate(tenant_id, emptiest.shard_id)
            moves += 1
        return {"moves": moves}

    # -- admin ---------------------------------------------------------

    async def _admin(self, op: str, message: dict) -> dict:
        try:
            if op == "ping":
                return ok_response(message, protocol=PROTOCOL_VERSION,
                                   server="repro.service")
            if op == "stats":
                return ok_response(message, **self.stats())
            if op == "shards":
                entries = []
                for handle in self.shards:
                    entry = {"shard": handle.shard_id,
                             "alive": handle.alive,
                             "pid": handle.pid,
                             "tenants": handle.tenant_count()}
                    if handle.alive:
                        # Surface the shard core's reduction tallies
                        # (repacks, dirty/skipped detects) so soaks can
                        # verify the incremental tick path end-to-end.
                        try:
                            kind, reply = await handle.request("ping",
                                                               None)
                        except _ShardLost:
                            kind, reply = "error", None
                        if kind == "ok" and isinstance(reply, dict):
                            entry.update({
                                key: reply[key] for key in (
                                    "ops", "deduped", "batches",
                                    "detect_batches", "dirty_tenants",
                                    "skipped_detects", "repacks",
                                    "plane_grows",
                                    "unpacked_fallbacks")
                                if key in reply})
                    entries.append(entry)
                return ok_response(message, shards=entries)
            if op == "migrate":
                result = await self.migrate(str(message.get("tenant")),
                                            int(message.get("shard", -1)))
                return ok_response(message, **result)
            if op == "rebalance":
                return ok_response(message, **(await self.rebalance()))
            if op == "shutdown":
                asyncio.get_running_loop().call_soon(
                    asyncio.ensure_future, self.stop())
                return ok_response(message, stopping=True)
            raise ServiceOpError("bad-request", f"unknown admin {op!r}")
        except ServiceOpError as exc:
            self._c_errors.inc()
            return error_response(message, exc.code, exc.detail)

    def stats(self) -> dict:
        """The ``stats`` payload: population, counters, latencies."""
        def _percentiles(histogram) -> dict:
            if histogram.count == 0:
                return {"count": 0}
            return {"count": histogram.count,
                    "mean_us": histogram.mean,
                    "p50_us": histogram.percentile(50),
                    "p99_us": histogram.percentile(99)}
        return {
            "tenants": len(self.tenants),
            "pending": self._queued_ops,
            "shards": [{"shard": handle.shard_id,
                        "alive": handle.alive,
                        "tenants": handle.tenant_count()}
                       for handle in self.shards],
            "requests": self._c_requests.value,
            "granted": self._c_granted.value,
            "blocked": self._c_blocked.value,
            "detects": self._c_detects.value,
            "deadlocks": self._c_deadlocks.value,
            "errors": self._c_errors.value,
            "admission_rejected": self._c_admission.value,
            "backpressure_rejected": self._c_backpressure.value,
            "batches": self._c_batches.value,
            "migrations": self._c_migrations.value,
            "shard_crashes": self._c_crashes.value,
            "rebalanced_tenants": self._c_rebalanced.value,
            "journal_replayed": self._c_replayed.value,
            "deduped": self._c_deduped.value,
            "deadline_exceeded": self._c_deadline.value,
            "grant_latency": _percentiles(self._h_grant),
            "verdict_latency": _percentiles(self._h_verdict),
        }
