"""Per-tenant state: one (tasks x resources) RAG instance.

A :class:`Tenant` wraps a :class:`~repro.rag.bitmatrix.BitMatrix` (the
fast backend, always — the batched reducer packs straight from its bit
planes) plus the operation counters the service reports.  Grant policy
is deliberately simple and *derivable from the matrix alone* so a
snapshot needs no auxiliary queue state:

* ``claim(p, q)`` grants immediately iff resource ``q`` is free,
  otherwise records the request edge (the claim is *blocked*);
* ``release(p, q)`` frees the grant and promotes the **lowest-index**
  waiting process — deterministic, so a migrated tenant and its
  unmigrated twin promote identically.

``op_seq`` counts accepted mutations; detect verdicts echo it so an
oracle can replay exactly the prefix a verdict reflects (the soak and
the campaign checker do).

Mutations may carry an ``idem`` idempotency key (protocol v2): the
tenant keeps a bounded window of the last :data:`IDEM_WINDOW` applied
keys with their recorded responses, and a retry carrying a seen key is
answered from the window *without touching the matrix* — the
exactly-once contract resilient clients rely on when a response line is
lost to the network.  The window rides along with the tenant: it lives
in the snapshot envelope as an **unhashed sibling** (``"idem"``), so it
survives migration and shard-crash restore, while ``state_hash`` stays
a pure function of the matrix + counters — a chaos-disturbed run hashes
identically to its undisturbed twin.

Snapshots use the :mod:`repro.checkpoint` envelope protocol (kind
``service.tenant``) and nest the matrix's own envelope, so the
migration differential can compare ``state_hash`` before and after a
shard move.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

from repro.checkpoint.protocol import open_envelope, snapshot_envelope
from repro.errors import ResourceProtocolError
from repro.rag.bitmatrix import BitMatrix
from repro.rag.generate import random_state, resolve_rng
from repro.rag.matrix import CellState
from repro.service.protocol import ServiceOpError

#: Admission sanity bound on tenant dimensions.  No longer a packing
#: limit — the multi-word planes pack any width into ceil(side/64)
#: uint64 words — just a guard against absurd attach requests.
MAX_TENANT_SIDE = 512

SNAPSHOT_KIND = "service.tenant"

#: Bounded per-tenant dedup window: the most recent applied
#: idempotency keys (and their recorded responses) a retry can still be
#: answered from.  A retry older than this re-applies — clients bound
#: their retry budgets far below it.
IDEM_WINDOW = 128


def _build_matrix(spec: Mapping[str, Any]) -> BitMatrix:
    """Tenant matrix from an attach request (rows > seed > empty)."""
    rows = spec.get("rows")
    if rows is not None:
        matrix = BitMatrix.from_rows(rows)
    else:
        m = int(spec.get("m", 8))
        n = int(spec.get("n", 8))
        if not (1 <= m <= MAX_TENANT_SIDE and 1 <= n <= MAX_TENANT_SIDE):
            raise ServiceOpError(
                "bad-request",
                f"tenant dims {m}x{n} outside 1..{MAX_TENANT_SIDE}")
        if spec.get("seed") is not None:
            rag = random_state(
                m, n,
                grant_fraction=float(spec.get("grant_fraction", 0.6)),
                request_fraction=float(spec.get("request_fraction", 0.3)),
                rng=resolve_rng(seed=int(spec["seed"])))
            matrix = BitMatrix.from_rag(rag)
        else:
            matrix = BitMatrix(m, n)
    if matrix.m > MAX_TENANT_SIDE or matrix.n > MAX_TENANT_SIDE:
        raise ServiceOpError(
            "bad-request",
            f"tenant matrix {matrix.m}x{matrix.n} exceeds "
            f"{MAX_TENANT_SIDE}x{MAX_TENANT_SIDE}")
    return matrix


class Tenant:
    """One tenant's matrix plus its service-side counters."""

    __slots__ = ("tenant_id", "matrix", "op_seq", "grants", "blocked",
                 "releases", "detects", "touched", "idem_seen",
                 "deduped")

    def __init__(self, tenant_id: str, matrix: BitMatrix) -> None:
        self.tenant_id = tenant_id
        self.matrix = matrix
        #: Accepted mutations so far (claims + releases), echoed by
        #: detect verdicts so oracles can replay the exact prefix.
        self.op_seq = 0
        self.grants = 0
        self.blocked = 0
        self.releases = 0
        self.detects = 0
        #: ``(s, t)`` cells mutated since the shard last drained them
        #: into its persistent plane (incremental repack avoidance).
        self.touched: list[tuple[int, int]] = []
        #: Bounded ``idem -> recorded response`` window (insertion
        #: ordered; oldest evicted past :data:`IDEM_WINDOW`).
        self.idem_seen: dict[str, dict] = {}
        #: Mutations answered from the window instead of re-applied.
        self.deduped = 0

    @classmethod
    def from_attach(cls, tenant_id: str,
                    spec: Mapping[str, Any]) -> "Tenant":
        return cls(tenant_id, _build_matrix(spec))

    # -- op handlers ---------------------------------------------------

    def _indices(self, op: Mapping[str, Any]) -> tuple[int, int, str, str]:
        process = op.get("process")
        resource = op.get("resource")
        try:
            t = self.matrix.process_names.index(process)
        except ValueError:
            raise ServiceOpError(
                "bad-request",
                f"unknown process {process!r} for tenant "
                f"{self.tenant_id!r}") from None
        try:
            s = self.matrix.resource_names.index(resource)
        except ValueError:
            raise ServiceOpError(
                "bad-request",
                f"unknown resource {resource!r} for tenant "
                f"{self.tenant_id!r}") from None
        return s, t, process, resource

    # -- idempotent-retry dedup ----------------------------------------

    def _idem_hit(self, op: Mapping[str, Any]) -> Optional[dict]:
        """The recorded response for a replayed idempotency key, if any."""
        idem = op.get("idem")
        if not idem:
            return None
        recorded = self.idem_seen.get(idem)
        if recorded is None:
            return None
        self.deduped += 1
        return {**recorded, "deduped": True}

    def _idem_record(self, op: Mapping[str, Any], response: dict) -> None:
        idem = op.get("idem")
        if not idem:
            return
        self.idem_seen[idem] = dict(response)
        while len(self.idem_seen) > IDEM_WINDOW:
            self.idem_seen.pop(next(iter(self.idem_seen)))

    def claim(self, op: Mapping[str, Any]) -> dict:
        replayed = self._idem_hit(op)
        if replayed is not None:
            return replayed
        s, t, process, resource = self._indices(op)
        cell = self.matrix.get(s, t)
        if cell is CellState.GRANT:
            raise ServiceOpError(
                "protocol-violation",
                f"{process} already holds {resource}")
        if cell is CellState.REQUEST:
            raise ServiceOpError(
                "protocol-violation",
                f"{process} already waits for {resource}")
        free = self.matrix.row_bwo(s)[1] == 0
        try:
            if free:
                self.matrix.set_grant(s, t)
            else:
                self.matrix.set_request(s, t)
        except ResourceProtocolError as exc:
            raise ServiceOpError("protocol-violation", str(exc)) from exc
        self.op_seq += 1
        self.touched.append((s, t))
        if free:
            self.grants += 1
        else:
            self.blocked += 1
        response = {"granted": free, "blocked": not free,
                    "op_seq": self.op_seq}
        self._idem_record(op, response)
        return response

    def release(self, op: Mapping[str, Any]) -> dict:
        replayed = self._idem_hit(op)
        if replayed is not None:
            return replayed
        s, t, process, resource = self._indices(op)
        if self.matrix.get(s, t) is not CellState.GRANT:
            raise ServiceOpError(
                "protocol-violation",
                f"{process} does not hold {resource}")
        self.matrix.clear(s, t)
        self.touched.append((s, t))
        promoted: Optional[str] = None
        waiters = self.matrix._row_r[s]
        if waiters:
            # Deterministic promotion: the lowest-index waiter wins.
            low = (waiters & -waiters).bit_length() - 1
            self.matrix.clear(s, low)
            self.matrix.set_grant(s, low)
            promoted = self.matrix.process_names[low]
            self.touched.append((s, low))
        self.op_seq += 1
        self.releases += 1
        response = {"released": True, "promoted": promoted,
                    "op_seq": self.op_seq}
        self._idem_record(op, response)
        return response

    def detect_payload(self, deadlock: bool, iterations: int,
                       passes: int, residual: BitMatrix,
                       batched: int) -> dict:
        """Assemble a detect response from a (batched) reduction."""
        self.detects += 1
        processes = [residual.process_names[t] for t in range(residual.n)
                     if residual.column_bwo(t) != (0, 0)]
        return {"deadlock": deadlock, "iterations": iterations,
                "passes": passes, "deadlocked_processes": processes,
                "op_seq": self.op_seq, "batched": batched}

    # -- checkpoint protocol -------------------------------------------

    def snapshot_state(self) -> dict:
        """Versioned envelope; nests the matrix's own envelope.

        Only *recoverable* state is captured: the matrix plus the
        counters journal replay reconstructs.  The ``detects`` tally is
        deliberately excluded — detect is a read-only query, never
        journaled, so including it would make a crash-recovered
        tenant's digest diverge from its uninterrupted twin even though
        every observable response matched.

        The dedup window travels as an *unhashed sibling* key
        (``"idem"``) of the envelope: it must survive migration and
        crash restore (a retry may land after the move), but it must
        not perturb ``state_hash`` — a run whose mutations were retried
        through chaos hashes identically to the undisturbed run that
        never needed a key.
        """
        envelope = snapshot_envelope(SNAPSHOT_KIND, {
            "tenant": self.tenant_id,
            "matrix": self.matrix.snapshot_state(),
            "op_seq": self.op_seq,
            "grants": self.grants,
            "blocked": self.blocked,
            "releases": self.releases,
        })
        if self.idem_seen:
            envelope["idem"] = [[key, dict(response)]
                                for key, response in self.idem_seen.items()]
        return envelope

    @classmethod
    def restore_state(cls, envelope: dict) -> "Tenant":
        state = open_envelope(envelope, kind=SNAPSHOT_KIND)
        tenant = cls(state["tenant"],
                     BitMatrix.restore_state(state["matrix"]))
        tenant.op_seq = int(state["op_seq"])
        tenant.grants = int(state["grants"])
        tenant.blocked = int(state["blocked"])
        tenant.releases = int(state["releases"])
        for key, response in envelope.get("idem", ()):
            tenant.idem_seen[str(key)] = dict(response)
        return tenant

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Tenant {self.tenant_id} "
                f"{self.matrix.m}x{self.matrix.n} ops={self.op_seq}>")
