"""``python -m repro.service`` — run a detection server.

Prints one JSON "ready" line on stdout once listening::

    {"ready": true, "port": 41234, "unix": null,
     "shards": [{"shard": 0, "pid": 12345}, ...]}

The soak script parses that line to learn the port and the shard pids
it will SIGKILL.  The server runs until SIGINT/SIGTERM or a client
sends ``{"op": "shutdown"}``.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import sys

from repro.service.server import DetectionService, ServiceConfig


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="multi-tenant async deadlock-detection service")
    parser.add_argument("--host", default="127.0.0.1",
                        help="TCP bind address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP port (default 0 = ephemeral)")
    parser.add_argument("--unix", default=None, metavar="PATH",
                        help="also listen on a Unix socket at PATH")
    parser.add_argument("--shards", type=int, default=2,
                        help="worker shard count (default 2)")
    parser.add_argument("--tick-ms", type=float, default=2.0,
                        help="batching tick in milliseconds (default 2)")
    parser.add_argument("--max-tenants", type=int, default=4096,
                        help="admission-control tenant cap")
    parser.add_argument("--max-pending", type=int, default=4096,
                        help="bounded-queue global op cap")
    parser.add_argument("--no-processes", action="store_true",
                        help="run shards in-process (no workers)")
    return parser


async def _serve(args: argparse.Namespace) -> int:
    config = ServiceConfig(
        shards=args.shards,
        use_processes=not args.no_processes,
        tick_interval=args.tick_ms / 1000.0,
        max_tenants=args.max_tenants,
        max_pending=args.max_pending,
    )
    service = DetectionService(config)
    await service.start(host=args.host, port=args.port,
                        unix_path=args.unix)
    print(json.dumps({
        "ready": True,
        "port": service.tcp_port,
        "unix": args.unix,
        "shards": [{"shard": handle.shard_id, "pid": handle.pid}
                   for handle in service.shards],
    }), flush=True)
    stopping = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        loop.add_signal_handler(signum, stopping.set)
    # `shutdown` over the wire calls service.stop(); poll for either.
    while not stopping.is_set() and service._servers:
        try:
            await asyncio.wait_for(stopping.wait(), timeout=0.25)
        except asyncio.TimeoutError:
            pass
    if service._servers:
        await service.stop()
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return asyncio.run(_serve(args))
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        return 130


if __name__ == "__main__":
    sys.exit(main())
