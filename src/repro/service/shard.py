"""Worker shards: apply op batches, reduce detects incrementally.

A :class:`ShardCore` owns a slice of the tenant population and speaks a
tiny command protocol — ``batch`` / ``snapshot`` / ``restore`` /
``drop`` / ``ping`` / ``stop``.  The front end groups each tick's
operations by shard and ships one ``batch`` per shard; the core applies
mutations *in arrival order* and then answers every ``detect`` in the
batch — the batched-kernel win the service exists for.  A verdict
reflects every mutation accepted earlier in the same tick
(*tick-consistent detection*); it carries the tenant's ``op_seq`` so
callers know exactly which prefix it covers.

Detection is **incremental** rather than repack-everything:

* each tenant is packed *once* into a persistent
  :class:`~repro.rag.batch.PlaneAccumulator` slot (on its first
  detect), and every accepted claim/release afterwards refreshes just
  the touched row/column word spans in place
  (``Tenant.touched`` → :meth:`PlaneAccumulator.update`);
* verdicts are cached per tenant keyed on object identity and
  ``op_seq`` — a detect for a tenant that has not mutated since its
  last verdict is answered from the cache without touching the plane
  at all;
* only *dirty* tenants (mutated, or never reduced) enter each tick's
  reduction, which runs on a scratch copy of their slots.

The ``matrix.batch.repacks`` / ``matrix.batch.dirty_tenants`` /
``matrix.batch.skipped`` observability counters (plus per-shard tallies
in the ``ping`` reply) attribute the win; the profiler annotates them
via its ``matrix.batch.`` prefix.  Without NumPy the shard degrades to
a per-tick :class:`~repro.rag.batch.PythonBatchPlane` over the dirty
tenants — the same caching still applies, and the degradation is
signalled through ``matrix.batch.unpacked_fallbacks``.

:func:`shard_main` wraps the core behind a
:class:`multiprocessing.connection.Connection` for process-backed
shards (the deployment the soak SIGKILLs); the server can also run
cores in-process for tests and campaign scenarios.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.errors import ReproError
from repro.obs import NULL_OBS
from repro.rag.batch import HAS_NUMPY, PlaneAccumulator, batch_plane
from repro.rag.bitmatrix import BitMatrix
from repro.service.protocol import ServiceOpError, error_response, ok_response
from repro.service.tenant import Tenant


class _CachedVerdict:
    """One tenant's last reduction, valid while its ``op_seq`` holds.

    ``tenant`` is kept for an *identity* check: restore/migration
    replaces the Tenant object, so a stale cache entry can never match
    a rebuilt tenant even if the op_seq coincides.
    """

    __slots__ = ("tenant", "op_seq", "deadlock", "iterations", "passes",
                 "residual", "batched")

    def __init__(self, tenant: Tenant, deadlock: bool, iterations: int,
                 passes: int, residual: BitMatrix, batched: int) -> None:
        self.tenant = tenant
        self.op_seq = tenant.op_seq
        self.deadlock = deadlock
        self.iterations = iterations
        self.passes = passes
        self.residual = residual
        self.batched = batched

    def valid_for(self, tenant: Tenant) -> bool:
        return self.tenant is tenant and self.op_seq == tenant.op_seq


class ShardCore:
    """The shard state machine, transport-agnostic and synchronous."""

    def __init__(self, shard_id: int,
                 vectorized: Optional[bool] = None, obs=None) -> None:
        self.shard_id = shard_id
        self.vectorized = vectorized
        self.obs = obs if obs is not None else NULL_OBS
        self.tenants: dict[str, Tenant] = {}
        self.ops_applied = 0
        #: Mutations answered from a tenant's idempotency window
        #: instead of re-applied (retried over a lossy wire).
        self.deduped = 0
        self.batches = 0
        #: Reductions actually run (cache hits answer without one).
        self.detect_batches = 0
        #: Tenants that re-entered a reduction because they mutated.
        self.dirty_reduced = 0
        #: Detect queries answered from the cached verdict.
        self.detects_skipped = 0
        #: Ensembles served sequentially because NumPy is absent.
        self.unpacked_fallbacks = 0
        # Persistent plane: only when the vectorized path is usable.
        self._plane = (PlaneAccumulator()
                       if HAS_NUMPY and vectorized is not False else None)
        self._slots: dict[str, int] = {}
        self._verdicts: dict[str, _CachedVerdict] = {}
        metrics = self.obs.metrics
        self._c_repacks = metrics.counter(
            "matrix.batch.repacks",
            "full tenant packs into a persistent batch plane")
        self._c_dirty = metrics.counter(
            "matrix.batch.dirty_tenants",
            "tenants re-reduced because their RAG mutated")
        self._c_skipped = metrics.counter(
            "matrix.batch.skipped",
            "detects answered from the cached verdict, no reduction")

    # -- command handlers ----------------------------------------------

    def handle(self, command: str, payload: Any) -> tuple[str, Any]:
        """Dispatch one command; always returns a reply tuple."""
        try:
            if command == "batch":
                return "results", self.handle_batch(payload)
            if command == "snapshot":
                return "snapshot", self.snapshot_tenant(payload)
            if command == "restore":
                return "ok", self.restore_tenant(payload)
            if command == "drop":
                if self.tenants.pop(payload, None) is not None:
                    self._forget(payload)
                return "ok", {"tenants": len(self.tenants)}
            if command == "ping":
                return "ok", {
                    "shard": self.shard_id,
                    "tenants": len(self.tenants),
                    "ops": self.ops_applied,
                    "deduped": self.deduped,
                    "batches": self.batches,
                    "detect_batches": self.detect_batches,
                    "dirty_tenants": self.dirty_reduced,
                    "skipped_detects": self.detects_skipped,
                    "repacks": (self._plane.repacks
                                if self._plane is not None else 0),
                    "plane_grows": (self._plane.grows
                                    if self._plane is not None else 0),
                    "unpacked_fallbacks": self.unpacked_fallbacks,
                }
            raise ReproError(f"unknown shard command {command!r}")
        except ReproError as exc:
            return "error", str(exc)

    def handle_batch(self, ops: list) -> list:
        """Apply one tick's ops in order; batch the detects at the end."""
        self.batches += 1
        responses: list = [None] * len(ops)
        detect_slots: dict[str, list[int]] = {}
        for index, op in enumerate(ops):
            name = op["op"]
            tenant = self.tenants.get(op.get("tenant", ""))
            try:
                if tenant is None:
                    raise ServiceOpError(
                        "unknown-tenant",
                        f"tenant {op.get('tenant')!r} not on shard "
                        f"{self.shard_id}")
                if name == "detect":
                    detect_slots.setdefault(tenant.tenant_id,
                                            []).append(index)
                elif name in ("claim", "release"):
                    result = (tenant.claim(op) if name == "claim"
                              else tenant.release(op))
                    responses[index] = ok_response(op, **result)
                    if result.get("deduped"):
                        # Idempotent replay: answered from the dedup
                        # window, nothing mutated, nothing to sync.
                        self.deduped += 1
                    else:
                        self.ops_applied += 1
                        self._sync_touched(tenant)
                elif name == "detach":
                    self.tenants.pop(tenant.tenant_id)
                    self._forget(tenant.tenant_id)
                    responses[index] = ok_response(op, detached=True)
                else:
                    raise ServiceOpError("bad-request",
                                         f"shard cannot apply {name!r}")
            except ServiceOpError as exc:
                responses[index] = error_response(op, exc.code,
                                                  exc.detail)
        if detect_slots:
            self._run_detects(ops, responses, detect_slots)
        return responses

    # -- incremental plane maintenance ---------------------------------

    def _sync_touched(self, tenant: Tenant) -> None:
        """Drain a tenant's mutated cells into its persistent slot.

        One claim touches one cell; one release touches at most two
        (the freed cell and the promoted waiter) — each becomes four
        word-span writes instead of a full repack.  Tenants without a
        slot yet (never detected) just drop the backlog: their first
        detect packs the current matrix wholesale.
        """
        touched = tenant.touched
        if not touched:
            return
        if self._plane is not None:
            slot = self._slots.get(tenant.tenant_id)
            if slot is not None:
                matrix = tenant.matrix
                for s, t in touched:
                    self._plane.update(slot, matrix, s, t)
        touched.clear()

    def _forget(self, tenant_id: str) -> None:
        """Invalidate all per-tenant reduction state (detach/replace)."""
        self._verdicts.pop(tenant_id, None)
        slot = self._slots.pop(tenant_id, None)
        if slot is not None and self._plane is not None:
            self._plane.remove(slot)

    # -- detection -----------------------------------------------------

    def _run_detects(self, ops: list, responses: list,
                     detect_slots: dict) -> None:
        """Answer every detect; reduce only the dirty tenants."""
        tenant_ids = sorted(detect_slots)
        fresh = [tid for tid in tenant_ids
                 if not (cached := self._verdicts.get(tid))
                 or not cached.valid_for(self.tenants[tid])]
        skipped = len(tenant_ids) - len(fresh)
        if skipped:
            self.detects_skipped += skipped
            self._c_skipped.inc(skipped)
        if fresh:
            self.detect_batches += 1
            self.dirty_reduced += len(fresh)
            self._c_dirty.inc(len(fresh))
            if self._plane is not None:
                self._reduce_incremental(fresh)
            else:
                self._reduce_per_tick(fresh)
        for tid in tenant_ids:
            tenant = self.tenants[tid]
            cached = self._verdicts[tid]
            payload = tenant.detect_payload(
                cached.deadlock, cached.iterations, cached.passes,
                cached.residual, batched=cached.batched)
            for index in detect_slots[tid]:
                responses[index] = ok_response(ops[index], **payload)

    def _reduce_incremental(self, fresh: list) -> None:
        """Reduce dirty tenants on a scratch copy of their slots."""
        slots = []
        for tid in fresh:
            tenant = self.tenants[tid]
            slot = self._slots.get(tid)
            if slot is None:
                slot = self._plane.add(tenant.matrix)
                self._slots[tid] = slot
                self._c_repacks.inc()
                # The pack reflects the matrix as of now; any backlog
                # of touched cells is already in it.
                tenant.touched.clear()
            slots.append(slot)
        reduction = self._plane.reduce(slots)
        batched = len(fresh)
        for position, tid in enumerate(fresh):
            tenant = self.tenants[tid]
            iterations, passes = reduction.counts(position)
            self._verdicts[tid] = _CachedVerdict(
                tenant, reduction.deadlocked(position), iterations,
                passes, reduction.residual(position, tenant.matrix),
                batched)

    def _reduce_per_tick(self, fresh: list) -> None:
        """No persistent plane (no NumPy, or vectorization forced off):
        build a throwaway plane over the dirty tenants."""
        tenants = [self.tenants[tid] for tid in fresh]
        plane = batch_plane([tenant.matrix for tenant in tenants],
                            vectorized=self.vectorized, obs=self.obs)
        if self.vectorized is None and not plane.vectorized:
            self.unpacked_fallbacks += 1
        counts = plane.reduce_all()
        verdicts = plane.deadlocked()
        for position, tenant in enumerate(tenants):
            self._verdicts[tenant.tenant_id] = _CachedVerdict(
                tenant, verdicts[position], counts[position][0],
                counts[position][1], plane.residual(position),
                len(tenants))

    # -- tenant movement -----------------------------------------------

    def snapshot_tenant(self, tenant_id: str) -> dict:
        tenant = self.tenants.get(tenant_id)
        if tenant is None:
            raise ServiceOpError("unknown-tenant",
                                 f"tenant {tenant_id!r} not on shard "
                                 f"{self.shard_id}")
        return tenant.snapshot_state()

    def restore_tenant(self, envelope: dict) -> dict:
        tenant = Tenant.restore_state(envelope)
        # A rebuilt tenant is a new object: wipe the old slot and
        # cached verdict so nothing stale can ever answer for it.
        self._forget(tenant.tenant_id)
        self.tenants[tenant.tenant_id] = tenant
        return {"tenant": tenant.tenant_id,
                "state_hash": envelope["state_hash"],
                "tenants": len(self.tenants)}


def shard_main(conn, shard_id: int,
               vectorized: Optional[bool] = None) -> None:
    """Run a :class:`ShardCore` over a duplex Connection until EOF.

    The loop is deliberately boring: one request, one reply, FIFO — the
    front end relies on reply ordering to match futures to commands.
    A SIGKILL here is exactly the crash the parent's snapshot+journal
    recovery absorbs.
    """
    core = ShardCore(shard_id, vectorized=vectorized)
    while True:
        try:
            command, payload = conn.recv()
        except (EOFError, OSError):
            return
        if command == "stop":
            try:
                conn.send(("ok", {"stopped": True}))
            except (BrokenPipeError, OSError):
                pass
            return
        try:
            conn.send(core.handle(command, payload))
        except (BrokenPipeError, OSError):
            return
