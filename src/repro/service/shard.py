"""Worker shards: apply op batches, reduce detects through one plane.

A :class:`ShardCore` owns a slice of the tenant population and speaks a
tiny command protocol — ``batch`` / ``snapshot`` / ``restore`` /
``drop`` / ``ping`` / ``stop``.  The front end groups each tick's
operations by shard and ships one ``batch`` per shard; the core applies
mutations *in arrival order* and then answers every ``detect`` in the
batch from a single :class:`~repro.rag.batch.BatchPlane` reduction over
the distinct tenants that asked — the batched-kernel win the service
exists for.  A verdict therefore reflects every mutation accepted
earlier in the same tick (*tick-consistent detection*); it carries the
tenant's ``op_seq`` so callers know exactly which prefix it covers.

:func:`shard_main` wraps the core behind a
:class:`multiprocessing.connection.Connection` for process-backed
shards (the deployment the soak SIGKILLs); the server can also run
cores in-process for tests and campaign scenarios.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.errors import ReproError
from repro.rag.batch import batch_plane
from repro.service.protocol import ServiceOpError, error_response, ok_response
from repro.service.tenant import Tenant


class ShardCore:
    """The shard state machine, transport-agnostic and synchronous."""

    def __init__(self, shard_id: int,
                 vectorized: Optional[bool] = None) -> None:
        self.shard_id = shard_id
        self.vectorized = vectorized
        self.tenants: dict[str, Tenant] = {}
        self.ops_applied = 0
        self.batches = 0
        self.detect_batches = 0

    # -- command handlers ----------------------------------------------

    def handle(self, command: str, payload: Any) -> tuple[str, Any]:
        """Dispatch one command; always returns a reply tuple."""
        try:
            if command == "batch":
                return "results", self.handle_batch(payload)
            if command == "snapshot":
                return "snapshot", self.snapshot_tenant(payload)
            if command == "restore":
                return "ok", self.restore_tenant(payload)
            if command == "drop":
                self.tenants.pop(payload, None)
                return "ok", {"tenants": len(self.tenants)}
            if command == "ping":
                return "ok", {"shard": self.shard_id,
                              "tenants": len(self.tenants),
                              "ops": self.ops_applied,
                              "batches": self.batches}
            raise ReproError(f"unknown shard command {command!r}")
        except ReproError as exc:
            return "error", str(exc)

    def handle_batch(self, ops: list) -> list:
        """Apply one tick's ops in order; batch the detects at the end."""
        self.batches += 1
        responses: list = [None] * len(ops)
        detect_slots: dict[str, list[int]] = {}
        for index, op in enumerate(ops):
            name = op["op"]
            tenant = self.tenants.get(op.get("tenant", ""))
            try:
                if tenant is None:
                    raise ServiceOpError(
                        "unknown-tenant",
                        f"tenant {op.get('tenant')!r} not on shard "
                        f"{self.shard_id}")
                if name == "detect":
                    detect_slots.setdefault(tenant.tenant_id,
                                            []).append(index)
                elif name == "claim":
                    responses[index] = ok_response(op, **tenant.claim(op))
                    self.ops_applied += 1
                elif name == "release":
                    responses[index] = ok_response(op,
                                                   **tenant.release(op))
                    self.ops_applied += 1
                elif name == "detach":
                    self.tenants.pop(tenant.tenant_id)
                    responses[index] = ok_response(op, detached=True)
                else:
                    raise ServiceOpError("bad-request",
                                         f"shard cannot apply {name!r}")
            except ServiceOpError as exc:
                responses[index] = error_response(op, exc.code,
                                                  exc.detail)
        if detect_slots:
            self._run_detects(ops, responses, detect_slots)
        return responses

    def _run_detects(self, ops: list, responses: list,
                     detect_slots: dict) -> None:
        """One batched reduction answers every detect in the tick."""
        tenant_ids = sorted(detect_slots)
        tenants = [self.tenants[tid] for tid in tenant_ids]
        plane = batch_plane([tenant.matrix for tenant in tenants],
                            vectorized=self.vectorized)
        counts = plane.reduce_all()
        verdicts = plane.deadlocked()
        self.detect_batches += 1
        for position, tenant in enumerate(tenants):
            payload = tenant.detect_payload(
                verdicts[position], counts[position][0],
                counts[position][1], plane.residual(position),
                batched=len(tenants))
            for index in detect_slots[tenant.tenant_id]:
                responses[index] = ok_response(ops[index], **payload)

    # -- tenant movement -----------------------------------------------

    def snapshot_tenant(self, tenant_id: str) -> dict:
        tenant = self.tenants.get(tenant_id)
        if tenant is None:
            raise ServiceOpError("unknown-tenant",
                                 f"tenant {tenant_id!r} not on shard "
                                 f"{self.shard_id}")
        return tenant.snapshot_state()

    def restore_tenant(self, envelope: dict) -> dict:
        tenant = Tenant.restore_state(envelope)
        self.tenants[tenant.tenant_id] = tenant
        return {"tenant": tenant.tenant_id,
                "state_hash": envelope["state_hash"],
                "tenants": len(self.tenants)}


def shard_main(conn, shard_id: int,
               vectorized: Optional[bool] = None) -> None:
    """Run a :class:`ShardCore` over a duplex Connection until EOF.

    The loop is deliberately boring: one request, one reply, FIFO — the
    front end relies on reply ordering to match futures to commands.
    A SIGKILL here is exactly the crash the parent's snapshot+journal
    recovery absorbs.
    """
    core = ShardCore(shard_id, vectorized=vectorized)
    while True:
        try:
            command, payload = conn.recv()
        except (EOFError, OSError):
            return
        if command == "stop":
            try:
                conn.send(("ok", {"stopped": True}))
            except (BrokenPipeError, OSError):
                pass
            return
        try:
            conn.send(core.handle(command, payload))
        except (BrokenPipeError, OSError):
            return
