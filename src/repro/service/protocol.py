"""The service wire protocol: newline-delimited JSON requests.

One request per line, one response per line.  Every request carries an
``op`` and (for tenant ops) a ``tenant``; an optional ``id`` is echoed
back verbatim so clients may pipeline.  Responses are ``{"id": ...,
"ok": true, ...payload}`` or ``{"id": ..., "ok": false, "error":
"<code>", "detail": "..."}``.

Tenant operations (batched per tick, see :mod:`repro.service.server`):

=========  ============================================================
op         fields
=========  ============================================================
attach     ``m``/``n`` dims, or ``rows`` (text rows), or ``seed`` (+
           optional ``grant_fraction``/``request_fraction``) for a
           server-side :func:`~repro.rag.generate.random_state`
claim      ``process``, ``resource`` — grant if free, else queue the
           request edge (response: ``granted``/``blocked``)
release    ``process``, ``resource`` — free the grant; the
           lowest-index waiter is promoted deterministically
detect     batched Algorithm-1 verdict (``deadlock``, ``iterations``,
           ``passes``, ``deadlocked_processes``, ``op_seq``)
detach     drop the tenant
=========  ============================================================

Admin/introspection ops (answered immediately, never queued): ``ping``,
``stats``, ``shards``, ``migrate`` (``tenant``, ``shard``),
``rebalance``, ``shutdown``.

Protocol v2 adds two optional request fields for resilient clients:

* ``deadline_ms`` — a relative per-request budget; the server sheds an
  op it cannot dispatch within the budget with ``deadline-exceeded``
  instead of serving a stale answer (shedding only happens *before*
  dispatch, so a shed mutation was definitely not applied);
* ``idem`` — an idempotency key on ``claim``/``release`` (and
  ``attach``); a retry carrying the same key is answered from the
  per-tenant dedup window instead of being applied twice.

Error codes are stable strings (:data:`ERROR_CODES`); ``backpressure``
and ``admission-rejected`` are the bounded-queue / capacity responses a
well-behaved client backs off on.
"""

from __future__ import annotations

import json
from typing import Any, Optional

from repro.errors import ServiceError

#: Bumped on any incompatible wire change; echoed by ``ping``.
#: v2: optional ``deadline_ms``/``idem`` request fields (both ignored
#: harmlessly by a v1 server, so v1 clients interoperate unchanged).
PROTOCOL_VERSION = 2

#: Longest accepted wire line (requests *and* responses).  Anything
#: longer is a framing error: the line is refused with ``bad-request``
#: and the connection is closed, because the remainder of the oversized
#: line would otherwise be misparsed as new messages.
MAX_LINE_BYTES = 1_048_576

#: Ops that mutate or read one tenant and ride the per-tick batches.
TENANT_OPS = frozenset(("attach", "claim", "release", "detect", "detach"))

#: Ops the front end answers immediately.
ADMIN_OPS = frozenset(("ping", "stats", "shards", "migrate", "rebalance",
                       "shutdown"))

#: Tenant ops that change matrix state (journaled for crash recovery).
MUTATING_OPS = frozenset(("claim", "release"))

#: Stable error codes.
ERROR_CODES = frozenset((
    "bad-request",          # malformed JSON / missing or unknown fields
    "unknown-tenant",       # tenant id not attached
    "duplicate-tenant",     # attach over a live tenant id
    "admission-rejected",   # tenant table full
    "backpressure",         # bounded queue full; retry later
    "protocol-violation",   # op violates the resource protocol
    "shard-lost",           # shard died and the op could not be replayed
    "shutting-down",        # server is draining
    "deadline-exceeded",    # op shed: could not dispatch within deadline_ms
    "internal",             # unexpected server-side failure
))


class ServiceOpError(ServiceError):
    """A per-operation failure with a stable wire code."""

    def __init__(self, code: str, detail: str = "") -> None:
        if code not in ERROR_CODES:
            raise ServiceError(f"unknown service error code {code!r}")
        super().__init__(detail or code)
        self.code = code
        self.detail = detail


def encode_message(message: dict) -> bytes:
    """One wire line: compact JSON + newline."""
    return (json.dumps(message, sort_keys=True,
                       separators=(",", ":")) + "\n").encode("utf-8")


def decode_line(line: bytes) -> dict:
    """Parse one wire line; raises :class:`ServiceOpError` on bad input.

    Every malformed shape a hostile or chaos-mangled peer can produce —
    truncated JSON, corrupt (non-UTF-8) bytes, oversized lines, scalars
    instead of objects — maps to the stable ``bad-request`` code; the
    caller decides whether the connection can keep its framing.
    """
    if len(line) > MAX_LINE_BYTES:
        raise ServiceOpError(
            "bad-request",
            f"line of {len(line)} bytes exceeds {MAX_LINE_BYTES}")
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ServiceOpError("bad-request",
                             f"request is not valid JSON: {exc}") from exc
    except (UnicodeDecodeError, ValueError) as exc:
        # json.loads raises a bare UnicodeDecodeError (not a
        # JSONDecodeError) on corrupt UTF-8 — chaos bit-flips land here.
        raise ServiceOpError("bad-request",
                             f"request is not decodable: {exc}") from exc
    if not isinstance(message, dict):
        raise ServiceOpError(
            "bad-request",
            f"request must be a JSON object, got {type(message).__name__}")
    return message


def validate_request(message: dict) -> str:
    """Check the ``op``/``tenant``/v2-field shape; returns the op name."""
    op = message.get("op")
    if not isinstance(op, str):
        raise ServiceOpError("bad-request", "request needs a string 'op'")
    if op not in TENANT_OPS and op not in ADMIN_OPS:
        raise ServiceOpError(
            "bad-request", f"unknown op {op!r}; tenant ops: "
            f"{sorted(TENANT_OPS)}, admin ops: {sorted(ADMIN_OPS)}")
    if op in TENANT_OPS:
        tenant = message.get("tenant")
        if not isinstance(tenant, str) or not tenant:
            raise ServiceOpError(
                "bad-request", f"op {op!r} needs a non-empty 'tenant'")
    deadline_ms = message.get("deadline_ms")
    if deadline_ms is not None:
        if (isinstance(deadline_ms, bool)
                or not isinstance(deadline_ms, (int, float))
                or deadline_ms <= 0):
            raise ServiceOpError(
                "bad-request",
                f"'deadline_ms' must be a positive number, "
                f"got {deadline_ms!r}")
    idem = message.get("idem")
    if idem is not None:
        if not isinstance(idem, str) or not idem or len(idem) > 256:
            raise ServiceOpError(
                "bad-request",
                "'idem' must be a non-empty string of <= 256 chars")
    return op


def ok_response(request: Optional[dict] = None, **payload: Any) -> dict:
    response = {"ok": True, **payload}
    if request is not None and "id" in request:
        response["id"] = request["id"]
    return response


def error_response(request: Optional[dict], code: str,
                   detail: str = "") -> dict:
    if code not in ERROR_CODES:
        raise ServiceError(f"unknown service error code {code!r}")
    response = {"ok": False, "error": code}
    if detail:
        response["detail"] = detail
    if request is not None and "id" in request:
        response["id"] = request["id"]
    return response
