"""Configuration dataclasses and the Table 3 presets.

A :class:`SystemConfig` captures everything the delta framework GUI
collects (Figure 3): the target architecture (PEs, resources, bus), and
which hardware RTOS components to include with what parameters.  The
``RTOS_PRESETS`` table reproduces Table 3's seven configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from repro.errors import ConfigurationError

#: Deadlock-management choices (Table 3 rows 1-4).
DEADLOCK_CHOICES = ("none", "RTOS1", "RTOS2", "RTOS3", "RTOS4")


@dataclass(frozen=True)
class MemoryConfig:
    """One memory in a bus subsystem (Figure 5)."""

    memory_type: str = "SRAM"
    address_bus_width: int = 21
    data_bus_width: int = 64

    def validate(self) -> None:
        if self.memory_type not in ("SRAM", "SDRAM", "DRAM", "FLASH"):
            raise ConfigurationError(
                f"unknown memory type {self.memory_type!r}")
        if not 8 <= self.address_bus_width <= 64:
            raise ConfigurationError("address bus width out of range")
        if self.data_bus_width not in (8, 16, 32, 64, 128):
            raise ConfigurationError("data bus width must be a power of "
                                     "two between 8 and 128")


@dataclass(frozen=True)
class BusSubsystemConfig:
    """One bus-attached node (BAN) subsystem (Figure 6)."""

    cpu_type: str = "MPC755"
    non_cpu_type: str = "None"
    num_global_memory: int = 1
    num_local_memory: int = 0
    memories: tuple = (MemoryConfig(),)

    def validate(self) -> None:
        if self.num_global_memory < 0 or self.num_local_memory < 0:
            raise ConfigurationError("memory counts must be non-negative")
        expected = self.num_global_memory + self.num_local_memory
        if expected and len(self.memories) != expected:
            raise ConfigurationError(
                f"subsystem declares {expected} memories but configures "
                f"{len(self.memories)}")
        for memory in self.memories:
            memory.validate()


@dataclass(frozen=True)
class BusSystemConfig:
    """Hierarchical bus system parameters (Figure 4)."""

    num_bans: int = 2
    address_bus_width: int = 32
    data_bus_width: int = 64
    subsystems: tuple = ()

    def validate(self) -> None:
        if self.num_bans < 1:
            raise ConfigurationError("need at least one BAN")
        if self.address_bus_width not in (16, 24, 32, 40, 48, 64):
            raise ConfigurationError("unsupported address bus width")
        if self.data_bus_width not in (8, 16, 32, 64, 128):
            raise ConfigurationError("unsupported data bus width")
        if self.subsystems and len(self.subsystems) != self.num_bans:
            raise ConfigurationError(
                f"{self.num_bans} BANs declared but "
                f"{len(self.subsystems)} subsystems configured")
        for subsystem in self.subsystems:
            subsystem.validate()

    def with_default_subsystems(self) -> "BusSystemConfig":
        """Fill in one default subsystem per BAN when none were given."""
        if self.subsystems:
            return self
        return replace(self, subsystems=tuple(
            BusSubsystemConfig() for _ in range(self.num_bans)))


@dataclass(frozen=True)
class SystemConfig:
    """A full RTOS/MPSoC configuration (the GUI's collected state)."""

    name: str = "BASE"
    num_pes: int = 4
    pe_type: str = "MPC755"
    peripherals: tuple = ("VI", "IDCT", "DSP", "WI")
    bus: BusSystemConfig = field(default_factory=BusSystemConfig)
    #: Deadlock management: "none" or one of RTOS1..RTOS4 (Table 3).
    deadlock: str = "none"
    #: Include the SoCLC (RTOS6) with this many short/long locks.
    soclc: bool = False
    soclc_short_locks: int = 8
    soclc_long_locks: int = 8
    soclc_ipcp: bool = True
    #: Include the SoCDMMU (RTOS7).
    socdmmu: bool = False
    socdmmu_blocks: int = 256
    socdmmu_block_bytes: int = 64 * 1024
    #: Software priority-inheritance support (RTOS5 baseline).
    priority_inheritance: bool = True
    #: Scheduler parameters.
    quantum: int = 200
    round_robin: bool = False

    def validate(self) -> None:
        if self.num_pes < 1:
            raise ConfigurationError("need at least one PE")
        if self.deadlock not in DEADLOCK_CHOICES:
            raise ConfigurationError(
                f"deadlock must be one of {DEADLOCK_CHOICES}")
        if self.soclc and self.soclc_short_locks + self.soclc_long_locks < 1:
            raise ConfigurationError("SoCLC enabled with zero locks")
        if self.socdmmu and self.socdmmu_blocks < 1:
            raise ConfigurationError("SoCDMMU enabled with zero blocks")
        self.bus.validate()

    @property
    def uses_hardware_deadlock_unit(self) -> bool:
        return self.deadlock in ("RTOS2", "RTOS4")


#: Table 3: the configured RTOS/MPSoCs of the evaluation.
RTOS_PRESETS: dict[str, SystemConfig] = {
    # PDDA (Algorithms 1 and 2) in software.
    "RTOS1": SystemConfig(name="RTOS1", deadlock="RTOS1"),
    # DDU in hardware.
    "RTOS2": SystemConfig(name="RTOS2", deadlock="RTOS2"),
    # DAA (Algorithm 3) in software.
    "RTOS3": SystemConfig(name="RTOS3", deadlock="RTOS3"),
    # DAU in hardware.
    "RTOS4": SystemConfig(name="RTOS4", deadlock="RTOS4"),
    # Pure software RTOS with priority-inheritance support.
    "RTOS5": SystemConfig(name="RTOS5", priority_inheritance=True),
    # SoCLC with the immediate priority ceiling protocol in hardware.
    "RTOS6": SystemConfig(name="RTOS6", soclc=True, soclc_ipcp=True),
    # SoCDMMU in hardware.
    "RTOS7": SystemConfig(name="RTOS7", socdmmu=True),
}


def preset(name: str) -> SystemConfig:
    """Look up a Table 3 preset by name (case-insensitive)."""
    try:
        return RTOS_PRESETS[name.upper()]
    except KeyError:
        raise ConfigurationError(
            f"unknown preset {name!r}; choose from "
            f"{sorted(RTOS_PRESETS)}") from None


# -- persistence (what the GUI would save/load, Figure 3) -------------------------

def config_to_dict(config: SystemConfig) -> dict:
    """JSON-safe snapshot of a full system configuration."""
    bus = config.bus
    return {
        "name": config.name,
        "num_pes": config.num_pes,
        "pe_type": config.pe_type,
        "peripherals": list(config.peripherals),
        "deadlock": config.deadlock,
        "soclc": config.soclc,
        "soclc_short_locks": config.soclc_short_locks,
        "soclc_long_locks": config.soclc_long_locks,
        "soclc_ipcp": config.soclc_ipcp,
        "socdmmu": config.socdmmu,
        "socdmmu_blocks": config.socdmmu_blocks,
        "socdmmu_block_bytes": config.socdmmu_block_bytes,
        "priority_inheritance": config.priority_inheritance,
        "quantum": config.quantum,
        "round_robin": config.round_robin,
        "bus": {
            "num_bans": bus.num_bans,
            "address_bus_width": bus.address_bus_width,
            "data_bus_width": bus.data_bus_width,
            "subsystems": [
                {
                    "cpu_type": sub.cpu_type,
                    "non_cpu_type": sub.non_cpu_type,
                    "num_global_memory": sub.num_global_memory,
                    "num_local_memory": sub.num_local_memory,
                    "memories": [
                        {
                            "memory_type": mem.memory_type,
                            "address_bus_width": mem.address_bus_width,
                            "data_bus_width": mem.data_bus_width,
                        } for mem in sub.memories],
                } for sub in bus.subsystems],
        },
    }


def config_from_dict(data: dict) -> SystemConfig:
    """Rebuild (and validate) a configuration from its snapshot."""
    try:
        bus_data = data.get("bus", {})
        subsystems = tuple(
            BusSubsystemConfig(
                cpu_type=sub.get("cpu_type", "MPC755"),
                non_cpu_type=sub.get("non_cpu_type", "None"),
                num_global_memory=sub.get("num_global_memory", 1),
                num_local_memory=sub.get("num_local_memory", 0),
                memories=tuple(
                    MemoryConfig(
                        memory_type=mem.get("memory_type", "SRAM"),
                        address_bus_width=mem.get("address_bus_width", 21),
                        data_bus_width=mem.get("data_bus_width", 64))
                    for mem in sub.get("memories", ())))
            for sub in bus_data.get("subsystems", ()))
        bus = BusSystemConfig(
            num_bans=bus_data.get("num_bans", 2),
            address_bus_width=bus_data.get("address_bus_width", 32),
            data_bus_width=bus_data.get("data_bus_width", 64),
            subsystems=subsystems)
        config = SystemConfig(
            name=data.get("name", "CUSTOM"),
            num_pes=data.get("num_pes", 4),
            pe_type=data.get("pe_type", "MPC755"),
            peripherals=tuple(data.get("peripherals",
                                       ("VI", "IDCT", "DSP", "WI"))),
            bus=bus,
            deadlock=data.get("deadlock", "none"),
            soclc=data.get("soclc", False),
            soclc_short_locks=data.get("soclc_short_locks", 8),
            soclc_long_locks=data.get("soclc_long_locks", 8),
            soclc_ipcp=data.get("soclc_ipcp", True),
            socdmmu=data.get("socdmmu", False),
            socdmmu_blocks=data.get("socdmmu_blocks", 256),
            socdmmu_block_bytes=data.get("socdmmu_block_bytes", 64 * 1024),
            priority_inheritance=data.get("priority_inheritance", True),
            quantum=data.get("quantum", 200),
            round_robin=data.get("round_robin", False))
    except (TypeError, AttributeError) as exc:
        raise ConfigurationError(f"malformed configuration: {exc}") from exc
    config.validate()
    return config
