"""Command-line front-end to the delta framework.

The headless equivalent of the paper's GUI (Figure 3): pick a Table 3
preset or load a saved configuration, and the tool generates the design
artifacts — the Archi_gen ``Top.v``, the bus system, and the selected
hardware RTOS components' module skeletons.

Usage::

    python -m repro.framework --preset RTOS6 --out build/
    python -m repro.framework --config my_soc.json --out build/
    python -m repro.framework --preset RTOS4 --dump-config rtos4.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.errors import ReproError
from repro.framework.archi_gen import generate_top_for_config
from repro.framework.busgen import generate_bus_system
from repro.framework.config import (
    RTOS_PRESETS,
    config_from_dict,
    config_to_dict,
    preset,
)
from repro.soclc.generator import generate_soclc
from repro.socdmmu.generator import generate_socdmmu


def _load_config(args: argparse.Namespace):
    if args.config is not None:
        data = json.loads(Path(args.config).read_text())
        return config_from_dict(data)
    return preset(args.preset)


def _write(out_dir: Path, name: str, text: str, written: list) -> None:
    path = out_dir / name
    path.write_text(text)
    written.append(path)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.framework",
        description="Generate RTOS/MPSoC design artifacts (delta "
                    "framework).")
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--preset", choices=sorted(RTOS_PRESETS),
                        help="one of the Table 3 configurations")
    source.add_argument("--config", metavar="FILE",
                        help="a saved JSON configuration")
    parser.add_argument("--out", metavar="DIR",
                        help="directory to write the generated HDL into")
    parser.add_argument("--dump-config", metavar="FILE",
                        help="write the resolved configuration as JSON")
    args = parser.parse_args(argv)

    try:
        config = _load_config(args)
    except (ReproError, OSError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.dump_config:
        Path(args.dump_config).write_text(
            json.dumps(config_to_dict(config), indent=2, sort_keys=True)
            + "\n")
        print(f"wrote {args.dump_config}")

    if args.out:
        out_dir = Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)
        written: list = []
        _write(out_dir, "Top.v", generate_top_for_config(config), written)
        bus = generate_bus_system(config.bus)
        _write(out_dir, "bus_system.v", bus.verilog, written)
        if config.soclc:
            soclc = generate_soclc(config.soclc_short_locks,
                                   config.soclc_long_locks,
                                   config.soclc_ipcp)
            _write(out_dir, "soclc.v", soclc.verilog, written)
        if config.socdmmu:
            socdmmu = generate_socdmmu(config.socdmmu_blocks,
                                       config.socdmmu_block_bytes,
                                       config.num_pes)
            _write(out_dir, "socdmmu.v", socdmmu.verilog, written)
        if config.deadlock in ("RTOS2", "RTOS4"):
            from repro.deadlock.generator import generate_dau, generate_ddu
            census = (config.num_pes, len(config.peripherals))
            if config.deadlock == "RTOS2":
                unit = generate_ddu(*census)
                _write(out_dir, "ddu.v", unit.verilog, written)
            else:
                unit = generate_dau(*census)
                _write(out_dir, "dau.v", unit.verilog, written)
        for path in written:
            print(f"wrote {path}")

    if not args.out and not args.dump_config:
        # No output requested: print the top file to stdout.
        print(generate_top_for_config(config))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
