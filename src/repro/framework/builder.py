"""Assemble a runnable RTOS/MPSoC system from a configuration.

:func:`build_system` is the programmatic equivalent of the delta
framework's "generate" button: it instantiates the MPSoC, the kernel,
and whichever hardware/software RTOS components the configuration
selects, wires them together, and returns a :class:`BuiltSystem` ready
for tasks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Optional, Union

from repro.errors import ConfigurationError
from repro.framework.archi_gen import generate_top_for_config
from repro.framework.config import SystemConfig, preset
from repro.mpsoc.soc import MPSoC, SoCConfig
from repro.rtos.kernel import Kernel
from repro.rtos.memory import SoftwareHeap
from repro.rtos.resources import ResourceService, make_resource_service
from repro.rtos.sync import SoftwareLockManager
from repro.soclc.lockcache import SoCLC
from repro.socdmmu.dmmu import SoCDMMU


@dataclass
class BuiltSystem:
    """A generated RTOS/MPSoC design, ready to run."""

    config: SystemConfig
    soc: MPSoC
    kernel: Kernel
    resource_service: Optional[ResourceService]
    lock_manager: Union[SoftwareLockManager, SoCLC, None]
    heap: Union[SoftwareHeap, SoCDMMU, None]
    #: The generated HDL top file for this configuration (Example 1).
    top_verilog: str
    #: Set by :func:`repro.faults.install_fault_plan`.
    fault_injector: Optional[object] = None
    fault_plan: Optional[object] = None

    @property
    def name(self) -> str:
        return self.config.name

    def run(self, until: Optional[float] = None) -> float:
        return self.kernel.run(until=until)


def _default_census(config: SystemConfig) -> tuple[tuple, tuple, dict]:
    """Default process/resource census: one process per PE, resources =
    peripherals, priorities by PE order (p1 highest, as in Section 5.3)."""
    processes = tuple(f"p{i + 1}" for i in range(config.num_pes))
    resources = tuple(config.peripherals)
    priorities = {p: i + 1 for i, p in enumerate(processes)}
    return processes, resources, priorities


def build_system(config: Union[str, SystemConfig],
                 processes: Optional[Iterable[str]] = None,
                 resources: Optional[Iterable[str]] = None,
                 priorities: Optional[Mapping[str, int]] = None,
                 quantum: Optional[int] = None) -> BuiltSystem:
    """Generate a simulatable system from a preset name or config.

    ``processes``/``resources``/``priorities`` size the deadlock unit
    and the avoidance core; they default to one process per PE and the
    configured peripherals.
    """
    if isinstance(config, str):
        config = preset(config)
    config.validate()

    soc = MPSoC(SoCConfig(num_pes=config.num_pes,
                          pe_type=config.pe_type,
                          peripherals=tuple(config.peripherals)))
    soc.obs.label = config.name
    kernel = Kernel(soc,
                    quantum=quantum if quantum is not None else config.quantum,
                    round_robin=config.round_robin)

    default_procs, default_res, default_prios = _default_census(config)
    census_procs = tuple(processes) if processes is not None else default_procs
    census_res = tuple(resources) if resources is not None else default_res
    census_prios = (dict(priorities) if priorities is not None
                    else default_prios)
    missing = set(census_procs) - set(census_prios)
    if missing:
        raise ConfigurationError(
            f"processes without priority: {sorted(missing)}")

    # Deadlock management (RTOS1-RTOS4).
    resource_service: Optional[ResourceService] = None
    if config.deadlock != "none":
        resource_service = make_resource_service(
            kernel, config.deadlock, census_procs, census_res, census_prios)
        kernel.attach_resource_service(resource_service)

    # Lock management: SoCLC (RTOS6) or software PI (RTOS5 and default).
    if config.soclc:
        lock_manager: Union[SoftwareLockManager, SoCLC] = SoCLC(
            kernel,
            num_short_locks=config.soclc_short_locks,
            num_long_locks=config.soclc_long_locks,
            priority_inheritance=config.soclc_ipcp)
    else:
        lock_manager = SoftwareLockManager(kernel)
    kernel.attach_lock_manager(lock_manager)

    # Dynamic memory: SoCDMMU (RTOS7) or the software heap.
    if config.socdmmu:
        heap: Union[SoftwareHeap, SoCDMMU] = SoCDMMU(
            kernel,
            num_blocks=config.socdmmu_blocks,
            block_bytes=config.socdmmu_block_bytes)
    else:
        heap = SoftwareHeap(kernel)
    kernel.attach_heap_service(heap)

    top = generate_top_for_config(config)
    return BuiltSystem(config=config, soc=soc, kernel=kernel,
                       resource_service=resource_service,
                       lock_manager=lock_manager, heap=heap,
                       top_verilog=top)
