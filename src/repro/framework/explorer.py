"""Design-space exploration (the delta framework's purpose, Section 2.2).

"The delta framework is specifically designed to provide a solution to
rapid RTOS/MPSoC design space exploration so that the user can easily
and quickly find a few optimal RTOS/MPSoC architectures."

:class:`DesignSpaceExplorer` runs the same workload on a list of
configurations and tabulates the metrics each run reports, so a user
can compare e.g. RTOS3 against RTOS4 on their own application before
committing to hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Optional, Union

from repro.framework.builder import BuiltSystem, build_system
from repro.framework.config import SystemConfig

#: A workload: receives a freshly built system, runs it, returns metrics.
Workload = Callable[[BuiltSystem], Mapping[str, float]]


@dataclass(frozen=True)
class ExplorationRow:
    """Metrics of one configuration under the workload."""

    config_name: str
    metrics: Mapping[str, float]


@dataclass
class ExplorationResult:
    rows: list = field(default_factory=list)

    def best(self, metric: str, minimize: bool = True) -> ExplorationRow:
        """The configuration optimizing one metric."""
        candidates = [row for row in self.rows if metric in row.metrics]
        if not candidates:
            raise KeyError(f"no configuration reported metric {metric!r}")
        chooser = min if minimize else max
        return chooser(candidates, key=lambda row: row.metrics[metric])

    def render(self) -> str:
        """Plain-text comparison table."""
        if not self.rows:
            return "(no configurations explored)"
        metrics: list[str] = []
        for row in self.rows:
            for key in row.metrics:
                if key not in metrics:
                    metrics.append(key)
        header = ["config"] + metrics
        table = [header]
        for row in self.rows:
            table.append([row.config_name] + [
                _fmt(row.metrics.get(metric)) for metric in metrics])
        widths = [max(len(line[col]) for line in table)
                  for col in range(len(header))]
        lines = []
        for index, line in enumerate(table):
            lines.append("  ".join(
                cell.ljust(widths[col]) for col, cell in enumerate(line)))
            if index == 0:
                lines.append("  ".join("-" * w for w in widths))
        return "\n".join(lines)


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.2f}"
    return str(int(value))


class DesignSpaceExplorer:
    """Run one workload across many configurations."""

    def __init__(self, workload: Workload,
                 build: Callable[..., BuiltSystem] = build_system) -> None:
        self.workload = workload
        self.build = build

    def explore(self, configs: Iterable[Union[str, SystemConfig]],
                **build_kwargs) -> ExplorationResult:
        """Build + run every configuration; collect the metric rows."""
        result = ExplorationResult()
        for config in configs:
            system = self.build(config, **build_kwargs)
            metrics = dict(self.workload(system))
            result.rows.append(ExplorationRow(system.name, metrics))
        return result
