"""The delta hardware/software RTOS design framework (Section 2.2).

The framework configures and generates RTOS/MPSoC systems: pick the
hardware RTOS components (SoCLC, SoCDMMU, DDU or DAU), size them, and
get back a simulatable system plus the generated HDL top file — the
programmatic equivalent of the paper's GUI (Figure 3).

* :mod:`repro.framework.config` — configuration dataclasses and the
  Table 3 presets RTOS1..RTOS7;
* :mod:`repro.framework.builder` — :func:`build_system` assembles a
  runnable :class:`BuiltSystem` from a configuration;
* :mod:`repro.framework.busgen` — hierarchical bus-system generation
  (Figures 4-6);
* :mod:`repro.framework.archi_gen` — the Verilog top-file generator
  Archi_gen (Example 1, Figure 7);
* :mod:`repro.framework.explorer` — design-space exploration sweeps.
"""

from repro.framework.config import (
    BusSubsystemConfig,
    BusSystemConfig,
    MemoryConfig,
    RTOS_PRESETS,
    SystemConfig,
)
from repro.framework.builder import BuiltSystem, build_system
from repro.framework.busgen import GeneratedBus, generate_bus_system
from repro.framework.archi_gen import (
    DESCRIPTION_LIBRARY,
    SystemDescription,
    generate_top,
)
from repro.framework.explorer import DesignSpaceExplorer, ExplorationRow

__all__ = [
    "SystemConfig",
    "RTOS_PRESETS",
    "BusSystemConfig",
    "BusSubsystemConfig",
    "MemoryConfig",
    "build_system",
    "BuiltSystem",
    "generate_bus_system",
    "GeneratedBus",
    "generate_top",
    "SystemDescription",
    "DESCRIPTION_LIBRARY",
    "DesignSpaceExplorer",
    "ExplorationRow",
]
