"""Application example II: request deadlock avoidance (Section 5.4.3).

The Table 8 sequence on q1=VI, q2=IDCT, q3=DSP with processes needing
(q1,q2), (q2,q3) and (q3,q1) respectively:

* t1-t3 — p1 gets q1, p2 gets q2, p3 gets q3;
* t4 — p2 requests q3 -> pending (no R-dl yet);
* t5 — p3 requests q1 -> pending (no R-dl yet);
* t6 — p1 requests q2: that request would close the cycle — **request
  deadlock**.  The avoidance logic pends the request and asks the
  lower-priority owner p2 to give q2 up (Algorithm 3 lines 6-8);
* t7 — p2 releases q2 (and will re-request it); q2 goes to p1;
* t8 — p1 uses q1+q2 and releases both: q1 to p3, q2 back to p2;
* t9 — p3 uses q1+q3 and releases both: q3 to p2;
* t10 — p2 finishes; the application ends.

The 14 algorithm invocations of Table 9 = 7 requests (p1: 2, p2: 3
including the re-request, p3: 2) + 7 releases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro import calibration
from repro.errors import ConfigurationError
from repro.framework.builder import BuiltSystem, build_system
from repro.rtos.kernel import TaskContext
from repro.rtos.resources import NotificationKind


@dataclass(frozen=True)
class RdlRun:
    """Measurements of one R-dl app run (one Table 9 row)."""

    config: str
    avoidance_invocations: int
    mean_algorithm_cycles: float
    total_algorithm_cycles: float
    app_cycles: float
    rdl_events: int
    giveup_events: int
    completed: bool

    def describe(self) -> str:
        return (f"{self.config}: algorithm={self.mean_algorithm_cycles:.1f} "
                f"cycles (mean of {self.avoidance_invocations}), "
                f"application={self.app_cycles:.0f} cycles, "
                f"R-dl avoided {self.rdl_events}x")


def _p1(ctx: TaskContext, stagger: float):
    # t1: acquire q1 (VI) immediately.
    yield from ctx.request("VI")
    yield from ctx.compute(5 * stagger)
    # t6: request q2 (IDCT): triggers the R-dl; the DAU pends us and
    # asks p2 to give the IDCT up, so the grant arrives shortly.
    outcome = yield from ctx.request("IDCT")
    if not outcome.granted:
        yield from ctx.wait_grant("IDCT")
    # t8: do the (VI, IDCT) work and release both.
    yield from ctx.use_peripheral("VI", calibration.VI_FRAME_CYCLES)
    yield from ctx.use_peripheral("IDCT", calibration.IDCT_FRAME_CYCLES // 4)
    yield from ctx.release_resource("VI")
    yield from ctx.release_resource("IDCT")


def _p2(ctx: TaskContext, stagger: float):
    # t2: acquire q2 (IDCT).
    yield from ctx.sleep(stagger)
    yield from ctx.request("IDCT")
    yield from ctx.compute(2 * stagger)
    # t4: request q3 (DSP) -> pending.
    yield from ctx.request("DSP")
    # While waiting we may be asked to give the IDCT up (t6-t7).
    while True:
        note = yield from ctx.wait_notification()
        if note.kind is NotificationKind.GIVE_UP:
            yield from ctx.release_resource(note.resource)
            # "a moment later, p2 requests q2 again" (Table 8, t7).
            yield from ctx.compute(calibration.APP_LOCAL_COMPUTE_CYCLES)
            yield from ctx.request(note.resource)
        held = set(ctx.task.held_resources)
        if {"IDCT", "DSP"} <= held:
            break
    # t10: both resources in hand; finish the (q2, q3) job.
    yield from ctx.use_peripheral("IDCT", calibration.IDCT_FRAME_CYCLES // 4)
    yield from ctx.use_peripheral("DSP", calibration.DSP_WORK_CYCLES // 2)
    yield from ctx.release_resource("IDCT")
    yield from ctx.release_resource("DSP")


def _p3(ctx: TaskContext, stagger: float):
    # t3: acquire q3 (DSP).
    yield from ctx.sleep(2 * stagger)
    yield from ctx.request("DSP")
    yield from ctx.compute(2 * stagger)
    # t5: request q1 (VI) -> pending until p1 releases at t8.
    outcome = yield from ctx.request("VI")
    if not outcome.granted:
        yield from ctx.wait_grant("VI")
    # t9: do the (q3, q1) work and release both.
    yield from ctx.use_peripheral("DSP", calibration.DSP_WORK_CYCLES // 2)
    yield from ctx.use_peripheral("VI", calibration.VI_FRAME_CYCLES)
    yield from ctx.release_resource("DSP")
    yield from ctx.release_resource("VI")


def run_rdl_app(config: str = "RTOS4", stagger: float = 1000.0,
                system: Optional[BuiltSystem] = None) -> RdlRun:
    """Run the Table 8 scenario under RTOS3 or RTOS4; measure Table 9."""
    if system is None:
        system = build_system(config)
    if system.config.deadlock not in ("RTOS3", "RTOS4"):
        raise ConfigurationError(
            "the R-dl app needs an avoidance configuration (RTOS3/RTOS4)")
    kernel = system.kernel
    kernel.create_task(lambda ctx: _p1(ctx, stagger), "p1", 1, "PE1")
    kernel.create_task(lambda ctx: _p2(ctx, stagger), "p2", 2, "PE2")
    kernel.create_task(lambda ctx: _p3(ctx, stagger), "p3", 3, "PE3")
    kernel.run()

    core = system.resource_service.core
    stats = core.stats
    giveups = kernel.trace.count("asked_to_release")
    return RdlRun(
        config=system.name,
        avoidance_invocations=stats.invocations,
        mean_algorithm_cycles=stats.mean_cycles,
        total_algorithm_cycles=stats.total_cycles,
        app_cycles=kernel.engine.now,
        rdl_events=stats.rdl_events,
        giveup_events=giveups,
        completed=kernel.finished("p1", "p2", "p3"),
    )
