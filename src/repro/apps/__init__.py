"""The applications of the paper's evaluation (Section 5).

* :mod:`repro.apps.jini` — the Jini-lookup-inspired application whose
  request/grant sequence leads to deadlock (Table 4, Figure 15);
* :mod:`repro.apps.grant_deadlock` — application example I: the G-dl
  scenario the DAU resolves by granting to a lower-priority process
  (Table 6, Figure 16);
* :mod:`repro.apps.request_deadlock` — application example II: the R-dl
  scenario the DAU resolves by asking a lower-priority owner to give up
  a resource (Table 8, Figure 17);
* :mod:`repro.apps.robot` — the robot-control + MPEG-decoder task set
  used for the SoCLC comparison (Figures 19-20, Table 10);
* :mod:`repro.apps.splash` — SPLASH-2-style kernels (LU, FFT, RADIX)
  with dynamic allocation, used for the SoCDMMU comparison (Tables
  11-12).
"""

from repro.apps.jini import JiniRun, run_jini_app
from repro.apps.grant_deadlock import GdlRun, run_gdl_app
from repro.apps.request_deadlock import RdlRun, run_rdl_app
from repro.apps.robot import RobotRun, run_robot_app
from repro.apps.splash import SPLASH_BENCHMARKS, SplashRun, run_splash

__all__ = [
    "run_jini_app",
    "JiniRun",
    "run_gdl_app",
    "GdlRun",
    "run_rdl_app",
    "RdlRun",
    "run_robot_app",
    "RobotRun",
    "run_splash",
    "SplashRun",
    "SPLASH_BENCHMARKS",
]
