"""SPLASH-2-style kernels with dynamic allocation (Section 5.6).

The paper modified LU, FFT and RADIX "to replace all the static memory
arrays by arrays that are dynamically allocated at run time and
deallocated upon completion", then compared glibc malloc()/free()
(RTOS5, Table 11) against the SoCDMMU (RTOS7, Table 12).

The kernels here are *allocation-faithful synthetics*: each benchmark
performs the same allocation pattern (working arrays allocated up
front, per-phase temporary buffers churned between compute phases,
everything freed at completion) around calibrated compute phases.  The
measured quantity — cycles spent in memory management versus total
execution — exercises exactly the code paths the paper compares; the
numeric kernels themselves are opaque compute time in both the paper's
measurement and ours (see DESIGN.md's substitution table).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro import calibration
from repro.errors import ConfigurationError
from repro.framework.builder import BuiltSystem, build_system
from repro.rtos.kernel import TaskContext


@dataclass(frozen=True)
class SplashSpec:
    """Allocation/compute shape of one benchmark."""

    name: str
    #: Working arrays allocated at start, freed at completion (bytes).
    arrays: tuple
    #: Number of compute phases.
    phases: int
    #: Temporary buffers allocated+freed around each phase (bytes).
    churn: tuple
    #: Total compute cycles (calibrated: paper total minus paper mm).
    compute_cycles: int

    @property
    def total_pairs(self) -> int:
        return len(self.arrays) + self.phases * len(self.churn)


#: The three benchmarks of Tables 11-12.  Array counts/sizes follow the
#: kernels' real working sets (LU: blocked matrix panels; FFT: complex
#: data + twiddle arrays; RADIX: keys + per-phase histogram buffers).
SPLASH_BENCHMARKS: dict[str, SplashSpec] = {
    "LU": SplashSpec(
        name="LU",
        arrays=(128 * 1024, 128 * 1024, 64 * 1024, 64 * 1024),
        phases=4,
        churn=(64 * 1024,) * 4,
        compute_cycles=calibration.SPLASH_COMPUTE_CYCLES["LU"]),
    "FFT": SplashSpec(
        name="FFT",
        arrays=(256 * 1024, 256 * 1024, 128 * 1024, 128 * 1024,
                64 * 1024, 64 * 1024, 32 * 1024, 32 * 1024),
        phases=4,
        churn=(160 * 1024,) * 8,
        compute_cycles=calibration.SPLASH_COMPUTE_CYCLES["FFT"]),
    "RADIX": SplashSpec(
        name="RADIX",
        arrays=(256 * 1024, 128 * 1024, 64 * 1024),
        phases=8,
        churn=(96 * 1024,) * 9,
        compute_cycles=calibration.SPLASH_COMPUTE_CYCLES["RADIX"]),
}


@dataclass(frozen=True)
class SplashRun:
    """Measurements of one benchmark run (one Table 11/12 row)."""

    config: str
    benchmark: str
    total_cycles: float
    mm_cycles: float
    malloc_calls: int
    free_calls: int

    @property
    def mm_percent(self) -> float:
        return 100.0 * self.mm_cycles / self.total_cycles

    def describe(self) -> str:
        return (f"{self.benchmark}/{self.config}: total="
                f"{self.total_cycles:.0f} mm={self.mm_cycles:.0f} "
                f"({self.mm_percent:.2f}%)")


def _benchmark_task(ctx: TaskContext, spec: SplashSpec):
    # Allocate the working arrays "at run time" (the paper's
    # modification of the SPLASH-2 sources).
    handles = []
    for size in spec.arrays:
        handle = yield from ctx.malloc(size)
        handles.append(handle)
    phase_cycles = spec.compute_cycles // (spec.phases + 1)
    remainder = spec.compute_cycles - phase_cycles * (spec.phases + 1)
    yield from ctx.compute(phase_cycles + remainder)
    for _phase in range(spec.phases):
        temporaries = []
        for size in spec.churn:
            handle = yield from ctx.malloc(size)
            temporaries.append(handle)
        yield from ctx.compute(phase_cycles)
        for handle in temporaries:
            yield from ctx.free(handle)
    # Deallocate upon completion.
    for handle in handles:
        yield from ctx.free(handle)


def run_splash(benchmark: str, config: str = "RTOS7",
               system: Optional[BuiltSystem] = None) -> SplashRun:
    """Run one benchmark under RTOS5 (software heap) or RTOS7 (SoCDMMU)."""
    try:
        spec = SPLASH_BENCHMARKS[benchmark.upper()]
    except KeyError:
        raise ConfigurationError(
            f"unknown benchmark {benchmark!r}; choose from "
            f"{sorted(SPLASH_BENCHMARKS)}") from None
    if system is None:
        system = build_system(config)
    kernel = system.kernel
    task = kernel.create_task(lambda ctx: _benchmark_task(ctx, spec),
                              spec.name, 1, "PE1")
    kernel.run()
    if task.stats.finish_time is None:
        raise ConfigurationError(f"benchmark {spec.name} never finished")
    stats = system.heap.stats
    return SplashRun(
        config=system.name,
        benchmark=spec.name,
        total_cycles=task.stats.finish_time - (task.stats.activation_time or 0),
        mm_cycles=stats.mm_cycles,
        malloc_calls=stats.malloc_calls,
        free_calls=stats.free_calls,
    )
