"""Application example I: grant deadlock avoidance (Section 5.4.1).

The Table 6 sequence on resources q1=VI, q2=IDCT, q4=WI:

* t1 — p1 requests q1 and q2; granted; p1 streams and IDCT-processes;
* t2 — p3 requests q2 (pending) and q4 (granted);
* t3 — p2 requests q2 and q4 (both pending);
* t4 — p1 releases q1 and q2;
* t5 — granting q2 to p2 (highest-priority waiter) would close the
  cycle p2-q4-p3-q2: **grant deadlock**.  The avoidance logic grants q2
  to the *lower-priority* p3 instead (Algorithm 3 line 19);
* t6 — p3 uses and releases q2 and q4;
* t7 — q2 and q4 go to p2;
* t8 — p2 finishes; the application ends.

Unlike the detection scenario, the application *completes* — that is
the point of avoidance.  The run measures Table 7: mean algorithm time
over the 12 invocations (6 requests + 6 releases) and the application
run time to completion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro import calibration
from repro.errors import ConfigurationError
from repro.framework.builder import BuiltSystem, build_system
from repro.rtos.kernel import TaskContext


@dataclass(frozen=True)
class GdlRun:
    """Measurements of one G-dl app run (one Table 7 row)."""

    config: str
    avoidance_invocations: int
    mean_algorithm_cycles: float
    total_algorithm_cycles: float
    app_cycles: float
    gdl_events: int
    completed: bool
    grant_order: tuple

    def describe(self) -> str:
        return (f"{self.config}: algorithm={self.mean_algorithm_cycles:.1f} "
                f"cycles (mean of {self.avoidance_invocations}), "
                f"application={self.app_cycles:.0f} cycles, "
                f"G-dl avoided {self.gdl_events}x")


def _p1(ctx: TaskContext, stagger: float):
    # t1: request q1 (VI) and q2 (IDCT); both granted immediately.
    yield from ctx.request("VI")
    yield from ctx.request("IDCT")
    yield from ctx.use_peripheral("VI", calibration.VI_FRAME_CYCLES)
    yield from ctx.use_peripheral("IDCT", calibration.IDCT_FRAME_CYCLES)
    # t4: release both.
    yield from ctx.release_resource("VI")
    yield from ctx.release_resource("IDCT")


def _p2(ctx: TaskContext, stagger: float):
    # t3: request q2 and q4; both pending.
    yield from ctx.sleep(2 * stagger)
    yield from ctx.request("IDCT")
    yield from ctx.request("WI")
    yield from ctx.wait_grant("IDCT")
    yield from ctx.wait_grant("WI")
    # t7-t8: convert and transmit, then finish.
    yield from ctx.use_peripheral("IDCT", calibration.APP_LOCAL_COMPUTE_CYCLES * 4)
    yield from ctx.use_peripheral("WI", calibration.WI_SEND_CYCLES)
    yield from ctx.release_resource("IDCT")
    yield from ctx.release_resource("WI")


def _p3(ctx: TaskContext, stagger: float):
    # t2: request q2 (pending) and q4 (granted).
    yield from ctx.sleep(stagger)
    yield from ctx.request("IDCT")
    yield from ctx.request("WI")
    yield from ctx.wait_grant("IDCT")
    # t5-t6: the DAU avoided G-dl by granting q2 here despite p2's
    # higher priority; convert the frame, send it, release everything.
    yield from ctx.use_peripheral("IDCT", calibration.APP_LOCAL_COMPUTE_CYCLES * 4)
    yield from ctx.use_peripheral("WI", calibration.WI_SEND_CYCLES)
    yield from ctx.release_resource("IDCT")
    yield from ctx.release_resource("WI")


def run_gdl_app(config: str = "RTOS4", stagger: float = 1200.0,
                system: Optional[BuiltSystem] = None) -> GdlRun:
    """Run the Table 6 scenario under RTOS3 or RTOS4; measure Table 7."""
    if system is None:
        system = build_system(config)
    if system.config.deadlock not in ("RTOS3", "RTOS4"):
        raise ConfigurationError(
            "the G-dl app needs an avoidance configuration (RTOS3/RTOS4)")
    kernel = system.kernel
    kernel.create_task(lambda ctx: _p1(ctx, stagger), "p1", 1, "PE1")
    kernel.create_task(lambda ctx: _p2(ctx, stagger), "p2", 2, "PE2")
    kernel.create_task(lambda ctx: _p3(ctx, stagger), "p3", 3, "PE3")
    kernel.run()

    core = system.resource_service.core
    stats = core.stats
    grant_order = tuple(
        (rec.actor, rec.details["resource"], rec.time)
        for rec in kernel.trace.filter(kind="resource_granted"))
    return GdlRun(
        config=system.name,
        avoidance_invocations=stats.invocations,
        mean_algorithm_cycles=stats.mean_cycles,
        total_algorithm_cycles=stats.total_cycles,
        app_cycles=kernel.engine.now,
        gdl_events=stats.gdl_events,
        completed=kernel.finished("p1", "p2", "p3"),
        grant_order=grant_order,
    )
