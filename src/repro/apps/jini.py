"""The deadlock-detection application (Section 5.3, Table 4, Figure 15).

An application inspired by the Jini lookup-service system: clients
request services (the VI, IDCT and WI peripherals) through the RTOS.
One process runs on each PE, prioritized p1 (highest) .. p4 (lowest).
The request/grant sequence of Table 4 unavoidably leads to deadlock:

* t1 — p1 requests IDCT and VI; both granted; p1 streams a frame in
  through the VI and runs IDCT over it (~23600 cycles for the 64x64
  test frame);
* t2 — p3 requests IDCT (busy -> pending) and WI (granted);
* t3 — p2 requests IDCT and WI (both pending);
* t4 — p1 releases IDCT;
* t5 — IDCT goes to p2 (higher priority than p3) -> cycle p2-WI-p3-IDCT:
  deadlock, which the detection service (PDDA in software for RTOS1,
  the DDU for RTOS2) reports.

The run measures the Table 5 quantities: mean algorithm run time,
invocation count, and the application run time from start to the
detection of the deadlock (the application cannot finish).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro import calibration
from repro.errors import ConfigurationError
from repro.framework.builder import BuiltSystem, build_system
from repro.rtos.kernel import TaskContext


@dataclass(frozen=True)
class JiniRun:
    """Measurements of one jini-app run (one Table 5 row)."""

    config: str
    detection_invocations: int
    mean_algorithm_cycles: float
    total_algorithm_cycles: float
    app_cycles: float
    deadlock_detected: bool
    deadlocked_processes: tuple

    def describe(self) -> str:
        return (f"{self.config}: algorithm={self.mean_algorithm_cycles:.1f} "
                f"cycles (mean of {self.detection_invocations}), "
                f"application={self.app_cycles:.0f} cycles to detection")


def _p1(ctx: TaskContext, stagger: float):
    # t1: request IDCT and VI; both granted immediately.
    yield from ctx.request("IDCT")
    yield from ctx.request("VI")
    # Receive the video stream, then IDCT-process the test frame.
    yield from ctx.use_peripheral("VI", calibration.VI_FRAME_CYCLES)
    yield from ctx.use_peripheral("IDCT", calibration.IDCT_FRAME_CYCLES)
    # t4: release the IDCT (keeps streaming on the VI).
    yield from ctx.release_resource("IDCT")
    yield from ctx.compute(calibration.APP_LOCAL_COMPUTE_CYCLES)


def _p2(ctx: TaskContext, stagger: float):
    # t3: request IDCT and WI; both are held -> pending, p2 blocks.
    yield from ctx.sleep(2 * stagger)
    yield from ctx.request("IDCT")
    yield from ctx.request("WI")
    yield from ctx.wait_grant("IDCT")
    yield from ctx.wait_grant("WI")   # never arrives: deadlock


def _p3(ctx: TaskContext, stagger: float):
    # t2: request IDCT (pending) and WI (granted).
    yield from ctx.sleep(stagger)
    yield from ctx.request("IDCT")
    yield from ctx.request("WI")
    yield from ctx.wait_grant("IDCT")  # never arrives: deadlock
    yield from ctx.use_peripheral("WI", calibration.WI_SEND_CYCLES)


def _p4(ctx: TaskContext, stagger: float):
    # Unrelated lowest-priority work on the DSP (not in the cycle).
    yield from ctx.request("DSP")
    yield from ctx.use_peripheral("DSP", calibration.DSP_WORK_CYCLES)
    yield from ctx.release_resource("DSP")


def run_jini_app(config: str = "RTOS2", stagger: float = 1200.0,
                 system: Optional[BuiltSystem] = None) -> JiniRun:
    """Run the Table 4 scenario under RTOS1 or RTOS2; measure Table 5.

    ``stagger`` spaces the t1/t2/t3 request waves.  The simulation is
    stopped a little after detection (deadlocked tasks never finish).
    """
    if system is None:
        system = build_system(config)
    if system.config.deadlock not in ("RTOS1", "RTOS2"):
        raise ConfigurationError(
            "the jini app needs a detection configuration (RTOS1/RTOS2)")
    kernel = system.kernel
    kernel.create_task(lambda ctx: _p1(ctx, stagger), "p1", 1, "PE1")
    kernel.create_task(lambda ctx: _p2(ctx, stagger), "p2", 2, "PE2")
    kernel.create_task(lambda ctx: _p3(ctx, stagger), "p3", 3, "PE3")
    kernel.create_task(lambda ctx: _p4(ctx, stagger), "p4", 4, "PE4")
    kernel.run()

    service = system.resource_service
    stats = service.stats
    detected_at = stats.deadlock_found_at
    residual = []
    if hasattr(service, "rag"):
        from repro.deadlock.pdda import pdda_detect
        result = pdda_detect(service.rag)
        residual = result.deadlocked_processes()
    return JiniRun(
        config=system.name,
        detection_invocations=stats.invocations,
        mean_algorithm_cycles=stats.mean_algorithm_cycles,
        total_algorithm_cycles=stats.total_algorithm_cycles,
        app_cycles=detected_at if detected_at is not None else kernel.engine.now,
        deadlock_detected=detected_at is not None,
        deadlocked_processes=tuple(residual),
    )
