"""The robot-control + MPEG application (Section 5.5, Figures 19-20).

Five tasks, assigned as in the paper:

* ``task1`` (PE1, priority 1, hard real-time, WCRT 250 us): object
  recognition + obstacle avoidance — sense, update the shared position
  structure under the ``pos`` lock, compute the next path;
* ``task2`` (PE2, priority 2, firm, WCRT 300 us): robot movement from
  the position data;
* ``task3`` (PE2, priority 3, soft): trajectory display;
* ``task4`` (PE3, priority 4, soft, WCRT 600 us): trajectory recording;
* ``task5`` (PE4, priority 5, soft): MPEG decoder.

The tasks form the control pipeline of Figure 19: each movement
iteration consumes a position update from task1, and the display/record
tasks consume movement updates.  All position readers/writers
synchronize on the hot ``pos`` lock (ceiling 1); the recorder and the
MPEG decoder share the ``rec`` frame-store lock (ceiling 4).

Because task2 blocks waiting for task1's update, task3 gets the PE2 CPU
in between — and task2 routinely wakes *while task3 is inside its
critical section*.  Under software priority inheritance (RTOS5) task2
preempts task3 and immediately blocks on the lock, paying inversion and
context-switch costs; under the SoCLC's immediate priority ceiling
protocol (RTOS6) task3 already runs at the ceiling, so task2 cannot
preempt it mid-CS — exactly the Figure 20 trace.

The run reports the three Table 10 rows: lock latency, lock delay and
overall execution time, plus per-activation deadline tracking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro import calibration as cal
from repro.errors import ConfigurationError
from repro.framework.builder import BuiltSystem, build_system
from repro.rtos.kernel import Kernel, TaskContext
from repro.rtos.sync import Semaphore
from repro.soclc.lockcache import SoCLC

#: Worst-case response-time requirements in cycles (250/300/600 us
#: at the 100 MHz bus clock).
WCRT = {"task1": 25_000, "task2": 30_000, "task4": 60_000}


@dataclass(frozen=True)
class RobotRun:
    """Measurements of one robot-app run (one Table 10 column)."""

    config: str
    lock_latency: float
    lock_delay: float
    overall_cycles: float
    acquisitions: int
    contended: int
    deadline_misses: int
    completed: bool

    def describe(self) -> str:
        return (f"{self.config}: latency={self.lock_latency:.0f} "
                f"delay={self.lock_delay:.0f} "
                f"overall={self.overall_cycles:.0f} cycles "
                f"({self.contended}/{self.acquisitions} contended, "
                f"{self.deadline_misses} deadline misses)")


class _Pipeline:
    """The inter-task signalling of Figure 19's data-flow arrows."""

    def __init__(self, kernel: Kernel) -> None:
        self.position_ready = Semaphore(kernel, "position_ready")
        self.movement_ready = Semaphore(kernel, "movement_ready")
        self.sample_ready = Semaphore(kernel, "sample_ready")


def _task1_body(ctx: TaskContext, pipe: _Pipeline):
    # Object recognition: sensor sweep, then publish the new position.
    yield from ctx.compute(cal.ROBOT_SENSE_CYCLES)
    yield from ctx.lock("pos")
    yield from ctx.compute(cal.ROBOT_CS_CYCLES)
    yield from ctx.unlock("pos")
    yield from pipe.position_ready.signal(ctx)
    # Avoid-obstacle path computation for the next step.
    yield from ctx.compute(cal.ROBOT_COMPUTE_CYCLES)


def _task2_body(ctx: TaskContext, pipe: _Pipeline):
    # Wait for a fresh position, read it, move, write the result.
    yield from pipe.position_ready.wait(ctx)
    yield from ctx.lock("pos")
    yield from ctx.compute(cal.ROBOT_CS_CYCLES // 2)
    yield from ctx.unlock("pos")
    yield from ctx.compute(cal.ROBOT_ACT_CYCLES)
    yield from ctx.lock("pos")
    yield from ctx.compute(cal.ROBOT_CS_CYCLES // 2)
    yield from ctx.unlock("pos")
    yield from pipe.movement_ready.signal(ctx)
    yield from pipe.sample_ready.signal(ctx)


def _task3_body(ctx: TaskContext, pipe: _Pipeline):
    # Display the trajectory: read position under the lock, render.
    yield from ctx.lock("pos")
    yield from ctx.compute(cal.ROBOT_CS_CYCLES)
    yield from ctx.unlock("pos")
    yield from ctx.compute(cal.ROBOT_DISPLAY_CYCLES)
    yield from pipe.movement_ready.wait(ctx)


def _task4_body(ctx: TaskContext, pipe: _Pipeline):
    # Record the trajectory: sample the position, append to the log.
    yield from pipe.sample_ready.wait(ctx)
    yield from ctx.lock("pos")
    yield from ctx.compute(cal.ROBOT_CS_CYCLES // 2)
    yield from ctx.unlock("pos")
    yield from ctx.compute(cal.ROBOT_RECORD_CYCLES)
    yield from ctx.lock("rec")
    yield from ctx.compute(cal.ROBOT_CS_CYCLES // 2)
    yield from ctx.unlock("rec")


def _task5_body(ctx: TaskContext, pipe: _Pipeline):
    # MPEG decoding; shares the recording lock for the frame store.
    yield from ctx.compute(cal.MPEG_SLICE_CYCLES)
    yield from ctx.lock("rec")
    yield from ctx.compute(cal.ROBOT_CS_CYCLES // 2)
    yield from ctx.unlock("rec")


def run_robot_app(config: str = "RTOS6",
                  periods: int = cal.ROBOT_PERIODS,
                  system: Optional[BuiltSystem] = None) -> RobotRun:
    """Run the robot application under RTOS5 or RTOS6; measure Table 10."""
    if system is None:
        system = build_system(config)
    if system.config.deadlock != "none":
        raise ConfigurationError("the robot app uses locks, not the "
                                 "deadlock-managed resource service")
    kernel = system.kernel
    manager = system.lock_manager
    if isinstance(manager, SoCLC):
        manager.register_lock("pos", kind="long", ceiling=1)
        manager.register_lock("rec", kind="long", ceiling=4)

    pipe = _Pipeline(kernel)
    misses: list = []
    plan = (
        ("task1", 1, "PE1", 600, _task1_body),
        ("task2", 2, "PE2", 0, _task2_body),
        ("task3", 3, "PE2", 0, _task3_body),
        ("task4", 4, "PE3", 0, _task4_body),
        ("task5", 5, "PE4", 0, _task5_body),
    )
    for name, priority, pe, offset, body in plan:
        def make(body=body, offset=offset):
            def fn(ctx):
                if offset > 0:
                    yield from ctx.sleep(offset)
                for period in range(periods):
                    started = ctx.now
                    yield from body(ctx, pipe)
                    deadline = WCRT.get(ctx.name)
                    if deadline is not None and ctx.now - started > deadline:
                        misses.append((ctx.name, period, ctx.now - started))
            return fn
        kernel.create_task(make(), name, priority, pe)
    kernel.run()

    stats = manager.stats
    finish_times = [task.stats.finish_time or kernel.engine.now
                    for task in kernel.tasks.values()]
    return RobotRun(
        config=system.name,
        lock_latency=stats.mean_latency,
        lock_delay=stats.mean_delay,
        overall_cycles=max(finish_times),
        acquisitions=stats.acquisitions,
        contended=stats.contended_acquisitions,
        deadline_misses=len(misses),
        completed=kernel.finished(),
    )
