"""Table 5: deadlock detection time and application execution time.

Runs the Table 4 scenario (the Jini-inspired application) under RTOS1
(PDDA in software) and RTOS2 (DDU in hardware) and reports the paper's
two headline numbers: the mean algorithm run time and the application
run time from start to deadlock detection, with the speed-up computed
by the Hennessy-Patterson formula the paper cites.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.jini import JiniRun, run_jini_app
from repro.experiments.report import (render_table, speedup_factor,
                                      speedup_percent)

#: Published Table 5 values: (algorithm run time, application run time).
PAPER_TABLE_5 = {"RTOS2": (1.3, 27_714), "RTOS1": (1_830, 40_523)}
PAPER_APP_SPEEDUP_PERCENT = 46
PAPER_ALGORITHM_SPEEDUP = 1408


@dataclass(frozen=True)
class Table5Result:
    hardware: JiniRun
    software: JiniRun

    @property
    def app_speedup_percent(self) -> float:
        return speedup_percent(self.software.app_cycles,
                               self.hardware.app_cycles)

    @property
    def algorithm_speedup(self) -> float:
        return speedup_factor(self.software.mean_algorithm_cycles,
                              self.hardware.mean_algorithm_cycles)

    def render(self) -> str:
        rows = [
            ("DDU (hardware)", self.hardware.mean_algorithm_cycles,
             self.hardware.app_cycles,
             PAPER_TABLE_5["RTOS2"][0], PAPER_TABLE_5["RTOS2"][1]),
            ("PDDA in software", self.software.mean_algorithm_cycles,
             self.software.app_cycles,
             PAPER_TABLE_5["RTOS1"][0], PAPER_TABLE_5["RTOS1"][1]),
        ]
        table = render_table(
            ["implementation", "algo cycles", "app cycles",
             "paper algo", "paper app"],
            rows, title="Table 5: DDU vs PDDA-in-software")
        return (f"{table}\n"
                f"application speed-up: {self.app_speedup_percent:.0f}% "
                f"(paper: {PAPER_APP_SPEEDUP_PERCENT}%)\n"
                f"algorithm speed-up: {self.algorithm_speedup:.0f}X "
                f"(paper: ~{PAPER_ALGORITHM_SPEEDUP}X)\n"
                f"invocations: hw={self.hardware.detection_invocations} "
                f"sw={self.software.detection_invocations} (paper: 10)")


def run() -> Table5Result:
    return Table5Result(hardware=run_jini_app("RTOS2"),
                        software=run_jini_app("RTOS1"))


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
