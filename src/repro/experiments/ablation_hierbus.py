"""Ablation: flat shared bus versus a hierarchical bus (refs [7-9]).

The delta framework's bus configurator exists because the bus topology
is a first-order design choice.  This experiment makes the trade-off
measurable: the same four-master transaction workload runs on

* the paper's flat shared bus (every access arbitrates globally), and
* a two-subsystem hierarchical bus (subsystem-local accesses stay on
  their local bus; only the rest cross the bridge),

sweeping the workload's locality.  With high locality the hierarchy
parallelizes the local traffic; as locality falls, every access pays
the bridge *on top of* global arbitration and the flat bus wins — the
crossover a designer uses the configurator to find.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.experiments.report import render_table
from repro.mpsoc.bus import SystemBus
from repro.mpsoc.hierbus import HierarchicalBus
from repro.sim.engine import Engine

LOCALITY_SWEEP = (0.95, 0.8, 0.5, 0.2, 0.0)


@dataclass(frozen=True)
class HierbusRow:
    locality: float
    flat_makespan: float
    hier_makespan: float
    flat_mean_latency: float
    hier_mean_latency: float

    @property
    def speedup(self) -> float:
        return self.flat_makespan / self.hier_makespan


@dataclass(frozen=True)
class HierbusResult:
    rows: tuple
    masters: int
    ops: int

    def render(self) -> str:
        table = render_table(
            ["locality", "flat makespan", "hier makespan",
             "hier speedup", "flat mean lat", "hier mean lat"],
            [(f"{row.locality:.0%}", row.flat_makespan,
              row.hier_makespan, f"{row.speedup:.2f}X",
              round(row.flat_mean_latency, 1),
              round(row.hier_mean_latency, 1))
             for row in self.rows],
            title=f"Flat vs hierarchical bus ({self.masters} masters x "
                  f"{self.ops} transactions)")
        return (f"{table}\n"
                "with locality the hierarchy parallelizes local "
                "traffic (up to ~2X throughput here); at zero locality "
                "it converges to the flat bus's behaviour with the "
                "bridge hop added per access — the trade-off the "
                "framework's bus configurator exists to explore.")


def _master_plan(ops: int, locality: float, seed: int) -> list:
    rng = random.Random(seed)
    return [(rng.random() < locality, rng.randint(1, 8))
            for _ in range(ops)]


def _run_flat(plans: dict) -> tuple:
    engine = Engine()
    bus = SystemBus(engine)
    latencies: list = []

    def master(name, plan):
        def proc():
            for _is_local, words in plan:
                start = engine.now
                yield from bus.transaction(name, words=words)
                latencies.append(engine.now - start)
        return proc()

    for name, plan in plans.items():
        engine.spawn(master(name, plan), name=name)
    makespan = engine.run()
    return makespan, sum(latencies) / len(latencies)


def _run_hier(plans: dict, num_subsystems: int = 2) -> tuple:
    engine = Engine()
    hier = HierarchicalBus(engine, num_subsystems=num_subsystems)
    latencies: list = []

    def master(name, index, plan):
        subsystem = index % num_subsystems

        def proc():
            for is_local, words in plan:
                start = engine.now
                if is_local:
                    yield from hier.local_transaction(subsystem, name,
                                                      words=words)
                else:
                    yield from hier.global_transaction(subsystem, name,
                                                       words=words)
                latencies.append(engine.now - start)
        return proc()

    for index, (name, plan) in enumerate(plans.items()):
        engine.spawn(master(name, index, plan), name=name)
    makespan = engine.run()
    return makespan, sum(latencies) / len(latencies)


def run(masters: int = 4, ops: int = 250, seed: int = 9) -> HierbusResult:
    rows = []
    for locality in LOCALITY_SWEEP:
        plans = {f"M{i}": _master_plan(ops, locality, seed + i)
                 for i in range(masters)}
        flat_makespan, flat_latency = _run_flat(plans)
        hier_makespan, hier_latency = _run_hier(plans)
        rows.append(HierbusRow(
            locality=locality,
            flat_makespan=flat_makespan,
            hier_makespan=hier_makespan,
            flat_mean_latency=flat_latency,
            hier_mean_latency=hier_latency))
    return HierbusResult(rows=tuple(rows), masters=masters, ops=ops)


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
