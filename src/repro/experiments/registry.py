"""Index of every regenerated table and figure."""

from __future__ import annotations

from typing import Callable

from repro.experiments import (
    ablation_policies,
    ablation_recovery,
    ablation_hierbus,
    complexity_survey,
    diagrams,
    exhaustive_bound,
    latency_profile,
    fig7_top_generation,
    fig11_matrix_example,
    fig20_trace,
    table1_ddu_synthesis,
    table2_dau_synthesis,
    table3_configurations,
    table4_event_sequence,
    table5_ddu_vs_pdda,
    table6_gdl_sequence,
    table7_gdl,
    table8_rdl_sequence,
    table9_rdl,
    table10_soclc_robot,
    table11_malloc,
    table12_socdmmu,
)

#: experiment id -> (description, run callable).
EXPERIMENTS: dict[str, tuple[str, Callable]] = {
    "table1": ("DDU synthesis results (LoC / NAND2 area / worst "
               "iterations)", table1_ddu_synthesis.run),
    "table2": ("DAU synthesis results (.005% of the MPSoC)",
               table2_dau_synthesis.run),
    "table3": ("the configured RTOS/MPSoCs, regenerated from the "
               "live presets", table3_configurations.run),
    "table4": ("event sequence leading to deadlock + Figure 15 RAG",
               table4_event_sequence.run),
    "table5": ("DDU vs PDDA-in-software: algorithm + application time",
               table5_ddu_vs_pdda.run),
    "table6": ("G-dl sequence under the DAU + Figure 16",
               table6_gdl_sequence.run),
    "table7": ("DAU vs DAA-in-software on the G-dl application",
               table7_gdl.run),
    "table8": ("R-dl sequence under the DAU + Figure 17",
               table8_rdl_sequence.run),
    "table9": ("DAU vs DAA-in-software on the R-dl application",
               table9_rdl.run),
    "table10": ("SoCLC + IPCP vs software PI on the robot application",
                table10_soclc_robot.run),
    "table11": ("SPLASH-2 with glibc-style malloc/free",
                table11_malloc.run),
    "table12": ("SPLASH-2 with the SoCDMMU",
                table12_socdmmu.run),
    "fig7": ("Archi_gen Top.v generation (Example 1)",
             fig7_top_generation.run),
    "fig11": ("state-matrix representation + one reduction step "
              "(Examples 3-4, Figures 11-12)", fig11_matrix_example.run),
    "fig20": ("robot execution trace, IPCP vs PI", fig20_trace.run),
    "ablation_policies": ("Algorithm 3 vs the two rejected avoidance "
                          "policies (Section 4.3.1)",
                          ablation_policies.run),
    "ablation_recovery": ("recovery victim-selection strategies on "
                          "random deadlocks", ablation_recovery.run),
    "ablation_hierbus": ("flat vs hierarchical bus under a locality "
                         "sweep (refs [7-9])", ablation_hierbus.run),
    "complexity_survey": ("prior-work complexity survey, measured "
                          "(Section 3.3)", complexity_survey.run),
    "latency_profile": ("detection latency distribution: hardware "
                        "bound vs software tail", latency_profile.run),
    "exhaustive_bound": ("exhaustive verification over every legal "
                         "small state (PDDA === oracle === structural "
                         "DDU; true worst-case iterations)",
                         exhaustive_bound.run),
    "diagrams": ("architecture block diagrams (Figures 1, 2, 8-10, "
                 "13-14, 18-19) rendered from the live objects",
                 diagrams.run),
}


def run_experiment(experiment_id: str):
    """Run one experiment by id; returns its result object."""
    try:
        _description, runner = EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; available: "
            f"{sorted(EXPERIMENTS)}") from None
    return runner()


def run_all() -> dict:
    """Run every experiment; returns {id: result}."""
    return {exp_id: runner()
            for exp_id, (_desc, runner) in EXPERIMENTS.items()}
