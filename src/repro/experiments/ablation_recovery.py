"""Ablation: recovery victim-selection strategies.

Detection "usually requires a recovery once a deadlock is detected"
(Section 3.3.1); the paper stops at detection, so the recovery half is
this library's extension (:mod:`repro.deadlock.recovery`).  This
experiment quantifies the victim-selection trade-off on a population of
randomly generated deadlocked states:

* **work lost** — resources the victim must release (its discarded
  progress);
* **priority damage** — the priority rank of the victimized process
  (hurting p1 is worse than hurting p5);
* and verifies that every strategy's plan actually clears every cycle.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.deadlock.pdda import pdda_detect
from repro.deadlock.recovery import apply_plan, plan_recovery, strategies
from repro.experiments.report import render_table
from repro.rag.generate import random_state


@dataclass(frozen=True)
class RecoveryRow:
    strategy: str
    samples: int
    mean_work_lost: float
    max_work_lost: int
    mean_victim_priority: float
    top_priority_victimized: int


@dataclass(frozen=True)
class RecoveryAblationResult:
    rows: tuple

    def render(self) -> str:
        table = render_table(
            ["strategy", "samples", "mean work lost", "max work lost",
             "mean victim prio", "p1 victimized"],
            [(row.strategy, row.samples,
              round(row.mean_work_lost, 2), row.max_work_lost,
              round(row.mean_victim_priority, 2),
              row.top_priority_victimized)
             for row in self.rows],
            title="Recovery victim-selection ablation "
                  "(random deadlocked 5x5 states)")
        return (f"{table}\n"
                "lowest-priority never victimizes p1; fewest-resources "
                "minimizes work lost — the classic recovery trade-off.")


def _deadlocked_population(count: int, seed: int) -> list:
    rng = random.Random(seed)
    population = []
    while len(population) < count:
        state = random_state(5, 5, grant_fraction=0.8,
                             request_fraction=0.45, rng=rng)
        if pdda_detect(state).deadlock:
            population.append(state)
    return population


def run(samples: int = 120, seed: int = 11) -> RecoveryAblationResult:
    population = _deadlocked_population(samples, seed)
    priorities = {f"p{i}": i for i in range(1, 6)}
    rows = []
    for strategy in strategies():
        work_lost = []
        victim_priorities = []
        top_hits = 0
        for state in population:
            working = state.copy()
            plan = plan_recovery(working, priorities, strategy)
            apply_plan(working, plan)          # raises if cycles survive
            work_lost.append(plan.cost)
            victim_priorities.append(priorities[plan.victim])
            if plan.victim == "p1":
                top_hits += 1
        rows.append(RecoveryRow(
            strategy=strategy,
            samples=len(population),
            mean_work_lost=sum(work_lost) / len(work_lost),
            max_work_lost=max(work_lost),
            mean_victim_priority=(sum(victim_priorities)
                                  / len(victim_priorities)),
            top_priority_victimized=top_hits))
    return RecoveryAblationResult(rows=tuple(rows))


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
