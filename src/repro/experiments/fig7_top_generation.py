"""Figure 7 / Example 1: Verilog top-file generation by Archi_gen.

Reproduces Example 1: "a user selects a system having three PEs and an
SoCLC for eight small locks and eight long locks" — the generator
starts from the LockCache description in the description library and
writes instantiations, wires and initialization routines to Top.v.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.framework.archi_gen import generate_top


@dataclass(frozen=True)
class Fig7Result:
    top_verilog: str
    num_pe_instances: int
    has_soclc: bool

    def render(self) -> str:
        return "\n".join([
            "Figure 7 / Example 1: generated Top.v "
            "(3 PEs + SoCLC 8 short / 8 long locks)",
            "=" * 60,
            self.top_verilog,
            f"PE instances: {self.num_pe_instances}; "
            f"SoCLC instantiated: {self.has_soclc}",
        ])


def run() -> Fig7Result:
    top = generate_top("LockCache", num_pes=3,
                       parameters={"N_SHORT": 8, "N_LONG": 8})
    return Fig7Result(
        top_verilog=top,
        num_pe_instances=top.count("mpc755 pe"),
        has_soclc="soclc" in top,
    )


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
