"""Prior-work complexity survey (Section 3.3, made measurable).

The paper surveys software deadlock detection as at-least O(m*n):
Shoshani-style reduction O(m*n^2), Holt O(m*n), Leibfried O(m^3), and
contrasts PDDA's hardware O(min(m, n)).  This experiment measures all
of them on the same worst-case chains across a size sweep and tabulates
the growth, so the survey's ordering is reproduced empirically rather
than quoted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.deadlock.ddu import DDU
from repro.deadlock.pdda import pdda_detect
from repro.experiments.report import render_table
from repro.rag.classic import (
    graph_reduction_detect,
    holt_detect,
    leibfried_detect,
)
from repro.rag.generate import worst_case_state

SIZES = (4, 8, 16, 32)


@dataclass(frozen=True)
class SurveyRow:
    size: int
    holt_operations: int
    reduction_operations: int
    leibfried_operations: int
    pdda_software_cycles: float
    ddu_iterations: int
    ddu_cycles: float


@dataclass(frozen=True)
class SurveyResult:
    rows: tuple

    def render(self) -> str:
        table = render_table(
            ["n=m", "Holt ops (O(mn))", "reduction ops (O(mn^2))",
             "Leibfried ops (O(m^3))", "sw PDDA cycles",
             "DDU iters (O(min))", "DDU cycles"],
            [(row.size, row.holt_operations, row.reduction_operations,
              row.leibfried_operations, row.pdda_software_cycles,
              row.ddu_iterations, row.ddu_cycles)
             for row in self.rows],
            title="Prior-work complexity survey on worst-case chains "
                  "(Section 3.3)")
        growth = self.growth_factors()
        notes = ", ".join(f"{name}: x{factor:.0f}"
                          for name, factor in growth.items())
        return (f"{table}\n"
                f"growth from n={SIZES[0]} to n={SIZES[-1]}: {notes}\n"
                "the DDU's O(min(m, n)) scaling is the paper's point: "
                "its work grows linearly while Leibfried's explodes.")

    def growth_factors(self) -> dict:
        first, last = self.rows[0], self.rows[-1]
        return {
            "holt": last.holt_operations / first.holt_operations,
            "reduction": (last.reduction_operations
                          / first.reduction_operations),
            "leibfried": (last.leibfried_operations
                          / first.leibfried_operations),
            "ddu": last.ddu_cycles / first.ddu_cycles,
        }


def run(sizes: tuple = SIZES,
        backend: Optional[str] = None) -> SurveyResult:
    rows = []
    for size in sizes:
        state = worst_case_state(size, size)
        holt = holt_detect(state)
        reduction = graph_reduction_detect(state)
        leibfried = leibfried_detect(state)
        pdda = pdda_detect(state, backend=backend)
        unit = DDU(size, size, backend=backend)
        unit.load(state)
        hardware = unit.detect()
        assert (holt.deadlock == reduction.deadlock == leibfried.deadlock
                == pdda.deadlock == hardware.deadlock is False)
        rows.append(SurveyRow(
            size=size,
            holt_operations=holt.operations,
            reduction_operations=reduction.operations,
            leibfried_operations=leibfried.operations,
            pdda_software_cycles=pdda.software_cycles,
            ddu_iterations=hardware.iterations,
            ddu_cycles=hardware.cycles))
    return SurveyResult(rows=tuple(rows))


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
