"""Plain-text table rendering shared by the experiment harnesses.

The implementation lives in :mod:`repro.textutils` (a leaf module with
no package dependencies) so non-experiment code — e.g.
:mod:`repro.rtos.report` — can use it without importing the experiment
registry; this module re-exports it under the historical name.
"""

from repro.textutils import (
    format_value,
    render_table,
    speedup_factor,
    speedup_percent,
)

__all__ = ["render_table", "format_value", "speedup_percent",
           "speedup_factor"]
