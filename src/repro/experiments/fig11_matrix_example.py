"""Figures 11-12: state-matrix representation and one reduction step.

Builds the worked example of Section 4.2.1 (Examples 3-4): a 5-resource
by 6-process state whose terminal rows are q2 and q3 and whose terminal
columns are p2, p4 and p6 — exactly the sets Example 4 names — then
shows the matrix before and after one terminal reduction step epsilon,
and the full reduction outcome (this example contains a cycle through
p1, q4, p3 and q1, so PDDA reports deadlock).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.deadlock.pdda import pdda_detect, terminal_reduction
from repro.rag.graph import RAG
from repro.rag.matrix import StateMatrix


def example_rag() -> RAG:
    """The Example 3/4 system state."""
    rag = RAG([f"p{i}" for i in range(1, 7)],
              [f"q{i}" for i in range(1, 6)])
    rag.grant("q1", "p1")
    rag.add_request("p3", "q1")
    rag.add_request("p2", "q2")
    rag.add_request("p5", "q2")
    rag.grant("q3", "p4")
    rag.grant("q4", "p3")
    rag.add_request("p1", "q4")
    rag.grant("q5", "p5")
    rag.add_request("p6", "q5")
    return rag


@dataclass(frozen=True)
class Fig11Result:
    matrix_text: str
    terminal_rows: tuple
    terminal_columns: tuple
    after_one_step_text: str
    iterations: int
    deadlock: bool
    residual_text: str

    def render(self) -> str:
        return "\n".join([
            "Figure 11: state-matrix representation (Example 3)",
            "=" * 50,
            self.matrix_text,
            "",
            f"terminal rows (Definition 7): {list(self.terminal_rows)}",
            f"terminal columns (Definition 8): "
            f"{list(self.terminal_columns)}",
            "",
            "Figure 12: after one terminal reduction step (Example 4)",
            self.after_one_step_text,
            "",
            f"full reduction: {self.iterations} iteration(s); "
            f"deadlock={self.deadlock}",
            "irreducible residual:",
            self.residual_text,
        ])


def run() -> Fig11Result:
    rag = example_rag()
    matrix = StateMatrix.from_rag(rag)
    terminal_rows = tuple(matrix.resource_names[s]
                          for s in matrix.terminal_rows())
    terminal_columns = tuple(matrix.process_names[t]
                             for t in matrix.terminal_columns())
    one_step = matrix.copy()
    for s in matrix.terminal_rows():
        one_step.clear_row(s)
    for t in matrix.terminal_columns():
        one_step.clear_column(t)
    detection = pdda_detect(matrix)
    reduction = terminal_reduction(matrix)
    return Fig11Result(
        matrix_text=matrix.render(),
        terminal_rows=terminal_rows,
        terminal_columns=terminal_columns,
        after_one_step_text=one_step.render(),
        iterations=reduction.iterations,
        deadlock=detection.deadlock,
        residual_text=reduction.matrix.render(),
    )


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
