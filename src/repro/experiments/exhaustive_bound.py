"""Exhaustive verification of PDDA and the iteration bound.

Random testing samples the state space; for small units we can do
better — enumerate *every* legal system state and check, for each one:

* PDDA's verdict equals the DFS cycle oracle (the proven iff of [29]);
* the structural and behavioural DDU models agree;
* the reduction iteration count never exceeds the bound
  ``max(2, 2*min(m, n) - 3)``.

State counts: a row with n processes has (n * 2^(n-1) + 2^n) legal
configurations (a grant in one of n cells with any request pattern in
the rest, or no grant at all), and rows are independent — 20 per row at
n = 3, so a 3x3 unit has 8,000 states, all checked in well under a
second.  This also recovers Table 1's "worst case # iterations" column
*by measurement* for the sizes that are exhaustively enumerable.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.deadlock.ddu import DDU
from repro.deadlock.ddu_rtl import StructuralDDU
from repro.deadlock.pdda import pdda_detect
from repro.experiments.report import render_table
from repro.rag.matrix import CellState, StateMatrix


def _row_configurations(n: int):
    """Every legal row: at most one grant, any requests elsewhere."""
    rows = []
    for grant_at in range(-1, n):
        free = [t for t in range(n) if t != grant_at]
        for bits in itertools.product((0, 1), repeat=len(free)):
            row = [CellState.EMPTY] * n
            if grant_at >= 0:
                row[grant_at] = CellState.GRANT
            for t, bit in zip(free, bits):
                if bit:
                    row[t] = CellState.REQUEST
            rows.append(tuple(row))
    return rows


def enumerate_states(m: int, n: int):
    """Yield every legal m x n state matrix."""
    rows = _row_configurations(n)
    for combo in itertools.product(rows, repeat=m):
        yield StateMatrix.from_cells(combo)


@dataclass(frozen=True)
class ExhaustiveRow:
    m: int
    n: int
    states: int
    deadlocked_states: int
    max_iterations: int
    bound: int
    oracle_disagreements: int
    structural_disagreements: int


@dataclass(frozen=True)
class ExhaustiveResult:
    rows: tuple

    def render(self) -> str:
        table = render_table(
            ["size", "states", "deadlocked", "max iterations", "bound",
             "oracle mismatches", "structural mismatches"],
            [(f"{row.m}x{row.n}", row.states, row.deadlocked_states,
              row.max_iterations, row.bound, row.oracle_disagreements,
              row.structural_disagreements)
             for row in self.rows],
            title="Exhaustive verification over every legal state")
        return (f"{table}\n"
                "0 mismatches = PDDA === cycle oracle === structural "
                "DDU on the full state space; the measured max "
                "iterations are the true Table 1 worst cases for these "
                "sizes.")


def run(sizes: tuple = ((2, 2), (2, 3), (3, 2), (3, 3))
        ) -> ExhaustiveResult:
    rows = []
    for m, n in sizes:
        behavioural = DDU(m, n)
        structural = StructuralDDU(m, n)
        states = 0
        deadlocked = 0
        max_iterations = 0
        oracle_bad = 0
        structural_bad = 0
        for matrix in enumerate_states(m, n):
            states += 1
            software = pdda_detect(matrix)
            oracle = matrix.to_rag().has_cycle()
            if software.deadlock != oracle:
                oracle_bad += 1
            behavioural.load(matrix)
            hw = behavioural.detect()
            structural.load(matrix)
            cells = structural.detect()
            if (hw.deadlock, hw.iterations) != (cells.deadlock,
                                                cells.iterations):
                structural_bad += 1
            if software.deadlock:
                deadlocked += 1
            max_iterations = max(max_iterations, software.iterations)
        rows.append(ExhaustiveRow(
            m=m, n=n, states=states, deadlocked_states=deadlocked,
            max_iterations=max_iterations,
            bound=behavioural.iteration_bound,
            oracle_disagreements=oracle_bad,
            structural_disagreements=structural_bad))
    return ExhaustiveResult(rows=tuple(rows))


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
