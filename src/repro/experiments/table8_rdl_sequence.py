"""Table 8 / Figure 17: the R-dl event sequence the DAU resolves.

Replays the request-deadlock application under RTOS4 and renders the
event timeline, highlighting the pivotal decision: when p1's request
for the IDCT would close the cycle, the DAU asks the lower-priority
owner p2 to give the resource up.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.request_deadlock import run_rdl_app
from repro.framework.builder import build_system


@dataclass(frozen=True)
class Table8Result:
    events: tuple
    rdl_avoided: bool
    giveup_asked_of: str
    app_cycles: float

    def render(self) -> str:
        lines = ["Table 8: R-dl sequence under the DAU", "=" * 40]
        for time, actor, kind, resource in self.events:
            lines.append(f"t={time:>8.0f}  {actor:<4s} {kind:<18s} "
                         f"{resource}")
        lines.append("")
        lines.append(f"R-dl avoided: {self.rdl_avoided}; give-up asked of "
                     f"{self.giveup_asked_of} (paper: p2, the "
                     f"lower-priority owner of the IDCT)")
        lines.append(f"application completed at t={self.app_cycles:.0f}")
        return "\n".join(lines)


def run() -> Table8Result:
    system = build_system("RTOS4")
    result = run_rdl_app("RTOS4", system=system)
    kinds = ("resource_granted", "resource_released", "asked_to_release")
    events = tuple(
        (rec.time, rec.actor, rec.kind, rec.details.get("resource", "-"))
        for rec in system.soc.trace.filter(
            predicate=lambda r: r.kind in kinds))
    asked = [actor for (_t, actor, kind, _res) in events
             if kind == "asked_to_release"]
    return Table8Result(
        events=events,
        rdl_avoided=result.rdl_events > 0,
        giveup_asked_of=asked[0] if asked else "?",
        app_cycles=result.app_cycles,
    )


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
